//! The buffer pool: a bounded set of in-memory frames caching validated
//! page payloads, with pin/unpin and a scan-resistant two-cohort
//! (2Q-style) replacement policy.
//!
//! The pool is what makes larger-than-RAM catalogs workable: the snapshot
//! decode paths never read the file directly — every page goes through
//! [`BufferPool::fetch`], which pins a frame for the duration of the
//! returned [`PageRef`]. Pinned frames are never evicted.
//!
//! ## Replacement policy
//!
//! A plain clock replacer collapses to a 0% hit rate under sequential
//! segment scans: a cold scan references every page exactly once, floods
//! the pool and flushes the directory/symbol/index pages that *are*
//! re-read. The pool therefore splits frames into two cohorts:
//!
//! * **Probationary** — where every page is admitted. One-touch scan
//!   pages live and die here; the victim sweep always prefers this
//!   cohort, so a scan can only displace other scan pages.
//! * **Protected** — pages with demonstrated reuse. A demand hit on a
//!   probationary frame promotes it; the cohort is capped at 3/4 of the
//!   pool (excess demotes the coldest protected frame back to
//!   probation), and protected frames are only reclaimed when no
//!   probationary victim exists.
//!
//! Eviction remembers recently evicted page ids in a bounded **ghost
//! list** (2Q's `A1out`): a miss on a remembered id means the page was
//! evicted while still useful, so it re-admits straight to the protected
//! cohort. This is what lets a cyclically re-scanned working set larger
//! than the pool converge on a stable, nonzero hit rate instead of
//! thrashing forever.
//!
//! Fetches carry a [`FetchHint`]: [`FetchHint::Scan`] admits without a
//! reference bit (first in line for eviction), [`FetchHint::Reuse`] with
//! one. [`BufferPool::prefetch`] batches readahead — one positioned read
//! per contiguous missing run, admitted unpinned as scan pages and
//! flagged so the ledger can tell a prefetch-satisfied fetch
//! ([`PoolStats::prefetch_hits`]) from a genuine re-use hit.

use crate::error::{Result, StorageError};
use crate::file::{FileManager, PagePayload};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How a fetched page will be used; picks its admission cohort treatment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FetchHint {
    /// Likely re-read (directory, symbols, index roots): admit
    /// probationary with its reference bit set.
    #[default]
    Reuse,
    /// One sequential pass: admit probationary with the reference bit
    /// clear, so the page is the first eviction candidate and cannot
    /// displace reused pages.
    Scan,
}

/// Counters describing one pool's traffic.
///
/// Every page read from the file is a miss (`prefetched` counts the
/// subset issued by readahead batches rather than demand fetches), so
/// `evictions ≤ misses` always holds. A demand fetch answered without a
/// synchronous read is a hit, split three ways:
/// `hits = probation_hits + protected_hits + prefetch_hits` — the first
/// two are genuine re-use of a resident frame (and drive promotion), the
/// last is the first touch of a frame readahead brought in (served from
/// memory, but not evidence of re-use — no promotion).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Maximum resident frames.
    pub capacity: u64,
    /// Frames currently holding a page.
    pub resident: u64,
    /// Demand fetches answered by re-using a resident frame.
    pub hits: u64,
    /// Pages read from the file (demand misses + prefetch reads).
    pub misses: u64,
    /// Frames reclaimed by the replacer.
    pub evictions: u64,
    /// Hits on probationary frames (each also promotes).
    pub probation_hits: u64,
    /// Hits on protected frames.
    pub protected_hits: u64,
    /// Probationary frames promoted to the protected cohort by a hit.
    pub promotions: u64,
    /// Misses whose page id was remembered by the ghost list and
    /// re-admitted straight to the protected cohort.
    pub ghost_promotions: u64,
    /// Pages read by readahead batches (subset of `misses`).
    pub prefetched: u64,
    /// Demand fetches satisfied by a frame readahead brought in (subset
    /// of `hits`; the remainder are re-use hits).
    pub prefetch_hits: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Cohort {
    Probation,
    Protected,
}

struct Frame {
    page_id: u32,
    data: Arc<PagePayload>,
    pins: u32,
    referenced: bool,
    cohort: Cohort,
    /// Readahead brought this frame in and no demand fetch has touched
    /// it yet — the first touch counts as a prefetch hit, not re-use.
    fresh_prefetch: bool,
}

struct Frames {
    slots: Vec<Frame>,
    map: HashMap<u32, usize>,
    clock: usize,
    protected: usize,
    /// Recently evicted page ids, oldest first (2Q's `A1out`).
    ghost: VecDeque<u32>,
}

/// A bounded read-through cache of page payloads.
pub struct BufferPool {
    frames: Mutex<Frames>,
    capacity: usize,
    protected_cap: usize,
    ghost_cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    probation_hits: AtomicU64,
    protected_hits: AtomicU64,
    promotions: AtomicU64,
    ghost_promotions: AtomicU64,
    prefetched: AtomicU64,
    prefetch_hits: AtomicU64,
}

impl BufferPool {
    /// A pool holding at most `capacity` pages (clamped to ≥ 1). The
    /// protected cohort is capped at 3/4 of the pool; the ghost list
    /// remembers the last `2 × capacity` evicted ids.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        BufferPool {
            frames: Mutex::new(Frames {
                slots: Vec::new(),
                map: HashMap::new(),
                clock: 0,
                protected: 0,
                ghost: VecDeque::new(),
            }),
            capacity,
            protected_cap: (capacity * 3 / 4).max(1),
            ghost_cap: capacity * 2,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            probation_hits: AtomicU64::new(0),
            protected_hits: AtomicU64::new(0),
            promotions: AtomicU64::new(0),
            ghost_promotions: AtomicU64::new(0),
            prefetched: AtomicU64::new(0),
            prefetch_hits: AtomicU64::new(0),
        }
    }

    /// Maximum resident frames.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// [`fetch_hinted`](Self::fetch_hinted) with [`FetchHint::Reuse`].
    pub fn fetch<'a>(&'a self, file: &FileManager, page_id: u32) -> Result<PageRef<'a>> {
        self.fetch_hinted(file, page_id, FetchHint::Reuse)
    }

    /// Fetch page `page_id` through the pool, pinning its frame until the
    /// returned [`PageRef`] drops. A resident page is a hit (promoting a
    /// re-touched probationary frame); otherwise the page is read (and
    /// checksum-validated) from `file`, evicting an unpinned frame if the
    /// pool is full.
    pub fn fetch_hinted<'a>(
        &'a self,
        file: &FileManager,
        page_id: u32,
        hint: FetchHint,
    ) -> Result<PageRef<'a>> {
        let mut frames = self.frames.lock();
        if let Some(&slot) = frames.map.get(&page_id) {
            let fresh = {
                let frame = &mut frames.slots[slot];
                frame.pins += 1;
                frame.referenced = true;
                std::mem::take(&mut frame.fresh_prefetch)
            };
            self.hits.fetch_add(1, Ordering::Relaxed);
            if fresh {
                // First demand touch of a readahead page: served from
                // memory, but not evidence of re-use — don't promote.
                self.prefetch_hits.fetch_add(1, Ordering::Relaxed);
            } else {
                if frames.slots[slot].cohort == Cohort::Probation {
                    // Second touch since admission: demonstrated re-use.
                    self.probation_hits.fetch_add(1, Ordering::Relaxed);
                    self.promotions.fetch_add(1, Ordering::Relaxed);
                    self.promote(&mut frames, slot);
                } else {
                    self.protected_hits.fetch_add(1, Ordering::Relaxed);
                }
            }
            let frame = &frames.slots[slot];
            return Ok(PageRef {
                pool: self,
                slot,
                data: Arc::clone(&frame.data),
            });
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Read (and validate) while holding the pool lock: concurrent
        // fetchers of the same page must not race to duplicate frames.
        let data = Arc::new(file.read_page(page_id)?);
        let slot = self.admit(
            &mut frames,
            page_id,
            Arc::clone(&data),
            1,
            hint == FetchHint::Reuse,
            false,
        )?;
        Ok(PageRef {
            pool: self,
            slot,
            data,
        })
    }

    /// Read ahead pages `first..end` that are not yet resident, one
    /// positioned read per contiguous missing run, admitting them
    /// unpinned as scan pages. Readahead is advisory: a pool too full of
    /// pinned frames simply stops prefetching rather than failing the
    /// caller. I/O or corruption errors still surface — the demand fetch
    /// would hit them anyway.
    pub fn prefetch(&self, file: &FileManager, first: u32, end: u32) -> Result<()> {
        let mut frames = self.frames.lock();
        let mut run = first;
        while run < end {
            // Skip resident pages, then collect the next missing run.
            while run < end && frames.map.contains_key(&run) {
                run += 1;
            }
            let mut run_end = run;
            while run_end < end && !frames.map.contains_key(&run_end) {
                run_end += 1;
            }
            if run == run_end {
                break;
            }
            for (i, payload) in file.read_pages(run, run_end - run)?.into_iter().enumerate() {
                let page_id = run + i as u32;
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.prefetched.fetch_add(1, Ordering::Relaxed);
                match self.admit(&mut frames, page_id, Arc::new(payload), 0, false, true) {
                    Ok(_) => {}
                    Err(StorageError::PoolExhausted) => return Ok(()),
                    Err(e) => return Err(e),
                }
            }
            run = run_end;
        }
        Ok(())
    }

    /// Install a page in a free or reclaimed frame. Ghost-remembered
    /// pages re-admit straight to the protected cohort.
    fn admit(
        &self,
        frames: &mut Frames,
        page_id: u32,
        data: Arc<PagePayload>,
        pins: u32,
        referenced: bool,
        fresh_prefetch: bool,
    ) -> Result<usize> {
        let mut cohort = Cohort::Probation;
        if let Some(at) = frames.ghost.iter().position(|&g| g == page_id) {
            frames.ghost.remove(at);
            self.ghost_promotions.fetch_add(1, Ordering::Relaxed);
            cohort = Cohort::Protected;
        }
        let frame = Frame {
            page_id,
            data,
            pins,
            referenced,
            cohort,
            fresh_prefetch,
        };
        let slot = if frames.slots.len() < self.capacity {
            frames.slots.push(frame);
            frames.slots.len() - 1
        } else {
            let slot = self.reclaim(frames)?;
            let old = &frames.slots[slot];
            let old_id = old.page_id;
            if old.cohort == Cohort::Protected {
                frames.protected -= 1;
            }
            frames.map.remove(&old_id);
            frames.ghost.push_back(old_id);
            if frames.ghost.len() > self.ghost_cap {
                frames.ghost.pop_front();
            }
            self.evictions.fetch_add(1, Ordering::Relaxed);
            frames.slots[slot] = frame;
            slot
        };
        if cohort == Cohort::Protected {
            frames.protected += 1;
            self.shed_protected(frames, slot);
        }
        frames.map.insert(page_id, slot);
        Ok(slot)
    }

    /// Move a probationary frame to the protected cohort, demoting the
    /// coldest protected frame if the cohort cap is exceeded.
    fn promote(&self, frames: &mut Frames, slot: usize) {
        frames.slots[slot].cohort = Cohort::Protected;
        frames.protected += 1;
        self.shed_protected(frames, slot);
    }

    /// While the protected cohort exceeds its cap, demote a protected
    /// frame other than `keep` (second-chance order, pinned frames and
    /// `keep` exempt). Demotion clears the reference bit, so a demoted
    /// frame must prove itself again.
    fn shed_protected(&self, frames: &mut Frames, keep: usize) {
        let n = frames.slots.len();
        let mut budget = 2 * n;
        while frames.protected > self.protected_cap && budget > 0 {
            budget -= 1;
            let i = frames.clock;
            frames.clock = (frames.clock + 1) % n;
            let frame = &mut frames.slots[i];
            if i == keep || frame.cohort != Cohort::Protected || frame.pins > 0 {
                continue;
            }
            if frame.referenced {
                frame.referenced = false;
                continue;
            }
            frame.cohort = Cohort::Probation;
            frames.protected -= 1;
        }
    }

    /// Pick a frame to reclaim: a second-chance sweep over the
    /// probationary cohort first (scans only ever displace other scans),
    /// falling back to protected frames only when no probationary victim
    /// exists. Pinned frames are never taken.
    fn reclaim(&self, frames: &mut Frames) -> Result<usize> {
        let n = frames.slots.len();
        for protected_too in [false, true] {
            for _ in 0..2 * n {
                let i = frames.clock;
                frames.clock = (frames.clock + 1) % n;
                let frame = &mut frames.slots[i];
                if frame.pins > 0 || (frame.cohort == Cohort::Protected && !protected_too) {
                    continue;
                }
                if frame.referenced {
                    frame.referenced = false;
                    continue;
                }
                return Ok(i);
            }
        }
        Err(StorageError::PoolExhausted)
    }

    fn unpin(&self, slot: usize) {
        let mut frames = self.frames.lock();
        let frame = &mut frames.slots[slot];
        debug_assert!(frame.pins > 0, "unpin without pin");
        frame.pins -= 1;
    }

    /// Current traffic counters.
    pub fn stats(&self) -> PoolStats {
        let resident = self.frames.lock().map.len() as u64;
        PoolStats {
            capacity: self.capacity as u64,
            resident,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            probation_hits: self.probation_hits.load(Ordering::Relaxed),
            protected_hits: self.protected_hits.load(Ordering::Relaxed),
            promotions: self.promotions.load(Ordering::Relaxed),
            ghost_promotions: self.ghost_promotions.load(Ordering::Relaxed),
            prefetched: self.prefetched.load(Ordering::Relaxed),
            prefetch_hits: self.prefetch_hits.load(Ordering::Relaxed),
        }
    }
}

/// A pinned page payload; the frame stays resident until this drops.
/// Dereferences to the payload bytes.
pub struct PageRef<'a> {
    pool: &'a BufferPool,
    slot: usize,
    data: Arc<PagePayload>,
}

impl std::ops::Deref for PageRef<'_> {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl Drop for PageRef<'_> {
    fn drop(&mut self) {
        self.pool.unpin(self.slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::encode_page;
    use std::io::Write;

    fn page_file(name: &str, pages: u32) -> (std::path::PathBuf, FileManager) {
        let mut path = std::env::temp_dir();
        path.push(format!("rox-storage-pool-{}-{name}", std::process::id()));
        let mut f = std::fs::File::create(&path).unwrap();
        for id in 0..pages {
            f.write_all(&encode_page(id, format!("page-{id}").as_bytes(), 64))
                .unwrap();
        }
        drop(f);
        let fm = FileManager::new(std::fs::File::open(&path).unwrap(), 64, pages);
        (path, fm)
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let (path, fm) = page_file("hits", 4);
        let pool = BufferPool::new(4);
        assert_eq!(&*pool.fetch(&fm, 1).unwrap(), b"page-1");
        assert_eq!(&*pool.fetch(&fm, 1).unwrap(), b"page-1");
        let s = pool.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (1, 1, 0));
        assert_eq!(s.resident, 1);
        // The re-touch promoted the frame out of probation.
        assert_eq!((s.probation_hits, s.promotions), (1, 1));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn full_pool_evicts_unpinned_pages() {
        let (path, fm) = page_file("evict", 8);
        let pool = BufferPool::new(2);
        for id in 0..8 {
            assert_eq!(
                &*pool.fetch(&fm, id).unwrap(),
                format!("page-{id}").as_bytes()
            );
        }
        let s = pool.stats();
        assert_eq!(s.misses, 8);
        assert_eq!(s.evictions, 6);
        assert_eq!(s.resident, 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pinned_pages_survive_eviction_pressure() {
        let (path, fm) = page_file("pin", 8);
        let pool = BufferPool::new(2);
        let pinned = pool.fetch(&fm, 0).unwrap();
        for id in 1..8 {
            let _ = pool.fetch(&fm, id).unwrap();
        }
        // The pinned frame was never reclaimed.
        assert_eq!(&*pinned, b"page-0");
        let again = pool.fetch(&fm, 0).unwrap();
        assert_eq!(&*again, b"page-0");
        let s = pool.stats();
        assert_eq!(s.hits, 1); // the re-fetch of the pinned page
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn all_pinned_reports_exhaustion() {
        let (path, fm) = page_file("exhausted", 4);
        let pool = BufferPool::new(2);
        let _a = pool.fetch(&fm, 0).unwrap();
        let _b = pool.fetch(&fm, 1).unwrap();
        assert!(matches!(
            pool.fetch(&fm, 2),
            Err(StorageError::PoolExhausted)
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn scans_cannot_evict_protected_pages() {
        let (path, fm) = page_file("protected", 16);
        let pool = BufferPool::new(4);
        // Page 0 earns protection by re-use.
        let _ = pool.fetch(&fm, 0).unwrap();
        let _ = pool.fetch(&fm, 0).unwrap();
        assert_eq!(pool.stats().promotions, 1);
        // A 12-page scan floods the pool...
        for id in 1..13 {
            let _ = pool.fetch_hinted(&fm, id, FetchHint::Scan).unwrap();
        }
        // ...but the protected page is still resident: no third miss.
        let before = pool.stats().misses;
        let _ = pool.fetch(&fm, 0).unwrap();
        let s = pool.stats();
        assert_eq!(s.misses, before);
        assert_eq!(s.protected_hits, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn ghost_list_readmits_to_protected() {
        let (path, fm) = page_file("ghost", 8);
        let pool = BufferPool::new(2);
        // Fill, then evict page 0 by flooding.
        for id in 0..4 {
            let _ = pool.fetch(&fm, id).unwrap();
        }
        assert!(pool.stats().evictions >= 1);
        // Page 0's id is remembered: the re-miss admits it protected, and
        // a further scan flood cannot displace it.
        let _ = pool.fetch(&fm, 0).unwrap();
        assert_eq!(pool.stats().ghost_promotions, 1);
        for id in 4..8 {
            let _ = pool.fetch_hinted(&fm, id, FetchHint::Scan).unwrap();
        }
        let before = pool.stats().misses;
        let _ = pool.fetch(&fm, 0).unwrap();
        let s = pool.stats();
        assert_eq!(s.misses, before);
        assert_eq!(
            s.hits,
            s.probation_hits + s.protected_hits + s.prefetch_hits
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn protected_cohort_is_capped() {
        let (path, fm) = page_file("cap", 8);
        // Capacity 4 → protected cap 3: promoting a 4th reused page must
        // demote another instead of letting protection fill the pool.
        let pool = BufferPool::new(4);
        for id in 0..4 {
            let _ = pool.fetch(&fm, id).unwrap();
            let _ = pool.fetch(&fm, id).unwrap();
        }
        assert_eq!(pool.stats().promotions, 4);
        let frames = pool.frames.lock();
        assert_eq!(frames.protected, 3);
        drop(frames);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn prefetch_batches_admit_unpinned_scan_pages() {
        let (path, fm) = page_file("prefetch", 8);
        let pool = BufferPool::new(8);
        pool.prefetch(&fm, 0, 6).unwrap();
        let s = pool.stats();
        assert_eq!((s.misses, s.prefetched, s.resident), (6, 6, 6));
        // Demand-touching a prefetched page is a hit (served from the
        // pool) but a *prefetch* hit: no evidence of re-use, no promote.
        let _ = pool.fetch(&fm, 3).unwrap();
        let s = pool.stats();
        assert_eq!((s.hits, s.prefetch_hits, s.promotions), (1, 1, 0));
        // The second demand touch is a re-use hit and promotes.
        let _ = pool.fetch(&fm, 3).unwrap();
        let s = pool.stats();
        assert_eq!((s.hits, s.probation_hits, s.promotions), (2, 1, 1));
        // Prefetching a range that is partly resident only reads the gap.
        pool.prefetch(&fm, 4, 8).unwrap();
        assert_eq!(pool.stats().prefetched, 8);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn prefetch_is_advisory_when_pool_is_pinned_full() {
        let (path, fm) = page_file("advisory", 8);
        let pool = BufferPool::new(2);
        let _a = pool.fetch(&fm, 0).unwrap();
        let _b = pool.fetch(&fm, 1).unwrap();
        // No frame can be reclaimed; prefetch gives up quietly.
        pool.prefetch(&fm, 2, 6).unwrap();
        assert_eq!(pool.stats().resident, 2);
        std::fs::remove_file(&path).ok();
    }
}
