//! Property tests for the packed integer-run codecs: random monotone and
//! adversarial sequences must round-trip bit-identically and re-encode
//! canonically (the save→open→save fixed point depends on it), and any
//! truncation or corruption of a packed payload must surface as a clean
//! [`rox_storage::StorageError`] or a well-formed decode — never a panic.
//! End-to-end, a corrupted *page* under a packed run is always caught by
//! the page checksum before the codec even sees the bytes.

use proptest::prelude::*;
use rox_storage::bytes::{pack_u32s, unpack_u32s, ByteReader, ByteWriter, RunCodec, SegmentReader};
use rox_storage::file::FileManager;
use rox_storage::page::{encode_page, PAGE_HEADER};
use rox_storage::{BufferPool, StorageError};
use std::io::Write;

fn monotone() -> impl Strategy<Value = Vec<u32>> {
    // Sorted gaps: the delta+varint sweet spot (postings, CSR offsets).
    prop::collection::vec(0u32..5_000, 0..300).prop_map(|gaps| {
        gaps.into_iter()
            .scan(0u32, |acc, g| {
                *acc = acc.saturating_add(g);
                Some(*acc)
            })
            .collect()
    })
}

fn adversarial() -> impl Strategy<Value = Vec<u32>> {
    // Full-range, non-monotone values: worst case for deltas.
    prop::collection::vec(any::<u32>(), 0..300)
}

/// Write one packed run as a tiny-page segment file.
fn packed_segment(tag: &str, vals: &[u32]) -> (std::path::PathBuf, FileManager, u64) {
    let mut w = ByteWriter::new();
    w.put_packed_u32s(vals);
    let stream = w.into_bytes();
    let path = std::env::temp_dir().join(format!(
        "rox-prop-codec-{}-{tag}-{}.seg",
        std::process::id(),
        vals.len()
    ));
    let page_size = 64usize;
    let payload = page_size - PAGE_HEADER;
    let mut f = std::fs::File::create(&path).unwrap();
    let mut pages = 0u32;
    for chunk in stream.chunks(payload) {
        f.write_all(&encode_page(pages, chunk, page_size)).unwrap();
        pages += 1;
    }
    drop(f);
    let fm = FileManager::new(std::fs::File::open(&path).unwrap(), page_size, pages.max(1));
    (path, fm, stream.len() as u64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn monotone_runs_roundtrip_canonically(vals in monotone()) {
        let (codec, payload) = pack_u32s(&vals);
        let decoded = unpack_u32s(codec, &payload, vals.len()).unwrap();
        prop_assert_eq!(&decoded, &vals);
        // Re-encoding the decode reproduces codec and bytes exactly: the
        // choice is a pure function of the values.
        prop_assert_eq!(pack_u32s(&decoded), (codec, payload));
    }

    #[test]
    fn adversarial_runs_roundtrip_canonically(vals in adversarial()) {
        let (codec, payload) = pack_u32s(&vals);
        let decoded = unpack_u32s(codec, &payload, vals.len()).unwrap();
        prop_assert_eq!(&decoded, &vals);
        prop_assert_eq!(pack_u32s(&decoded), (codec, payload));
    }

    /// Any strict prefix of a packed payload fails to decode: every codec
    /// pins its exact byte length for a given count.
    #[test]
    fn truncated_payloads_error_cleanly(
        vals in prop::collection::vec(any::<u32>(), 1..300),
        cut_seed in any::<u64>(),
    ) {
        let (codec, payload) = pack_u32s(&vals);
        // A non-empty run always has a non-empty payload.
        let cut = (cut_seed % payload.len() as u64) as usize;
        prop_assert!(unpack_u32s(codec, &payload[..cut], vals.len()).is_err());
    }

    /// Flip one byte of the payload, or lie about codec or count: decode
    /// must never panic and never fabricate a run of the wrong length.
    /// (Silent *value* corruption at this layer is caught one level down
    /// by the page checksum — see `corrupted_segment_pages_are_caught`.)
    #[test]
    fn corrupted_payloads_never_panic(
        vals in adversarial(),
        pos_seed in any::<u64>(),
        xor in 1u8..=255,
        codec_lie in 0u8..3,
        count_delta in -2i64..=2,
    ) {
        let (codec, mut payload) = pack_u32s(&vals);
        if !payload.is_empty() {
            let pos = (pos_seed % payload.len() as u64) as usize;
            payload[pos] ^= xor;
        }
        let codec = RunCodec::from_u8(codec_lie).unwrap_or(codec);
        let n = (vals.len() as i64 + count_delta).max(0) as usize;
        if let Ok(decoded) = unpack_u32s(codec, &payload, n) {
            prop_assert_eq!(decoded.len(), n);
        }
    }

    /// End to end: corrupt any byte of a page file holding a packed run
    /// and the segment read fails with a checksum error before the codec
    /// can decode wrong bits.
    #[test]
    fn corrupted_segment_pages_are_caught(
        vals in prop::collection::vec(any::<u32>(), 1..200),
        pos_seed in any::<u64>(),
        xor in 1u8..=255,
    ) {
        let (path, fm, len) = packed_segment("corrupt", &vals);
        drop(fm);
        let mut bytes = std::fs::read(&path).unwrap();
        let pos = (pos_seed % bytes.len() as u64) as usize;
        bytes[pos] ^= xor;
        std::fs::write(&path, &bytes).unwrap();
        let fm = FileManager::new(
            std::fs::File::open(&path).unwrap(),
            64,
            (bytes.len() / 64) as u32,
        );
        let pool = BufferPool::new(4);
        let mut r = SegmentReader::new(&pool, &fm, 0, len);
        match r.get_packed_u32s(vals.len()) {
            // A flip in a page's zero padding is invisible (checksums
            // cover payloads); the decode must then be bit-identical.
            Ok(decoded) => prop_assert_eq!(decoded, vals),
            Err(StorageError::Corrupt { .. }) | Err(StorageError::Format(_)) => {}
            Err(e) => prop_assert!(false, "unexpected error kind: {e}"),
        }
        std::fs::remove_file(&path).ok();
    }
}
