//! Property tests for the XQuery front end: random well-formed ASTs
//! survive print → parse unchanged, and compilation is deterministic.

use proptest::prelude::*;
use rox_joingraph::ast::*;
use rox_joingraph::{compile, parse_query};
use rox_xmldb::{CmpOp, Constant};

fn name() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["a", "bb", "item", "open_auction", "x-y", "n.s"])
        .prop_map(str::to_string)
}

fn step_test() -> impl Strategy<Value = StepTest> {
    prop_oneof![
        name().prop_map(StepTest::Element),
        name().prop_map(StepTest::Attribute),
        Just(StepTest::Text),
    ]
}

fn axis() -> impl Strategy<Value = StepAxis> {
    prop_oneof![Just(StepAxis::Child), Just(StepAxis::Descendant)]
}

fn cmp_op() -> impl Strategy<Value = CmpOp> {
    prop::sample::select(vec![
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ])
}

fn constant() -> impl Strategy<Value = Constant> {
    prop_oneof![
        (0i32..10_000).prop_map(|n| Constant::Num(n as f64)),
        "[a-zA-Z0-9 ]{0,8}".prop_map(Constant::Str),
    ]
}

/// A step whose test is an element (so that further steps can follow) and
/// whose axis is valid for the test (no `//@x`).
fn element_step(depth: u32) -> BoxedStrategy<Step> {
    if depth == 0 {
        (axis(), name())
            .prop_map(|(axis, n)| Step {
                axis,
                test: StepTest::Element(n),
                predicates: vec![],
            })
            .boxed()
    } else {
        (
            axis(),
            name(),
            prop::collection::vec(predicate(depth - 1), 0..2),
        )
            .prop_map(|(axis, n, predicates)| Step {
                axis,
                test: StepTest::Element(n),
                predicates,
            })
            .boxed()
    }
}

/// A terminal step (element / attribute / text) with valid axis.
fn last_step(depth: u32) -> BoxedStrategy<Step> {
    let preds = if depth == 0 {
        Just(Vec::new()).boxed()
    } else {
        prop::collection::vec(predicate(depth - 1), 0..2).boxed()
    };
    (step_test(), axis(), preds)
        .prop_map(|(test, ax, predicates)| {
            // `//@x` is rejected by the compiler; normalize to child.
            let axis = if matches!(test, StepTest::Attribute(_)) {
                StepAxis::Child
            } else {
                ax
            };
            // Predicates only on element steps.
            let predicates = if matches!(test, StepTest::Element(_)) {
                predicates
            } else {
                vec![]
            };
            Step {
                axis,
                test,
                predicates,
            }
        })
        .boxed()
}

fn steps(depth: u32) -> BoxedStrategy<Vec<Step>> {
    (
        prop::collection::vec(element_step(depth), 0..3),
        last_step(depth),
    )
        .prop_map(|(mut pre, last)| {
            pre.push(last);
            pre
        })
        .boxed()
}

fn predicate(depth: u32) -> BoxedStrategy<Predicate> {
    let inner = steps(depth);
    prop_oneof![
        inner.clone().prop_map(Predicate::Exists),
        (inner, cmp_op(), constant()).prop_map(|(s, op, c)| Predicate::Compare(s, op, c)),
    ]
    .boxed()
}

fn query() -> impl Strategy<Value = Query> {
    (prop::collection::vec(steps(2), 1..4), prop::bool::ANY).prop_map(|(bindings, join_texts)| {
        let fors: Vec<ForBinding> = bindings
            .into_iter()
            .enumerate()
            .map(|(i, steps)| ForBinding {
                var: format!("v{i}"),
                source: Source::Doc(format!("doc{}.xml", i % 2)),
                steps,
            })
            .collect();
        // Optionally join consecutive variables on text value.
        let mut conditions = Vec::new();
        if join_texts && fors.len() >= 2 {
            for w in 0..fors.len() - 1 {
                conditions.push(Condition::Join(
                    VarPath {
                        var: fors[w].var.clone(),
                        steps: vec![Step {
                            axis: StepAxis::Child,
                            test: StepTest::Text,
                            predicates: vec![],
                        }],
                    },
                    CmpOp::Eq,
                    VarPath {
                        var: fors[w + 1].var.clone(),
                        steps: vec![Step {
                            axis: StepAxis::Child,
                            test: StepTest::Text,
                            predicates: vec![],
                        }],
                    },
                ));
            }
        }
        let return_var = fors[0].var.clone();
        Query {
            lets: vec![],
            fors,
            conditions,
            return_var,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn print_parse_roundtrip(q in query()) {
        let printed = q.to_string();
        let parsed = parse_query(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        prop_assert_eq!(&parsed, &q, "printed:\n{}", printed);
    }

    #[test]
    fn compilation_is_deterministic(q in query()) {
        let g1 = compile(&q);
        let g2 = compile(&q);
        match (g1, g2) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.vertex_count(), b.vertex_count());
                prop_assert_eq!(a.edge_count(), b.edge_count());
                prop_assert_eq!(a.dump(), b.dump());
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "divergent: {:?} vs {:?}", a.is_ok(), b.is_ok()),
        }
    }

    #[test]
    fn compiled_graphs_have_consistent_adjacency(q in query()) {
        if let Ok(g) = compile(&q) {
            for e in g.edges() {
                prop_assert!(g.edges_of(e.v1).contains(&e.id));
                prop_assert!(g.edges_of(e.v2).contains(&e.id));
            }
            for v in g.vertices() {
                for &eid in g.edges_of(v.id) {
                    let e = g.edge(eid);
                    prop_assert!(e.v1 == v.id || e.v2 == v.id);
                }
            }
            // The tail's vertices exist.
            for &t in g.tail.dedup.iter().chain(g.tail.sort.iter()) {
                prop_assert!((t as usize) < g.vertex_count());
            }
        }
    }
}
