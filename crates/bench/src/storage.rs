//! Snapshot-storage benchmarks: cold-start latency (XML re-parse vs
//! page-oriented `open_snapshot`) and a buffer-pool sweep at shrinking
//! frame budgets (the `bench_storage` binary, which emits the
//! machine-readable `BENCH_storage.json` consumed by CI).
//!
//! Two measured regimes, both over the paper's Q1 on an XMark document:
//!
//! 1. **Cold start** — from nothing resident to a servable catalog. The
//!    *ready* phase is the storage comparison proper: re-parsing the
//!    serialized XML text (`Catalog::load_str`) and building every index
//!    from scratch, vs `Snapshot::open` plus decoding every document and
//!    index segment through the buffer pool. Time to the *first query
//!    answer* (which adds the identical optimizer run on top of either
//!    path) is reported alongside, and outputs are asserted bit-identical
//!    before any timing is reported.
//! 2. **Pool sweep** — the same snapshot opened with frame budgets of
//!    100%, 50% and 25% of the catalog's pages. Each point replays the
//!    query after an explicit `release_residency` sweep and reports the
//!    pool's hit/miss/eviction ledger — larger-than-RAM service at a
//!    quarter of the pages must still produce bit-identical rows.

use rox_core::{RoxEngine, RoxOptions};
use rox_datagen::{generate_xmark, xmark_query, XmarkConfig};
use rox_index::{DocSource, IndexedStore};
use rox_storage::{RunCodec, SaveReport, Snapshot};
use rox_xmldb::{serialize_document, Catalog};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of the storage benchmarks.
#[derive(Debug, Clone)]
pub struct StorageBenchConfig {
    /// XMark document shape.
    pub xmark: XmarkConfig,
    /// Timed repetitions per measurement (the minimum is reported).
    pub repeats: usize,
    /// Frame budgets for the pool sweep, as fractions of the snapshot's
    /// page count.
    pub pool_fractions: Vec<f64>,
}

impl Default for StorageBenchConfig {
    fn default() -> Self {
        StorageBenchConfig {
            xmark: XmarkConfig {
                persons: 3000,
                items: 2500,
                auctions: 2500,
                ..XmarkConfig::default()
            },
            repeats: 3,
            pool_fractions: vec![1.0, 0.5, 0.25],
        }
    }
}

impl StorageBenchConfig {
    /// A seconds-scale configuration for CI smoke runs.
    pub fn smoke() -> Self {
        StorageBenchConfig {
            xmark: XmarkConfig {
                persons: 300,
                items: 250,
                auctions: 250,
                ..XmarkConfig::default()
            },
            repeats: 2,
            pool_fractions: vec![1.0, 0.5, 0.25],
        }
    }
}

/// One point of the buffer-pool sweep.
#[derive(Debug, Clone)]
pub struct PoolPoint {
    /// Frame budget as a fraction of the snapshot's pages.
    pub fraction: f64,
    /// The resulting frame count (floor 1).
    pub frames: usize,
    /// First query on the freshly opened snapshot (pages all miss).
    pub cold_query: Duration,
    /// Replay after a `release_residency` sweep: documents re-fault
    /// through whatever the pool still holds.
    pub warm_replay: Duration,
    /// Pool hits at the end of the point (re-use + prefetch-served).
    pub hits: u64,
    /// Pool misses at the end of the point.
    pub misses: u64,
    /// Pool evictions at the end of the point.
    pub evictions: u64,
    /// Pages brought in by readahead batches (subset of `misses`).
    pub prefetched: u64,
    /// Demand fetches served by a frame readahead brought in.
    pub prefetch_hits: u64,
    /// Ghost-list re-misses re-admitted straight to the protected cohort.
    pub ghost_promotions: u64,
    /// `hits / (hits + misses)`.
    pub hit_rate: f64,
}

/// Everything the `bench_storage` binary reports.
#[derive(Debug, Clone)]
pub struct StorageBenchResult {
    /// The saved snapshot's shape.
    pub report: SaveReport,
    /// Size of the serialized XML the parse baseline re-reads.
    pub xml_bytes: usize,
    /// Ready via XML re-parse: parse + shred + build every index.
    pub parse_ready: Duration,
    /// Ready via snapshot: open + decode every document + index segment.
    pub snapshot_ready: Duration,
    /// Ready via [`RoxEngine::open_snapshot_prefetched`]: the decode
    /// fans out across the engine's worker pool.
    pub snapshot_ready_prefetched: Duration,
    /// Decode tasks the prefetched open dispatched through the pool.
    pub par_decode_tasks: u64,
    /// Per-segment codec choices, from the snapshot directory's codec
    /// masks: `(segment, distinct codecs its packed runs chose)`.
    pub segment_codecs: Vec<(String, Vec<RunCodec>)>,
    /// `parse_ready / snapshot_ready` — the storage-layer speedup.
    pub speedup: f64,
    /// First query answer on a parse-path cold engine (adds one
    /// optimizer run on top of `parse_ready`).
    pub parse_first_answer: Duration,
    /// First query answer on a snapshot-path cold engine.
    pub snapshot_first_answer: Duration,
    /// Output rows of the anchor query (sanity anchor; all paths agree).
    pub anchor_rows: usize,
    /// The pool sweep, one point per configured fraction.
    pub sweep: Vec<PoolPoint>,
}

fn best_of(repeats: usize, mut f: impl FnMut() -> Duration) -> Duration {
    (0..repeats.max(1))
        .map(|_| f())
        .min()
        .expect("at least one repeat")
}

fn snapshot_path() -> PathBuf {
    std::env::temp_dir().join(format!("rox-bench-storage-{}.rox", std::process::id()))
}

/// Run the storage benchmarks.
pub fn run(cfg: &StorageBenchConfig) -> StorageBenchResult {
    let graph = rox_joingraph::compile_query(&xmark_query("<", 145.0)).unwrap();
    let options = RoxOptions::default();

    // Seed corpus: generate once, save the snapshot, serialize the XML
    // text the parse baseline will re-read.
    let seed_catalog = Arc::new(Catalog::new());
    generate_xmark(&seed_catalog, "xmark.xml", &cfg.xmark);
    let seed_engine = RoxEngine::new(Arc::clone(&seed_catalog));
    let reference = seed_engine.run(&graph, options).unwrap().output;
    let anchor_rows = reference.len();
    let path = snapshot_path();
    let report = seed_engine.save_snapshot(&path).expect("save snapshot");
    let xml = {
        let id = seed_catalog.resolve("xmark.xml").unwrap();
        serialize_document(&seed_catalog.doc(id))
    };

    // ---- 1a. Ready phase: re-parse + index build vs open + decode. ----
    let parse_ready = best_of(cfg.repeats, || {
        let t = Instant::now();
        let catalog = Arc::new(Catalog::new());
        catalog.load_str("xmark.xml", &xml).unwrap();
        let store = IndexedStore::new(Arc::clone(&catalog));
        for id in catalog.doc_ids() {
            store.doc(id);
            store.indexes(id);
        }
        t.elapsed()
    });
    let snapshot_ready = best_of(cfg.repeats, || {
        let t = Instant::now();
        let (catalog, source) = Snapshot::open(&path, None).expect("open snapshot");
        let store = IndexedStore::with_source(
            Arc::clone(&catalog),
            Arc::clone(&source) as Arc<dyn DocSource>,
        );
        for id in catalog.doc_ids() {
            store.doc(id);
            store.indexes(id);
        }
        let wall = t.elapsed();
        assert_eq!(store.build_count(), 0, "snapshot path rebuilt indexes");
        wall
    });
    let speedup = parse_ready.as_secs_f64() / snapshot_ready.as_secs_f64().max(f64::EPSILON);

    // The eager cold path: open + decode everything up front, the
    // per-segment decode fanned across the engine's worker pool.
    let mut par_decode_tasks = 0u64;
    let snapshot_ready_prefetched = best_of(cfg.repeats, || {
        let t = Instant::now();
        let engine = RoxEngine::open_snapshot_prefetched(&path, None).expect("open prefetched");
        let wall = t.elapsed();
        let stats = engine.stats();
        assert_eq!(stats.index_builds, 0, "prefetched path rebuilt indexes");
        assert!(
            stats.storage_par_decodes > 0,
            "decode must dispatch through the worker pool: {stats:?}"
        );
        par_decode_tasks = stats.storage_par_decodes;
        wall
    });

    // Per-segment codec choices, straight from the snapshot directory.
    let segment_codecs = {
        let (_, source) = Snapshot::open(&path, None).expect("open snapshot");
        source.segment_codecs()
    };

    // ---- 1b. Time to first answer (ready + one identical optimizer run),
    // where bit-identity of the two paths is asserted. ----
    let parse_first_answer = best_of(cfg.repeats, || {
        let t = Instant::now();
        let catalog = Arc::new(Catalog::new());
        catalog.load_str("xmark.xml", &xml).unwrap();
        let engine = RoxEngine::new(catalog);
        let r = engine.run(&graph, options).unwrap();
        let wall = t.elapsed();
        assert_eq!(r.output, reference, "parse-path output diverged");
        wall
    });
    let snapshot_first_answer = best_of(cfg.repeats, || {
        let t = Instant::now();
        let engine = RoxEngine::open_snapshot(&path, None).expect("open snapshot");
        let r = engine.run(&graph, options).unwrap();
        let wall = t.elapsed();
        assert_eq!(r.output, reference, "snapshot-path output diverged");
        assert_eq!(
            engine.stats().index_builds,
            0,
            "snapshot path rebuilt indexes"
        );
        wall
    });

    // ---- 2. Pool sweep: shrinking frame budgets. ----
    let mut sweep = Vec::new();
    for &fraction in &cfg.pool_fractions {
        let frames = ((report.pages as f64 * fraction) as usize).max(1);
        let engine = RoxEngine::open_snapshot(&path, Some(frames)).expect("open snapshot");
        let cold_query = {
            let t = Instant::now();
            let r = engine.run(&graph, options).unwrap();
            let wall = t.elapsed();
            assert_eq!(r.output, reference, "pool {fraction} cold output diverged");
            wall
        };
        let warm_replay = best_of(cfg.repeats, || {
            engine.release_residency();
            let t = Instant::now();
            let r = engine.run(&graph, options).unwrap();
            let wall = t.elapsed();
            assert_eq!(r.output, reference, "pool {fraction} replay diverged");
            wall
        });
        let s = engine.stats().pages;
        assert!(s.resident <= s.capacity, "pool ledger incoherent: {s:?}");
        assert!(s.evictions <= s.misses, "pool ledger incoherent: {s:?}");
        sweep.push(PoolPoint {
            fraction,
            frames,
            cold_query,
            warm_replay,
            hits: s.hits,
            misses: s.misses,
            evictions: s.evictions,
            prefetched: s.prefetched,
            prefetch_hits: s.prefetch_hits,
            ghost_promotions: s.ghost_promotions,
            hit_rate: s.hits as f64 / ((s.hits + s.misses) as f64).max(1.0),
        });
    }

    std::fs::remove_file(&path).ok();
    StorageBenchResult {
        report,
        xml_bytes: xml.len(),
        parse_ready,
        snapshot_ready,
        snapshot_ready_prefetched,
        par_decode_tasks,
        segment_codecs,
        speedup,
        parse_first_answer,
        snapshot_first_answer,
        anchor_rows,
        sweep,
    }
}

/// Render the result as the `BENCH_storage.json` document (hand-rolled —
/// the workspace is dependency-free by policy).
pub fn to_json(cfg: &StorageBenchConfig, r: &StorageBenchResult) -> String {
    let sweep = r
        .sweep
        .iter()
        .map(|p| {
            format!(
                "    {{\"fraction\": {:.2}, \"frames\": {}, \"cold_query_ms\": {:.3}, \"warm_replay_ms\": {:.3}, \"hits\": {}, \"misses\": {}, \"evictions\": {}, \"prefetched\": {}, \"prefetch_hits\": {}, \"ghost_promotions\": {}, \"hit_rate\": {:.4}}}",
                p.fraction,
                p.frames,
                p.cold_query.as_secs_f64() * 1e3,
                p.warm_replay.as_secs_f64() * 1e3,
                p.hits,
                p.misses,
                p.evictions,
                p.prefetched,
                p.prefetch_hits,
                p.ghost_promotions,
                p.hit_rate,
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let codecs = r
        .segment_codecs
        .iter()
        .map(|(segment, set)| {
            let names = set
                .iter()
                .map(|codec| format!("\"{}\"", codec.name()))
                .collect::<Vec<_>>()
                .join(", ");
            format!("    {{\"segment\": \"{segment}\", \"codecs\": [{names}]}}")
        })
        .collect::<Vec<_>>()
        .join(",\n");
    format!(
        "{{\n  \"machine\": {},\n  \"config\": {{\"persons\": {}, \"items\": {}, \"auctions\": {}, \"repeats\": {}}},\n  \"snapshot\": {{\"docs\": {}, \"pages\": {}, \"file_bytes\": {}, \"page_size\": {}, \"xml_bytes\": {}, \"payload_bytes\": {}, \"raw_payload_bytes\": {}, \"compression_ratio\": {:.4}}},\n  \"segment_codecs\": [\n{}\n  ],\n  \"cold_start\": {{\"parse_ready_ms\": {:.3}, \"snapshot_ready_ms\": {:.3}, \"snapshot_ready_prefetched_ms\": {:.3}, \"par_decode_tasks\": {}, \"speedup\": {:.2}, \"parse_first_answer_ms\": {:.3}, \"snapshot_first_answer_ms\": {:.3}}},\n  \"anchor_rows\": {},\n  \"pool_sweep\": [\n{}\n  ]\n}}\n",
        crate::machine_json(),
        cfg.xmark.persons,
        cfg.xmark.items,
        cfg.xmark.auctions,
        cfg.repeats,
        r.report.docs,
        r.report.pages,
        r.report.file_bytes,
        r.report.page_size,
        r.xml_bytes,
        r.report.payload_bytes,
        r.report.raw_payload_bytes,
        r.report.payload_bytes as f64 / (r.report.raw_payload_bytes as f64).max(1.0),
        codecs,
        r.parse_ready.as_secs_f64() * 1e3,
        r.snapshot_ready.as_secs_f64() * 1e3,
        r.snapshot_ready_prefetched.as_secs_f64() * 1e3,
        r.par_decode_tasks,
        r.speedup,
        r.parse_first_answer.as_secs_f64() * 1e3,
        r.snapshot_first_answer.as_secs_f64() * 1e3,
        r.anchor_rows,
        sweep,
    )
}

/// Render a human-readable summary table.
pub fn render(r: &StorageBenchResult) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    writeln!(
        out,
        "snapshot   {} docs, {} pages × {} B = {} B (xml {} B)",
        r.report.docs, r.report.pages, r.report.page_size, r.report.file_bytes, r.xml_bytes
    )
    .unwrap();
    writeln!(
        out,
        "payload    {} B packed vs {} B raw columns ({:.1}% ratio)",
        r.report.payload_bytes,
        r.report.raw_payload_bytes,
        100.0 * r.report.payload_bytes as f64 / (r.report.raw_payload_bytes as f64).max(1.0)
    )
    .unwrap();
    for (segment, set) in &r.segment_codecs {
        let names = set
            .iter()
            .map(|codec| codec.name())
            .collect::<Vec<_>>()
            .join(" ");
        writeln!(out, "codecs     {segment}: {names}").unwrap();
    }
    writeln!(
        out,
        "ready      parse {:>10.3?}  snapshot {:>10.3?}  speedup {:.2}x",
        r.parse_ready, r.snapshot_ready, r.speedup
    )
    .unwrap();
    writeln!(
        out,
        "ready      prefetched snapshot {:>10.3?} ({} pool decode tasks)",
        r.snapshot_ready_prefetched, r.par_decode_tasks
    )
    .unwrap();
    writeln!(
        out,
        "1st answer parse {:>10.3?}  snapshot {:>10.3?}",
        r.parse_first_answer, r.snapshot_first_answer
    )
    .unwrap();
    for p in &r.sweep {
        writeln!(
            out,
            "pool {:>4.0}%  frames {:>6}  cold {:>10.3?}  warm-replay {:>10.3?}  hit-rate {:.1}% ({} evictions)",
            p.fraction * 100.0,
            p.frames,
            p.cold_query,
            p.warm_replay,
            p.hit_rate * 100.0,
            p.evictions
        )
        .unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_is_consistent() {
        let cfg = StorageBenchConfig {
            xmark: XmarkConfig::tiny(),
            repeats: 1,
            pool_fractions: vec![1.0, 0.25],
        };
        let r = run(&cfg);
        assert!(r.anchor_rows > 0, "anchor query returned nothing");
        assert_eq!(r.sweep.len(), 2);
        assert!(
            r.sweep.iter().all(|p| p.hits + p.misses > 0),
            "pool saw no traffic"
        );
        assert!(
            r.report.payload_bytes < r.report.raw_payload_bytes,
            "packed columns must beat raw columns"
        );
        assert!(r.par_decode_tasks > 0, "no pool-dispatched decode tasks");
        assert!(!r.segment_codecs.is_empty(), "no codec directory reported");
        let json = to_json(&cfg, &r);
        assert!(json.contains("\"cold_start\""));
        assert!(json.contains("\"pool_sweep\""));
        assert!(json.contains("\"segment_codecs\""));
        assert!(json.contains("\"payload_bytes\""));
        let table = render(&r);
        assert!(table.contains("speedup"));
        assert!(table.contains("codecs"));
    }
}
