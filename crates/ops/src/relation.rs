//! Columnar relations over XML nodes.
//!
//! The semantics of a Join Graph is "a fully joined relation containing
//! attributes of base relations" (§2.1). [`Relation`] is that intermediate:
//! one column per Join Graph vertex that has been joined in so far. The
//! ROX evaluator materializes these (the paper's fully-materialized
//! execution model) and derives the per-vertex tables `T(v)` as distinct
//! projections.
//!
//! # Layout
//!
//! Strict struct-of-arrays: a column is a plain `Vec<`[`Pre`]`>` — 4 bytes
//! per binding — and the column's document is stored **once** per
//! attribute (`docs[i]`), not per row; a vertex's bindings all live in one
//! document, so the old per-cell `NodeId` (doc, pre) pairs carried the
//! same `DocId` millions of times. Every bulk operation (join composition,
//! row filtering, sorting, dedup, cartesian products) works column-wise
//! with index **gathers** — no per-row `Vec` is ever built, and the hot
//! [`Relation::compose`] resolves node→row matches through a dense
//! counting-sort index instead of a `HashMap`. Buffers come from the
//! caller's [`ScratchPool`] where one is given.

use crate::pool::ScratchPool;
use rand::Rng;
use rox_xmldb::catalog::DocId;
use rox_xmldb::{NodeId, Pre};

/// Identifier of a Join Graph vertex / relation attribute.
pub type VarId = u32;

/// A columnar relation: `cols[i]` holds the binding of `schema[i]` for
/// every row, all in document `docs[i]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Relation {
    schema: Vec<VarId>,
    docs: Vec<DocId>,
    cols: Vec<Vec<Pre>>,
}

impl Relation {
    /// An empty relation with the given schema; `docs` must be parallel to
    /// `schema`.
    pub fn empty(schema: Vec<VarId>, docs: Vec<DocId>) -> Self {
        debug_assert_eq!(schema.len(), docs.len());
        let cols = schema.iter().map(|_| Vec::new()).collect();
        Relation { schema, docs, cols }
    }

    /// A single-attribute relation from a node list in one document.
    pub fn single(var: VarId, doc: DocId, nodes: Vec<Pre>) -> Self {
        Relation {
            schema: vec![var],
            docs: vec![doc],
            cols: vec![nodes],
        }
    }

    /// The attribute list.
    pub fn schema(&self) -> &[VarId] {
        &self.schema
    }

    /// Per-attribute documents, parallel to [`Relation::schema`].
    pub fn docs(&self) -> &[DocId] {
        &self.docs
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.cols.first().map_or(0, Vec::len)
    }

    /// True when the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Position of `var` in the schema.
    pub fn col_idx(&self, var: VarId) -> Option<usize> {
        self.schema.iter().position(|&v| v == var)
    }

    /// The column bound to `var`.
    ///
    /// # Panics
    /// Panics when `var` is not in the schema.
    pub fn col(&self, var: VarId) -> &[Pre] {
        let i = self.col_idx(var).expect("variable not in relation schema");
        &self.cols[i]
    }

    /// The document `var`'s bindings live in.
    ///
    /// # Panics
    /// Panics when `var` is not in the schema.
    pub fn doc_of(&self, var: VarId) -> DocId {
        let i = self.col_idx(var).expect("variable not in relation schema");
        self.docs[i]
    }

    /// The global node id bound to `var` in row `row`.
    pub fn node(&self, var: VarId, row: usize) -> NodeId {
        let i = self.col_idx(var).expect("variable not in relation schema");
        NodeId::new(self.docs[i], self.cols[i][row])
    }

    /// Distinct nodes of `var`'s column, sorted in document order — the
    /// paper's `T(v)` as a projection of the component relation.
    pub fn distinct_nodes(&self, var: VarId) -> Vec<Pre> {
        let mut nodes = Vec::new();
        self.distinct_nodes_into(var, &mut nodes);
        nodes
    }

    /// As [`Relation::distinct_nodes`] into a caller-provided (pooled)
    /// buffer.
    pub fn distinct_nodes_into(&self, var: VarId, out: &mut Vec<Pre>) {
        out.clear();
        out.extend_from_slice(self.col(var));
        out.sort_unstable();
        out.dedup();
    }

    /// Append one row; `row` must be parallel to the schema.
    pub fn push_row(&mut self, row: &[Pre]) {
        debug_assert_eq!(row.len(), self.schema.len());
        for (col, &v) in self.cols.iter_mut().zip(row) {
            col.push(v);
        }
    }

    /// Keep only the rows whose index satisfies `keep`.
    pub fn retain_rows(&mut self, keep: &[bool]) {
        debug_assert_eq!(keep.len(), self.len());
        for col in &mut self.cols {
            let mut i = 0;
            col.retain(|_| {
                let k = keep[i];
                i += 1;
                k
            });
        }
    }

    /// Project onto `vars` (clones the columns, preserves row order and
    /// multiplicity).
    pub fn project(&self, vars: &[VarId]) -> Relation {
        let idx: Vec<usize> = vars
            .iter()
            .map(|&v| self.col_idx(v).expect("projection variable not in schema"))
            .collect();
        Relation {
            schema: vars.to_vec(),
            docs: idx.iter().map(|&i| self.docs[i]).collect(),
            cols: idx.iter().map(|&i| self.cols[i].clone()).collect(),
        }
    }

    /// Sort rows lexicographically by the given variables (document order
    /// per column) — the `τ` numbering/sort of the plan tail.
    pub fn sort_by(&mut self, vars: &[VarId]) {
        let key_cols: Vec<usize> = vars
            .iter()
            .map(|&v| self.col_idx(v).expect("sort variable not in schema"))
            .collect();
        let mut order: Vec<u32> = (0..self.len() as u32).collect();
        order.sort_by(|&a, &b| {
            for &k in &key_cols {
                let ord = self.cols[k][a as usize].cmp(&self.cols[k][b as usize]);
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        self.reorder(&order);
    }

    /// Gather every column through a row-index permutation (or subset).
    fn reorder(&mut self, order: &[u32]) {
        for col in &mut self.cols {
            let new_col: Vec<Pre> = order.iter().map(|&i| col[i as usize]).collect();
            *col = new_col;
        }
    }

    /// Compare two rows over the full schema.
    fn rows_cmp(&self, a: u32, b: u32) -> std::cmp::Ordering {
        for col in &self.cols {
            let ord = col[a as usize].cmp(&col[b as usize]);
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    }

    /// Remove duplicate rows with respect to the full schema (the plan
    /// tail's `δ`). Keeps the first occurrence; row order is otherwise
    /// preserved. Sort-based: no per-row hashing or row materialization.
    pub fn distinct(&mut self) {
        let n = self.len();
        if n <= 1 {
            return;
        }
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_unstable_by(|&a, &b| self.rows_cmp(a, b).then(a.cmp(&b)));
        let mut keep = vec![false; n];
        let mut i = 0;
        while i < n {
            // Rows of one equal-run are index-sorted, so the run's first
            // entry is the row's first occurrence.
            keep[order[i] as usize] = true;
            let mut j = i + 1;
            while j < n && self.rows_cmp(order[i], order[j]) == std::cmp::Ordering::Equal {
                j += 1;
            }
            i = j;
        }
        self.retain_rows(&keep);
    }

    /// Uniform without-replacement sample of `amount` rows (row order
    /// preserved).
    pub fn sample_rows<R: Rng + ?Sized>(&self, rng: &mut R, amount: usize) -> Relation {
        if amount >= self.len() {
            return self.clone();
        }
        let mut idx: Vec<usize> = rand::seq::index::sample(rng, self.len(), amount).into_vec();
        idx.sort_unstable();
        let cols = self
            .cols
            .iter()
            .map(|col| idx.iter().map(|&i| col[i]).collect())
            .collect();
        Relation {
            schema: self.schema.clone(),
            docs: self.docs.clone(),
            cols,
        }
    }

    /// Natural composition through a node-level pair list: every
    /// `(a, b)` in `pairs` matches left rows with `col(var_a) == a` against
    /// right rows with `col(var_b) == b`; output rows are the concatenation
    /// of the left and right bindings.
    ///
    /// This is how the evaluator turns a node-level structural or value
    /// join into the component-level join while preserving multiplicities.
    pub fn compose(
        left: &Relation,
        var_a: VarId,
        right: &Relation,
        var_b: VarId,
        pairs: &[(Pre, Pre)],
    ) -> Relation {
        Relation::compose_pooled(left, var_a, right, var_b, pairs, None)
    }

    /// As [`Relation::compose`] with scratch buffers (row indexes, output
    /// columns) leased from `pool`. Row matching goes through a dense
    /// counting-sort index per side (node → rows, two array reads per
    /// lookup), and output rows are produced as one **gather per column**
    /// — never row by row.
    pub fn compose_pooled(
        left: &Relation,
        var_a: VarId,
        right: &Relation,
        var_b: VarId,
        pairs: &[(Pre, Pre)],
        pool: Option<&ScratchPool>,
    ) -> Relation {
        let lease = |p: Option<&ScratchPool>| p.map(ScratchPool::lease_pres).unwrap_or_default();
        let give = |p: Option<&ScratchPool>, b: Vec<Pre>| {
            if let Some(p) = p {
                p.give_pres(b);
            }
        };
        let left_index = RowIndex::build(left.col(var_a), pool);
        let right_index = RowIndex::build(right.col(var_b), pool);
        // Matched row-index pairs, flat: (left row, right row) per output
        // row, in pair order × left-row order × right-row order — exactly
        // the row order the old per-pair nested loop produced.
        let mut lrows = lease(pool);
        let mut rrows = lease(pool);
        for &(a, b) in pairs {
            let ls = left_index.rows(a);
            let rs = right_index.rows(b);
            if ls.is_empty() || rs.is_empty() {
                continue;
            }
            for &li in ls {
                for &ri in rs {
                    lrows.push(li);
                    rrows.push(ri);
                }
            }
        }
        let mut schema = Vec::with_capacity(left.schema.len() + right.schema.len());
        schema.extend_from_slice(&left.schema);
        schema.extend_from_slice(&right.schema);
        let mut docs = Vec::with_capacity(schema.len());
        docs.extend_from_slice(&left.docs);
        docs.extend_from_slice(&right.docs);
        let mut cols = Vec::with_capacity(schema.len());
        for col in &left.cols {
            cols.push(gather(col, &lrows, pool));
        }
        for col in &right.cols {
            cols.push(gather(col, &rrows, pool));
        }
        give(pool, lrows);
        give(pool, rrows);
        left_index.recycle(pool);
        right_index.recycle(pool);
        Relation { schema, docs, cols }
    }

    /// Extend this relation with a new attribute through row-level pairs
    /// `(row index, node)` — the output of a step/value join executed with
    /// this relation's `var` column as context. `new_doc` is the document
    /// the new attribute's nodes live in.
    pub fn expand(&self, pairs: &[(u32, Pre)], new_var: VarId, new_doc: DocId) -> Relation {
        let mut schema = self.schema.clone();
        schema.push(new_var);
        let mut docs = self.docs.clone();
        docs.push(new_doc);
        let mut cols: Vec<Vec<Pre>> = self
            .cols
            .iter()
            .map(|col| pairs.iter().map(|&(row, _)| col[row as usize]).collect())
            .collect();
        cols.push(pairs.iter().map(|&(_, node)| node).collect());
        Relation { schema, docs, cols }
    }

    /// Cartesian product: every row of `a` against every row of `b` (used
    /// only to combine genuinely unconstrained components). Column-wise:
    /// `a`'s columns repeat each element `b.len()` times, `b`'s columns
    /// repeat whole `a.len()` times.
    pub fn cartesian(a: &Relation, b: &Relation) -> Relation {
        let mut schema = a.schema.clone();
        schema.extend_from_slice(&b.schema);
        let mut docs = a.docs.clone();
        docs.extend_from_slice(&b.docs);
        let (an, bn) = (a.len(), b.len());
        let mut cols = Vec::with_capacity(schema.len());
        for col in &a.cols {
            let mut out = Vec::with_capacity(an * bn);
            for &v in col {
                out.extend(std::iter::repeat_n(v, bn));
            }
            cols.push(out);
        }
        for col in &b.cols {
            let mut out = Vec::with_capacity(an * bn);
            for _ in 0..an {
                out.extend_from_slice(col);
            }
            cols.push(out);
        }
        Relation { schema, docs, cols }
    }

    /// Hand every column buffer back to `pool` (call when a component
    /// relation is consumed by a join — its columns become the next
    /// edge's gather buffers).
    pub fn recycle(self, pool: &ScratchPool) {
        for col in self.cols {
            pool.give_pres(col);
        }
    }
}

/// Gather `col` through a row-index list into a (pooled) output column.
fn gather(col: &[Pre], rows: &[Pre], pool: Option<&ScratchPool>) -> Vec<Pre> {
    let mut out = match pool {
        Some(pool) => pool.lease_pres(),
        None => Vec::new(),
    };
    out.reserve(rows.len());
    out.extend(rows.iter().map(|&i| col[i as usize]));
    out
}

/// Crossover of [`RowIndex`]'s dense (counting-sort) layout: the dense
/// index zero-fills a `max(col) + 1` offsets array, which is only worth
/// it while that universe stays within a small factor of the row count —
/// a handful of rows scattered near the end of a 10M-node document must
/// not cost 10M-entry array passes per join. Past the factor, a
/// sort-based index (`O(rows · log rows)` build, binary-searched lookups)
/// takes over.
const ROW_INDEX_DENSE_FACTOR: usize = 16;

/// A node → row-indexes multimap over one column: the hash-free
/// replacement for `HashMap<NodeId, Vec<u32>>` in [`Relation::compose`].
/// Dense (CSR over `0..=max(col)`, counting-sort build, O(1) lookups)
/// while the value universe is comparable to the row count
/// ([`ROW_INDEX_DENSE_FACTOR`]); sorted `(node, row)` pairs with
/// binary-searched group lookups otherwise. Both keep groups in
/// insertion (row) order — sorting `(node, row)` ties rows ascending —
/// and lookups of absent nodes return the empty slice.
enum RowIndex {
    Dense {
        /// `universe + 1` prefix sums; group of node `p` is
        /// `rows[offsets[p]..offsets[p + 1]]`.
        offsets: Vec<Pre>,
        /// Row indexes grouped by node, insertion (row) order per group.
        rows: Vec<Pre>,
    },
    Sorted {
        /// Column values, sorted; parallel to `rows`.
        keys: Vec<Pre>,
        /// Row indexes, ascending within one key's run.
        rows: Vec<Pre>,
    },
}

impl RowIndex {
    fn build(col: &[Pre], pool: Option<&ScratchPool>) -> RowIndex {
        let lease = |p: Option<&ScratchPool>| p.map(ScratchPool::lease_pres).unwrap_or_default();
        let universe = col.iter().map(|&p| p as usize + 1).max().unwrap_or(0);
        if universe > col.len().saturating_mul(ROW_INDEX_DENSE_FACTOR) {
            let mut pairs = pool.map(ScratchPool::lease_node_pairs).unwrap_or_default();
            pairs.extend(col.iter().enumerate().map(|(row, &p)| (p, row as Pre)));
            pairs.sort_unstable();
            let mut keys = lease(pool);
            let mut rows = lease(pool);
            keys.extend(pairs.iter().map(|&(p, _)| p));
            rows.extend(pairs.iter().map(|&(_, row)| row));
            if let Some(pool) = pool {
                pool.give_node_pairs(pairs);
            }
            return RowIndex::Sorted { keys, rows };
        }
        let mut offsets = lease(pool);
        offsets.resize(universe + 1, 0);
        for &p in col {
            offsets[p as usize + 1] += 1;
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let mut rows = lease(pool);
        rows.resize(col.len(), 0);
        let mut cursor = lease(pool);
        cursor.extend_from_slice(&offsets);
        for (row, &p) in col.iter().enumerate() {
            let at = cursor[p as usize];
            rows[at as usize] = row as Pre;
            cursor[p as usize] += 1;
        }
        if let Some(pool) = pool {
            pool.give_pres(cursor);
        }
        RowIndex::Dense { offsets, rows }
    }

    #[inline]
    fn rows(&self, p: Pre) -> &[Pre] {
        match self {
            RowIndex::Dense { offsets, rows } => {
                let i = p as usize;
                if i + 1 >= offsets.len() {
                    return &[];
                }
                &rows[offsets[i] as usize..offsets[i + 1] as usize]
            }
            RowIndex::Sorted { keys, rows } => {
                let start = keys.partition_point(|&k| k < p);
                let end = start + keys[start..].partition_point(|&k| k == p);
                &rows[start..end]
            }
        }
    }

    fn recycle(self, pool: Option<&ScratchPool>) {
        let Some(pool) = pool else { return };
        match self {
            RowIndex::Dense { offsets, rows } => {
                pool.give_pres(offsets);
                pool.give_pres(rows);
            }
            RowIndex::Sorted { keys, rows } => {
                pool.give_pres(keys);
                pool.give_pres(rows);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const D: DocId = DocId(0);

    fn rel(var: VarId, pres: &[u32]) -> Relation {
        Relation::single(var, D, pres.to_vec())
    }

    #[test]
    fn single_and_basics() {
        let r = rel(1, &[3, 5, 5]);
        assert_eq!(r.len(), 3);
        assert_eq!(r.schema(), &[1]);
        assert_eq!(r.doc_of(1), D);
        assert_eq!(r.distinct_nodes(1), vec![3, 5]);
        assert_eq!(r.node(1, 0), rox_xmldb::NodeId::new(D, 3));
    }

    #[test]
    fn expand_adds_column_with_multiplicity() {
        let r = rel(1, &[3, 5]);
        let pairs = vec![(0u32, 10), (0u32, 11), (1u32, 12)];
        let e = r.expand(&pairs, 2, DocId(7));
        assert_eq!(e.schema(), &[1, 2]);
        assert_eq!(e.len(), 3);
        assert_eq!(e.col(1), &[3, 3, 5]);
        assert_eq!(e.col(2), &[10, 11, 12]);
        assert_eq!(e.doc_of(2), DocId(7));
    }

    #[test]
    fn compose_cross_multiplies_matching_rows() {
        // left has node 3 twice.
        let left = rel(1, &[3, 3, 5]);
        let right = rel(2, &[7, 8]);
        let pairs = vec![(3, 7), (5, 8)];
        let j = Relation::compose(&left, 1, &right, 2, &pairs);
        assert_eq!(j.schema(), &[1, 2]);
        assert_eq!(j.len(), 3); // (3,7) ×2 + (5,8)
        assert_eq!(j.col(1), &[3, 3, 5]);
        assert_eq!(j.col(2), &[7, 7, 8]);
    }

    #[test]
    fn compose_ignores_pairs_without_rows() {
        let left = rel(1, &[3]);
        let right = rel(2, &[7]);
        let pairs = vec![(4, 7), (3, 9)];
        let j = Relation::compose(&left, 1, &right, 2, &pairs);
        assert!(j.is_empty());
    }

    #[test]
    fn compose_pooled_matches_unpooled() {
        let pool = ScratchPool::new();
        let left = rel(1, &[3, 3, 5, 9]);
        let right = rel(2, &[7, 8, 7]);
        let pairs = vec![(3, 7), (5, 8), (9, 7)];
        let plain = Relation::compose(&left, 1, &right, 2, &pairs);
        let pooled = Relation::compose_pooled(&left, 1, &right, 2, &pairs, Some(&pool));
        assert_eq!(pooled, plain);
        assert!(pool.stats().leases > 0);
        // Recycle and recompose: buffers come back from the pool.
        pooled.recycle(&pool);
        let misses = pool.stats().misses;
        let again = Relation::compose_pooled(&left, 1, &right, 2, &pairs, Some(&pool));
        assert_eq!(again, plain);
        assert_eq!(
            pool.stats().misses,
            misses,
            "warm compose must not allocate"
        );
    }

    #[test]
    fn distinct_removes_duplicate_rows() {
        let mut r = rel(1, &[3, 3, 5, 3]);
        r.distinct();
        assert_eq!(r.col(1), &[3, 5]);
    }

    #[test]
    fn distinct_keeps_first_occurrence_order() {
        let mut r = Relation::empty(vec![1, 2], vec![D, D]);
        r.push_row(&[5, 1]);
        r.push_row(&[3, 9]);
        r.push_row(&[5, 1]); // dup of row 0
        r.push_row(&[3, 8]);
        r.push_row(&[3, 9]); // dup of row 1
        r.distinct();
        assert_eq!(r.col(1), &[5, 3, 3]);
        assert_eq!(r.col(2), &[1, 9, 8]);
    }

    #[test]
    fn sort_by_orders_rows() {
        let mut r = Relation::empty(vec![1, 2], vec![D, D]);
        r.push_row(&[5, 1]);
        r.push_row(&[3, 9]);
        r.push_row(&[5, 0]);
        r.sort_by(&[1, 2]);
        assert_eq!(r.col(1), &[3, 5, 5]);
        assert_eq!(r.col(2), &[9, 0, 1]);
    }

    #[test]
    fn project_clones_columns() {
        let mut r = Relation::empty(vec![1, 2], vec![D, DocId(3)]);
        r.push_row(&[5, 1]);
        let p = r.project(&[2]);
        assert_eq!(p.schema(), &[2]);
        assert_eq!(p.col(2), &[1]);
        assert_eq!(p.doc_of(2), DocId(3));
    }

    #[test]
    fn retain_rows_filters() {
        let mut r = rel(1, &[1, 2, 3, 4]);
        r.retain_rows(&[true, false, true, false]);
        assert_eq!(r.col(1), &[1, 3]);
    }

    #[test]
    fn cartesian_repeats_in_row_major_order() {
        let a = rel(1, &[1, 2]);
        let b = rel(2, &[8, 9]);
        let c = Relation::cartesian(&a, &b);
        assert_eq!(c.col(1), &[1, 1, 2, 2]);
        assert_eq!(c.col(2), &[8, 9, 8, 9]);
    }

    #[test]
    fn sample_rows_is_subset() {
        let r = rel(1, &(0..100).collect::<Vec<_>>());
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let s = r.sample_rows(&mut rng, 10);
        assert_eq!(s.len(), 10);
    }
}
