//! [`IndexedStore`]: a catalog whose documents carry their element and
//! value indices — the complete "execution environment" of the paper
//! (storage + structural/value indices) that ROX's run-time optimizer
//! probes.
//!
//! The store is built to be shared across concurrent queries: index
//! lookups take a read lock only, and a first-touch build runs inside a
//! per-document [`OnceLock`] cell, so two queries racing to index
//! *different* documents build concurrently while racers on the *same*
//! document build it exactly once.

use crate::element::ElementIndex;
use crate::value::ValueIndex;
use rox_xmldb::{Catalog, DocId, Document};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Both indices of one document.
pub struct DocIndexes {
    /// The element (qname) index.
    pub element: ElementIndex,
    /// The text/attribute value index.
    pub value: ValueIndex,
}

impl DocIndexes {
    /// Build both indices for `doc`.
    pub fn build(doc: &Document) -> Self {
        DocIndexes {
            element: ElementIndex::build(doc),
            value: ValueIndex::build(doc),
        }
    }
}

/// A backing source that can fault documents and prebuilt indices into
/// the store on first touch — implemented by the snapshot storage layer
/// (`rox-storage`), which decodes them from checksummed pages through a
/// bounded buffer pool.
///
/// Defined here (not in the storage crate) so [`IndexedStore`] can fault
/// through it without `rox-index` depending on `rox-storage`: the storage
/// crate depends on this crate and implements the trait.
pub trait DocSource: Send + Sync {
    /// Decode the document `id` from storage, or `None` when the source
    /// has no content for it (e.g. the id postdates the snapshot).
    fn document(&self, id: DocId) -> Option<Arc<Document>>;

    /// Decode the prebuilt indices for `id`, or `None` to make the store
    /// build them from the resident document instead. Must return `None`
    /// after [`DocSource::mark_stale`]`(id)` — a snapshot must never serve
    /// an index for a document epoch it no longer matches.
    fn indexes(&self, id: DocId) -> Option<Arc<DocIndexes>>;

    /// Note that the live document `id` has diverged from the stored one
    /// (reload/invalidate): stored *index* segments for it are dead. The
    /// stored document segment stays decodable — it is only used while no
    /// newer resident copy exists, and an invalidation always leaves one.
    fn mark_stale(&self, id: DocId);
}

/// A document catalog plus lazily built per-document indices.
pub struct IndexedStore {
    catalog: Arc<Catalog>,
    /// Faults documents/indices in from persistent storage on first touch;
    /// `None` for a purely in-memory store (everything parsed/built live).
    source: Option<Arc<dyn DocSource>>,
    /// doc → once-cell holding its built indices. The outer map is only
    /// ever locked to fetch/insert a (cheap) cell; the expensive
    /// [`DocIndexes::build`] happens inside the cell, outside both locks'
    /// critical paths for other documents.
    indexes: RwLock<HashMap<DocId, Arc<OnceLock<Arc<DocIndexes>>>>>,
    /// How many times [`DocIndexes::build`] ran — the "warm queries do
    /// zero redundant index work" observable the engine tests assert on.
    builds: AtomicUsize,
    /// How many documents/index sets were decoded from the [`DocSource`]
    /// instead of being parsed/built — the cold-start observable of the
    /// storage benchmark.
    loads: AtomicUsize,
}

impl IndexedStore {
    /// Wrap an existing catalog.
    pub fn new(catalog: Arc<Catalog>) -> Self {
        IndexedStore {
            catalog,
            source: None,
            indexes: RwLock::new(HashMap::new()),
            builds: AtomicUsize::new(0),
            loads: AtomicUsize::new(0),
        }
    }

    /// Wrap a catalog backed by a persistent source: non-resident
    /// documents and unbuilt indices are faulted in through `source`
    /// on first touch instead of panicking/building.
    pub fn with_source(catalog: Arc<Catalog>, source: Arc<dyn DocSource>) -> Self {
        IndexedStore {
            catalog,
            source: Some(source),
            indexes: RwLock::new(HashMap::new()),
            builds: AtomicUsize::new(0),
            loads: AtomicUsize::new(0),
        }
    }

    /// The underlying catalog.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// The backing source, when this store faults from persistent storage.
    pub fn source(&self) -> Option<&Arc<dyn DocSource>> {
        self.source.as_ref()
    }

    /// The document with id `id`, faulting it in from the backing source
    /// when it is not resident. Under a first-touch race the catalog's
    /// first [`Catalog::fill`] wins and every racer gets the winner.
    ///
    /// # Panics
    /// Panics when the document is neither resident nor available from a
    /// source — same contract as [`Catalog::doc`].
    pub fn doc(&self, id: DocId) -> Arc<Document> {
        if let Some(doc) = self.catalog.get(id) {
            return doc;
        }
        if let Some(source) = &self.source {
            if let Some(doc) = source.document(id) {
                self.loads.fetch_add(1, Ordering::Relaxed);
                return self.catalog.fill(id, doc);
            }
        }
        panic!("document {id:?} is not resident and has no backing source")
    }

    /// The indices of document `id`, building them on first access.
    ///
    /// Warm calls take the read lock only. A cold call inserts an empty
    /// per-document cell under the write lock (cheap) and then builds
    /// inside the cell — so concurrent first touches of *different*
    /// documents index in parallel, and concurrent first touches of the
    /// *same* document build it once (the losers block on that one cell,
    /// not on a store-wide lock).
    pub fn indexes(&self, id: DocId) -> Arc<DocIndexes> {
        let cell = {
            let map = self.indexes.read().expect("index cache poisoned");
            map.get(&id).cloned()
        };
        let cell = match cell {
            Some(cell) => cell,
            None => {
                let mut map = self.indexes.write().expect("index cache poisoned");
                Arc::clone(map.entry(id).or_default())
            }
        };
        Arc::clone(cell.get_or_init(|| {
            if let Some(source) = &self.source {
                if let Some(decoded) = source.indexes(id) {
                    self.loads.fetch_add(1, Ordering::Relaxed);
                    return decoded;
                }
            }
            self.builds.fetch_add(1, Ordering::Relaxed);
            Arc::new(DocIndexes::build(&self.doc(id)))
        }))
    }

    /// Install an already-decoded document (and optionally its decoded
    /// indices) as resident — the bulk-preload path: a parallel snapshot
    /// decode hands every document over at once instead of faulting each
    /// on first touch. Counts as loads, exactly like the lazy path, and
    /// is idempotent under races: the catalog's first fill wins, and an
    /// index cell that was already initialized keeps its value.
    pub fn install(&self, id: DocId, doc: Arc<Document>, indexes: Option<Arc<DocIndexes>>) {
        self.loads.fetch_add(1, Ordering::Relaxed);
        self.catalog.fill(id, doc);
        if let Some(decoded) = indexes {
            let cell = {
                let mut map = self.indexes.write().expect("index cache poisoned");
                Arc::clone(map.entry(id).or_default())
            };
            if cell.set(decoded).is_ok() {
                self.loads.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// How many index builds have run so far. A shared store serving warm
    /// traffic must not advance this — see the engine's
    /// zero-redundant-work tests.
    pub fn build_count(&self) -> usize {
        self.builds.load(Ordering::Relaxed)
    }

    /// How many documents/index sets were decoded from the backing
    /// [`DocSource`] (0 for an in-memory store).
    pub fn load_count(&self) -> usize {
        self.loads.load(Ordering::Relaxed)
    }

    /// Drop the in-memory residency of `id` — the resident document *and*
    /// its index cell — **without** declaring the stored snapshot stale
    /// (contrast [`IndexedStore::invalidate`]): the next touch faults both
    /// back in through the backing source. This is the knob buffer-pool
    /// sweeps turn to re-measure cold faults at different pool sizes.
    /// Returns whether a document was resident.
    pub fn release(&self, id: DocId) -> bool {
        let was_resident = self.catalog.evict(id);
        self.indexes
            .write()
            .expect("index cache poisoned")
            .remove(&id);
        was_resident
    }

    /// Drop cached indices (used after re-loading a document). Also marks
    /// the backing source stale for `id`, so the next [`IndexedStore::indexes`]
    /// call rebuilds from the live document instead of decoding a stored
    /// index from a superseded epoch.
    pub fn invalidate(&self, id: DocId) {
        if let Some(source) = &self.source {
            source.mark_stale(id);
        }
        self.indexes
            .write()
            .expect("index cache poisoned")
            .remove(&id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexes_are_cached() {
        let cat = Arc::new(Catalog::new());
        let id = cat.load_str("a.xml", "<a><b/><b/></a>").unwrap();
        let store = IndexedStore::new(cat);
        let i1 = store.indexes(id);
        let i2 = store.indexes(id);
        assert!(Arc::ptr_eq(&i1, &i2));
        assert_eq!(store.build_count(), 1);
    }

    #[test]
    fn element_counts_via_store() {
        let cat = Arc::new(Catalog::new());
        let id = cat.load_str("a.xml", "<a><b/><c/><b/></a>").unwrap();
        let store = IndexedStore::new(Arc::clone(&cat));
        let b = cat.interner().get("b").unwrap();
        assert_eq!(store.indexes(id).element.count(b), 2);
    }

    #[test]
    fn invalidate_rebuilds() {
        let cat = Arc::new(Catalog::new());
        let id = cat.load_str("a.xml", "<a><b/></a>").unwrap();
        let store = IndexedStore::new(Arc::clone(&cat));
        let b = cat.interner().get("b").unwrap();
        assert_eq!(store.indexes(id).element.count(b), 1);
        cat.load_str("a.xml", "<a><b/><b/></a>").unwrap();
        store.invalidate(id);
        assert_eq!(store.indexes(id).element.count(b), 2);
        assert_eq!(store.build_count(), 2);
    }

    /// A test source that "stores" prebuilt documents and serves them on
    /// fault, mimicking the snapshot storage layer.
    struct MapSource {
        docs: HashMap<DocId, Arc<Document>>,
        stale: std::sync::Mutex<std::collections::HashSet<DocId>>,
    }

    impl DocSource for MapSource {
        fn document(&self, id: DocId) -> Option<Arc<Document>> {
            self.docs.get(&id).cloned()
        }
        fn indexes(&self, id: DocId) -> Option<Arc<DocIndexes>> {
            if self.stale.lock().unwrap().contains(&id) {
                return None;
            }
            self.docs.get(&id).map(|d| Arc::new(DocIndexes::build(d)))
        }
        fn mark_stale(&self, id: DocId) {
            self.stale.lock().unwrap().insert(id);
        }
    }

    #[test]
    fn store_faults_documents_from_source() {
        let cat = Arc::new(Catalog::new());
        let id = cat.reserve("lazy.xml");
        let doc = rox_xmldb::parse_document("lazy.xml", "<a><b/><b/></a>").unwrap();
        let source = Arc::new(MapSource {
            docs: HashMap::from([(id, doc)]),
            stale: Default::default(),
        });
        let store = IndexedStore::with_source(Arc::clone(&cat), source);
        assert!(cat.get(id).is_none());
        let d = store.doc(id);
        assert_eq!(d.uri(), "lazy.xml");
        // Faulting made it resident: the catalog now serves it directly.
        assert!(Arc::ptr_eq(&cat.doc(id), &d));
        assert_eq!(store.load_count(), 1);
        // Indexes decode from the source, not a live build.
        let idx = store.indexes(id);
        assert_eq!(idx.element.elements().len(), 3);
        assert_eq!(store.build_count(), 0);
        assert_eq!(store.load_count(), 2);
    }

    #[test]
    fn release_refaults_without_declaring_staleness() {
        let cat = Arc::new(Catalog::new());
        let id = cat.reserve("lazy.xml");
        let doc = rox_xmldb::parse_document("lazy.xml", "<a><b/></a>").unwrap();
        let source = Arc::new(MapSource {
            docs: HashMap::from([(id, doc)]),
            stale: Default::default(),
        });
        let store = IndexedStore::with_source(Arc::clone(&cat), source);
        store.doc(id);
        store.indexes(id);
        assert_eq!(store.load_count(), 2);
        assert!(store.release(id));
        assert!(cat.get(id).is_none());
        // Both fault back in from the (still valid) source — no rebuild.
        store.doc(id);
        store.indexes(id);
        assert_eq!(store.load_count(), 4);
        assert_eq!(store.build_count(), 0);
    }

    #[test]
    fn install_preloads_without_faults_or_builds() {
        let cat = Arc::new(Catalog::new());
        let id = cat.reserve("pre.xml");
        let doc = rox_xmldb::parse_document("pre.xml", "<a><b/><b/></a>").unwrap();
        let idx = Arc::new(DocIndexes::build(&doc));
        let source = Arc::new(MapSource {
            docs: HashMap::new(), // an empty source: any fault would panic
            stale: Default::default(),
        });
        let store = IndexedStore::with_source(Arc::clone(&cat), source);
        store.install(id, Arc::clone(&doc), Some(Arc::clone(&idx)));
        // Both touches are served from residency, never the source (an
        // empty-source fault would panic).
        assert_eq!(store.doc(id).uri(), "pre.xml");
        assert!(Arc::ptr_eq(&store.indexes(id), &idx));
        assert_eq!(store.build_count(), 0);
        assert_eq!(store.load_count(), 2);
        // Re-installing is a no-op for the index cell.
        store.install(
            id,
            Arc::clone(&doc),
            Some(Arc::new(DocIndexes::build(&doc))),
        );
        assert!(Arc::ptr_eq(&store.indexes(id), &idx));
    }

    #[test]
    fn invalidate_marks_source_stale() {
        let cat = Arc::new(Catalog::new());
        let id = cat.load_str("a.xml", "<a><b/></a>").unwrap();
        let stored = cat.doc(id);
        let source = Arc::new(MapSource {
            docs: HashMap::from([(id, stored)]),
            stale: Default::default(),
        });
        let store = IndexedStore::with_source(Arc::clone(&cat), source);
        assert_eq!(store.indexes(id).element.elements().len(), 2);
        assert_eq!(store.build_count(), 0);
        // Reload the live document, then invalidate: the stored index is
        // from a dead epoch and must not be served again.
        cat.load_str("a.xml", "<a><b/><b/></a>").unwrap();
        store.invalidate(id);
        assert_eq!(store.indexes(id).element.elements().len(), 3);
        assert_eq!(store.build_count(), 1);
    }

    #[test]
    #[should_panic(expected = "no backing source")]
    fn doc_panics_without_residency_or_source() {
        let cat = Arc::new(Catalog::new());
        let id = cat.reserve("ghost.xml");
        let store = IndexedStore::new(cat);
        let _ = store.doc(id);
    }

    #[test]
    fn concurrent_first_touch_builds_each_document_once() {
        let cat = Arc::new(Catalog::new());
        let mut ids = Vec::new();
        for i in 0..8 {
            let xml = format!("<r>{}</r>", "<x/>".repeat(i + 1));
            ids.push(cat.load_str(&format!("{i}.xml"), &xml).unwrap());
        }
        let store = IndexedStore::new(cat);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for &id in &ids {
                        let idx = store.indexes(id);
                        assert!(idx.element.text_nodes().is_empty());
                    }
                });
            }
        });
        // Every document indexed exactly once despite 4 racing threads.
        assert_eq!(store.build_count(), ids.len());
    }
}
