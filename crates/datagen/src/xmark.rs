//! Synthetic XMark-like auction data (the workload of §3.2 / Fig. 3 /
//! Table 2).
//!
//! The generator reproduces the schema fragment the example queries Q1/Qm1
//! touch and — crucially — builds in the correlation the paper exploits:
//! "the bigger the current price of an item, the higher the number of
//! bidders participating in the bid". A compile-time optimizer can
//! estimate `current < P` selectivities, but misses that the *number of
//! bidder descendants per qualifying auction* depends on P.

use rand::prelude::*;
use rand::rngs::StdRng;
use rox_xmldb::{Catalog, DocId};
use std::sync::Arc;

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct XmarkConfig {
    /// Number of `person` elements.
    pub persons: usize,
    /// Number of `item` elements.
    pub items: usize,
    /// Number of `open_auction` elements.
    pub auctions: usize,
    /// Fraction of persons with an `address/province` child.
    pub province_fraction: f64,
    /// Fraction of items with `quantity = 1` (others get 2..5).
    pub quantity_one_fraction: f64,
    /// Fraction of auctions with a `reserve` child.
    pub reserve_fraction: f64,
    /// Maximum `current` price (uniform in 0..max).
    pub price_max: f64,
    /// Price units per extra bidder — the correlation knob: an auction at
    /// price p gets `1 + p / price_per_bidder` bidders (± noise).
    pub price_per_bidder: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for XmarkConfig {
    fn default() -> Self {
        XmarkConfig {
            persons: 500,
            items: 400,
            auctions: 400,
            province_fraction: 0.4,
            quantity_one_fraction: 0.4,
            reserve_fraction: 0.5,
            price_max: 300.0,
            price_per_bidder: 30.0,
            seed: 20090629, // SIGMOD'09 opening day
        }
    }
}

impl XmarkConfig {
    /// A small configuration for unit tests.
    pub fn tiny() -> Self {
        XmarkConfig {
            persons: 40,
            items: 30,
            auctions: 30,
            ..Default::default()
        }
    }
}

/// Generate an auction document and register it under `uri`.
pub fn generate_xmark(catalog: &Arc<Catalog>, uri: &str, cfg: &XmarkConfig) -> DocId {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut b = catalog.builder(uri);
    b.start_element("site");

    // --- people ---
    b.start_element("people");
    for i in 0..cfg.persons {
        b.start_element("person");
        b.attribute("id", &format!("p{i}"));
        b.leaf("name", &format!("Person {i}"));
        if rng.random_bool(cfg.province_fraction) {
            b.start_element("address");
            b.leaf("province", &format!("Province {}", i % 12));
            b.end_element();
        }
        b.end_element();
    }
    b.end_element();

    // --- open_auctions ---
    b.start_element("open_auctions");
    for i in 0..cfg.auctions {
        b.start_element("open_auction");
        b.attribute("id", &format!("oa{i}"));
        if rng.random_bool(cfg.reserve_fraction) {
            b.leaf("reserve", &format!("{}", rng.random_range(1..100)));
        }
        let price = rng.random_range(0.0..cfg.price_max);
        b.leaf("initial", &format!("{:.2}", price / 2.0));
        b.leaf("current", &format!("{:.0}", price));
        b.start_element("itemref");
        b.attribute("item", &format!("item{}", rng.random_range(0..cfg.items)));
        b.end_element();
        // Correlated bidder count: more expensive auctions attract more
        // bidders.
        let base = 1 + (price / cfg.price_per_bidder) as usize;
        let noise: usize = rng.random_range(0..=1);
        for _ in 0..base + noise {
            b.start_element("bidder");
            b.start_element("personref");
            b.attribute("person", &format!("p{}", rng.random_range(0..cfg.persons)));
            b.end_element();
            b.leaf("increase", &format!("{}", rng.random_range(1..25)));
            b.end_element();
        }
        b.end_element();
    }
    b.end_element();

    // --- items ---
    b.start_element("items");
    for i in 0..cfg.items {
        b.start_element("item");
        b.attribute("id", &format!("item{i}"));
        let q = if rng.random_bool(cfg.quantity_one_fraction) {
            1
        } else {
            rng.random_range(2..=5)
        };
        b.leaf("quantity", &q.to_string());
        b.leaf("name", &format!("Item {i}"));
        b.end_element();
    }
    b.end_element();

    b.end_element(); // site
    catalog.insert(uri, Arc::new(b.finish(DocId(0))))
}

/// The paper's Q1 (current < threshold), Fig. 3 — parameterized so Qm1
/// (current > threshold) is `xmark_query(CmpOp::Gt, 145.0)`.
pub fn xmark_query(op: &str, threshold: f64) -> String {
    format!(
        r#"
        let $d := doc("xmark.xml")
        for $o in $d//open_auction[.//current/text() {op} {threshold}],
            $p in $d//person[.//province],
            $i in $d//item[./quantity = 1]
        where $o//bidder//personref/@person = $p/@id and
              $o//itemref/@item = $i/@id
        return $o
    "#
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_valid_document() {
        let cat = Arc::new(Catalog::new());
        let id = generate_xmark(&cat, "xmark.xml", &XmarkConfig::tiny());
        let d = cat.doc(id);
        d.check_invariants().unwrap();
        assert!(d.node_count() > 100);
    }

    #[test]
    fn counts_match_config() {
        let cat = Arc::new(Catalog::new());
        let cfg = XmarkConfig::tiny();
        let id = generate_xmark(&cat, "xmark.xml", &cfg);
        let d = cat.doc(id);
        let idx = rox_index::ElementIndex::build(&d);
        let count = |n: &str| d.interner().get(n).map_or(0, |s| idx.lookup(s).len());
        assert_eq!(count("person"), cfg.persons);
        assert_eq!(count("item"), cfg.items);
        assert_eq!(count("open_auction"), cfg.auctions);
        assert!(count("bidder") >= cfg.auctions); // at least one each
    }

    #[test]
    fn bidder_count_correlates_with_price() {
        let cat = Arc::new(Catalog::new());
        let cfg = XmarkConfig {
            auctions: 300,
            ..XmarkConfig::default()
        };
        let id = generate_xmark(&cat, "xmark.xml", &cfg);
        let d = cat.doc(id);
        let idx = rox_index::ElementIndex::build(&d);
        let oa = d.interner().get("open_auction").unwrap();
        let bidder = d.interner().get("bidder").unwrap();
        let current = d.interner().get("current").unwrap();
        let (mut cheap_bidders, mut cheap_n, mut exp_bidders, mut exp_n) =
            (0usize, 0usize, 0usize, 0usize);
        for &a in idx.lookup(oa) {
            let mut price = None;
            let mut bidders = 0;
            for p in a + 1..=d.post(a) {
                if d.name(p) == current {
                    price = d.string_value(p).trim().parse::<f64>().ok();
                }
                if d.name(p) == bidder && d.kind(p) == rox_xmldb::NodeKind::Element {
                    bidders += 1;
                }
            }
            let price = price.unwrap();
            if price < 145.0 {
                cheap_bidders += bidders;
                cheap_n += 1;
            } else {
                exp_bidders += bidders;
                exp_n += 1;
            }
        }
        let cheap_avg = cheap_bidders as f64 / cheap_n as f64;
        let exp_avg = exp_bidders as f64 / exp_n as f64;
        assert!(
            exp_avg > cheap_avg * 1.8,
            "correlation too weak: cheap {cheap_avg:.2} vs expensive {exp_avg:.2}"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let c1 = Arc::new(Catalog::new());
        let c2 = Arc::new(Catalog::new());
        let cfg = XmarkConfig::tiny();
        let a = generate_xmark(&c1, "x.xml", &cfg);
        let b = generate_xmark(&c2, "x.xml", &cfg);
        assert_eq!(
            rox_xmldb::serialize_document(&c1.doc(a)),
            rox_xmldb::serialize_document(&c2.doc(b))
        );
    }

    #[test]
    fn query_parses_and_compiles() {
        let q = xmark_query("<", 145.0);
        let g = rox_joingraph_compile(&q);
        assert!(g.vertex_count() >= 14);
    }

    fn rox_joingraph_compile(q: &str) -> rox_joingraph::JoinGraph {
        rox_joingraph::compile_query(q).unwrap()
    }
}
