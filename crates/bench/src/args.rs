//! Minimal `--flag value` argument parsing shared by the harness binaries
//! (kept dependency-free on purpose).

use std::collections::HashMap;

/// Parsed command-line flags.
#[derive(Debug, Default)]
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parse `std::env::args()` (skipping the binary name).
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parse an explicit iterator (testable).
    pub fn parse(args: impl Iterator<Item = String>) -> Self {
        let mut out = Args::default();
        let mut iter = args.peekable();
        while let Some(a) = iter.next() {
            if let Some(name) = a.strip_prefix("--") {
                match iter.peek() {
                    Some(v) if !v.starts_with("--") => {
                        out.values.insert(name.to_string(), iter.next().unwrap());
                    }
                    _ => out.flags.push(name.to_string()),
                }
            }
        }
        out
    }

    /// Value flag with default.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.values
            .get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Boolean flag presence.
    pub fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name) || self.values.contains_key(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(str::to_string))
    }

    #[test]
    fn values_and_flags() {
        let a = parse("--scale 10 --explain --seed 7");
        assert_eq!(a.get("scale", 1usize), 10);
        assert_eq!(a.get("seed", 0u64), 7);
        assert!(a.has("explain"));
        assert!(!a.has("missing"));
        assert_eq!(a.get("missing", 3usize), 3);
    }

    #[test]
    fn float_values() {
        let a = parse("--size-factor 0.25");
        assert_eq!(a.get("size-factor", 1.0f64), 0.25);
    }
}
