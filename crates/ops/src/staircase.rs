//! Structural (staircase) joins over the pre/size/level encoding.
//!
//! `step_join(axis, C, S)` evaluates one XPath step for a context sequence
//! `C` against a candidate sequence `S` (both pre-sorted within one
//! document), producing *pairs* `(context row, result node)` so the caller
//! can both derive the duplicate-free node result (the paper's staircase
//! join output) and compose fully-joined component relations.
//!
//! All implementations are **zero-investment** with respect to `C` (§2.3):
//! work is `O(|C|·log|S| + |R|)` or better — no preprocessing proportional
//! to `|S|` happens before the first result can be produced, which is what
//! makes cut-off sampling of these operators strictly bounded.

use crate::axis::Axis;
use crate::cost::Cost;
use crate::cutoff::JoinOut;
use rox_xmldb::{Document, NodeKind, Pre};

/// Evaluate `axis::S` for every context node, stopping once `limit` pairs
/// have been produced (cut-off execution, §2.3). Produced pairs carry the
/// context node's *position* in `ctx` as their row id — the densely
/// increasing row identifier the reduction factor relies on. `ctx` must be
/// sorted on pre (duplicates allowed); `cands` must be sorted,
/// duplicate-free, and pre-filtered by the step's node test
/// (element-index / value-index lookups produce exactly this shape).
pub fn step_join(
    doc: &Document,
    axis: Axis,
    ctx: &[Pre],
    cands: &[Pre],
    limit: Option<usize>,
    cost: &mut Cost,
) -> JoinOut<Pre> {
    debug_assert!(
        ctx.windows(2).all(|w| w[0] <= w[1]),
        "context not sorted on pre"
    );
    debug_assert!(
        cands.windows(2).all(|w| w[0] < w[1]),
        "candidates not sorted/unique"
    );
    let mut out = JoinOut::with_limit(ctx.len(), limit);
    let limit = limit.unwrap_or(usize::MAX);
    'outer: for (row, &c) in ctx.iter().enumerate() {
        let row = row as u32;
        cost.charge_in(1);
        match axis {
            Axis::Descendant | Axis::DescendantOrSelf => {
                let lo = if axis == Axis::Descendant { c + 1 } else { c };
                let hi = doc.post(c);
                cost.charge_probe(1);
                let start = cands.partition_point(|&s| s < lo);
                for &s in &cands[start..] {
                    if s > hi {
                        break;
                    }
                    // The descendant axes exclude attribute nodes even
                    // though they fall inside the pre range.
                    if doc.kind(s) == NodeKind::Attribute {
                        continue;
                    }
                    if out.emit(row, s, limit, cost) {
                        break 'outer;
                    }
                }
            }
            Axis::Child => {
                for s in doc.children(c) {
                    cost.charge_probe(1);
                    if cands.binary_search(&s).is_ok() && out.emit(row, s, limit, cost) {
                        break 'outer;
                    }
                }
            }
            Axis::Attribute => {
                for s in doc.attributes(c) {
                    cost.charge_probe(1);
                    if cands.binary_search(&s).is_ok() && out.emit(row, s, limit, cost) {
                        break 'outer;
                    }
                }
            }
            Axis::Parent => {
                if c != 0 {
                    let p = doc.parent(c);
                    cost.charge_probe(1);
                    if cands.binary_search(&p).is_ok() && out.emit(row, p, limit, cost) {
                        break 'outer;
                    }
                }
            }
            Axis::Ancestor | Axis::AncestorOrSelf => {
                let mut cur = c;
                if axis == Axis::AncestorOrSelf {
                    cost.charge_probe(1);
                    if cands.binary_search(&cur).is_ok() && out.emit(row, cur, limit, cost) {
                        break 'outer;
                    }
                }
                while cur != 0 {
                    cur = doc.parent(cur);
                    cost.charge_probe(1);
                    if cands.binary_search(&cur).is_ok() && out.emit(row, cur, limit, cost) {
                        break 'outer;
                    }
                    if cur == 0 {
                        break;
                    }
                }
            }
            Axis::Following => {
                let hi = doc.post(c);
                cost.charge_probe(1);
                let start = cands.partition_point(|&s| s <= hi);
                for &s in &cands[start..] {
                    if doc.kind(s) == NodeKind::Attribute {
                        continue;
                    }
                    if out.emit(row, s, limit, cost) {
                        break 'outer;
                    }
                }
            }
            Axis::Preceding => {
                cost.charge_probe(1);
                let end = cands.partition_point(|&s| s < c);
                for &s in &cands[..end] {
                    // Exclude ancestors (whose subtree contains c) and
                    // attribute nodes.
                    if doc.post(s) >= c || doc.kind(s) == NodeKind::Attribute {
                        continue;
                    }
                    if out.emit(row, s, limit, cost) {
                        break 'outer;
                    }
                }
            }
            Axis::FollowingSibling | Axis::PrecedingSibling => {
                if c == 0 {
                    continue;
                }
                let p = doc.parent(c);
                for s in doc.children(p) {
                    let keep = if axis == Axis::FollowingSibling {
                        s > c
                    } else {
                        s < c
                    };
                    if !keep {
                        continue;
                    }
                    cost.charge_probe(1);
                    if cands.binary_search(&s).is_ok() && out.emit(row, s, limit, cost) {
                        break 'outer;
                    }
                }
            }
            Axis::SelfAxis => {
                cost.charge_probe(1);
                if cands.binary_search(&c).is_ok() && out.emit(row, c, limit, cost) {
                    break 'outer;
                }
            }
        }
        out.ctx_done(row);
    }
    out
}

/// Reference (naive) axis semantics used by the property tests: enumerate
/// every node of the document and decide membership per the XPath data
/// model. O(|C|·|D|) — never used by the engine itself.
pub fn naive_axis(doc: &Document, axis: Axis, c: Pre, s: Pre) -> bool {
    let anc = |a: Pre, d: Pre| doc.is_ancestor(a, d);
    let s_attr = doc.kind(s) == NodeKind::Attribute;
    match axis {
        Axis::Child => !s_attr && doc.parent(s) == c && s != c,
        Axis::Attribute => s_attr && doc.parent(s) == c,
        Axis::Descendant => !s_attr && anc(c, s),
        Axis::DescendantOrSelf => !s_attr && (s == c || anc(c, s)),
        Axis::Parent => c != 0 && doc.parent(c) == s,
        Axis::Ancestor => anc(s, c),
        Axis::AncestorOrSelf => s == c || anc(s, c),
        Axis::Following => !s_attr && s > doc.post(c),
        Axis::Preceding => !s_attr && doc.post(s) < c,
        // The root is its own parent in the encoding, so exclude it
        // explicitly: it is nobody's sibling.
        Axis::FollowingSibling => {
            c != 0 && s != 0 && s != c && !s_attr && doc.parent(s) == doc.parent(c) && s > c
        }
        Axis::PrecedingSibling => {
            c != 0 && s != 0 && s != c && !s_attr && doc.parent(s) == doc.parent(c) && s < c
        }
        Axis::SelfAxis => s == c,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axis::NodeTest;
    use rox_index::ElementIndex;
    use rox_xmldb::parse_document;

    const DOC: &str = r#"<site><people><person id="p1"><name>a</name></person><person id="p2"><name>b</name></person></people><auctions><auction><bidder><ref/></bidder><bidder><ref/></bidder></auction><auction><bidder><ref/></bidder></auction></auctions></site>"#;

    fn setup() -> (std::sync::Arc<rox_xmldb::Document>, ElementIndex) {
        let d = parse_document("t.xml", DOC).unwrap();
        let idx = ElementIndex::build(&d);
        (d, idx)
    }

    fn run(d: &rox_xmldb::Document, axis: Axis, ctx: &[Pre], cands: &[Pre]) -> Vec<(u32, Pre)> {
        let mut cost = Cost::new();
        step_join(d, axis, ctx, cands, None, &mut cost).pairs
    }

    #[test]
    fn descendant_matches_naive() {
        let (d, idx) = setup();
        let bidder = d.interner().get("bidder").unwrap();
        let cands = idx.lookup(bidder);
        let pairs = run(&d, Axis::Descendant, &[0], cands);
        assert_eq!(pairs.len(), 3);
        for (_, s) in &pairs {
            assert!(naive_axis(&d, Axis::Descendant, 0, *s));
        }
    }

    #[test]
    fn child_only_direct_children() {
        let (d, idx) = setup();
        let auction = d.interner().get("auction").unwrap();
        let auctions_el = idx.lookup(d.interner().get("auctions").unwrap())[0];
        let pairs = run(&d, Axis::Child, &[auctions_el], idx.lookup(auction));
        assert_eq!(pairs.len(), 2);
    }

    #[test]
    fn attribute_axis_finds_attrs() {
        let (d, idx) = setup();
        let person = d.interner().get("person").unwrap();
        let persons = idx.lookup(person).to_vec();
        let attrs = idx.attributes().to_vec();
        let pairs = run(&d, Axis::Attribute, &persons, &attrs);
        assert_eq!(pairs.len(), 2);
        for (_, a) in pairs {
            assert_eq!(d.kind(a), NodeKind::Attribute);
        }
    }

    #[test]
    fn ancestor_walks_to_root() {
        let (d, idx) = setup();
        let refs = idx.lookup(d.interner().get("ref").unwrap()).to_vec();
        let elems = idx.elements().to_vec();
        let pairs = run(&d, Axis::Ancestor, &refs, &elems);
        // Each ref has ancestors: bidder, auction, auctions, site = 4.
        assert_eq!(pairs.len(), refs.len() * 4);
    }

    #[test]
    fn following_and_preceding_partition() {
        let (d, idx) = setup();
        let person = idx.lookup(d.interner().get("person").unwrap()).to_vec();
        let elems = idx.elements().to_vec();
        let c = person[0];
        let foll = run(&d, Axis::Following, &[c], &elems);
        let prec = run(&d, Axis::Preceding, &[c], &elems);
        for (_, s) in &foll {
            assert!(naive_axis(&d, Axis::Following, c, *s));
        }
        for (_, s) in &prec {
            assert!(naive_axis(&d, Axis::Preceding, c, *s));
        }
        // person[0] has no preceding elements (only ancestors before it).
        assert!(prec.is_empty());
        assert!(!foll.is_empty());
    }

    #[test]
    fn siblings() {
        let (d, idx) = setup();
        let person = idx.lookup(d.interner().get("person").unwrap()).to_vec();
        let folls = run(&d, Axis::FollowingSibling, &[person[0]], &person);
        assert_eq!(folls, vec![(0, person[1])]);
        let precs = run(&d, Axis::PrecedingSibling, &[person[1]], &person);
        assert_eq!(precs, vec![(0, person[0])]);
    }

    #[test]
    fn parent_and_self() {
        let (d, idx) = setup();
        let name = idx.lookup(d.interner().get("name").unwrap()).to_vec();
        let person = idx.lookup(d.interner().get("person").unwrap()).to_vec();
        let pairs = run(&d, Axis::Parent, &name, &person);
        assert_eq!(pairs.len(), 2);
        let selfs = run(&d, Axis::SelfAxis, &person, &person);
        assert_eq!(selfs.len(), 2);
    }

    #[test]
    fn cutoff_truncates_and_extrapolates() {
        let (d, idx) = setup();
        let bidder = idx.lookup(d.interner().get("bidder").unwrap()).to_vec();
        // Context: the two auction elements -> 3 bidder pairs total.
        let auction = idx.lookup(d.interner().get("auction").unwrap()).to_vec();
        let mut cost = Cost::new();
        let out = step_join(&d, Axis::Descendant, &auction, &bidder, Some(2), &mut cost);
        assert!(out.truncated);
        assert_eq!(out.pairs.len(), 2);
        // First auction (row 0) produced both pairs before the cut-off:
        // f = 1/2 processed, estimate = 2 / (1/2) = 4 (true value 3).
        let est = out.estimate();
        assert!((3.0..=4.5).contains(&est), "est = {est}");
    }

    #[test]
    fn node_test_prefilter_equivalence() {
        // Using a name-filtered candidate list is the same as filtering after.
        let (d, idx) = setup();
        let bidder_sym = d.interner().get("bidder").unwrap();
        let all = idx.elements().to_vec();
        let pairs_all = run(&d, Axis::Descendant, &[0], &all);
        let test = NodeTest::element(bidder_sym);
        let filtered: Vec<_> = pairs_all
            .into_iter()
            .filter(|(_, s)| test.matches(&d, *s))
            .collect();
        let direct = run(&d, Axis::Descendant, &[0], idx.lookup(bidder_sym));
        assert_eq!(filtered, direct);
    }
}
