//! Guarded-replay benchmark binary: no-drift revalidation overhead vs the
//! pure plan replay, and drifted-replay (detect + demote + re-optimize)
//! latency vs blind stale replay vs fresh optimization. Writes the
//! machine-readable `BENCH_revalidation.json` consumed by CI.
//!
//! ```text
//! cargo run --release -p rox-bench --bin bench_revalidation -- \
//!     [--smoke] [--out BENCH_revalidation.json] [--persons 3000] \
//!     [--items 2500] [--auctions 2500] [--inflate 4] [--tau 100] \
//!     [--repeats 3]
//! ```

use rox_bench::args::Args;
use rox_bench::revalidation::{self, RevalidationBenchConfig};

fn main() {
    let args = Args::from_env();
    let mut cfg = if args.has("smoke") {
        RevalidationBenchConfig::smoke()
    } else {
        RevalidationBenchConfig::default()
    };
    cfg.xmark.persons = args.get("persons", cfg.xmark.persons);
    cfg.xmark.items = args.get("items", cfg.xmark.items);
    cfg.xmark.auctions = args.get("auctions", cfg.xmark.auctions);
    cfg.inflate = args.get("inflate", cfg.inflate);
    cfg.tau = args.get("tau", cfg.tau);
    cfg.repeats = args.get("repeats", cfg.repeats);
    let out_path = args.get("out", "BENCH_revalidation.json".to_string());

    println!(
        "plan revalidation bench — XMark persons={} items={} auctions={}, drift ×{}, τ={}",
        cfg.xmark.persons, cfg.xmark.items, cfg.xmark.auctions, cfg.inflate, cfg.tau
    );
    let r = revalidation::run(&cfg);
    print!("{}", revalidation::render(&r));

    let json = revalidation::to_json(&cfg, &r);
    std::fs::write(&out_path, &json).expect("write BENCH_revalidation.json");
    println!("\nwrote {out_path}");
}
