#![warn(missing_docs)]

//! # rox-xmldb — relational XML storage substrate
//!
//! This crate reimplements the storage layer the ROX paper (SIGMOD 2009)
//! relies on: MonetDB/XQuery-style *shredded* XML. Every XML node becomes a
//! relational tuple in a columnar node table using the range-based
//! **pre/size/level** encoding:
//!
//! * `pre`    — preorder rank (position of the opening tag), the node id;
//! * `size`   — number of descendants, so `post = pre + size`;
//! * `level`  — depth below the virtual document root;
//! * `parent` — pre rank of the parent (stored explicitly so that
//!   `parent`/sibling staircase joins run in O(|C|), matching Table 1 of the
//!   paper).
//!
//! A node `d` is a descendant of `c` iff `c.pre < d.pre <= c.pre + c.size`.
//! Attributes are stored as regular tuples (kind [`NodeKind::Attribute`])
//! immediately after their owner element in preorder with `size = 0`, which
//! keeps the containment test uniform across all node kinds.
//!
//! The crate ships a hand-written, dependency-free XML parser
//! ([`parser`]), the shredder/builder ([`doc`]), a serializer
//! ([`serialize`]) and a multi-document [`catalog`] (XQuery's `fn:doc(url)`
//! maps to catalog lookup at *run-time*, one of the paper's motivations for
//! run-time optimization).

pub mod catalog;
pub mod doc;
pub mod interner;
pub mod node;
pub mod parser;
pub mod serialize;
pub mod stats;
pub mod value;

pub use catalog::{Catalog, DocId};
pub use doc::{Document, DocumentBuilder, DocumentColumns};
pub use interner::{Interner, Symbol};
pub use node::{NodeId, NodeKind, Pre};
pub use parser::{parse_document, ParseError};
pub use serialize::{serialize_document, serialize_subtree_string};
pub use value::{CmpOp, Constant, ValuePredicate};
