//! Synthetic DBLP-like data (the quantitative workload of §4).
//!
//! The paper splits the real DBLP dump into ~4500 per-venue documents and
//! selects 23 "representative" venues from 5 research areas (Table 3). We
//! regenerate documents with exactly that venue/area/author-tag inventory,
//! with the property the experiments rely on: **authors publish mostly
//! within their research area(s)**, so the author-value join selectivity
//! between two same-area venues is much higher (correlated) than between
//! areas. Dual-area venues (CANS, BIOKDD, WSDM, CIKM) bridge their two
//! pools, exactly like the real data.
//!
//! Scaling (`×10`, `×100`) replicates every article with a serial-number
//! suffix on author names and titles, preserving the distribution and
//! correlation while avoiding new cross-replica joins — the paper's
//! scheme (§4.1).

use rand::prelude::*;
use rand::rngs::StdRng;
use rox_xmldb::{Catalog, DocId, NodeKind};
use std::collections::HashMap;
use std::sync::Arc;

/// The five research areas of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Area {
    /// Artificial intelligence.
    AI,
    /// Bioinformatics.
    BI,
    /// Data mining.
    DM,
    /// Information retrieval.
    IR,
    /// Databases.
    DB,
}

impl Area {
    /// All areas.
    pub const ALL: [Area; 5] = [Area::AI, Area::BI, Area::DM, Area::IR, Area::DB];

    /// Short label.
    pub fn label(self) -> &'static str {
        match self {
            Area::AI => "AI",
            Area::BI => "BI",
            Area::DM => "DM",
            Area::IR => "IR",
            Area::DB => "DB",
        }
    }
}

/// One venue of Table 3.
#[derive(Debug, Clone)]
pub struct Venue {
    /// Journal / conference name.
    pub name: &'static str,
    /// Primary area (the grouping key for the 2:2 / 3:1 / 4:0 clusters).
    pub primary: Area,
    /// Secondary area for dual-area venues.
    pub secondary: Option<Area>,
    /// Author tags at scale ×1 (Table 3's "# author tags ×1" column).
    pub author_tags: usize,
}

/// The 23 venues of Table 3, in the paper's order.
pub const VENUES: [Venue; 23] = [
    Venue {
        name: "Fuzzy Logic in AI",
        primary: Area::AI,
        secondary: None,
        author_tags: 62,
    },
    Venue {
        name: "AI in Medicine",
        primary: Area::AI,
        secondary: None,
        author_tags: 2264,
    },
    Venue {
        name: "AAAI",
        primary: Area::AI,
        secondary: None,
        author_tags: 6832,
    },
    Venue {
        name: "CANS",
        primary: Area::AI,
        secondary: Some(Area::BI),
        author_tags: 214,
    },
    Venue {
        name: "BMC Bioinform.",
        primary: Area::BI,
        secondary: None,
        author_tags: 3547,
    },
    Venue {
        name: "Bioinformatics",
        primary: Area::BI,
        secondary: None,
        author_tags: 15019,
    },
    Venue {
        name: "BIOKDD",
        primary: Area::DM,
        secondary: Some(Area::BI),
        author_tags: 139,
    },
    Venue {
        name: "MLDM",
        primary: Area::DM,
        secondary: None,
        author_tags: 575,
    },
    Venue {
        name: "ICDM",
        primary: Area::DM,
        secondary: None,
        author_tags: 2205,
    },
    Venue {
        name: "KDD",
        primary: Area::DM,
        secondary: None,
        author_tags: 3201,
    },
    Venue {
        name: "WSDM",
        primary: Area::DM,
        secondary: Some(Area::IR),
        author_tags: 95,
    },
    Venue {
        name: "INEX",
        primary: Area::IR,
        secondary: None,
        author_tags: 342,
    },
    Venue {
        name: "SPIRE",
        primary: Area::IR,
        secondary: None,
        author_tags: 724,
    },
    Venue {
        name: "TREC",
        primary: Area::IR,
        secondary: None,
        author_tags: 2541,
    },
    Venue {
        name: "SIGIR",
        primary: Area::IR,
        secondary: None,
        author_tags: 4584,
    },
    Venue {
        name: "ICME",
        primary: Area::IR,
        secondary: None,
        author_tags: 5757,
    },
    Venue {
        name: "ICIP",
        primary: Area::IR,
        secondary: None,
        author_tags: 7935,
    },
    Venue {
        name: "CIKM",
        primary: Area::DB,
        secondary: Some(Area::IR),
        author_tags: 3684,
    },
    Venue {
        name: "ADBIS",
        primary: Area::DB,
        secondary: None,
        author_tags: 947,
    },
    Venue {
        name: "EDBT",
        primary: Area::DB,
        secondary: None,
        author_tags: 1340,
    },
    Venue {
        name: "SIGMOD",
        primary: Area::DB,
        secondary: None,
        author_tags: 5912,
    },
    Venue {
        name: "ICDE",
        primary: Area::DB,
        secondary: None,
        author_tags: 6169,
    },
    Venue {
        name: "VLDB",
        primary: Area::DB,
        secondary: None,
        author_tags: 6865,
    },
];

/// Index of a venue by name (panics on unknown names — test helper).
pub fn venue_index(name: &str) -> usize {
    VENUES
        .iter()
        .position(|v| v.name == name)
        .unwrap_or_else(|| panic!("unknown venue {name}"))
}

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct DblpConfig {
    /// Replication factor n (×1, ×10, ×100 in the paper).
    pub scale: usize,
    /// Multiplier on Table 3's author-tag counts (< 1.0 shrinks every
    /// document proportionally — used to keep CI-sized runs fast while
    /// preserving relative sizes).
    pub size_factor: f64,
    /// Average authors per article.
    pub authors_per_article: f64,
    /// Average articles per author within an area pool (drives pool
    /// sizes; higher ⇒ denser same-area overlap).
    pub papers_per_author: f64,
    /// Probability an author slot is filled from a random foreign area
    /// (background cross-area noise).
    pub cross_area_noise: f64,
    /// Number of "global" authors shared by *all* area pools — the
    /// prolific people who publish everywhere in real DBLP. They make
    /// cross-area (2:2, 3:1) combinations produce small-but-non-empty
    /// results, while within-area overlap stays dominant.
    pub global_authors: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DblpConfig {
    fn default() -> Self {
        DblpConfig {
            scale: 1,
            size_factor: 1.0,
            authors_per_article: 2.5,
            papers_per_author: 4.0,
            cross_area_noise: 0.02,
            global_authors: 12,
            seed: 1975, // DBLP's founding era
        }
    }
}

impl DblpConfig {
    /// A shrunk configuration for unit tests and quick benches.
    pub fn tiny() -> Self {
        DblpConfig {
            size_factor: 0.03,
            ..Default::default()
        }
    }
}

/// The generated corpus: 23 documents plus their descriptors.
pub struct DblpCorpus {
    /// Document ids, parallel to [`VENUES`].
    pub docs: Vec<DocId>,
    /// Author tag counts actually generated (×scale), parallel to venues.
    pub author_tags: Vec<usize>,
}

/// URI under which venue `i` is registered.
pub fn venue_uri(i: usize) -> String {
    format!("dblp/{}.xml", VENUES[i].name.replace([' ', '.'], "_"))
}

/// Generate all 23 venue documents into `catalog`.
pub fn generate_dblp(catalog: &Arc<Catalog>, cfg: &DblpConfig) -> DblpCorpus {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Area pools: authors named "<area>_a<i>"; pool size derived from the
    // area's total author tags.
    let mut area_tags: HashMap<Area, f64> = HashMap::new();
    for v in &VENUES {
        let tags = v.author_tags as f64 * cfg.size_factor;
        match v.secondary {
            None => *area_tags.entry(v.primary).or_default() += tags,
            Some(sec) => {
                *area_tags.entry(v.primary).or_default() += tags / 2.0;
                *area_tags.entry(sec).or_default() += tags / 2.0;
            }
        }
    }
    let pools: HashMap<Area, Vec<String>> = Area::ALL
        .iter()
        .map(|&a| {
            let tags = area_tags.get(&a).copied().unwrap_or(0.0);
            let size = ((tags / cfg.papers_per_author).ceil() as usize).max(4);
            // Spread the shared global authors through the pool's skewed
            // head region so they publish regularly but don't dominate.
            let names: Vec<String> = (0..size)
                .map(|i| {
                    if cfg.global_authors > 0 && i % 7 == 3 && i / 7 < cfg.global_authors {
                        format!("GLOBAL_a{}", i / 7)
                    } else {
                        format!("{}_a{}", a.label(), i)
                    }
                })
                .collect();
            (a, names)
        })
        .collect();

    let mut docs = Vec::new();
    let mut author_tags = Vec::new();
    for (vi, venue) in VENUES.iter().enumerate() {
        let target_tags = ((venue.author_tags as f64 * cfg.size_factor).round() as usize).max(2);
        let articles = ((target_tags as f64 / cfg.authors_per_article).ceil() as usize).max(1);
        // Build article author lists at scale ×1 first.
        let mut article_authors: Vec<Vec<String>> = Vec::with_capacity(articles);
        let mut generated = 0usize;
        for _ in 0..articles {
            let want = if generated >= target_tags {
                1
            } else {
                // 1..=4 with mean ≈ authors_per_article.
                let r: f64 = rng.random();
                1 + (r * (2.0 * (cfg.authors_per_article - 1.0))).round() as usize
            };
            let mut names: Vec<String> = Vec::with_capacity(want);
            while names.len() < want {
                let area = if rng.random_bool(cfg.cross_area_noise) {
                    *Area::ALL.choose(&mut rng).unwrap()
                } else if let Some(sec) = venue.secondary {
                    if rng.random_bool(0.5) {
                        venue.primary
                    } else {
                        sec
                    }
                } else {
                    venue.primary
                };
                let pool = &pools[&area];
                // Quadratic skew: prolific authors (low index) publish more,
                // giving the heavy-tailed same-area overlap of real DBLP.
                let u: f64 = rng.random();
                let idx = ((u * u) * pool.len() as f64) as usize;
                let name = pool[idx.min(pool.len() - 1)].clone();
                if !names.contains(&name) {
                    names.push(name);
                }
            }
            generated += names.len();
            article_authors.push(names);
        }

        // Emit the document, replicating each article `scale` times with
        // per-replica suffixes.
        let mut b = catalog.builder(&venue_uri(vi));
        b.start_element("proceedings");
        b.attribute("key", venue.name);
        let mut tags = 0usize;
        for (ai, authors) in article_authors.iter().enumerate() {
            for rep in 0..cfg.scale {
                b.start_element("article");
                for a in authors {
                    let name = if rep == 0 {
                        a.clone()
                    } else {
                        format!("{a}#{rep}")
                    };
                    b.leaf("author", &name);
                    tags += 1;
                }
                let title = if rep == 0 {
                    format!("{} paper {}", venue.name, ai)
                } else {
                    format!("{} paper {}#{}", venue.name, ai, rep)
                };
                b.leaf("title", &title);
                b.leaf("year", &format!("{}", 1990 + (ai % 20)));
                b.end_element();
            }
        }
        b.end_element();
        let id = catalog.insert(&venue_uri(vi), Arc::new(b.finish(DocId(0))));
        docs.push(id);
        author_tags.push(tags);
    }
    DblpCorpus { docs, author_tags }
}

/// The 4-way author query template of §4.1 over venues `d` (by index).
pub fn dblp_query(d: &[usize; 4]) -> String {
    format!(
        r#"
        for $a1 in doc("{0}")//author,
            $a2 in doc("{1}")//author,
            $a3 in doc("{2}")//author,
            $a4 in doc("{3}")//author
        where $a1/text() = $a2/text() and
              $a1/text() = $a3/text() and
              $a1/text() = $a4/text()
        return $a1
    "#,
        venue_uri(d[0]),
        venue_uri(d[1]),
        venue_uri(d[2]),
        venue_uri(d[3])
    )
}

/// Author-value multiset per document: value symbol → occurrence count.
fn author_histogram(catalog: &Catalog, doc: DocId) -> (HashMap<rox_xmldb::Symbol, u64>, u64) {
    let d = catalog.doc(doc);
    let author = d.interner().get("author");
    let mut hist: HashMap<rox_xmldb::Symbol, u64> = HashMap::new();
    let mut total = 0u64;
    if let Some(author) = author {
        for pre in 0..d.node_count() as u32 {
            if d.kind(pre) == NodeKind::Text && d.name(d.parent(pre)) == author {
                *hist.entry(d.value(pre)).or_default() += 1;
                total += 1;
            }
        }
    }
    (hist, total)
}

/// Exact author-join cardinality `|dᵢ ⋈ dⱼ|` (node pairs with equal
/// author text).
pub fn join_size(catalog: &Catalog, a: DocId, b: DocId) -> u64 {
    let (ha, _) = author_histogram(catalog, a);
    let (hb, _) = author_histogram(catalog, b);
    let (small, large) = if ha.len() <= hb.len() {
        (&ha, &hb)
    } else {
        (&hb, &ha)
    };
    small
        .iter()
        .filter_map(|(sym, ca)| large.get(sym).map(|cb| ca * cb))
        .sum()
}

/// The correlation measure `C` of §4.3 for a 4-document combination: the
/// variance of the pairwise join selectivities
/// `js(dᵢ,dⱼ) = 100·|dᵢ⋈dⱼ| / max(|dᵢ|,|dⱼ|)`.
pub fn correlation(catalog: &Catalog, docs: &[DocId]) -> f64 {
    let hists: Vec<(HashMap<rox_xmldb::Symbol, u64>, u64)> =
        docs.iter().map(|&d| author_histogram(catalog, d)).collect();
    let mut js = Vec::new();
    for i in 0..docs.len() {
        for j in i + 1..docs.len() {
            let (hi, ti) = &hists[i];
            let (hj, tj) = &hists[j];
            let (small, large) = if hi.len() <= hj.len() {
                (hi, hj)
            } else {
                (hj, hi)
            };
            let joined: u64 = small
                .iter()
                .filter_map(|(sym, ca)| large.get(sym).map(|cb| ca * cb))
                .sum();
            let denom = (*ti.max(tj)).max(1);
            js.push(joined as f64 * 100.0 / denom as f64);
        }
    }
    let mean = js.iter().sum::<f64>() / js.len() as f64;
    js.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / js.len() as f64
}

/// The area-distribution group ("2:2", "3:1" or "4:0") of a 4-venue
/// combination, by primary area.
pub fn group_of(combo: &[usize; 4]) -> &'static str {
    let mut counts: HashMap<Area, usize> = HashMap::new();
    for &i in combo {
        *counts.entry(VENUES[i].primary).or_default() += 1;
    }
    let mut sizes: Vec<usize> = counts.values().copied().collect();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    match sizes.as_slice() {
        [4] => "4:0",
        [3, 1] => "3:1",
        [2, 2] => "2:2",
        _ => "other",
    }
}

/// All 4-venue combinations falling into the paper's three groups.
pub fn grouped_combinations() -> Vec<([usize; 4], &'static str)> {
    let n = VENUES.len();
    let mut out = Vec::new();
    for a in 0..n {
        for b in a + 1..n {
            for c in b + 1..n {
                for d in c + 1..n {
                    let combo = [a, b, c, d];
                    let g = group_of(&combo);
                    if g != "other" {
                        out.push((combo, g));
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> (Arc<Catalog>, DblpCorpus) {
        let cat = Arc::new(Catalog::new());
        let corpus = generate_dblp(&cat, &DblpConfig::tiny());
        (cat, corpus)
    }

    #[test]
    fn generates_23_valid_documents() {
        let (cat, corpus) = corpus();
        assert_eq!(corpus.docs.len(), 23);
        for &d in &corpus.docs {
            cat.doc(d).check_invariants().unwrap();
        }
    }

    #[test]
    fn author_tag_counts_track_table3() {
        let (_cat, corpus) = corpus();
        let cfg = DblpConfig::tiny();
        for (i, v) in VENUES.iter().enumerate() {
            let target = (v.author_tags as f64 * cfg.size_factor).round().max(2.0);
            let got = corpus.author_tags[i] as f64;
            // Article granularity makes tiny venues overshoot; allow an
            // absolute slack of one article's worth of authors.
            assert!(
                got >= target * 0.7 - 4.0 && got <= target * 1.6 + 4.0,
                "{}: target {target}, got {got}",
                v.name
            );
        }
        // Relative order preserved: VLDB ≫ ADBIS.
        assert!(corpus.author_tags[venue_index("VLDB")] > corpus.author_tags[venue_index("ADBIS")]);
    }

    #[test]
    fn same_area_selectivity_exceeds_cross_area() {
        let (cat, corpus) = corpus();
        // DB venues: SIGMOD, ICDE, VLDB; IR venue: ICIP.
        let sigmod = corpus.docs[venue_index("SIGMOD")];
        let icde = corpus.docs[venue_index("ICDE")];
        let icip = corpus.docs[venue_index("ICIP")];
        let within = join_size(&cat, sigmod, icde);
        let across = join_size(&cat, sigmod, icip);
        assert!(
            within > across * 3,
            "within-area join ({within}) must dominate cross-area ({across})"
        );
    }

    #[test]
    fn scaling_multiplies_tags_not_selectivity() {
        let cat1 = Arc::new(Catalog::new());
        let c1 = generate_dblp(&cat1, &DblpConfig::tiny());
        let cat10 = Arc::new(Catalog::new());
        let c10 = generate_dblp(
            &cat10,
            &DblpConfig {
                scale: 10,
                ..DblpConfig::tiny()
            },
        );
        let vi = venue_index("ADBIS");
        assert_eq!(c10.author_tags[vi], 10 * c1.author_tags[vi]);
        // Replicas only join within their replica (suffixing), so join
        // sizes scale linearly, not quadratically.
        let e1 = venue_index("EDBT");
        let j1 = join_size(&cat1, c1.docs[vi], c1.docs[e1]);
        let j10 = join_size(&cat10, c10.docs[vi], c10.docs[e1]);
        assert_eq!(j10, 10 * j1);
    }

    #[test]
    fn groups_partition_combinations() {
        let combos = grouped_combinations();
        // Of the C(23,4) = 8855 raw combinations, only those with the
        // 2:2, 3:1 or 4:0 primary-area distribution survive — spreads like
        // 2:1:1 fall outside the paper's grouping and are dropped.
        assert!(combos.len() < 8855);
        let g22 = combos.iter().filter(|(_, g)| *g == "2:2").count();
        let g31 = combos.iter().filter(|(_, g)| *g == "3:1").count();
        let g40 = combos.iter().filter(|(_, g)| *g == "4:0").count();
        assert!(g22 > 0 && g31 > 0 && g40 > 0);
        assert_eq!(g22 + g31 + g40, combos.len());
        // 4:0 needs 4 venues from one primary area. Primary counts:
        // AI=4, BI=2, DM=5, IR=6, DB=6 → C(4,4)+C(5,4)+C(6,4)+C(6,4) = 36.
        assert_eq!(g40, 36);
    }

    #[test]
    fn group_of_examples() {
        // VLDB, ICDE, ADBIS (DB) + ICIP (IR) = 3:1 — the Fig. 5 setup.
        let combo = [
            venue_index("VLDB"),
            venue_index("ICDE"),
            venue_index("ICIP"),
            venue_index("ADBIS"),
        ];
        assert_eq!(group_of(&combo), "3:1");
        let four_db = [
            venue_index("VLDB"),
            venue_index("ICDE"),
            venue_index("SIGMOD"),
            venue_index("EDBT"),
        ];
        assert_eq!(group_of(&four_db), "4:0");
    }

    #[test]
    fn global_authors_make_cross_area_joins_nonempty() {
        let (cat, corpus) = corpus();
        // A 2:2 combination across DB and IR should still intersect.
        let combo = [
            venue_index("VLDB"),
            venue_index("SIGMOD"),
            venue_index("ICIP"),
            venue_index("SIGIR"),
        ];
        assert_eq!(group_of(&combo), "2:2");
        // Pairwise cross-area joins non-empty thanks to global authors.
        let vldb = corpus.docs[combo[0]];
        let icip = corpus.docs[combo[2]];
        assert!(
            join_size(&cat, vldb, icip) > 0,
            "cross-area join must not be empty"
        );
    }

    #[test]
    fn correlation_is_higher_for_correlated_groups() {
        let (cat, corpus) = corpus();
        let db4: Vec<DocId> = ["VLDB", "ICDE", "SIGMOD", "EDBT"]
            .iter()
            .map(|n| corpus.docs[venue_index(n)])
            .collect();
        let mixed: Vec<DocId> = ["VLDB", "ICIP", "AAAI", "Bioinformatics"]
            .iter()
            .map(|n| corpus.docs[venue_index(n)])
            .collect();
        let c_db = correlation(&cat, &db4);
        let c_mixed = correlation(&cat, &mixed);
        assert!(c_db > c_mixed, "4:0 correlation {c_db} vs mixed {c_mixed}");
    }

    #[test]
    fn query_template_compiles() {
        let q = dblp_query(&[0, 1, 2, 3]);
        let g = rox_joingraph::compile_query(&q).unwrap();
        assert_eq!(g.vertex_count(), 12);
    }
}
