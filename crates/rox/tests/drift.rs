//! Drift-injection harness for guarded plan replay.
//!
//! The [`DriftInjector`] fixture mutates a catalog *underneath* a warm
//! [`RoxEngine`] through the incremental-update path (`reindex_document`:
//! derived data refreshed, cached plans kept) — exactly the situation the
//! replay guard exists for. Three injection modes:
//!
//! * **document swap** — replace a document's content wholesale;
//! * **value-skew rewrite** — serialize the live document, transform the
//!   text, and reload it (content-addressed drift);
//! * **cardinality inflation** — regenerate an XMark document with scaled
//!   [`XmarkConfig`] knobs (more auctions, more bidders per auction).
//!
//! On top of the fixture: a deterministic correlation-drift test (base
//! cardinalities preserved, joint selectivity inflated ~20×) that must
//! demote **mid-query** and match a fresh optimization bit-for-bit, plus
//! two property tests — zero drift never demotes and stays bit-identical
//! to the pure plan replay (PR-5 behavior), and drifted replays always
//! match a fresh `AlwaysOptimize` run on the drifted catalog, leaving the
//! cache holding the refreshed plan.

use proptest::prelude::*;
use rox_core::{
    run_plan_with_env, run_rox, CheckKind, PlanReuse, RoxEngine, RoxEnv, RoxOptions, RunMode,
};
use rox_datagen::{generate_xmark, XmarkConfig};
use rox_joingraph::JoinGraph;
use rox_ops::revalidation_budget;
use rox_xmldb::{serialize_document, Catalog};
use std::sync::Arc;

/// A warm engine plus controlled ways to drift the data underneath it.
///
/// Every injection goes through [`RoxEngine::reindex_document`]: indexes
/// and base lists are refreshed but cached plans survive, so the next
/// `ReuseValidated` run replays against data the plan was not seeded on —
/// the guard, not the cache key, must catch the drift.
struct DriftInjector {
    engine: RoxEngine,
}

impl DriftInjector {
    /// Engine over a single-document catalog.
    fn new(uri: &str, xml: &str) -> Self {
        let catalog = Arc::new(Catalog::new());
        catalog.load_str(uri, xml).unwrap();
        DriftInjector {
            engine: RoxEngine::new(catalog),
        }
    }

    /// Engine over a generated XMark document, loaded from the shared
    /// fixture snapshot when a previous binary already generated it.
    fn new_xmark(uri: &str, cfg: &XmarkConfig) -> Self {
        DriftInjector {
            engine: RoxEngine::new(rox_datagen::shared_xmark_catalog(uri, cfg)),
        }
    }

    fn engine(&self) -> &RoxEngine {
        &self.engine
    }

    /// Mode 1 — swap the document's content wholesale.
    fn swap_document(&self, uri: &str, xml: &str) {
        self.engine.catalog().load_str(uri, xml).unwrap();
        self.engine.reindex_document(uri);
    }

    /// Mode 2 — value-skew rewrite: serialize the live document, let the
    /// caller transform the text, reload the result.
    fn rewrite(&self, uri: &str, f: impl FnOnce(&str) -> String) {
        let doc = self
            .engine
            .catalog()
            .doc_by_uri(uri)
            .expect("document to rewrite");
        let xml = serialize_document(&doc);
        self.swap_document(uri, &f(&xml));
    }

    /// Mode 3 — cardinality inflation: regenerate the XMark document under
    /// scaled generator knobs.
    fn inflate_xmark(&self, uri: &str, cfg: &XmarkConfig) {
        generate_xmark(self.engine.catalog(), uri, cfg);
        self.engine.reindex_document(uri);
    }
}

fn reuse(seed: u64, tau: usize) -> RoxOptions {
    RoxOptions {
        plan_reuse: PlanReuse::ReuseValidated,
        seed,
        tau,
        ..Default::default()
    }
}

/// 30 auctions (every third `cheap`), bidder counts split by class, one
/// `personref` per bidder. Varying only the split moves the *joint*
/// selectivity of `cheap ∘ bidder` while every base cardinality — auctions,
/// cheap flags, bidders, personrefs — stays put.
fn correlated_site(bidders_on_cheap: usize, bidders_on_dear: usize) -> String {
    let mut xml = String::from("<site>");
    for i in 0..30 {
        xml.push_str("<auction>");
        let cheap = i % 3 == 0;
        if cheap {
            xml.push_str("<cheap/>");
        }
        let bidders = if cheap {
            bidders_on_cheap
        } else {
            bidders_on_dear
        };
        for b in 0..bidders {
            xml.push_str(&format!(
                "<bidder><personref person=\"p{}\"/></bidder>",
                b % 7
            ));
        }
        xml.push_str("</auction>");
    }
    for p in 0..7 {
        xml.push_str(&format!("<person id=\"p{p}\"/>"));
    }
    xml.push_str("</site>");
    xml
}

const Q_CHEAP_CHAIN: &str =
    r#"for $a in doc("d.xml")//auction[./cheap], $b in $a/bidder, $p in $b/personref return $p"#;

/// The acceptance test of the issue: a ~20×-skewed replay demotes
/// **mid-query** — the skew is pure correlation, so every pre-execution
/// sampled check passes (base cardinalities are unchanged) and only an
/// *observed* check, after at least one plan edge has executed, can fire.
/// The demoted run's output matches a fresh optimization bit-for-bit.
#[test]
fn correlation_skew_demotes_mid_query_and_matches_fresh_optimization() {
    // Seed: 10 cheap auctions hold 1 bidder each (10 of 210 total);
    // drift: the same 210 bidders, now all 210 under the cheap auctions.
    let inj = DriftInjector::new("d.xml", &correlated_site(1, 10));
    let g = rox_joingraph::compile_query(Q_CHEAP_CHAIN).unwrap();
    let opts = reuse(42, 100);
    let cold = inj.engine().run(&g, opts).unwrap();
    assert_eq!(cold.mode, RunMode::Optimized);

    inj.swap_document("d.xml", &correlated_site(21, 0));
    let drifted = inj.engine().run(&g, opts).unwrap();

    let RunMode::Demoted { at_edge } = drifted.mode else {
        panic!("drifted replay must demote, got {:?}", drifted.mode);
    };
    assert!(
        at_edge >= 1,
        "correlation drift is invisible before execution; demotion must \
         happen mid-query, not at edge 0"
    );
    // The pre-execution sampled checks all passed; the breach was observed.
    let breached: Vec<_> = drifted.spot_checks.iter().filter(|c| c.breached).collect();
    assert_eq!(breached.len(), 1);
    assert_eq!(breached[0].kind, CheckKind::Observed);
    assert!(drifted
        .spot_checks
        .iter()
        .filter(|c| c.kind == CheckKind::SampledWeight)
        .all(|c| !c.breached));

    // Bit-for-bit against a fresh optimizing run on the drifted catalog.
    let fresh = run_rox(
        Arc::clone(inj.engine().catalog()),
        &g,
        RoxOptions {
            seed: opts.seed,
            tau: opts.tau,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(drifted.output, fresh.output);
    assert_eq!(drifted.joined, fresh.joined);

    // Demotion re-seeded the cache; the refreshed plan now revalidates.
    assert_eq!(inj.engine().stats().plan_demotions, 1);
    assert_eq!(inj.engine().stats().cached_plans, 1);
    let rewarm = inj.engine().run(&g, opts).unwrap();
    assert_eq!(rewarm.mode, RunMode::Revalidated);
    assert_eq!(rewarm.output, fresh.output);
}

/// Uniform cardinality inflation is the opposite regime: every base list
/// grows ~10×, so the *sampled* pre-execution checks fire and the plan is
/// demoted before a single stale-plan edge executes.
#[test]
fn cardinality_inflation_breaches_a_sampled_precheck() {
    let tiny = XmarkConfig::tiny();
    let inj = DriftInjector::new_xmark("xmark.xml", &tiny);
    let q = r#"for $o in doc("xmark.xml")//open_auction, $b in $o/bidder, $r in $b/personref return $r"#;
    let g = rox_joingraph::compile_query(q).unwrap();
    let opts = reuse(7, 64);
    inj.engine().run(&g, opts).unwrap();

    // ~10× auctions and ~10× bidders per auction (price_per_bidder ÷ 10).
    let inflated = XmarkConfig {
        auctions: tiny.auctions * 10,
        price_per_bidder: tiny.price_per_bidder / 10.0,
        ..tiny.clone()
    };
    inj.inflate_xmark("xmark.xml", &inflated);

    let drifted = inj.engine().run(&g, opts).unwrap();
    assert_eq!(drifted.mode, RunMode::Demoted { at_edge: 0 });
    assert!(drifted
        .spot_checks
        .iter()
        .any(|c| c.breached && c.kind == CheckKind::SampledWeight));
    let fresh = run_rox(
        Arc::clone(inj.engine().catalog()),
        &g,
        RoxOptions {
            seed: opts.seed,
            tau: opts.tau,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(drifted.output, fresh.output);
}

/// Value-skew rewrite drift: textually rewriting `person` references so
/// the equi-join fans out onto a single hot key inflates the join result
/// without touching any element count.
#[test]
fn value_skew_rewrite_demotes_the_value_join_plan() {
    let inj = DriftInjector::new("d.xml", &correlated_site(3, 3));
    let q = r#"for $r in doc("d.xml")//personref, $p in doc("d.xml")//person
               where $r/@person = $p/@id return $r"#;
    let g = rox_joingraph::compile_query(q).unwrap();
    let opts = reuse(42, 100);
    let cold = inj.engine().run(&g, opts).unwrap();

    // Skew every personref onto p0 and fan the person side out: each of
    // the 90 refs now matches 7 duplicate ids instead of 1 distinct one.
    inj.rewrite("d.xml", |xml| {
        let mut skewed = xml.to_string();
        for p in 1..7 {
            skewed = skewed.replace(&format!("person=\"p{p}\""), "person=\"p0\"");
            skewed = skewed.replace(&format!("id=\"p{p}\""), "id=\"p0\"");
        }
        skewed
    });

    let drifted = inj.engine().run(&g, opts).unwrap();
    assert!(
        matches!(drifted.mode, RunMode::Demoted { .. }),
        "skewed join must demote, got {:?}",
        drifted.mode
    );
    let fresh = run_rox(
        Arc::clone(inj.engine().catalog()),
        &g,
        RoxOptions {
            seed: opts.seed,
            tau: opts.tau,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(drifted.output, fresh.output);
    assert!(drifted.output.len() > cold.output.len());
}

// ---------------------------------------------------------------------
// Property tests
// ---------------------------------------------------------------------

/// Random auction-flavoured document (same family as
/// `proptest_engine.rs`).
fn doc_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec((0u8..5, 0u8..7, any::<bool>()), 1..30).prop_map(|blocks| {
        let mut s = String::from("<site>");
        for (kind, n, flag) in blocks {
            match kind {
                0..=1 => {
                    s.push_str("<auction>");
                    if flag {
                        s.push_str("<cheap/>");
                    }
                    for i in 0..n {
                        s.push_str(&format!(
                            "<bidder><personref person=\"p{}\"/></bidder>",
                            i % 5
                        ));
                    }
                    s.push_str("</auction>");
                }
                2 => {
                    s.push_str(&format!("<person id=\"p{}\"/>", n % 5));
                }
                3 => {
                    s.push_str(&format!("<note>txt{}</note>", n % 4));
                }
                _ => {
                    s.push_str("<auction><cheap/></auction>");
                }
            }
        }
        s.push_str("</site>");
        s
    })
}

const QUERIES: [&str; 3] = [
    r#"for $a in doc("d.xml")//auction, $b in $a/bidder return $b"#,
    r#"for $a in doc("d.xml")//auction[./cheap], $b in $a/bidder, $p in $b/personref return $p"#,
    r#"for $r in doc("d.xml")//personref, $p in doc("d.xml")//person
       where $r/@person = $p/@id return $r"#,
];

/// Zero drift: the guarded replay must be bit-identical — output, joined
/// relation, edge order, edge log (incl. operator choices), exec cost —
/// to the *pure* plan replay of the cached order (the pre-guard PR-5
/// behavior), never demote, and charge at most the spot-check budget on
/// top of it (also bounded by the seeding run's own sampling).
fn check_zero_drift(xml: &str, qi: usize, seed: u64) -> Result<(), String> {
    let catalog = Arc::new(Catalog::new());
    catalog.load_str("d.xml", xml).unwrap();
    let graph: JoinGraph = rox_joingraph::compile_query(QUERIES[qi]).unwrap();
    let engine = RoxEngine::new(Arc::clone(&catalog));
    let opts = reuse(seed, 16);

    let cold = engine.run(&graph, opts).map_err(|e| e.to_string())?;
    let plan = engine.cached_plan(&graph).ok_or("no plan seeded")?;
    // PR-5 oracle: replay the cached order with no guard at all.
    let env = RoxEnv::new(Arc::clone(&catalog), &graph).map_err(|e| e.to_string())?;
    let pure = run_plan_with_env(&env, &graph, &plan.order).map_err(|e| e.to_string())?;

    let warm = engine.run(&graph, opts).map_err(|e| e.to_string())?;
    if warm.mode != RunMode::Revalidated {
        return Err(format!("zero drift must revalidate, got {:?}", warm.mode));
    }
    if warm.spot_checks.iter().any(|c| c.breached) {
        return Err("zero drift produced a breached spot check".into());
    }
    if warm.output != pure.output {
        return Err("guarded output differs from pure replay".into());
    }
    if warm.joined != pure.joined {
        return Err("guarded joined relation differs from pure replay".into());
    }
    if warm.edge_log != pure.edge_log {
        return Err("guarded edge log differs from pure replay".into());
    }
    if warm.exec_cost != pure.cost {
        return Err(format!(
            "guarded exec cost {:?} differs from pure replay {:?}",
            warm.exec_cost, pure.cost
        ));
    }
    if warm.executed_order != cold.executed_order {
        return Err("guarded order differs from the seeding run".into());
    }
    // Overhead: each spot check probes both endpoints at the small fixed
    // REVALIDATE_SPOT_TAU, so the total charge is bounded by the budget
    // the guard grants itself (the cap allows one probe of overshoot —
    // the budget is checked before a probe starts, not during it).
    if warm.sample_cost.total() > 2 * revalidation_budget(opts.tau) {
        return Err(format!(
            "spot checks ({}) blew through the revalidation budget ({})",
            warm.sample_cost.total(),
            revalidation_budget(opts.tau)
        ));
    }
    Ok(())
}

/// Drifted: whatever the guard decides (revalidate a still-accurate plan
/// or demote a stale one), the served output must equal a fresh
/// `AlwaysOptimize` run on the drifted catalog, and after a demotion the
/// cache must end up holding the refreshed plan (served cleanly next).
fn check_drifted(xml: &str, drifted_xml: &str, qi: usize, seed: u64) -> Result<(), String> {
    let inj = DriftInjector::new("d.xml", xml);
    let graph: JoinGraph = rox_joingraph::compile_query(QUERIES[qi]).unwrap();
    let opts = reuse(seed, 16);
    inj.engine().run(&graph, opts).map_err(|e| e.to_string())?;

    inj.swap_document("d.xml", drifted_xml);
    let served = inj.engine().run(&graph, opts).map_err(|e| e.to_string())?;
    let fresh = run_rox(
        Arc::clone(inj.engine().catalog()),
        &graph,
        RoxOptions {
            seed,
            tau: 16,
            ..Default::default()
        },
    )
    .map_err(|e| e.to_string())?;
    if served.output != fresh.output {
        return Err(format!(
            "served output ({:?}) differs from fresh optimization on the \
             drifted catalog",
            served.mode
        ));
    }
    if matches!(served.mode, RunMode::Demoted { .. }) {
        // The demotion re-seeded the cache with the refreshed plan …
        let plan = inj
            .engine()
            .cached_plan(&graph)
            .ok_or("demotion left no refreshed plan behind")?;
        if plan.order != served.executed_order {
            return Err("refreshed plan does not hold the demoted run's order".into());
        }
        // … which a follow-up replay serves without demoting again.
        let rewarm = inj.engine().run(&graph, opts).map_err(|e| e.to_string())?;
        if rewarm.mode != RunMode::Revalidated {
            return Err(format!(
                "refreshed plan must revalidate, got {:?}",
                rewarm.mode
            ));
        }
        if rewarm.output != fresh.output {
            return Err("refreshed replay output differs".into());
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn zero_drift_guarded_replay_is_bit_identical_to_pure_replay(
        xml in doc_strategy(),
        qi in 0usize..3,
        seed in 0u64..500,
    ) {
        let r = check_zero_drift(&xml, qi, seed);
        prop_assert!(r.is_ok(), "{} (query {qi}, seed {seed})", r.unwrap_err());
    }

    #[test]
    fn drifted_replay_always_matches_fresh_optimization(
        xml in doc_strategy(),
        drifted in doc_strategy(),
        qi in 0usize..3,
        seed in 0u64..500,
    ) {
        let r = check_drifted(&xml, &drifted, qi, seed);
        prop_assert!(r.is_ok(), "{} (query {qi}, seed {seed})", r.unwrap_err());
    }
}
