//! The shredded document: a columnar node table in pre/size/level encoding,
//! plus the [`DocumentBuilder`] that produces it from parse events.

use crate::catalog::DocId;
use crate::interner::{Interner, Symbol};
use crate::node::{NodeKind, Pre};
use std::sync::Arc;

/// A shredded XML document.
///
/// One tuple per node, stored column-wise (struct of arrays). The tuple at
/// index `pre` describes the node with preorder rank `pre`; `pre = 0` is the
/// virtual document root. The encoding invariants (checked by
/// [`Document::check_invariants`]) are:
///
/// * `size[c]` = number of nodes in `c`'s subtree minus one, so the
///   descendants of `c` are exactly the pre range `(c, c + size[c]]`;
/// * `level[c]` = `level[parent[c]] + 1` for every non-root `c`;
/// * `parent[c] < c` and `c <= parent[c] + size[parent[c]]`.
pub struct Document {
    id: DocId,
    uri: String,
    size: Vec<u32>,
    level: Vec<u16>,
    parent: Vec<Pre>,
    kind: Vec<NodeKind>,
    name: Vec<Symbol>,
    value: Vec<Symbol>,
    interner: Arc<Interner>,
}

impl Document {
    /// The document id assigned at load time.
    #[inline]
    pub fn id(&self) -> DocId {
        self.id
    }

    /// The URI under which the document was loaded (`fn:doc` argument).
    pub fn uri(&self) -> &str {
        &self.uri
    }

    /// Total number of nodes, including the virtual document root.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.size.len()
    }

    /// The shared string interner for names and values.
    pub fn interner(&self) -> &Arc<Interner> {
        &self.interner
    }

    /// Number of distinct symbols in the shared interner — the upper bound
    /// of this document's symbol universe, and therefore the safe size for
    /// dense symbol-keyed tables (every `name`/`value` symbol of every
    /// node lies below it).
    #[inline]
    pub fn symbol_count(&self) -> usize {
        self.interner.len()
    }

    /// Subtree size (number of descendants) of `pre`.
    #[inline]
    pub fn size(&self, pre: Pre) -> u32 {
        self.size[pre as usize]
    }

    /// `post` rank: `pre + size`.
    #[inline]
    pub fn post(&self, pre: Pre) -> u32 {
        pre + self.size[pre as usize]
    }

    /// Depth below the document root (root has level 0).
    #[inline]
    pub fn level(&self, pre: Pre) -> u16 {
        self.level[pre as usize]
    }

    /// Preorder rank of the parent; the root is its own parent.
    #[inline]
    pub fn parent(&self, pre: Pre) -> Pre {
        self.parent[pre as usize]
    }

    /// Node kind of `pre`.
    #[inline]
    pub fn kind(&self, pre: Pre) -> NodeKind {
        self.kind[pre as usize]
    }

    /// Interned qualified name (elements, attributes, PI targets);
    /// [`Symbol::EMPTY`] otherwise.
    #[inline]
    pub fn name(&self, pre: Pre) -> Symbol {
        self.name[pre as usize]
    }

    /// Interned value (text, attribute, comment, PI data);
    /// [`Symbol::EMPTY`] otherwise.
    #[inline]
    pub fn value(&self, pre: Pre) -> Symbol {
        self.value[pre as usize]
    }

    /// Resolve the node's name to a string.
    pub fn name_str(&self, pre: Pre) -> String {
        self.interner.resolve(self.name(pre))
    }

    /// Resolve the node's value to a string.
    pub fn value_str(&self, pre: Pre) -> String {
        self.interner.resolve(self.value(pre))
    }

    /// Is `anc` a (strict) ancestor of `desc`?
    #[inline]
    pub fn is_ancestor(&self, anc: Pre, desc: Pre) -> bool {
        anc < desc && desc <= self.post(anc)
    }

    /// Iterator over the direct children (non-attribute) of `pre`, in
    /// document order.
    pub fn children(&self, pre: Pre) -> impl Iterator<Item = Pre> + '_ {
        let end = self.post(pre);
        let child_level = self.level(pre) + 1;
        let mut next = pre + 1;
        std::iter::from_fn(move || {
            while next <= end {
                let cur = next;
                next = cur + self.size(cur) + 1;
                if self.kind(cur) != NodeKind::Attribute && self.level(cur) == child_level {
                    return Some(cur);
                }
            }
            None
        })
    }

    /// Iterator over the attribute nodes of element `pre`, in document order.
    ///
    /// Attributes are stored contiguously right after their element's
    /// opening tag, so iteration stops at the first non-attribute node.
    pub fn attributes(&self, pre: Pre) -> impl Iterator<Item = Pre> + '_ {
        let end = self.post(pre);
        let mut next = pre + 1;
        std::iter::from_fn(move || {
            if next <= end && self.kind(next) == NodeKind::Attribute && self.parent(next) == pre {
                let cur = next;
                next += 1;
                Some(cur)
            } else {
                None
            }
        })
    }

    /// The XPath *string value* of a node: its own value for text,
    /// attribute, comment and PI nodes; the concatenation of descendant
    /// text values for elements and the root.
    pub fn string_value(&self, pre: Pre) -> String {
        match self.kind(pre) {
            NodeKind::Element | NodeKind::Document => {
                let mut out = String::new();
                let end = self.post(pre);
                for p in pre + 1..=end {
                    if self.kind(p) == NodeKind::Text {
                        out.push_str(&self.value_str(p));
                    }
                }
                out
            }
            _ => self.value_str(pre),
        }
    }

    /// Verify the pre/size/level/parent invariants; used by tests and the
    /// property suite.
    pub fn check_invariants(&self) -> Result<(), String> {
        let n = self.node_count();
        if n == 0 {
            return Err("document has no nodes".into());
        }
        if self.kind(0) != NodeKind::Document || self.level(0) != 0 || self.parent(0) != 0 {
            return Err("node 0 is not a well-formed document root".into());
        }
        if self.post(0) as usize != n - 1 {
            return Err(format!(
                "root subtree covers {} nodes, document has {n}",
                self.post(0) + 1
            ));
        }
        for pre in 1..n as Pre {
            let parent = self.parent(pre);
            if parent >= pre {
                return Err(format!("parent[{pre}] = {parent} is not a predecessor"));
            }
            if !self.is_ancestor(parent, pre) {
                return Err(format!("node {pre} is outside its parent {parent}'s range"));
            }
            if self.level(pre) != self.level(parent) + 1 {
                return Err(format!(
                    "level[{pre}] = {} but parent level is {}",
                    self.level(pre),
                    self.level(parent)
                ));
            }
            if self.post(pre) > self.post(parent) {
                return Err(format!("node {pre}'s subtree escapes its parent's"));
            }
            match self.kind(pre) {
                NodeKind::Attribute
                | NodeKind::Text
                | NodeKind::Comment
                | NodeKind::ProcessingInstruction => {
                    if self.size(pre) != 0 {
                        return Err(format!("leaf node {pre} has size {}", self.size(pre)));
                    }
                }
                NodeKind::Document => return Err(format!("interior document node at {pre}")),
                NodeKind::Element => {}
            }
        }
        // Subtree sizes must be consistent: size[p] == sum over children
        // subtrees (+1 each). Equivalent check: count nodes whose parent
        // chain passes through p.
        let mut counted = vec![0u32; n];
        for pre in (1..n as Pre).rev() {
            counted[self.parent(pre) as usize] += counted[pre as usize] + 1;
            if counted[pre as usize] != self.size(pre) {
                return Err(format!(
                    "size[{pre}] = {} but subtree contains {} nodes",
                    self.size(pre),
                    counted[pre as usize]
                ));
            }
        }
        if counted[0] != self.size(0) {
            return Err("root size mismatch".into());
        }
        Ok(())
    }

    /// Rebind the document to a new id (used by the catalog at load time).
    pub(crate) fn with_id(mut self: Arc<Self>, id: DocId) -> Arc<Self> {
        Arc::make_mut(&mut self).id = id;
        self
    }

    /// Borrow the raw struct-of-arrays columns — the exact on-disk payload
    /// of a snapshot's document segment. Column `i` of each slice
    /// describes the node with preorder rank `i`.
    pub fn columns(&self) -> DocumentColumns<'_> {
        DocumentColumns {
            size: &self.size,
            level: &self.level,
            parent: &self.parent,
            kind: &self.kind,
            name: &self.name,
            value: &self.value,
        }
    }

    /// Reassemble a document from raw columns (the snapshot decode path).
    /// All columns must have equal length; symbols must belong to
    /// `interner`. The encoding invariants are *not* re-checked here —
    /// storage validates page checksums instead, and
    /// [`Document::check_invariants`] stays available to callers that want
    /// the full structural audit.
    ///
    /// # Panics
    /// Panics when the column lengths disagree or every column is empty.
    #[allow(clippy::too_many_arguments)] // one parameter per column, on purpose
    pub fn from_columns(
        id: DocId,
        uri: String,
        size: Vec<u32>,
        level: Vec<u16>,
        parent: Vec<Pre>,
        kind: Vec<NodeKind>,
        name: Vec<Symbol>,
        value: Vec<Symbol>,
        interner: Arc<Interner>,
    ) -> Self {
        let n = size.len();
        assert!(n > 0, "a document has at least its root node");
        assert!(
            level.len() == n
                && parent.len() == n
                && kind.len() == n
                && name.len() == n
                && value.len() == n,
            "document columns must have equal length"
        );
        Document {
            id,
            uri,
            size,
            level,
            parent,
            kind,
            name,
            value,
            interner,
        }
    }
}

/// Borrowed view of a document's struct-of-arrays columns (see
/// [`Document::columns`]).
pub struct DocumentColumns<'a> {
    /// Subtree sizes.
    pub size: &'a [u32],
    /// Depths below the root.
    pub level: &'a [u16],
    /// Parent preorder ranks.
    pub parent: &'a [Pre],
    /// Node kinds.
    pub kind: &'a [NodeKind],
    /// Interned names.
    pub name: &'a [Symbol],
    /// Interned values.
    pub value: &'a [Symbol],
}

impl Clone for Document {
    fn clone(&self) -> Self {
        Document {
            id: self.id,
            uri: self.uri.clone(),
            size: self.size.clone(),
            level: self.level.clone(),
            parent: self.parent.clone(),
            kind: self.kind.clone(),
            name: self.name.clone(),
            value: self.value.clone(),
            interner: Arc::clone(&self.interner),
        }
    }
}

impl std::fmt::Debug for Document {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Document")
            .field("uri", &self.uri)
            .field("nodes", &self.node_count())
            .finish()
    }
}

/// Streaming builder producing a shredded [`Document`].
///
/// Events must describe a well-formed tree: `start_element`/`end_element`
/// calls must nest, and `attribute` is only valid directly after
/// `start_element` (before any content), mirroring XML syntax.
pub struct DocumentBuilder {
    uri: String,
    size: Vec<u32>,
    level: Vec<u16>,
    parent: Vec<Pre>,
    kind: Vec<NodeKind>,
    name: Vec<Symbol>,
    value: Vec<Symbol>,
    interner: Arc<Interner>,
    /// Stack of open element pre ranks (bottom is the virtual root).
    open: Vec<Pre>,
    /// True while attributes may still be appended to the innermost element.
    attrs_open: bool,
}

impl DocumentBuilder {
    /// Start building a document with a fresh interner.
    pub fn new(uri: &str) -> Self {
        Self::with_interner(uri, Arc::new(Interner::new()))
    }

    /// Start building a document with a shared interner (cross-document
    /// value joins compare interned symbols, so documents joined together
    /// should share one interner — the [`Catalog`](crate::catalog::Catalog)
    /// arranges this).
    pub fn with_interner(uri: &str, interner: Arc<Interner>) -> Self {
        let mut b = DocumentBuilder {
            uri: uri.to_string(),
            size: Vec::new(),
            level: Vec::new(),
            parent: Vec::new(),
            kind: Vec::new(),
            name: Vec::new(),
            value: Vec::new(),
            interner,
            open: Vec::new(),
            attrs_open: false,
        };
        b.push_node(NodeKind::Document, Symbol::EMPTY, Symbol::EMPTY);
        b.open.push(0);
        b
    }

    fn push_node(&mut self, kind: NodeKind, name: Symbol, value: Symbol) -> Pre {
        let pre = self.size.len() as Pre;
        let (level, parent) = match self.open.last() {
            Some(&p) => (self.level[p as usize] + 1, p),
            None => (0, 0),
        };
        self.size.push(0);
        self.level.push(level);
        self.parent.push(parent);
        self.kind.push(kind);
        self.name.push(name);
        self.value.push(value);
        pre
    }

    /// Open an element.
    pub fn start_element(&mut self, name: &str) -> Pre {
        let sym = self.interner.intern(name);
        let pre = self.push_node(NodeKind::Element, sym, Symbol::EMPTY);
        self.open.push(pre);
        self.attrs_open = true;
        pre
    }

    /// Attach an attribute to the innermost open element.
    ///
    /// # Panics
    /// Panics if content has already been added to the element.
    pub fn attribute(&mut self, name: &str, value: &str) -> Pre {
        assert!(
            self.attrs_open && self.open.len() > 1,
            "attribute() must directly follow start_element()"
        );
        let n = self.interner.intern(name);
        let v = self.interner.intern(value);
        self.push_node(NodeKind::Attribute, n, v)
    }

    /// Append a text node.
    pub fn text(&mut self, value: &str) -> Pre {
        self.attrs_open = false;
        let v = self.interner.intern(value);
        self.push_node(NodeKind::Text, Symbol::EMPTY, v)
    }

    /// Append a comment node.
    pub fn comment(&mut self, value: &str) -> Pre {
        self.attrs_open = false;
        let v = self.interner.intern(value);
        self.push_node(NodeKind::Comment, Symbol::EMPTY, v)
    }

    /// Append a processing-instruction node.
    pub fn processing_instruction(&mut self, target: &str, data: &str) -> Pre {
        self.attrs_open = false;
        let n = self.interner.intern(target);
        let v = self.interner.intern(data);
        self.push_node(NodeKind::ProcessingInstruction, n, v)
    }

    /// Close the innermost open element.
    ///
    /// # Panics
    /// Panics when no element is open.
    pub fn end_element(&mut self) {
        assert!(self.open.len() > 1, "end_element() with no open element");
        let pre = self.open.pop().unwrap();
        let last = (self.size.len() - 1) as Pre;
        self.size[pre as usize] = last - pre;
        self.attrs_open = false;
    }

    /// Convenience: element with a single text child.
    pub fn leaf(&mut self, name: &str, text: &str) -> Pre {
        let pre = self.start_element(name);
        if !text.is_empty() {
            self.text(text);
        }
        self.end_element();
        pre
    }

    /// Finish the document, closing the virtual root.
    ///
    /// # Panics
    /// Panics if elements are still open.
    pub fn finish(mut self, id: DocId) -> Document {
        assert!(
            self.open.len() == 1,
            "finish() with {} unclosed element(s)",
            self.open.len() - 1
        );
        let last = (self.size.len() - 1) as Pre;
        self.size[0] = last;
        Document {
            id,
            uri: self.uri,
            size: self.size,
            level: self.level,
            parent: self.parent,
            kind: self.kind,
            name: self.name,
            value: self.value,
            interner: self.interner,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_document;

    fn build_sample() -> Document {
        // <a x="1"><b>t1</b><c><b>t2</b></c></a>
        let mut b = DocumentBuilder::new("sample.xml");
        b.start_element("a");
        b.attribute("x", "1");
        b.leaf("b", "t1");
        b.start_element("c");
        b.leaf("b", "t2");
        b.end_element();
        b.end_element();
        b.finish(DocId(0))
    }

    #[test]
    fn builder_produces_valid_encoding() {
        let d = build_sample();
        d.check_invariants().expect("invariants hold");
        // root, a, @x, b, t1, c, b, t2
        assert_eq!(d.node_count(), 8);
        assert_eq!(d.kind(1), NodeKind::Element);
        assert_eq!(d.name_str(1), "a");
        assert_eq!(d.size(1), 6);
        assert_eq!(d.kind(2), NodeKind::Attribute);
        assert_eq!(d.value_str(2), "1");
    }

    #[test]
    fn children_skip_attributes() {
        let d = build_sample();
        let kids: Vec<_> = d.children(1).collect();
        assert_eq!(kids.len(), 2); // b and c, not @x
        assert_eq!(d.name_str(kids[0]), "b");
        assert_eq!(d.name_str(kids[1]), "c");
    }

    #[test]
    fn attributes_iterator() {
        let d = build_sample();
        let attrs: Vec<_> = d.attributes(1).collect();
        assert_eq!(attrs.len(), 1);
        assert_eq!(d.name_str(attrs[0]), "x");
        assert_eq!(d.attributes(3).count(), 0);
    }

    #[test]
    fn string_value_concatenates_descendant_text() {
        let d = build_sample();
        assert_eq!(d.string_value(1), "t1t2");
        assert_eq!(d.string_value(0), "t1t2");
    }

    #[test]
    fn ancestor_test_matches_ranges() {
        let d = build_sample();
        assert!(d.is_ancestor(0, 7));
        assert!(d.is_ancestor(1, 4));
        assert!(!d.is_ancestor(3, 5));
        assert!(!d.is_ancestor(4, 4)); // strict
    }

    #[test]
    fn parse_document_end_to_end() {
        let d = parse_document("q.xml", "<a x=\"1\"><b>t1</b><c><b>t2</b></c></a>").unwrap();
        d.check_invariants().unwrap();
        assert_eq!(d.node_count(), 8);
        assert_eq!(d.uri(), "q.xml");
    }

    #[test]
    fn whitespace_only_text_stripped_by_default() {
        let d = parse_document("w.xml", "<a>\n  <b>x</b>\n</a>").unwrap();
        // root, a, b, text(x)
        assert_eq!(d.node_count(), 4);
    }

    #[test]
    #[should_panic(expected = "attribute() must directly follow")]
    fn attribute_after_content_panics() {
        let mut b = DocumentBuilder::new("x");
        b.start_element("a");
        b.text("t");
        b.attribute("x", "1");
    }

    #[test]
    #[should_panic(expected = "unclosed")]
    fn finish_with_open_element_panics() {
        let mut b = DocumentBuilder::new("x");
        b.start_element("a");
        let _ = b.finish(DocId(0));
    }

    #[test]
    fn levels_are_depths() {
        let d = build_sample();
        assert_eq!(d.level(0), 0);
        assert_eq!(d.level(1), 1);
        assert_eq!(d.level(2), 2); // @x
        assert_eq!(d.level(7), 4); // t2 under b under c under a
    }
}
