#![warn(missing_docs)]

//! # rox-storage — page-oriented snapshot storage with a buffer pool
//!
//! Cold starts used to mean re-parsing and re-shredding every XML source.
//! This crate persists a shredded catalog — the Pre-columnar node tables,
//! the shared interner's symbol heap, and the prebuilt element/value
//! indices — as a page file, and faults it back in *lazily* through a
//! bounded buffer pool:
//!
//! * [`page`] — the fixed-size page format: 16-byte checksummed header
//!   (magic, page id, payload length, CRC-32C) + little-endian payload.
//!   Corruption is a detected [`StorageError::Corrupt`], never silent.
//! * [`mod@file`] — positioned page reads over one snapshot file, one
//!   page at a time or a contiguous run per `pread` (readahead).
//! * [`pool`] — the buffer manager: bounded frames, pin/unpin, a
//!   scan-resistant two-cohort (2Q-style) replacer with a ghost list,
//!   batched prefetch, and a coherent hit/miss/eviction ledger. Catalogs
//!   larger than the pool work.
//! * [`bytes`] — the segment codec: logical byte streams spanning pages,
//!   decoded by pinning one page at a time, with delta+varint /
//!   bitpacked integer runs ([`bytes::RunCodec`]) chosen per run.
//! * [`snapshot`] — [`Snapshot::save`] / [`Snapshot::open`] plus
//!   [`SnapshotSource`], the [`rox_index::DocSource`] implementation that
//!   the engine's `IndexedStore` faults documents and indices through.
//! * [`wal`] — the write-ahead log: checksummed, LSN-stamped mutation
//!   records with group fsync and torn-tail detection, closing the
//!   between-snapshots durability window.
//! * [`recovery`] — durable directories: the checkpoint state machine
//!   (tmp-write → verify → rename → dir-fsync) and [`recover`], which
//!   replays the log tail over the newest valid snapshot.
//! * [`failpoint`] — deterministic fault injection (short writes, torn
//!   pages, lying syncs at seeded byte budgets) powering the recovery
//!   torture suite.
//!
//! The encoder is deterministic (documents in id order, index groups
//! sorted by symbol, `f64` as raw bits): saving the same catalog twice
//! yields byte-identical files, which CI's golden-fixture guard uses to
//! detect accidental format changes.

pub mod bytes;
pub mod error;
pub mod failpoint;
pub mod file;
pub mod page;
pub mod pool;
pub mod recovery;
pub mod snapshot;
pub mod wal;

pub use bytes::RunCodec;
pub use error::{Result, StorageError};
pub use failpoint::{FailpointFile, FailpointIo, FailpointState, FaultMode, FaultPlan};
pub use page::{crc32c, DEFAULT_PAGE_SIZE, PAGE_HEADER};
pub use pool::{BufferPool, FetchHint, PoolStats};
pub use recovery::{recover, write_checkpoint, RecoveredState, RecoveryReport};
pub use snapshot::{SaveReport, Snapshot, SnapshotSource, SNAPSHOT_VERSION};
pub use wal::{Lsn, StdWalIo, Wal, WalIo, WalRecord, WalStats};
