//! Property tests for the value-join algorithms: hash, merge and
//! index-nested-loop must agree with each other and with a quadratic
//! reference on random documents.

use proptest::prelude::*;
use rox_index::ValueIndex;
use rox_ops::{hash_value_join, index_value_join, merge_value_join, sorted_by_value, Cost};
use rox_xmldb::{Catalog, Document, NodeKind, Pre};
use std::sync::Arc;

fn docs_strategy() -> impl Strategy<Value = (Vec<String>, Vec<String>)> {
    let val = prop::sample::select(vec!["a", "b", "c", "d", "e", "f", "g", "h"]);
    (
        prop::collection::vec(val.clone(), 0..30),
        prop::collection::vec(val, 0..30),
    )
        .prop_map(|(l, r)| {
            (
                l.into_iter().map(str::to_string).collect(),
                r.into_iter().map(str::to_string).collect(),
            )
        })
}

fn build(values_l: &[String], values_r: &[String]) -> (Arc<Document>, Arc<Document>) {
    let cat = Arc::new(Catalog::new());
    let mk = |vals: &[String]| {
        let mut s = String::from("<r>");
        for v in vals {
            s.push_str(&format!("<t>{v}</t>"));
        }
        s.push_str("</r>");
        s
    };
    let a = cat.load_str("a.xml", &mk(values_l)).unwrap();
    let b = cat.load_str("b.xml", &mk(values_r)).unwrap();
    (cat.doc(a), cat.doc(b))
}

fn text_nodes(d: &Document) -> Vec<Pre> {
    (0..d.node_count() as Pre)
        .filter(|&p| d.kind(p) == NodeKind::Text)
        .collect()
}

/// Quadratic reference join.
fn reference(da: &Document, la: &[Pre], db: &Document, lb: &[Pre]) -> Vec<(Pre, Pre)> {
    let mut out = Vec::new();
    for &a in la {
        for &b in lb {
            if da.value_str(a) == db.value_str(b) {
                out.push((a, b));
            }
        }
    }
    out.sort_unstable();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hash_join_matches_reference((l, r) in docs_strategy()) {
        let (da, db) = build(&l, &r);
        let (la, lb) = (text_nodes(&da), text_nodes(&db));
        let mut got = hash_value_join(&da, &la, &db, &lb, &mut Cost::new());
        got.sort_unstable();
        prop_assert_eq!(got, reference(&da, &la, &db, &lb));
    }

    #[test]
    fn merge_join_matches_reference((l, r) in docs_strategy()) {
        let (da, db) = build(&l, &r);
        let (la, lb) = (text_nodes(&da), text_nodes(&db));
        let sa = sorted_by_value(&da, &la);
        let sb = sorted_by_value(&db, &lb);
        let mut got = merge_value_join(&sa, &sb, &mut Cost::new());
        got.sort_unstable();
        prop_assert_eq!(got, reference(&da, &la, &db, &lb));
    }

    #[test]
    fn index_nl_join_matches_reference((l, r) in docs_strategy()) {
        let (da, db) = build(&l, &r);
        let (la, lb) = (text_nodes(&da), text_nodes(&db));
        let idx = ValueIndex::build(&db);
        let out = index_value_join(&da, &la, &idx, NodeKind::Text, Some(&lb), None, &mut Cost::new());
        let mut got: Vec<(Pre, Pre)> = out
            .pairs
            .iter()
            .map(|&(row, s)| (la[row as usize], s))
            .collect();
        got.sort_unstable();
        prop_assert_eq!(got, reference(&da, &la, &db, &lb));
    }

    #[test]
    fn cutoff_join_is_prefix((l, r) in docs_strategy(), limit in 1usize..10) {
        let (da, db) = build(&l, &r);
        let la = text_nodes(&da);
        let idx = ValueIndex::build(&db);
        let full = index_value_join(&da, &la, &idx, NodeKind::Text, None, None, &mut Cost::new());
        let cut = index_value_join(&da, &la, &idx, NodeKind::Text, None, Some(limit), &mut Cost::new());
        prop_assert!(cut.pairs.len() <= limit.max(1));
        prop_assert_eq!(&full.pairs[..cut.pairs.len()], &cut.pairs[..]);
        if cut.truncated {
            let est = cut.estimate();
            prop_assert!(est.is_finite() && est >= cut.pairs.len() as f64);
        }
    }

    #[test]
    fn join_cardinality_is_symmetric((l, r) in docs_strategy()) {
        let (da, db) = build(&l, &r);
        let (la, lb) = (text_nodes(&da), text_nodes(&db));
        let ab = hash_value_join(&da, &la, &db, &lb, &mut Cost::new()).len();
        let ba = hash_value_join(&db, &lb, &da, &la, &mut Cost::new()).len();
        prop_assert_eq!(ab, ba);
    }
}
