//! Table 1 microbenchmarks: the physical operators ROX samples and
//! executes — staircase joins per axis, value joins, and cut-off sampled
//! execution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rox_bench::xmark_catalog;
use rox_datagen::XmarkConfig;
use rox_index::{DocIndexes, ElementIndex};
use rox_ops::{hash_value_join, index_value_join, step_join, Axis, Cost};
use rox_xmldb::{NodeKind, Pre};
use std::hint::black_box;

fn bench_staircase(c: &mut Criterion) {
    let cat = xmark_catalog(&XmarkConfig {
        persons: 2000,
        items: 1500,
        auctions: 1500,
        ..XmarkConfig::default()
    });
    let doc = cat.doc_by_uri("xmark.xml").unwrap();
    let idx = ElementIndex::build(&doc);
    let auctions: Vec<Pre> = idx
        .lookup(doc.interner().get("open_auction").unwrap())
        .to_vec();
    let bidders: Vec<Pre> = idx.lookup(doc.interner().get("bidder").unwrap()).to_vec();
    let mut group = c.benchmark_group("staircase");
    for (name, axis, context, cands) in [
        ("descendant", Axis::Descendant, &auctions, &bidders),
        ("child", Axis::Child, &auctions, &bidders),
        ("ancestor", Axis::Ancestor, &bidders, &auctions),
        ("parent", Axis::Parent, &bidders, &auctions),
        ("following", Axis::Following, &auctions, &bidders),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut cost = Cost::new();
                black_box(step_join(&doc, axis, context, cands, None, &mut cost))
            })
        });
    }
    group.finish();
}

fn bench_cutoff_sampling(c: &mut Criterion) {
    let cat = xmark_catalog(&XmarkConfig {
        persons: 2000,
        items: 1500,
        auctions: 1500,
        ..XmarkConfig::default()
    });
    let doc = cat.doc_by_uri("xmark.xml").unwrap();
    let idx = ElementIndex::build(&doc);
    let auctions: Vec<Pre> = idx
        .lookup(doc.interner().get("open_auction").unwrap())
        .to_vec();
    let bidders: Vec<Pre> = idx.lookup(doc.interner().get("bidder").unwrap()).to_vec();
    let mut group = c.benchmark_group("cutoff");
    for limit in [25usize, 100, 400] {
        group.bench_with_input(BenchmarkId::from_parameter(limit), &limit, |b, &limit| {
            b.iter(|| {
                let mut cost = Cost::new();
                black_box(step_join(
                    &doc,
                    Axis::Descendant,
                    &auctions,
                    &bidders,
                    Some(limit),
                    &mut cost,
                ))
            })
        });
    }
    group.finish();
}

fn bench_value_joins(c: &mut Criterion) {
    let setup = rox_bench::dblp_catalog(1, 0.3, 7);
    let vldb = setup
        .catalog
        .doc(setup.corpus.docs[rox_datagen::venue_index("VLDB")]);
    let icde = setup
        .catalog
        .doc(setup.corpus.docs[rox_datagen::venue_index("ICDE")]);
    let texts = |d: &rox_xmldb::Document| -> Vec<Pre> {
        (0..d.node_count() as Pre)
            .filter(|&p| d.kind(p) == NodeKind::Text)
            .collect()
    };
    let lt = texts(&vldb);
    let rt = texts(&icde);
    let r_idx = DocIndexes::build(&icde);
    let outer: Vec<Pre> = lt.iter().take(100).copied().collect();
    let mut group = c.benchmark_group("value_join");
    group.bench_function("hash_full", |b| {
        b.iter(|| {
            let mut cost = Cost::new();
            black_box(hash_value_join(&vldb, &lt, &icde, &rt, &mut cost))
        })
    });
    group.bench_function("index_nl_sampled_100", |b| {
        b.iter(|| {
            let mut cost = Cost::new();
            black_box(index_value_join(
                &vldb,
                &outer,
                &r_idx.value,
                NodeKind::Text,
                None,
                Some(100),
                &mut cost,
            ))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_staircase, bench_cutoff_sampling, bench_value_joins
}
criterion_main!(benches);
