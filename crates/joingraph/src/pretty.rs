//! Pretty-printing of the AST back to query text.
//!
//! `parse ∘ print` is the identity on ASTs (checked by a property test),
//! which gives query normalization for free and makes the AST easy to
//! debug-log.

use crate::ast::*;
use rox_xmldb::Constant;
use std::fmt;

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for l in &self.lets {
            writeln!(f, "let ${} := doc(\"{}\")", l.var, l.doc_uri)?;
        }
        write!(f, "for ")?;
        for (i, b) in self.fors.iter().enumerate() {
            if i > 0 {
                write!(f, ",\n    ")?;
            }
            write!(f, "{b}")?;
        }
        if !self.conditions.is_empty() {
            write!(f, "\nwhere ")?;
            for (i, c) in self.conditions.iter().enumerate() {
                if i > 0 {
                    write!(f, " and\n      ")?;
                }
                write!(f, "{c}")?;
            }
        }
        write!(f, "\nreturn ${}", self.return_var)
    }
}

impl fmt::Display for ForBinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${} in {}", self.var, self.source)?;
        for s in &self.steps {
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Source {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Source::Doc(uri) => write!(f, "doc(\"{uri}\")"),
            Source::Var(v) => write!(f, "${v}"),
        }
    }
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.axis, self.test)?;
        for p in &self.predicates {
            write!(f, "[{p}]")?;
        }
        Ok(())
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let steps = match self {
            Predicate::Exists(steps) => steps,
            Predicate::Compare(steps, ..) => steps,
        };
        write!(f, ".")?;
        for s in steps {
            write!(f, "{s}")?;
        }
        if let Predicate::Compare(_, op, rhs) = self {
            write!(f, " {op} {}", DisplayConstant(rhs))?;
        }
        Ok(())
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Condition::Join(a, op, b) => write!(f, "{a} {op} {b}"),
            Condition::Select(a, op, rhs) => write!(f, "{a} {op} {}", DisplayConstant(rhs)),
        }
    }
}

impl fmt::Display for VarPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${}", self.var)?;
        for s in &self.steps {
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

/// Constant printed in re-parseable query syntax (numbers without
/// trailing `.0` when integral).
struct DisplayConstant<'a>(&'a Constant);

impl fmt::Display for DisplayConstant<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            Constant::Str(s) => write!(f, "\"{s}\""),
            Constant::Num(n) if n.fract() == 0.0 && n.abs() < 1e15 => {
                write!(f, "{}", *n as i64)
            }
            Constant::Num(n) => write!(f, "{n}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::parse_query;

    fn roundtrip(src: &str) {
        let q1 = parse_query(src).expect("parse original");
        let printed = q1.to_string();
        let q2 = parse_query(&printed).unwrap_or_else(|e| panic!("reparse {printed}: {e}"));
        assert_eq!(q1, q2, "printed form:\n{printed}");
    }

    #[test]
    fn roundtrips_fig1_query() {
        roundtrip(
            r#"
            let $r := doc("auction.xml")
            for $a in $r//open_auction[./reserve]/bidder//personref,
                $b in $r//person[.//education]
            where $a/@person = $b/@id
            return $a
        "#,
        );
    }

    #[test]
    fn roundtrips_xmark_q1() {
        roundtrip(
            r#"
            let $d := doc("xmark.xml")
            for $o in $d//open_auction[.//current/text() < 145],
                $p in $d//person[.//province],
                $i in $d//item[./quantity = 1]
            where $o//bidder//personref/@person = $p/@id and
                  $o//itemref/@item = $i/@id
            return $o
        "#,
        );
    }

    #[test]
    fn roundtrips_string_literals_and_selects() {
        roundtrip(
            r#"for $a in doc("d.xml")//author[./text() = "Codd"]
               where $a/@id != "x" and $a/year/text() >= 1970
               return $a"#,
        );
    }

    #[test]
    fn roundtrips_nested_predicates() {
        roundtrip(r#"for $a in doc("d.xml")//a[./b[./c]//d] return $a"#);
    }

    #[test]
    fn printed_form_is_stable() {
        let q = parse_query(r#"for $a in doc("d")//x return $a"#).unwrap();
        let once = q.to_string();
        let twice = parse_query(&once).unwrap().to_string();
        assert_eq!(once, twice);
    }
}
