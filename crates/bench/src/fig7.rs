//! Figure 7: scaling document sizes (×1, ×10, ×100) — plan quality stays
//! stable while the relative sampling overhead shrinks with scale (fixed
//! τ work is amortized over more data).

use crate::fig6::{group_averages, measure_combo, ComboResult, GroupAverages};
use crate::setup::dblp_catalog;
use rand::prelude::*;
use rand::rngs::StdRng;
use rox_datagen::grouped_combinations;

/// Configuration.
#[derive(Debug, Clone)]
pub struct Fig7Config {
    /// Replication scales to compare (paper: 1, 10, 100).
    pub scales: Vec<usize>,
    /// Size factor applied before replication.
    pub size_factor: f64,
    /// Combinations per group.
    pub per_group: usize,
    /// ROX sample size.
    pub tau: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for Fig7Config {
    fn default() -> Self {
        Fig7Config {
            scales: vec![1, 10],
            size_factor: 0.03,
            per_group: 4,
            tau: 100,
            seed: 17,
        }
    }
}

/// Per-scale results.
#[derive(Debug)]
pub struct ScaleResult {
    /// The replication scale.
    pub scale: usize,
    /// Per-combination measurements.
    pub rows: Vec<ComboResult>,
    /// Group averages ("2:2", "3:1", "4:0").
    pub averages: Vec<GroupAverages>,
}

/// Output.
#[derive(Debug)]
pub struct Fig7Output {
    /// One entry per scale.
    pub scales: Vec<ScaleResult>,
}

/// Run the experiment: the same combinations measured at every scale.
pub fn run(cfg: &Fig7Config) -> Fig7Output {
    // Fix the combination sample once so scales are comparable.
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut chosen: Vec<[usize; 4]> = Vec::new();
    for group in ["2:2", "3:1", "4:0"] {
        let mut combos: Vec<[usize; 4]> = grouped_combinations()
            .into_iter()
            .filter(|(_, g)| *g == group)
            .map(|(c, _)| c)
            .collect();
        if cfg.per_group > 0 && combos.len() > cfg.per_group {
            combos.shuffle(&mut rng);
            combos.truncate(cfg.per_group);
        }
        chosen.extend(combos);
    }
    let mut scales = Vec::new();
    for &scale in &cfg.scales {
        let setup = dblp_catalog(scale, cfg.size_factor, cfg.seed);
        let rows: Vec<ComboResult> = chosen
            .iter()
            .map(|&c| measure_combo(&setup, c, cfg.tau, cfg.seed))
            .filter(|r| r.result_rows > 0)
            .collect();
        let averages = group_averages(&rows);
        scales.push(ScaleResult {
            scale,
            rows,
            averages,
        });
    }
    Fig7Output { scales }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_at_two_scales() {
        let out = run(&Fig7Config {
            scales: vec![1, 4],
            per_group: 1,
            size_factor: 0.03,
            ..Default::default()
        });
        assert_eq!(out.scales.len(), 2);
        for s in &out.scales {
            for r in &s.rows {
                assert!(r.smallest >= 1.0);
                assert!(r.largest >= r.smallest);
            }
        }
    }
}
