//! The query-serving layer: a long-lived, thread-safe [`RoxEngine`] that
//! amortizes everything *around* one ROX run across many.
//!
//! ROX pays a per-query sampling overhead to discover a robust join order
//! at run time (§2.3). That trade only makes sense as a *service* if the
//! per-query setup around it — index construction, base-list lookups, and
//! for repeat queries the sampling itself — is paid once, not per call.
//! The engine owns three caches, each keyed so reuse is sound by
//! construction:
//!
//! * **document indexes** — the shared [`IndexedStore`], keyed by
//!   [`DocId`]: element/value indexes (including the dense CSR tables)
//!   are built once per document, ever;
//! * **base lists** — [`BaseListCache`], keyed by `(DocId, VertexLabel)`:
//!   a vertex's base list depends on nothing but its document and its
//!   label, so *any* later query using the same vertex shape reuses it
//!   (unlike the old per-graph `VertexId` keying, which died with the
//!   env);
//! * **plans** — keyed by [`JoinGraph::fingerprint`]: the edge order an
//!   optimizing run discovered, the physical operator ([`EdgeOpKind`]) it
//!   chose per edge, and the per-edge cardinalities it observed. Under
//!   [`PlanReuse::ReuseValidated`] a repeat of the same query shape
//!   replays that order through the **guarded replay** ([`crate::guard`]):
//!   budget-capped sampled spot checks plus free observed checks defend
//!   the replay against data drift, and a breach demotes it mid-query to a
//!   fresh run-time optimization of the remaining edges. Any fingerprint
//!   mismatch, canonical-form collision, stale edge set, or stale
//!   statistics epoch bypasses the cache and re-optimizes.
//!
//! Plans are **versioned against per-document statistics**: the engine
//! keeps an epoch per document URI, [`RoxEngine::invalidate_document`]
//! bumps the epoch *before* dropping derived data, and both plan lookup
//! and plan seeding verify the epochs they captured are still current —
//! so a replay racing an invalidation can never serve (or cache) a plan
//! versioned against dropped statistics. [`RoxEngine::reindex_document`]
//! refreshes a document's derived data *without* dropping its plans —
//! modeling in-place updates whose plans the guard revalidates on the
//! next replay.
//!
//! A query runs inside a *session* ([`RoxEngine::session`]) — a thin
//! [`RoxEnv`] view borrowing the engine's caches — and the engine owns one
//! always-on [`WorkerPool`] shared by **both** concurrency layers: the
//! intra-query sampling/partitioned-join fan-out and the inter-query
//! serving paths. [`RoxEngine::run_many`] fans a batch of queries out over
//! that pool (results in job order), and [`RoxEngine::try_submit`] is the
//! open-loop face: it enqueues one query behind a **bounded admission
//! queue** ([`RoxOptions::max_queued`]) and returns an [`EngineTicket`]
//! immediately, rejecting with [`ServeError::Overloaded`] when the queue
//! is full — backpressure instead of unbounded buffering. Nested fan-out
//! is deadlock-free by construction: every `par_map` caller drives its own
//! batch, so a worker running a query that fans out inward never waits on
//! a pool slot. Results are bit-identical to fresh standalone runs: every
//! cached structure is value-equal to the fresh build it replaces, and
//! `run` with [`PlanReuse::AlwaysOptimize`] (the default) performs the
//! exact same sampling an un-cached [`crate::run_rox`] would.

use crate::env::{EnvError, RoxEnv};
use crate::guard::{self, EdgeExpectation, GuardSpec, GuardVerdict, SpotCheck};
use crate::optimizer::{run_rox_with_env, RoxOptions, RoxReport};
use crate::plan::validate_plan;
use crate::state::EdgeExec;
use rox_index::IndexedStore;
use rox_joingraph::{EdgeId, JoinGraph, VertexLabel};
use rox_ops::{Cost, EdgeOpKind, PoolStats, Relation, ScratchPool};
use rox_par::{Parallelism, WorkerPool};
use rox_storage::wal::{DocPut, Lsn, Wal, WalIo, WalRecord, WalStats};
use rox_storage::{
    recovery, PoolStats as PagePoolStats, RecoveryReport, SaveReport, Snapshot, SnapshotSource,
    StdWalIo, StorageError, DEFAULT_PAGE_SIZE,
};
use rox_xmldb::{Catalog, DocId, Pre};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Plan-cache policy for [`RoxEngine::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlanReuse {
    /// Optimize every run (the paper's behaviour). Discovered plans still
    /// *seed* the cache so a later `ReuseValidated` run can hit.
    #[default]
    AlwaysOptimize,
    /// Replay the cached plan when the query's fingerprint matches a
    /// cached entry that validates against the graph (canonical form
    /// equal, edge order still covering every non-redundant edge,
    /// statistics epochs current). The replay is *guarded*
    /// ([`crate::guard`]): cheap sampled spot checks and free observed
    /// checks compare the live run against the recorded cardinalities,
    /// and a drift breach demotes the run mid-query to a fresh
    /// optimization of the remaining edges. Anything else falls back to a
    /// full optimizing run.
    ReuseValidated,
}

/// How one engine-served run was answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunMode {
    /// Full optimizing run (plan-cache miss or [`PlanReuse::AlwaysOptimize`]).
    Optimized,
    /// Guarded replay of a cached plan; every drift check passed.
    Revalidated,
    /// Guarded replay breached a drift check after `at_edge` executed
    /// edges and finished as a fresh optimization of the remaining edges.
    Demoted {
        /// Executed-prefix length at the breach (0 = a pre-execution
        /// sampled check fired).
        at_edge: usize,
    },
}

/// Cross-query base-list cache, keyed by `(DocId, VertexLabel)`.
///
/// The key is sound because a base list is a pure function of the document
/// and the vertex label (see `RoxEnv::build_base_list`); the label is
/// keyed through its injective [`VertexLabel::cache_key`]. Shared behind
/// an `RwLock` — warm lookups are read-locked only. Under a first-touch
/// race both threads build and the first insert wins, so the `builds`
/// counter is exact for sequential warm-path assertions and an upper
/// bound under contention.
pub struct BaseListCache {
    lists: RwLock<BaseListMap>,
    builds: AtomicUsize,
    hits: AtomicUsize,
}

/// `(document, canonical label key)` → shared base list.
type BaseListMap = HashMap<(DocId, String), Arc<Vec<Pre>>>;

/// Safety valve on the base-list cache: parameterized traffic (a fresh
/// range constant per query) mints a fresh `(DocId, label)` key per
/// constant, and each entry holds a materialized pre list — unbounded
/// growth would leak on a long-lived server. Past the cap an arbitrary
/// entry is evicted per insert (outstanding `Arc`s stay valid; a future
/// touch simply rebuilds).
const MAX_CACHED_BASE_LISTS: usize = 8192;

/// Same safety valve for the plan cache (canonical strings + edge
/// orders); evicted FIFO past the cap.
const MAX_CACHED_PLANS: usize = 1024;

impl Default for BaseListCache {
    fn default() -> Self {
        Self::new()
    }
}

impl BaseListCache {
    /// An empty cache.
    pub fn new() -> Self {
        BaseListCache {
            lists: RwLock::new(HashMap::new()),
            builds: AtomicUsize::new(0),
            hits: AtomicUsize::new(0),
        }
    }

    /// The list for `(doc, label)`, building it via `build` on a miss.
    pub(crate) fn get_or_build(
        &self,
        doc: DocId,
        label: &VertexLabel,
        build: impl FnOnce() -> Vec<Pre>,
    ) -> Arc<Vec<Pre>> {
        let key = (doc, label.cache_key());
        if let Some(list) = self.lists.read().expect("base-list cache").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(list);
        }
        let built = Arc::new(build());
        self.builds.fetch_add(1, Ordering::Relaxed);
        let mut map = self.lists.write().expect("base-list cache");
        if map.len() >= MAX_CACHED_BASE_LISTS && !map.contains_key(&key) {
            if let Some(victim) = map.keys().next().cloned() {
                map.remove(&victim);
            }
        }
        Arc::clone(map.entry(key).or_insert(built))
    }

    /// How many base lists were built (not served from cache).
    pub fn build_count(&self) -> usize {
        self.builds.load(Ordering::Relaxed)
    }

    /// How many lookups were served from the shared cache.
    pub fn hit_count(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of cached lists.
    pub fn len(&self) -> usize {
        self.lists.read().expect("base-list cache").len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every list of `doc` (after a document reload).
    fn invalidate_doc(&self, doc: DocId) {
        self.lists
            .write()
            .expect("base-list cache")
            .retain(|(d, _), _| *d != doc);
    }
}

/// One plan-cache entry: what an optimizing (or demoted) run discovered
/// for one query fingerprint, plus everything a guarded replay needs to
/// check the plan against the live data.
#[derive(Debug, Clone)]
pub struct CachedPlan {
    /// The non-redundant edges in the order ROX executed them — the "pure
    /// plan" replayed on a hit.
    pub order: Vec<EdgeId>,
    /// The physical operator the kernel chose per executed edge (parallel
    /// to `order`). Advisory: a replay re-derives its choices through the
    /// same kernel and cost function, so on unchanged documents it picks
    /// these exact operators again.
    pub ops: Vec<EdgeOpKind>,
    /// Per-edge recorded cardinalities and reduction factors (parallel to
    /// `order`) — the expectations the guarded replay spot-checks.
    pub expected: Vec<EdgeExpectation>,
    /// Sample size τ the seeding run used (the guard reproduces Phase 1
    /// under it).
    pub tau: usize,
    /// RNG seed of the seeding run.
    pub seed: u64,
    /// Per-document statistics epochs `(uri, epoch)` captured when the
    /// seeding run started, sorted by URI. A replay or re-seed whose
    /// current epochs differ is refused — the plan was versioned against
    /// statistics that [`RoxEngine::invalidate_document`] has dropped.
    pub stats_epochs: Vec<(String, u64)>,
    /// Collision guard: the full canonical form the fingerprint hashed.
    canonical: String,
    /// Documents the plan touches (for invalidation).
    doc_uris: Vec<String>,
}

/// A serving-path error: admission rejection, query failure, or an
/// aborted job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The bounded admission queue was full at submission time
    /// ([`RoxOptions::max_queued`]); the job never entered the system.
    Overloaded {
        /// Queue depth observed at rejection.
        queued: usize,
        /// The bound the job's options asked for.
        max_queued: usize,
    },
    /// The query itself failed (unknown document, ...).
    Env(EnvError),
    /// The job was admitted but never completed: it panicked mid-run, or
    /// the pool shut down while it was still queued.
    Aborted,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { queued, max_queued } => write!(
                f,
                "overloaded: {queued} jobs queued (admission bound {max_queued})"
            ),
            ServeError::Env(e) => write!(f, "{e}"),
            ServeError::Aborted => write!(f, "job aborted before completion"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<EnvError> for ServeError {
    fn from(e: EnvError) -> Self {
        ServeError::Env(e)
    }
}

/// What a completed [`EngineTicket`] resolves to.
#[derive(Debug)]
pub struct TicketOutcome {
    /// The run result (or why it failed).
    pub result: Result<EngineRun, ServeError>,
    /// When the worker finished the job — latency measured here excludes
    /// any delay in the collector picking the ticket up.
    pub finished_at: Instant,
}

enum TicketState {
    Pending,
    Done(Box<TicketOutcome>),
    Taken,
}

struct TicketInner {
    state: Mutex<TicketState>,
    cv: Condvar,
}

impl TicketInner {
    /// First completion wins; later calls (e.g. the drop guard after a
    /// normal finish) are no-ops.
    fn complete(&self, result: Result<EngineRun, ServeError>) -> bool {
        let mut state = self.state.lock().expect("ticket state");
        if !matches!(*state, TicketState::Pending) {
            return false;
        }
        *state = TicketState::Done(Box::new(TicketOutcome {
            result,
            finished_at: Instant::now(),
        }));
        self.cv.notify_all();
        true
    }
}

/// A handle to one query admitted through [`RoxEngine::try_submit`]. The
/// submitter never blocks; the result is claimed with
/// [`EngineTicket::wait`]. Every admitted job resolves its ticket exactly
/// once — on completion, on panic, or (as [`ServeError::Aborted`]) when
/// the pool shuts down with the job still queued.
pub struct EngineTicket {
    inner: Arc<TicketInner>,
}

impl EngineTicket {
    /// Block until the job resolves and take its outcome.
    ///
    /// Do not call this from inside the same pool's worker (it would
    /// occupy the worker while waiting on work only that pool can run);
    /// tickets are for external collectors — dispatch loops, benches,
    /// request handlers.
    pub fn wait(self) -> TicketOutcome {
        let mut state = self.inner.state.lock().expect("ticket state");
        loop {
            if matches!(*state, TicketState::Done(_)) {
                match std::mem::replace(&mut *state, TicketState::Taken) {
                    TicketState::Done(out) => return *out,
                    _ => unreachable!("just matched Done"),
                }
            }
            state = self.inner.cv.wait(state).expect("ticket state");
        }
    }
}

/// Completion guard moved into every submitted job closure. Whatever
/// happens to the closure — runs to completion, panics inside `run`, or
/// gets dropped unrun at pool shutdown — the drop leg settles the
/// admission-queue gauge and resolves the ticket, so a collector blocked
/// in [`EngineTicket::wait`] can never hang and the serving counters
/// always reconcile.
struct JobGuard {
    engine: Arc<RoxEngine>,
    inner: Arc<TicketInner>,
    dequeued: bool,
    finished: bool,
}

impl JobGuard {
    /// The job left the admission queue and started running.
    fn dequeue(&mut self) {
        if !self.dequeued {
            self.dequeued = true;
            self.engine.queued.fetch_sub(1, Ordering::AcqRel);
        }
    }

    fn finish(&mut self, result: Result<EngineRun, ServeError>) {
        self.finished = true;
        self.engine.jobs_served.fetch_add(1, Ordering::Relaxed);
        self.inner.complete(result);
    }
}

impl Drop for JobGuard {
    fn drop(&mut self) {
        self.dequeue();
        if !self.finished {
            self.engine.jobs_aborted.fetch_add(1, Ordering::Relaxed);
            self.inner.complete(Err(ServeError::Aborted));
        }
    }
}

/// An observer of document storage events. The engine routes every
/// [`RoxEngine::invalidate_document`] / [`RoxEngine::reindex_document`]
/// through the registered sinks *before* any derived data is dropped —
/// this is how snapshot-backed state learns that a stored epoch is dead
/// and must never be served again ([`RoxEngine::open_snapshot`] registers
/// a sink that marks the snapshot's per-document index segments stale).
pub trait StorageEventSink: Send + Sync {
    /// `uri` was reloaded/replaced; `epoch` is its *new* statistics epoch.
    /// Persistent state derived from the old content (stored indexes,
    /// cached segments) is dead. `id` is `None` when the URI was never
    /// registered in the catalog.
    fn document_invalidated(&self, uri: &str, id: Option<DocId>, epoch: u64);

    /// `uri` changed in place (no epoch bump): derived index data must be
    /// refreshed from the live document, but plans stay servable.
    fn document_reindexed(&self, uri: &str, id: Option<DocId>);
}

/// The sink [`RoxEngine::open_snapshot`] registers: both event kinds make
/// the snapshot's stored *index* segments for the document unservable (the
/// stored document segment stays, as the content ground truth for ids that
/// were never reloaded — and both events always leave a newer resident
/// copy, so it is never consulted for this id again).
struct SnapshotStalenessSink {
    source: Arc<SnapshotSource>,
}

impl StorageEventSink for SnapshotStalenessSink {
    fn document_invalidated(&self, _uri: &str, id: Option<DocId>, _epoch: u64) {
        if let Some(id) = id {
            rox_index::DocSource::mark_stale(&*self.source, id);
        }
    }

    fn document_reindexed(&self, _uri: &str, id: Option<DocId>) {
        if let Some(id) = id {
            rox_index::DocSource::mark_stale(&*self.source, id);
        }
    }
}

/// Counters describing how much work the engine's caches absorbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// `DocIndexes::build` runs in the shared store.
    pub index_builds: usize,
    /// Base lists built (shared-cache misses).
    pub base_list_builds: usize,
    /// Base-list lookups served from the shared cache.
    pub base_list_hits: usize,
    /// `run` calls answered by (revalidated) plan replay.
    pub plan_hits: u64,
    /// `run` calls that ran the optimizer (including every
    /// `AlwaysOptimize` call and every demoted replay).
    pub plan_misses: u64,
    /// Guarded replays that breached a drift check and demoted mid-query
    /// (each also counts as a miss).
    pub plan_demotions: u64,
    /// Plans currently cached.
    pub cached_plans: usize,
    /// Scratch-pool lease/miss counters (see
    /// [`RoxEngine::scratch_pool`]).
    pub scratch: PoolStats,
    /// Jobs offered to the serving path ([`RoxEngine::try_submit`] and
    /// [`RoxEngine::run_many`]), admitted or not.
    pub jobs_submitted: u64,
    /// Jobs that ran to completion (successfully or with a query error).
    pub jobs_served: u64,
    /// Jobs rejected at admission with [`ServeError::Overloaded`].
    pub jobs_rejected: u64,
    /// Admitted jobs that never completed (panicked mid-run, or dropped
    /// at pool shutdown). At quiescence
    /// `submitted == served + rejected + aborted`.
    pub jobs_aborted: u64,
    /// Jobs currently admitted but not yet started (the live admission
    /// queue gauge [`RoxOptions::max_queued`] bounds).
    pub queue_depth: usize,
    /// Buffer-pool traffic of the snapshot backing this engine — page
    /// hits/misses/evictions and frame occupancy. All zero for an
    /// in-memory engine (no snapshot).
    pub pages: PagePoolStats,
    /// Total pages in the backing snapshot file (0 without one) — the
    /// 100% mark the pool's `capacity` is a fraction of.
    pub snapshot_pages: u64,
    /// Documents/index sets decoded from the snapshot instead of being
    /// parsed/built (the store's fault counter).
    pub storage_loads: usize,
    /// Segment-decode tasks the snapshot fanned out across the worker
    /// pool ([`RoxEngine::preload_snapshot`]); stays 0 on the lazy
    /// first-touch path.
    pub storage_par_decodes: u64,
    /// Write-ahead-log counters (records, bytes, commits vs fsyncs,
    /// LSN water marks). All zero for an engine without a durable
    /// directory (see [`RoxEngine::make_durable`]).
    pub wal: WalStats,
    /// WAL records replayed when this engine was built by
    /// [`RoxEngine::recover`]; 0 otherwise.
    pub wal_replayed: u64,
}

impl EngineStats {
    /// `plan_hits / (plan_hits + plan_misses)`, 0 when nothing ran.
    pub fn plan_hit_rate(&self) -> f64 {
        let total = self.plan_hits + self.plan_misses;
        if total == 0 {
            return 0.0;
        }
        self.plan_hits as f64 / total as f64
    }
}

/// Everything one engine-served query run produces. Unlike
/// [`RoxReport`], this is uniform across optimizing runs and plan-cache
/// replays (a revalidated replay's `sample_cost` holds only its
/// budget-capped spot checks).
#[derive(Debug)]
pub struct EngineRun {
    /// The query output after the plan tail (π·δ·τ·π).
    pub output: Relation,
    /// The fully joined Join Graph result (pre-tail).
    pub joined: Relation,
    /// Edges in the order they were executed (discovered or replayed).
    pub executed_order: Vec<EdgeId>,
    /// Per-execution result sizes and operator choices.
    pub edge_log: Vec<EdgeExec>,
    /// Work done by full executions.
    pub exec_cost: Cost,
    /// Work done by sampling — for a revalidated replay, only the
    /// spot-check charge (bounded by the seeding run's Phase-1 cost and by
    /// [`rox_ops::revalidation_budget`]).
    pub sample_cost: Cost,
    /// Wall-clock of the run.
    pub total_wall: Duration,
    /// True when the plan cache answered this run end-to-end (mode
    /// [`RunMode::Revalidated`]).
    pub plan_cache_hit: bool,
    /// How the run was answered: optimized, revalidated, or demoted.
    pub mode: RunMode,
    /// The drift checks the guarded replay performed (empty for
    /// optimizing runs).
    pub spot_checks: Vec<SpotCheck>,
    /// The query's join-graph fingerprint (the plan-cache key).
    pub fingerprint: u64,
}

impl EngineRun {
    fn from_report(report: RoxReport, fingerprint: u64) -> Self {
        EngineRun {
            output: report.output,
            joined: report.joined,
            executed_order: report.executed_order,
            edge_log: report.edge_log,
            exec_cost: report.exec_cost,
            sample_cost: report.sample_cost,
            total_wall: report.total_wall,
            plan_cache_hit: false,
            mode: RunMode::Optimized,
            spot_checks: Vec::new(),
            fingerprint,
        }
    }

    fn from_guarded(run: guard::GuardedRun, fingerprint: u64) -> Self {
        let mode = match run.verdict {
            GuardVerdict::Revalidated => RunMode::Revalidated,
            GuardVerdict::Demoted { at_edge } => RunMode::Demoted { at_edge },
        };
        EngineRun {
            output: run.output,
            joined: run.joined,
            executed_order: run.executed_order,
            edge_log: run.edge_log,
            exec_cost: run.exec_cost,
            sample_cost: run.sample_cost,
            total_wall: run.wall,
            plan_cache_hit: mode == RunMode::Revalidated,
            mode,
            spot_checks: run.checks,
            fingerprint,
        }
    }
}

/// The long-lived, thread-safe query-serving layer: one engine per
/// catalog, shared by reference across every query and worker thread.
///
/// ```
/// use std::sync::Arc;
/// use rox_core::{PlanReuse, RoxEngine, RoxOptions};
///
/// let catalog = Arc::new(rox_xmldb::Catalog::new());
/// catalog.load_str("d.xml", "<site><auction><bidder/></auction></site>").unwrap();
/// let engine = RoxEngine::new(catalog);
/// let graph = rox_joingraph::compile_query(
///     r#"for $a in doc("d.xml")//auction, $b in $a/bidder return $b"#,
/// ).unwrap();
/// let options = RoxOptions { plan_reuse: PlanReuse::ReuseValidated, ..Default::default() };
/// let cold = engine.run(&graph, options).unwrap(); // optimizes, seeds the plan cache
/// let warm = engine.run(&graph, options).unwrap(); // guarded replay
/// assert!(!cold.plan_cache_hit && warm.plan_cache_hit);
/// assert_eq!(warm.output, cold.output);
/// // The replay's only sampling is its drift spot checks, bounded by
/// // what the seeding run's Phase 1 charged.
/// assert!(warm.sample_cost.total() <= cold.sample_cost.total());
/// ```
pub struct RoxEngine {
    store: Arc<IndexedStore>,
    base_lists: Arc<BaseListCache>,
    /// Recycled execution-spine buffers, shared across every session (and
    /// therefore across queries): once traffic is warm, full executions
    /// lease pair buffers, relation columns, and bitset universes here
    /// instead of allocating (see [`rox_ops::pool`]).
    scratch: Arc<ScratchPool>,
    plans: Mutex<PlanCache>,
    /// Per-document statistics epochs, keyed by URI (absent = epoch 0).
    /// [`RoxEngine::invalidate_document`] bumps an epoch *before* touching
    /// any derived data, and plan lookup/seeding compare captured epochs
    /// against current ones — the versioning rule that closes the
    /// invalidate-vs-replay race.
    doc_epochs: RwLock<HashMap<String, u64>>,
    plan_hits: AtomicU64,
    plan_misses: AtomicU64,
    plan_demotions: AtomicU64,
    /// The always-on worker pool shared by intra-query fan-out (sampling,
    /// partitioned joins) and the inter-query serving paths.
    workers: Arc<WorkerPool>,
    /// Jobs admitted through [`RoxEngine::try_submit`] but not yet
    /// started — the gauge the bounded admission queue checks.
    queued: AtomicUsize,
    jobs_submitted: AtomicU64,
    jobs_served: AtomicU64,
    jobs_rejected: AtomicU64,
    jobs_aborted: AtomicU64,
    /// The snapshot this engine was opened from, when it was
    /// ([`RoxEngine::open_snapshot`]); carries the buffer pool whose
    /// counters [`RoxEngine::stats`] surfaces.
    snapshot: Option<Arc<SnapshotSource>>,
    /// Observers of invalidate/reindex events (see [`StorageEventSink`]).
    storage_sinks: RwLock<Vec<Arc<dyn StorageEventSink>>>,
    /// The durable half, when [`RoxEngine::make_durable`] or
    /// [`RoxEngine::recover`] attached one: mutations append to its WAL
    /// and are acknowledged only after the group fsync.
    durable: RwLock<Option<Arc<DurableState>>>,
    /// Records [`RoxEngine::recover`] replayed to build this engine.
    wal_replayed: AtomicU64,
}

/// The durable half of an engine: the directory, the I/O layer writes
/// go through (real, or fault-injected in tests), the log itself, and
/// the mutation-order lock.
struct DurableState {
    dir: PathBuf,
    io: Arc<dyn WalIo>,
    wal: Wal,
    /// Serializes durable mutations against each other and against
    /// checkpoints: the epoch bump, the interner-delta capture, and the
    /// record append must form one atomic step so replay reconstructs
    /// the exact original order (and the exact symbol-id assignment).
    order: Mutex<DurableCursor>,
}

/// The per-directory high-water marks the order lock protects.
struct DurableCursor {
    /// Symbols already persisted (in the snapshot or an earlier
    /// record); the next document record logs the interner delta from
    /// here.
    symbols_logged: usize,
}

/// The bounded plan store behind the engine's mutex: fingerprint → plan
/// plus insertion order for FIFO eviction past [`MAX_CACHED_PLANS`]. The
/// FIFO may hold fingerprints whose entries invalidation already removed;
/// eviction pops through those harmlessly.
#[derive(Default)]
struct PlanCache {
    map: HashMap<u64, CachedPlan>,
    fifo: std::collections::VecDeque<u64>,
}

impl PlanCache {
    fn insert(&mut self, fingerprint: u64, plan: CachedPlan) {
        if self.map.insert(fingerprint, plan).is_none() {
            self.fifo.push_back(fingerprint);
        }
        while self.map.len() > MAX_CACHED_PLANS {
            match self.fifo.pop_front() {
                Some(old) => {
                    self.map.remove(&old);
                }
                None => break,
            }
        }
    }
}

impl std::fmt::Debug for RoxEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("RoxEngine")
            .field("documents", &self.catalog().len())
            .field("stats", &stats)
            .finish()
    }
}

impl RoxEngine {
    /// An engine over `catalog`, with all caches empty and a worker pool
    /// sized to the machine (logical core count, floor of two).
    pub fn new(catalog: Arc<Catalog>) -> Self {
        Self::with_workers(
            catalog,
            Arc::new(WorkerPool::new(Parallelism::Auto.threads().max(2))),
        )
    }

    /// As [`RoxEngine::new`] with an explicit worker pool — for serving
    /// setups that size the pool themselves or share one pool across
    /// several engines.
    pub fn with_workers(catalog: Arc<Catalog>, workers: Arc<WorkerPool>) -> Self {
        Self::from_store(Arc::new(IndexedStore::new(catalog)), workers, None)
    }

    /// Open a snapshot file (see [`rox_storage::Snapshot`]) and serve
    /// queries straight off it: every stored URI resolves immediately, and
    /// document content plus prebuilt indices are *faulted in on first
    /// touch* through a buffer pool of `frames` pages (`None` sizes the
    /// pool to the whole file). The cold path this replaces — re-parsing
    /// and re-shredding the XML, then rebuilding every index — never runs.
    ///
    /// The engine registers a [`StorageEventSink`] that marks stored index
    /// segments stale on [`RoxEngine::invalidate_document`] /
    /// [`RoxEngine::reindex_document`], so the snapshot can never serve an
    /// index from a superseded epoch.
    pub fn open_snapshot(path: &Path, frames: Option<usize>) -> Result<Self, StorageError> {
        let (catalog, source) = Snapshot::open(path, frames)?;
        let store = Arc::new(IndexedStore::with_source(
            catalog,
            Arc::<SnapshotSource>::clone(&source),
        ));
        let engine = Self::from_store(
            store,
            Arc::new(WorkerPool::new(Parallelism::Auto.threads().max(2))),
            Some(Arc::clone(&source)),
        );
        engine.register_storage_sink(Arc::new(SnapshotStalenessSink { source }));
        Ok(engine)
    }

    /// As [`RoxEngine::open_snapshot`], then immediately
    /// [`RoxEngine::preload_snapshot`]: every stored document and index
    /// set is decoded up front, fanned out across the engine's worker
    /// pool, so the first query after open runs entirely warm. The lazy
    /// `open_snapshot` stays the default — an engine serving a small
    /// working set out of a large snapshot should not pay for segments it
    /// never touches.
    pub fn open_snapshot_prefetched(
        path: &Path,
        frames: Option<usize>,
    ) -> Result<Self, StorageError> {
        let engine = Self::open_snapshot(path, frames)?;
        engine.preload_snapshot()?;
        Ok(engine)
    }

    /// Eagerly decode every non-stale stored document and index set into
    /// residency, dispatching the per-segment decode work across the
    /// engine's worker pool (two tasks per document: node columns and
    /// index segments — see [`SnapshotSource::decode_all`]). Page reads
    /// under the decode go through the buffer pool with scan hints and
    /// readahead, so a pool smaller than the file still ends the preload
    /// with its frames holding the *tail* of each segment, not a
    /// thrashed prefix. Returns the number of documents made resident
    /// (0 for an engine without a snapshot).
    pub fn preload_snapshot(&self) -> Result<usize, StorageError> {
        let Some(source) = &self.snapshot else {
            return Ok(0);
        };
        let threads = Parallelism::Auto.threads().max(2);
        let decoded = source.decode_all(&self.workers, threads)?;
        let installed = decoded.len();
        for (id, doc, indexes) in decoded {
            self.store.install(id, doc, indexes);
        }
        Ok(installed)
    }

    /// Persist this engine's catalog — documents, symbol heap, and the
    /// element/value indices (building any missing ones) — as a snapshot
    /// page file at `path`, ready for [`RoxEngine::open_snapshot`].
    pub fn save_snapshot(&self, path: &Path) -> Result<SaveReport, StorageError> {
        Snapshot::save(path, &self.store)
    }

    /// The snapshot this engine serves from, if opened via
    /// [`RoxEngine::open_snapshot`].
    pub fn snapshot(&self) -> Option<&Arc<SnapshotSource>> {
        self.snapshot.as_ref()
    }

    /// Attach a durable directory at `dir`: persist the current catalog
    /// as `snapshot.rox`, start `wal.rox`, and from here on route every
    /// [`RoxEngine::invalidate_document`] / [`RoxEngine::reindex_document`]
    /// through the write-ahead log — each mutation is acknowledged only
    /// after its record is fsynced, and [`RoxEngine::recover`] on the
    /// directory rebuilds this engine's exact state after any crash.
    pub fn make_durable(&self, dir: &Path) -> Result<SaveReport, StorageError> {
        self.make_durable_with_io(dir, Arc::new(StdWalIo))
    }

    /// As [`RoxEngine::make_durable`] with an explicit I/O layer — the
    /// seam the fault-injection torture suite interposes on (see
    /// [`rox_storage::failpoint`]).
    pub fn make_durable_with_io(
        &self,
        dir: &Path,
        io: Arc<dyn WalIo>,
    ) -> Result<SaveReport, StorageError> {
        std::fs::create_dir_all(dir)?;
        // Sample the symbol high-water mark *before* encoding: the
        // snapshot then holds at least [0, symbols_logged), so a record
        // logging the delta from here can never skip a symbol (it may
        // duplicate one already in the snapshot, which replay dedups).
        let symbols_logged = self.catalog().interner().len();
        let epochs = self.epoch_table();
        let out = recovery::write_checkpoint(dir, &self.store, epochs, 1, &*io, DEFAULT_PAGE_SIZE)?;
        let state = DurableState {
            dir: dir.to_path_buf(),
            io,
            wal: Wal::open(out.wal_file, 1, 1, out.wal_bytes),
            order: Mutex::new(DurableCursor { symbols_logged }),
        };
        *self.durable.write().expect("durable state") = Some(Arc::new(state));
        Ok(out.report)
    }

    /// Checkpoint the durable directory: persist a fresh snapshot of
    /// the current catalog and rotate the log to a new generation whose
    /// only record is the checkpoint (truncation — every record of the
    /// old generation is baked into the new snapshot). Runs the
    /// tmp-write → verify → rename → dir-fsync state machine of
    /// [`rox_storage::recovery::write_checkpoint`]; a crash anywhere in
    /// it recovers. Errors if the engine has no durable directory.
    pub fn checkpoint(&self) -> Result<SaveReport, StorageError> {
        let durable = self.durable.read().expect("durable state").clone();
        let Some(d) = durable else {
            return Err(StorageError::Format(
                "checkpoint without a durable directory (call make_durable first)".to_string(),
            ));
        };
        // The order lock stalls durable mutations for the duration: no
        // record with an LSN above the checkpoint's can exist yet.
        let mut cur = d.order.lock().expect("durable order");
        // The symbol high-water mark advances only once the checkpoint
        // is durably on disk: advancing it first and then failing would
        // leave symbols in [old mark, new mark) in neither the old
        // snapshot nor any later record's delta.
        let symbols_logged = self.catalog().interner().len();
        let epochs = self.epoch_table();
        let cp_lsn = d.wal.last_lsn() + 1;
        let out = recovery::write_checkpoint(
            &d.dir,
            &self.store,
            epochs,
            cp_lsn,
            &*d.io,
            DEFAULT_PAGE_SIZE,
        )?;
        d.wal.install_rotated(out.wal_file, cp_lsn, out.wal_bytes);
        cur.symbols_logged = symbols_logged;
        Ok(out.report)
    }

    /// Recover the durable directory at `dir` into a serving engine:
    /// open the newest valid snapshot, replay the WAL tail over it
    /// (torn tail detected and truncated), and return the engine plus
    /// what recovery found. The recovered engine is bit-identical — in
    /// query output, document columns, and epoch table — to the engine
    /// that wrote the directory, as of its last durable LSN, and it is
    /// itself durable: mutations keep appending to the recovered log.
    pub fn recover(
        dir: &Path,
        frames: Option<usize>,
    ) -> Result<(Self, RecoveryReport), StorageError> {
        Self::recover_with_io(dir, frames, Arc::new(StdWalIo))
    }

    /// As [`RoxEngine::recover`] with an explicit I/O layer for the
    /// recovered engine's subsequent writes.
    pub fn recover_with_io(
        dir: &Path,
        frames: Option<usize>,
        io: Arc<dyn WalIo>,
    ) -> Result<(Self, RecoveryReport), StorageError> {
        let state = recovery::recover(dir, frames, &*io)?;
        let store = Arc::new(IndexedStore::with_source(
            state.catalog,
            Arc::<SnapshotSource>::clone(&state.source),
        ));
        let engine = Self::from_store(
            store,
            Arc::new(WorkerPool::new(Parallelism::Auto.threads().max(2))),
            Some(Arc::clone(&state.source)),
        );
        engine.register_storage_sink(Arc::new(SnapshotStalenessSink {
            source: state.source,
        }));
        *engine.doc_epochs.write().expect("doc epochs") = state.epochs.into_iter().collect();
        engine
            .wal_replayed
            .store(state.report.replayed as u64, Ordering::Relaxed);
        let symbols_logged = engine.catalog().interner().len();
        *engine.durable.write().expect("durable state") = Some(Arc::new(DurableState {
            dir: dir.to_path_buf(),
            io,
            wal: state.wal,
            order: Mutex::new(DurableCursor { symbols_logged }),
        }));
        Ok((engine, state.report))
    }

    /// The durable directory this engine writes to, if any.
    pub fn durable_dir(&self) -> Option<PathBuf> {
        self.durable
            .read()
            .expect("durable state")
            .as_ref()
            .map(|d| d.dir.clone())
    }

    /// The full `(uri, epoch)` table, sorted by URI.
    fn epoch_table(&self) -> Vec<(String, u64)> {
        let mut epochs: Vec<(String, u64)> = self
            .doc_epochs
            .read()
            .expect("doc epochs")
            .iter()
            .map(|(uri, &e)| (uri.clone(), e))
            .collect();
        epochs.sort();
        epochs
    }

    fn from_store(
        store: Arc<IndexedStore>,
        workers: Arc<WorkerPool>,
        snapshot: Option<Arc<SnapshotSource>>,
    ) -> Self {
        RoxEngine {
            store,
            base_lists: Arc::new(BaseListCache::new()),
            scratch: Arc::new(ScratchPool::new()),
            plans: Mutex::new(PlanCache::default()),
            doc_epochs: RwLock::new(HashMap::new()),
            plan_hits: AtomicU64::new(0),
            plan_misses: AtomicU64::new(0),
            plan_demotions: AtomicU64::new(0),
            workers,
            queued: AtomicUsize::new(0),
            jobs_submitted: AtomicU64::new(0),
            jobs_served: AtomicU64::new(0),
            jobs_rejected: AtomicU64::new(0),
            jobs_aborted: AtomicU64::new(0),
            snapshot,
            storage_sinks: RwLock::new(Vec::new()),
            durable: RwLock::new(None),
            wal_replayed: AtomicU64::new(0),
        }
    }

    /// Register an observer of invalidate/reindex events. Sinks are
    /// notified *before* any derived data is dropped, in registration
    /// order.
    pub fn register_storage_sink(&self, sink: Arc<dyn StorageEventSink>) {
        self.storage_sinks
            .write()
            .expect("storage sinks")
            .push(sink);
    }

    /// Drop the in-memory residency of every snapshot-backed document —
    /// resident node tables, index cells, and base lists — without
    /// touching epochs, plans, or the snapshot's validity. The next query
    /// faults everything back in through the buffer pool; benchmark
    /// sweeps use this to measure warm-replay latency at different pool
    /// sizes. Returns the number of documents released (always 0 for an
    /// engine without a snapshot — releasing would lose the only copy).
    pub fn release_residency(&self) -> usize {
        let Some(source) = &self.snapshot else {
            return 0;
        };
        let mut released = 0;
        for id in self.catalog().doc_ids() {
            // A stale document's only current copy is the resident one —
            // evicting it would re-fault the superseded stored content.
            if source.is_stale(id) {
                continue;
            }
            if self.store.release(id) {
                released += 1;
            }
            self.base_lists.invalidate_doc(id);
        }
        released
    }

    /// The engine's always-on worker pool.
    pub fn workers(&self) -> &Arc<WorkerPool> {
        &self.workers
    }

    /// Jobs admitted but not yet started (the live admission-queue depth).
    pub fn queue_depth(&self) -> usize {
        self.queued.load(Ordering::Acquire)
    }

    /// The catalog this engine serves.
    pub fn catalog(&self) -> &Arc<Catalog> {
        self.store.catalog()
    }

    /// The shared document-index store.
    pub fn store(&self) -> &Arc<IndexedStore> {
        &self.store
    }

    /// The shared cross-query base-list cache.
    pub fn base_lists(&self) -> &Arc<BaseListCache> {
        &self.base_lists
    }

    /// The shared scratch pool; [`ScratchPool::stats`] exposes the warm
    /// traffic's lease/miss counters (a warm repeat query leases every
    /// pooled buffer — zero misses — the property the engine proptest
    /// pins).
    pub fn scratch_pool(&self) -> &Arc<ScratchPool> {
        &self.scratch
    }

    /// A per-query session: a thin [`RoxEnv`] view borrowing this engine's
    /// index store and base-list cache. Cheap enough to create per call —
    /// the only per-session work is resolving the graph's document URIs.
    pub fn session(&self, graph: &JoinGraph) -> Result<RoxEnv, EnvError> {
        RoxEnv::from_shared(
            Arc::clone(&self.store),
            Arc::clone(&self.base_lists),
            Arc::clone(&self.scratch),
            Some(Arc::clone(&self.workers)),
            graph,
            Parallelism::Sequential,
        )
    }

    /// Serve one query: guarded replay of the cached plan when
    /// [`RoxOptions::plan_reuse`] allows it and a validated entry exists
    /// (revalidating or demoting per [`crate::guard`]), else run the full
    /// optimizer ([`crate::run_rox`] semantics — the result is
    /// bit-identical to a fresh standalone run) and seed the plan cache
    /// with what it discovered.
    pub fn run(&self, graph: &JoinGraph, options: RoxOptions) -> Result<EngineRun, EnvError> {
        // Serialize the canonical form once per run; the fingerprint, the
        // collision compare, and (on a miss) the seeded entry all reuse it.
        let canonical = graph.canonical_form();
        let fingerprint = rox_joingraph::fingerprint_of(&canonical);
        // Capture the statistics epochs *before* any derived data is
        // touched: a concurrent `invalidate_document` bumps its epoch
        // first, so any invalidation racing this run makes the captured
        // vector stale and the seed/replay below refuses it.
        let epochs = self.capture_epochs(graph);
        if options.plan_reuse == PlanReuse::ReuseValidated {
            if let Some(spec) = self.lookup_validated(fingerprint, &canonical, graph, &epochs) {
                let env = self.session(graph)?;
                let run = guard::run_guarded(&env, graph, &spec, options)
                    .map_err(|e| EnvError { message: e.message })?;
                match run.verdict {
                    GuardVerdict::Revalidated => {
                        self.plan_hits.fetch_add(1, Ordering::Relaxed);
                    }
                    GuardVerdict::Demoted { .. } => {
                        // A demotion is an optimizing run that kept its
                        // executed prefix: count it as a miss, and re-seed
                        // the cache with the refreshed plan, versioned
                        // against the epochs captured at run start.
                        self.plan_demotions.fetch_add(1, Ordering::Relaxed);
                        self.plan_misses.fetch_add(1, Ordering::Relaxed);
                        let expected = guard::plan_expectations(
                            &env,
                            graph,
                            &run.executed_order,
                            &run.edge_log,
                            &options,
                        );
                        let ops = run.edge_log.iter().map(|x| x.op).collect();
                        self.insert_plan(
                            fingerprint,
                            canonical,
                            graph,
                            run.executed_order.clone(),
                            ops,
                            expected,
                            &options,
                            epochs,
                        );
                    }
                }
                return Ok(EngineRun::from_guarded(run, fingerprint));
            }
        }
        let env = self.session(graph)?;
        let report = run_rox_with_env(&env, graph, options)?;
        // Count the miss only once the optimizer actually ran — failed
        // sessions (unknown documents) must not skew the hit rate.
        self.plan_misses.fetch_add(1, Ordering::Relaxed);
        self.seed_plan(
            fingerprint,
            canonical,
            graph,
            &env,
            &report,
            &options,
            epochs,
        );
        Ok(EngineRun::from_report(report, fingerprint))
    }

    /// Serve a batch of queries concurrently on the engine's worker pool
    /// with a concurrency window of `par` threads, all against this
    /// engine's shared caches. Results come back in job order; each job is
    /// exactly one [`RoxEngine::run`].
    ///
    /// The batch is closed-loop, so admission is resolved up front: all
    /// jobs arrive at once, `par` of them start immediately, the next
    /// [`RoxOptions::max_queued`] wait their turn, and any job deeper than
    /// that is rejected with [`ServeError::Overloaded`] — deterministic in
    /// the job index, exactly what an open-loop submitter racing a full
    /// queue would see. (For live open-loop traffic use
    /// [`RoxEngine::try_submit`].)
    pub fn run_many(
        &self,
        jobs: &[(&JoinGraph, RoxOptions)],
        par: Parallelism,
    ) -> Vec<Result<EngineRun, ServeError>> {
        let threads = par.effective_threads(jobs.len(), 1);
        self.jobs_submitted
            .fetch_add(jobs.len() as u64, Ordering::Relaxed);
        self.workers.par_map(threads, jobs.len(), |i| {
            let (graph, options) = jobs[i];
            if let Some(max) = options.max_queued {
                if i >= threads + max {
                    self.jobs_rejected.fetch_add(1, Ordering::Relaxed);
                    return Err(ServeError::Overloaded {
                        queued: max,
                        max_queued: max,
                    });
                }
            }
            let run = self.run(graph, options).map_err(ServeError::Env);
            self.jobs_served.fetch_add(1, Ordering::Relaxed);
            run
        })
    }

    /// Submit one query to the serving pool behind the bounded admission
    /// queue, without blocking: returns an [`EngineTicket`] immediately,
    /// or [`ServeError::Overloaded`] when
    /// [`RoxOptions::max_queued`] jobs are already waiting (backpressure —
    /// the caller sheds load instead of buffering unboundedly). The
    /// admission check never blocks and never occupies a worker.
    ///
    /// The job owns a clone of `graph`; the ticket resolves when a worker
    /// finishes the run (or with [`ServeError::Aborted`] if the job
    /// panics or the pool shuts down first).
    pub fn try_submit(
        self: &Arc<Self>,
        graph: &JoinGraph,
        options: RoxOptions,
    ) -> Result<EngineTicket, ServeError> {
        self.jobs_submitted.fetch_add(1, Ordering::Relaxed);
        if let Some(max) = options.max_queued {
            // Claim a queue slot only below the bound (CAS loop — a plain
            // increment could overshoot under contention).
            let mut depth = self.queued.load(Ordering::Acquire);
            loop {
                if depth >= max {
                    self.jobs_rejected.fetch_add(1, Ordering::Relaxed);
                    return Err(ServeError::Overloaded {
                        queued: depth,
                        max_queued: max,
                    });
                }
                match self.queued.compare_exchange_weak(
                    depth,
                    depth + 1,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => break,
                    Err(current) => depth = current,
                }
            }
        } else {
            self.queued.fetch_add(1, Ordering::AcqRel);
        }
        let inner = Arc::new(TicketInner {
            state: Mutex::new(TicketState::Pending),
            cv: Condvar::new(),
        });
        let mut job = JobGuard {
            engine: Arc::clone(self),
            inner: Arc::clone(&inner),
            dequeued: false,
            finished: false,
        };
        let graph = graph.clone();
        self.workers.execute(move || {
            job.dequeue();
            let result = job.engine.run(&graph, options).map_err(ServeError::Env);
            job.finish(result);
        });
        Ok(EngineTicket { inner })
    }

    /// The cached plan for `graph`, if a validated one exists.
    pub fn cached_plan(&self, graph: &JoinGraph) -> Option<CachedPlan> {
        let canonical = graph.canonical_form();
        let fingerprint = rox_joingraph::fingerprint_of(&canonical);
        let epochs = self.capture_epochs(graph);
        self.lookup_validated(fingerprint, &canonical, graph, &epochs)?;
        self.plans
            .lock()
            .expect("plan cache")
            .map
            .get(&fingerprint)
            .cloned()
    }

    /// Cache-effectiveness counters (cheap; all atomics).
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            index_builds: self.store.build_count(),
            base_list_builds: self.base_lists.build_count(),
            base_list_hits: self.base_lists.hit_count(),
            plan_hits: self.plan_hits.load(Ordering::Relaxed),
            plan_misses: self.plan_misses.load(Ordering::Relaxed),
            plan_demotions: self.plan_demotions.load(Ordering::Relaxed),
            cached_plans: self.plans.lock().expect("plan cache").map.len(),
            scratch: self.scratch.stats(),
            jobs_submitted: self.jobs_submitted.load(Ordering::Relaxed),
            jobs_served: self.jobs_served.load(Ordering::Relaxed),
            jobs_rejected: self.jobs_rejected.load(Ordering::Relaxed),
            jobs_aborted: self.jobs_aborted.load(Ordering::Relaxed),
            queue_depth: self.queued.load(Ordering::Acquire),
            pages: self
                .snapshot
                .as_ref()
                .map(|s| s.pool_stats())
                .unwrap_or_default(),
            snapshot_pages: self
                .snapshot
                .as_ref()
                .map(|s| s.page_count() as u64)
                .unwrap_or(0),
            storage_loads: self.store.load_count(),
            storage_par_decodes: self.snapshot.as_ref().map(|s| s.par_decodes()).unwrap_or(0),
            wal: self
                .durable
                .read()
                .expect("durable state")
                .as_ref()
                .map(|d| d.wal.stats())
                .unwrap_or_default(),
            wal_replayed: self.wal_replayed.load(Ordering::Relaxed),
        }
    }

    /// The current statistics epoch of `uri` (0 until the first
    /// invalidation). Plans record the epochs of every document they touch
    /// and are refused once any recorded epoch is stale.
    pub fn doc_epoch(&self, uri: &str) -> u64 {
        self.doc_epochs
            .read()
            .expect("doc epochs")
            .get(uri)
            .copied()
            .unwrap_or(0)
    }

    /// The `(uri, epoch)` vector for every document `graph` touches,
    /// sorted and deduplicated by URI.
    fn capture_epochs(&self, graph: &JoinGraph) -> Vec<(String, u64)> {
        let mut uris: Vec<String> = graph.vertices().iter().map(|v| v.doc_uri.clone()).collect();
        uris.sort();
        uris.dedup();
        let epochs = self.doc_epochs.read().expect("doc epochs");
        uris.into_iter()
            .map(|uri| {
                let epoch = epochs.get(&uri).copied().unwrap_or(0);
                (uri, epoch)
            })
            .collect()
    }

    /// Drop every cached plan (counters are kept).
    pub fn clear_plan_cache(&self) {
        let mut plans = self.plans.lock().expect("plan cache");
        plans.map.clear();
        plans.fifo.clear();
    }

    /// Invalidate everything derived from document `uri` after a reload:
    /// its statistics epoch (bumped **first** — the versioning rule), its
    /// indexes, its base lists, and every cached plan touching it.
    /// (A stale plan would still produce correct output — any edge order
    /// does — but its order and operator choices were discovered on the
    /// old data.)
    ///
    /// The epoch bump strictly precedes every drop, so any plan lookup or
    /// seed that captured its epochs before this call observes the
    /// mismatch and refuses — a replay racing this invalidation can never
    /// serve, nor re-insert, a plan versioned against the dropped
    /// statistics.
    /// On a durable engine this is [`RoxEngine::try_invalidate_document`]
    /// and panics on a storage failure (the log is poisoned and every
    /// further durable mutation would error anyway); serving setups that
    /// want the error use the `try_` form directly.
    pub fn invalidate_document(&self, uri: &str) {
        self.try_invalidate_document(uri)
            .unwrap_or_else(|e| panic!("durable invalidate of {uri:?} failed: {e}"));
    }

    /// As [`RoxEngine::invalidate_document`], but on a durable engine
    /// the mutation is written ahead: an `epoch-bump` or
    /// `document-invalidate` record (the latter carrying the resident
    /// content and the interner delta) is appended and group-fsynced
    /// **before** any in-memory state changes beyond the epoch bump.
    /// Returns the record's LSN (`None` without a durable directory) —
    /// when this returns `Ok`, the mutation survives any crash.
    pub fn try_invalidate_document(&self, uri: &str) -> Result<Option<Lsn>, StorageError> {
        let durable = self.durable.read().expect("durable state").clone();
        let Some(d) = durable else {
            let epoch = self.bump_epoch(uri);
            self.finish_invalidate(uri, epoch);
            return Ok(None);
        };
        let (lsn, epoch) = {
            let mut cur = d.order.lock().expect("durable order");
            let epoch = self.bump_epoch(uri);
            let record = match self
                .catalog()
                .resolve(uri)
                .and_then(|id| self.catalog().get(id))
            {
                Some(doc) => WalRecord::DocInvalidate {
                    uri: uri.to_string(),
                    epoch,
                    put: self.capture_put(&doc, &mut cur),
                },
                // No resident content to log: only the epoch moves
                // (stored segments become unservable via the sinks).
                None => WalRecord::EpochBump {
                    uri: uri.to_string(),
                    epoch,
                },
            };
            (d.wal.append(&record)?, epoch)
        };
        // The group fsync is the acknowledgement point: after this
        // line the mutation is durable, whatever happens next.
        d.wal.commit(lsn)?;
        self.finish_invalidate(uri, epoch);
        Ok(Some(lsn))
    }

    /// Bump `uri`'s statistics epoch (strictly before any derived data
    /// is dropped — the versioning rule).
    fn bump_epoch(&self, uri: &str) -> u64 {
        let mut epochs = self.doc_epochs.write().expect("doc epochs");
        let e = epochs.entry(uri.to_string()).or_insert(0);
        *e += 1;
        *e
    }

    /// The in-memory half of an invalidation: sinks, index and
    /// base-list drops, plan sweep. The epoch was already bumped.
    fn finish_invalidate(&self, uri: &str, epoch: u64) {
        let id = self.catalog().resolve(uri);
        // Storage sinks first: persistent state derived from the old
        // content (stored index segments) must be unservable before the
        // in-memory derived data is dropped and can be refilled.
        for sink in self.storage_sinks.read().expect("storage sinks").iter() {
            sink.document_invalidated(uri, id, epoch);
        }
        if let Some(id) = id {
            self.store.invalidate(id);
            self.base_lists.invalidate_doc(id);
        }
        self.plans
            .lock()
            .expect("plan cache")
            .map
            .retain(|_, p| !p.doc_uris.iter().any(|u| u == uri));
    }

    /// Capture `doc`'s content for the log along with the interner
    /// delta since the last logged record (under the order lock, so the
    /// delta ranges of successive records tile the symbol space).
    fn capture_put(&self, doc: &Arc<rox_xmldb::Document>, cur: &mut DurableCursor) -> DocPut {
        let interner = self.catalog().interner();
        let base = cur.symbols_logged;
        let new_symbols = interner.dump_from(base);
        cur.symbols_logged = base + new_symbols.len();
        DocPut::from_document(doc, base as u32, new_symbols)
    }

    /// Refresh the derived data of `uri` (indexes, base lists) after an
    /// in-place content change **without** dropping its cached plans or
    /// bumping its statistics epoch — the incremental-update path the
    /// guarded replay defends: plans stay servable, and the next
    /// `ReuseValidated` replay revalidates them against the new data,
    /// demoting mid-query if the content drifted past the thresholds.
    /// On a durable engine this is [`RoxEngine::try_reindex_document`]
    /// and panics on a storage failure.
    pub fn reindex_document(&self, uri: &str) {
        self.try_reindex_document(uri)
            .unwrap_or_else(|e| panic!("durable reindex of {uri:?} failed: {e}"));
    }

    /// As [`RoxEngine::reindex_document`]; on a durable engine a
    /// `document-reindex` record carrying the resident content is
    /// appended and fsynced first (a reindex of a non-resident document
    /// logs nothing — rebuilding indexes from unchanged stored content
    /// is idempotent, so recovery loses nothing by not knowing).
    pub fn try_reindex_document(&self, uri: &str) -> Result<Option<Lsn>, StorageError> {
        let durable = self.durable.read().expect("durable state").clone();
        let lsn = match &durable {
            None => None,
            Some(d) => {
                let mut cur = d.order.lock().expect("durable order");
                match self
                    .catalog()
                    .resolve(uri)
                    .and_then(|id| self.catalog().get(id))
                {
                    Some(doc) => {
                        let record = WalRecord::DocReindex {
                            uri: uri.to_string(),
                            put: self.capture_put(&doc, &mut cur),
                        };
                        Some(d.wal.append(&record)?)
                    }
                    None => None,
                }
            }
        };
        if let (Some(d), Some(lsn)) = (&durable, lsn) {
            d.wal.commit(lsn)?;
        }
        let id = self.catalog().resolve(uri);
        for sink in self.storage_sinks.read().expect("storage sinks").iter() {
            sink.document_reindexed(uri, id);
        }
        if let Some(id) = id {
            self.store.invalidate(id);
            self.base_lists.invalidate_doc(id);
        }
        Ok(lsn)
    }

    /// A cache entry usable for `graph`: fingerprint present, canonical
    /// form equal (collision guard), the stored order still valid for the
    /// graph's edge set, and the plan's statistics epochs equal to the
    /// current ones. Anything less is a miss. Returns the replayable
    /// [`GuardSpec`], so the critical section clones no strings.
    fn lookup_validated(
        &self,
        fingerprint: u64,
        canonical: &str,
        graph: &JoinGraph,
        current_epochs: &[(String, u64)],
    ) -> Option<GuardSpec> {
        let plans = self.plans.lock().expect("plan cache");
        let plan = plans.map.get(&fingerprint)?;
        if plan.canonical != canonical {
            return None;
        }
        if plan.stats_epochs != current_epochs {
            return None;
        }
        if validate_plan(graph, &plan.order).is_err() {
            return None;
        }
        Some(GuardSpec {
            order: plan.order.clone(),
            expected: plan.expected.clone(),
            tau: plan.tau,
            seed: plan.seed,
        })
    }

    #[allow(clippy::too_many_arguments)] // thin shim over insert_plan
    fn seed_plan(
        &self,
        fingerprint: u64,
        canonical: String,
        graph: &JoinGraph,
        env: &RoxEnv,
        report: &RoxReport,
        options: &RoxOptions,
        epochs: Vec<(String, u64)>,
    ) {
        let ops = report.edge_log.iter().map(|x| x.op).collect();
        // Record each edge's observed cardinalities plus — for the
        // spot-check window — the probe estimate a future guarded replay
        // will recompute with the identical procedure (bit-equal on
        // unchanged data).
        let expected = guard::plan_expectations(
            env,
            graph,
            &report.executed_order,
            &report.edge_log,
            options,
        );
        self.insert_plan(
            fingerprint,
            canonical,
            graph,
            report.executed_order.clone(),
            ops,
            expected,
            options,
            epochs,
        );
    }

    /// Insert a plan versioned against `epochs` (captured at run start).
    /// If any of those epochs has advanced since — a concurrent
    /// `invalidate_document` — the insert is refused: the plan was
    /// discovered on statistics that no longer exist. The epoch re-read
    /// happens *inside* the plan-cache critical section, and the
    /// invalidator bumps epochs strictly before its retain-sweep takes the
    /// same lock, so every interleaving either refuses the insert here or
    /// sweeps the entry there.
    #[allow(clippy::too_many_arguments)] // one call site per seeding path
    fn insert_plan(
        &self,
        fingerprint: u64,
        canonical: String,
        graph: &JoinGraph,
        order: Vec<EdgeId>,
        ops: Vec<EdgeOpKind>,
        expected: Vec<EdgeExpectation>,
        options: &RoxOptions,
        epochs: Vec<(String, u64)>,
    ) {
        let mut doc_uris: Vec<String> =
            graph.vertices().iter().map(|v| v.doc_uri.clone()).collect();
        doc_uris.sort();
        doc_uris.dedup();
        let mut plans = self.plans.lock().expect("plan cache");
        {
            let current = self.doc_epochs.read().expect("doc epochs");
            let stale = epochs
                .iter()
                .any(|(uri, epoch)| current.get(uri).copied().unwrap_or(0) != *epoch);
            if stale {
                return;
            }
        }
        plans.insert(
            fingerprint,
            CachedPlan {
                order,
                ops,
                expected,
                tau: options.tau,
                seed: options.seed,
                stats_epochs: epochs,
                canonical,
                doc_uris,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_rox;
    use rox_joingraph::compile_query;

    const SITE: &str = r#"<site><auction><cheap/><bidder><personref person="p1"/></bidder></auction><auction><bidder><personref person="p2"/></bidder><bidder><personref person="p1"/></bidder></auction><person id="p1"/><person id="p2"/></site>"#;

    const Q_STEP: &str = r#"for $a in doc("d.xml")//auction, $b in $a/bidder return $b"#;
    const Q_JOIN: &str = r#"for $r in doc("d.xml")//personref, $p in doc("d.xml")//person
                            where $r/@person = $p/@id return $r"#;

    fn engine() -> RoxEngine {
        let cat = Arc::new(Catalog::new());
        cat.load_str("d.xml", SITE).unwrap();
        RoxEngine::new(cat)
    }

    fn reuse() -> RoxOptions {
        RoxOptions {
            plan_reuse: PlanReuse::ReuseValidated,
            ..Default::default()
        }
    }

    #[test]
    fn engine_run_matches_standalone_run_rox() {
        let engine = engine();
        let g = compile_query(Q_JOIN).unwrap();
        let standalone = run_rox(Arc::clone(engine.catalog()), &g, RoxOptions::default()).unwrap();
        let served = engine.run(&g, RoxOptions::default()).unwrap();
        assert_eq!(served.output, standalone.output);
        assert_eq!(served.executed_order, standalone.executed_order);
        assert_eq!(served.edge_log, standalone.edge_log);
        assert_eq!(served.exec_cost, standalone.exec_cost);
        assert_eq!(served.sample_cost, standalone.sample_cost);
    }

    #[test]
    fn warm_identical_query_does_zero_redundant_work() {
        let engine = engine();
        let g = compile_query(Q_STEP).unwrap();
        let cold = engine.run(&g, reuse()).unwrap();
        assert!(!cold.plan_cache_hit);
        let after_cold = engine.stats();
        assert!(after_cold.index_builds > 0);
        assert!(after_cold.base_list_builds > 0);

        let warm = engine.run(&g, reuse()).unwrap();
        let after_warm = engine.stats();
        // The acceptance bar: no index build, no base-list rebuild, and
        // the warm path's only sampling is the guard's spot checks —
        // bounded by what the seeding run's Phase 1 already charged.
        assert_eq!(after_warm.index_builds, after_cold.index_builds);
        assert_eq!(after_warm.base_list_builds, after_cold.base_list_builds);
        assert!(warm.plan_cache_hit);
        assert_eq!(warm.mode, RunMode::Revalidated);
        assert!(warm.sample_cost.total() <= cold.sample_cost.total());
        assert!(!warm.spot_checks.is_empty());
        assert!(warm.spot_checks.iter().all(|c| !c.breached));
        assert_eq!(warm.output, cold.output);
        assert_eq!(warm.executed_order, cold.executed_order);
        assert_eq!(after_warm.plan_hits, 1);
        assert_eq!(after_warm.plan_demotions, 0);
    }

    #[test]
    fn replay_reproduces_operator_choices() {
        let engine = engine();
        let g = compile_query(Q_JOIN).unwrap();
        let cold = engine.run(&g, reuse()).unwrap();
        let warm = engine.run(&g, reuse()).unwrap();
        assert_eq!(warm.edge_log, cold.edge_log);
        let plan = engine.cached_plan(&g).unwrap();
        let replayed: Vec<EdgeOpKind> = warm.edge_log.iter().map(|x| x.op).collect();
        assert_eq!(plan.ops, replayed);
    }

    #[test]
    fn always_optimize_never_replays_but_still_seeds() {
        let engine = engine();
        let g = compile_query(Q_STEP).unwrap();
        let r1 = engine.run(&g, RoxOptions::default()).unwrap();
        let r2 = engine.run(&g, RoxOptions::default()).unwrap();
        assert!(!r1.plan_cache_hit && !r2.plan_cache_hit);
        assert!(r2.sample_cost.total() > 0, "AlwaysOptimize must sample");
        let stats = engine.stats();
        assert_eq!(stats.plan_hits, 0);
        assert_eq!(stats.plan_misses, 2);
        assert_eq!(stats.cached_plans, 1);
        // The seeded plan serves a later ReuseValidated run.
        let r3 = engine.run(&g, reuse()).unwrap();
        assert!(r3.plan_cache_hit);
        assert_eq!(r3.output, r1.output);
    }

    #[test]
    fn different_fingerprints_do_not_cross_hit() {
        let engine = engine();
        let g1 = compile_query(Q_STEP).unwrap();
        let g2 = compile_query(Q_JOIN).unwrap();
        engine.run(&g1, reuse()).unwrap();
        let r2 = engine.run(&g2, reuse()).unwrap();
        assert!(!r2.plan_cache_hit, "distinct query must not hit");
        assert_eq!(engine.stats().cached_plans, 2);
    }

    #[test]
    fn invalidate_document_drops_plans_and_rebuilds() {
        let engine = engine();
        let g = compile_query(Q_STEP).unwrap();
        let cold = engine.run(&g, reuse()).unwrap();
        // Reload with one more bidder; stale caches must not survive.
        let reloaded = SITE.replace(
            "<auction><cheap/>",
            "<auction><cheap/><bidder><personref person=\"p9\"/></bidder>",
        );
        engine.catalog().load_str("d.xml", &reloaded).unwrap();
        engine.invalidate_document("d.xml");
        assert_eq!(engine.stats().cached_plans, 0);
        let fresh = engine.run(&g, reuse()).unwrap();
        assert!(!fresh.plan_cache_hit);
        assert_eq!(fresh.output.len(), cold.output.len() + 1);
    }

    #[test]
    fn run_many_serves_a_mixed_batch() {
        let engine = engine();
        let g1 = compile_query(Q_STEP).unwrap();
        let g2 = compile_query(Q_JOIN).unwrap();
        // Seed both shapes deterministically — a concurrent cold batch may
        // race several optimizing runs per shape, which would make any
        // hit-count assertion scheduling-dependent.
        engine.run(&g1, reuse()).unwrap();
        engine.run(&g2, reuse()).unwrap();
        let jobs: Vec<(&JoinGraph, RoxOptions)> = (0..8)
            .map(|i| (if i % 2 == 0 { &g1 } else { &g2 }, reuse()))
            .collect();
        let runs = engine.run_many(&jobs, Parallelism::Threads(4));
        assert_eq!(runs.len(), 8);
        let expect1 = run_rox(Arc::clone(engine.catalog()), &g1, RoxOptions::default()).unwrap();
        let expect2 = run_rox(Arc::clone(engine.catalog()), &g2, RoxOptions::default()).unwrap();
        for (i, run) in runs.into_iter().enumerate() {
            let run = run.unwrap();
            let expect = if i % 2 == 0 { &expect1 } else { &expect2 };
            assert_eq!(run.output, expect.output, "job {i}");
            assert!(run.plan_cache_hit, "warm job {i} missed the plan cache");
        }
        let stats = engine.stats();
        assert_eq!(stats.plan_hits, 8, "every warm job must replay: {stats:?}");
        assert_eq!(stats.plan_misses, 2);
        assert_eq!(stats.jobs_submitted, 8);
        assert_eq!(stats.jobs_served, 8);
        assert_eq!(stats.jobs_rejected, 0);
        assert_eq!(stats.queue_depth, 0);
    }

    #[test]
    fn try_submit_serves_tickets_and_counts_reconcile() {
        let engine = Arc::new(engine());
        let g = compile_query(Q_JOIN).unwrap();
        let expect = engine.run(&g, RoxOptions::default()).unwrap();
        let tickets: Vec<EngineTicket> = (0..6)
            .map(|_| engine.try_submit(&g, RoxOptions::default()).unwrap())
            .collect();
        for ticket in tickets {
            let outcome = ticket.wait();
            assert_eq!(outcome.result.unwrap().output, expect.output);
        }
        let stats = engine.stats();
        assert_eq!(stats.jobs_submitted, 6);
        assert_eq!(stats.jobs_served, 6);
        assert_eq!(stats.jobs_rejected, 0);
        assert_eq!(stats.jobs_aborted, 0);
        assert_eq!(stats.queue_depth, 0);
    }

    /// The bounded admission queue: with the lone worker pinned, the first
    /// `max_queued` submissions are admitted and the next is rejected with
    /// `Overloaded` — immediately, on the submitter's thread, without ever
    /// blocking or occupying a worker. After the worker is released every
    /// admitted ticket resolves and the counters reconcile.
    #[test]
    fn saturated_queue_rejects_with_overloaded() {
        use rox_par::WorkerPool;
        let cat = Arc::new(Catalog::new());
        cat.load_str("d.xml", SITE).unwrap();
        let engine = Arc::new(RoxEngine::with_workers(cat, Arc::new(WorkerPool::new(1))));
        let g = compile_query(Q_STEP).unwrap();

        // Pin the single worker on a gate so admitted jobs pile up queued.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g2 = Arc::clone(&gate);
        engine.workers().execute(move || {
            let (lock, cv) = &*g2;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
        });

        let options = RoxOptions {
            max_queued: Some(2),
            ..Default::default()
        };
        let t1 = engine.try_submit(&g, options).unwrap();
        let t2 = engine.try_submit(&g, options).unwrap();
        assert_eq!(engine.queue_depth(), 2);
        match engine.try_submit(&g, options) {
            Err(ServeError::Overloaded { queued, max_queued }) => {
                assert_eq!(queued, 2);
                assert_eq!(max_queued, 2);
            }
            other => panic!("expected Overloaded, got {:?}", other.map(|_| "ticket")),
        }

        // Release the worker; both admitted jobs must resolve.
        {
            let (lock, cv) = &*gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        assert!(t1.wait().result.is_ok());
        assert!(t2.wait().result.is_ok());
        let stats = engine.stats();
        assert_eq!(stats.jobs_submitted, 3);
        assert_eq!(stats.jobs_served, 2);
        assert_eq!(stats.jobs_rejected, 1);
        assert_eq!(stats.jobs_aborted, 0);
        assert_eq!(stats.queue_depth, 0);
        assert_eq!(
            stats.jobs_submitted,
            stats.jobs_served + stats.jobs_rejected + stats.jobs_aborted
        );
    }

    /// `run_many`'s closed-loop admission rule is deterministic in the job
    /// index: with a window of `threads` and a bound of `m`, exactly the
    /// jobs deeper than `threads + m` come back `Overloaded`.
    #[test]
    fn run_many_admission_is_deterministic() {
        let engine = engine();
        let g = compile_query(Q_STEP).unwrap();
        engine.run(&g, reuse()).unwrap();
        let options = RoxOptions {
            max_queued: Some(1),
            ..reuse()
        };
        let jobs: Vec<(&JoinGraph, RoxOptions)> = (0..6).map(|_| (&g, options)).collect();
        // Threads(2) over 6 jobs → a window of 2, so jobs 0..3 are
        // admitted (2 running + 1 queued) and 3..6 are rejected.
        let runs = engine.run_many(&jobs, Parallelism::Threads(2));
        for (i, run) in runs.iter().enumerate() {
            if i < 3 {
                assert!(run.is_ok(), "job {i} should be admitted");
            } else {
                assert!(
                    matches!(run, Err(ServeError::Overloaded { .. })),
                    "job {i} should be rejected"
                );
            }
        }
        let stats = engine.stats();
        // The seeding run() does not go through the serving path.
        assert_eq!(stats.jobs_submitted, 6);
        assert_eq!(stats.jobs_served, 3);
        assert_eq!(stats.jobs_rejected, 3);
    }

    /// A query failure inside an admitted job comes back through the
    /// ticket as `ServeError::Env`, and still counts as served.
    #[test]
    fn ticket_surfaces_query_errors() {
        let engine = Arc::new(engine());
        let g = compile_query(r#"for $a in doc("missing.xml")//a return $a"#).unwrap();
        let outcome = engine.try_submit(&g, RoxOptions::default()).unwrap().wait();
        assert!(matches!(outcome.result, Err(ServeError::Env(_))));
        let stats = engine.stats();
        assert_eq!(stats.jobs_served, 1);
        assert_eq!(stats.jobs_rejected, 0);
    }

    /// A document with enough structure that drift ratios clear the
    /// absolute floor: `auctions` auctions with `bidders` bidders each.
    fn sized_site(auctions: usize, bidders: usize) -> String {
        let mut xml = String::from("<site>");
        for i in 0..auctions {
            xml.push_str("<auction>");
            if i % 3 == 0 {
                xml.push_str("<cheap/>");
            }
            for b in 0..bidders {
                xml.push_str(&format!(
                    "<bidder><personref person=\"p{}\"/></bidder>",
                    b % 7
                ));
            }
            xml.push_str("</auction>");
        }
        for p in 0..7 {
            xml.push_str(&format!("<person id=\"p{p}\"/>"));
        }
        xml.push_str("</site>");
        xml
    }

    #[test]
    fn invalidate_document_bumps_the_stats_epoch_first() {
        let engine = engine();
        assert_eq!(engine.doc_epoch("d.xml"), 0);
        engine.invalidate_document("d.xml");
        assert_eq!(engine.doc_epoch("d.xml"), 1);
        engine.invalidate_document("d.xml");
        assert_eq!(engine.doc_epoch("d.xml"), 2);
        // Unknown documents have epoch 0 and bumping them is harmless.
        assert_eq!(engine.doc_epoch("other.xml"), 0);
    }

    #[test]
    fn reindex_keeps_plans_and_replay_revalidates() {
        let cat = Arc::new(Catalog::new());
        cat.load_str("d.xml", &sized_site(40, 2)).unwrap();
        let engine = RoxEngine::new(cat);
        let g = compile_query(Q_STEP).unwrap();
        let cold = engine.run(&g, reuse()).unwrap();
        // Refresh derived data without content drift: the plan survives
        // and the guarded replay revalidates it against the new indexes.
        engine
            .catalog()
            .load_str("d.xml", &sized_site(40, 2))
            .unwrap();
        engine.reindex_document("d.xml");
        assert_eq!(engine.stats().cached_plans, 1);
        let warm = engine.run(&g, reuse()).unwrap();
        assert_eq!(warm.mode, RunMode::Revalidated);
        assert!(warm.plan_cache_hit);
        assert_eq!(warm.output, cold.output);
        assert_eq!(engine.stats().plan_demotions, 0);
    }

    #[test]
    fn drifted_reindex_demotes_and_reseeds_the_plan() {
        let cat = Arc::new(Catalog::new());
        cat.load_str("d.xml", &sized_site(40, 1)).unwrap();
        let engine = RoxEngine::new(cat);
        let g = compile_query(Q_STEP).unwrap();
        engine.run(&g, reuse()).unwrap();
        // 20x more bidders per auction: the sampled spot check on the
        // step edge breaches long before DRIFT_RATIO allows.
        engine
            .catalog()
            .load_str("d.xml", &sized_site(40, 20))
            .unwrap();
        engine.reindex_document("d.xml");
        let drifted = engine.run(&g, reuse()).unwrap();
        assert!(
            matches!(drifted.mode, RunMode::Demoted { .. }),
            "{:?}",
            drifted.mode
        );
        assert!(!drifted.plan_cache_hit);
        assert!(drifted.spot_checks.iter().any(|c| c.breached));
        let stats = engine.stats();
        assert_eq!(stats.plan_demotions, 1);
        // Output matches a fresh optimizing run on the drifted catalog.
        let fresh = run_rox(Arc::clone(engine.catalog()), &g, RoxOptions::default()).unwrap();
        assert_eq!(drifted.output, fresh.output);
        // The cache now holds the refreshed plan and serves it cleanly.
        assert_eq!(stats.cached_plans, 1);
        let rewarm = engine.run(&g, reuse()).unwrap();
        assert_eq!(rewarm.mode, RunMode::Revalidated);
        assert_eq!(rewarm.output, fresh.output);
    }

    #[test]
    fn unknown_document_surfaces_as_env_error() {
        let engine = engine();
        let g = compile_query(r#"for $i in doc("nope.xml")//x return $i"#).unwrap();
        let e = engine.run(&g, reuse()).unwrap_err();
        assert!(e.message.contains("nope.xml"));
    }
}
