//! Reproduces **Figure 6**: normalized evaluation cost of ROX versus four
//! plan classes across document combinations, clustered by area group
//! (2:2 / 3:1 / 4:0) and sorted by correlation C.
//!
//! ```text
//! cargo run --release -p rox-bench --bin fig6_plan_classes -- \
//!     [--scale 1] [--size-factor 0.05] [--per-group 8] [--tau 100] [--seed 13] [--wall]
//! ```
//!
//! `--per-group 0` measures every combination (the paper's 831-point
//! scatter; expect a long runtime at larger size factors).

use rox_bench::args::Args;
use rox_bench::fig6::{self, group_averages, Fig6Config};

fn main() {
    let args = Args::from_env();
    let cfg = Fig6Config {
        scale: args.get("scale", 1),
        size_factor: args.get("size-factor", 0.05),
        per_group: args.get("per-group", 8),
        tau: args.get("tau", 100),
        seed: args.get("seed", 13),
    };
    let use_wall = args.has("wall");
    println!(
        "Figure 6 reproduction — scale ×{}, size factor {}, {} combos/group, τ={} ({} metric)\n",
        cfg.scale,
        cfg.size_factor,
        if cfg.per_group == 0 {
            "all".to_string()
        } else {
            cfg.per_group.to_string()
        },
        cfg.tau,
        if use_wall {
            "wall-clock"
        } else {
            "work-counter"
        },
    );
    let out = fig6::run(&cfg);
    println!(
        "{:<6} {:>10} {:>9} {:>10} {:>10} {:>10} {:>9} {:>9}  combo",
        "group", "corr C", "largest", "classical", "rox-order", "smallest", "rox-full", "rox-pure"
    );
    for r in &out.rows {
        let (lg, cl, ro, sm, rf, rp) = if use_wall {
            (
                r.wall.largest,
                r.wall.classical,
                r.wall.rox_order,
                r.wall.smallest,
                r.wall.rox_full,
                r.wall.rox_pure,
            )
        } else {
            (
                r.largest,
                r.classical,
                r.rox_order,
                r.smallest,
                r.rox_full,
                r.rox_pure,
            )
        };
        println!(
            "{:<6} {:>10.3} {:>9.2} {:>10.2} {:>10.2} {:>10.2} {:>9.2} {:>9.2}  {:?}",
            r.group, r.correlation, lg, cl, ro, sm, rf, rp, r.combo
        );
    }
    println!("\n--- group averages (work metric, normalized to fastest plan) ---");
    println!(
        "{:<6} {:>7} {:>9} {:>10} {:>10} {:>10} {:>9} {:>9}",
        "group", "combos", "largest", "classical", "rox-order", "smallest", "rox-full", "rox-pure"
    );
    for g in group_averages(&out.rows) {
        println!(
            "{:<6} {:>7} {:>9.2} {:>10.2} {:>10.2} {:>10.2} {:>9.2} {:>9.2}",
            g.group,
            g.combos,
            g.largest,
            g.classical,
            g.rox_order,
            g.smallest,
            g.rox_full,
            g.rox_pure
        );
    }
    println!("\n--- group averages (cumulative join rows vs best order, Fig. 5 metric) ---");
    println!(
        "{:<6} {:>7} {:>12} {:>12} {:>12}",
        "group", "combos", "classical", "rox", "largest"
    );
    for g in group_averages(&out.rows) {
        println!(
            "{:<6} {:>7} {:>12.1} {:>12.1} {:>12.1}",
            g.group, g.combos, g.classical_join_rows, g.rox_join_rows, g.largest_join_rows
        );
    }
    println!(
        "\nExpected shape (paper): rox-pure tracks smallest (≈1); classical degrades\n\
         with correlation, up to orders of magnitude; rox-full adds bounded sampling\n\
         overhead (paper: ~30% average, < 2× almost always)."
    );
}
