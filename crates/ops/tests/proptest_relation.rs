//! Algebraic property tests for [`Relation`]: compose/expand laws,
//! distinct/sort idempotence, tail invariants, and pooled-buffer
//! equivalence of the gather-based composition.

use proptest::prelude::*;
use rox_ops::{Cost, Relation, ScratchPool, Tail};
use rox_xmldb::catalog::DocId;
use rox_xmldb::Pre;

const D: DocId = DocId(0);

fn single_rel(var: u32) -> impl Strategy<Value = Relation> {
    prop::collection::vec(0u32..12, 0..20).prop_map(move |pres| Relation::single(var, D, pres))
}

fn pairs_strategy() -> impl Strategy<Value = Vec<(Pre, Pre)>> {
    prop::collection::vec((0u32..12, 0u32..12), 0..25)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn compose_cardinality_formula(left in single_rel(1), right in single_rel(2), pairs in pairs_strategy()) {
        let joined = Relation::compose(&left, 1, &right, 2, &pairs);
        // |join| = Σ over pairs of (left multiplicity × right multiplicity).
        let mult = |r: &Relation, var: u32, node: Pre| {
            r.col(var).iter().filter(|&&x| x == node).count()
        };
        let expected: usize = pairs
            .iter()
            .map(|&(a, b)| mult(&left, 1, a) * mult(&right, 2, b))
            .sum();
        prop_assert_eq!(joined.len(), expected);
    }

    #[test]
    fn compose_matches_naive_row_nested_loop(left in single_rel(1), right in single_rel(2), pairs in pairs_strategy()) {
        // Reference: the old per-pair row nested loop, reimplemented here.
        let mut expected = Relation::empty(vec![1, 2], vec![D, D]);
        for &(a, b) in &pairs {
            for (li, &lv) in left.col(1).iter().enumerate() {
                if lv != a { continue; }
                for (ri, &rv) in right.col(2).iter().enumerate() {
                    if rv != b { continue; }
                    let _ = (li, ri);
                    expected.push_row(&[lv, rv]);
                }
            }
        }
        let got = Relation::compose(&left, 1, &right, 2, &pairs);
        prop_assert_eq!(&got, &expected);
        // And the pooled variant is bit-identical to the plain one.
        let pool = ScratchPool::new();
        let pooled = Relation::compose_pooled(&left, 1, &right, 2, &pairs, Some(&pool));
        prop_assert_eq!(&pooled, &expected);
    }

    #[test]
    fn sparse_compose_matches_dense_semantics(
        left_raw in prop::collection::vec(0u32..50_000, 0..20),
        right_raw in prop::collection::vec(0u32..50_000, 0..20),
        picks in prop::collection::vec((0usize..24, 0usize..24), 0..25),
    ) {
        // Node values far above the row count force RowIndex's sorted
        // (binary-search) layout; pairs drawn from the actual columns so
        // matches exist. Reference: the row nested loop.
        let left = Relation::single(1, D, left_raw);
        let right = Relation::single(2, D, right_raw);
        let pairs: Vec<(Pre, Pre)> = picks
            .into_iter()
            .filter(|&(i, j)| i < left.len() && j < right.len())
            .map(|(i, j)| (left.col(1)[i], right.col(2)[j]))
            .collect();
        let mut expected = Relation::empty(vec![1, 2], vec![D, D]);
        for &(a, b) in &pairs {
            for &lv in left.col(1) {
                if lv != a { continue; }
                for &rv in right.col(2) {
                    if rv != b { continue; }
                    expected.push_row(&[lv, rv]);
                }
            }
        }
        let got = Relation::compose(&left, 1, &right, 2, &pairs);
        prop_assert_eq!(&got, &expected);
        let pool = ScratchPool::new();
        let pooled = Relation::compose_pooled(&left, 1, &right, 2, &pairs, Some(&pool));
        prop_assert_eq!(&pooled, &expected);
    }

    #[test]
    fn compose_is_symmetric_up_to_schema(left in single_rel(1), right in single_rel(2), pairs in pairs_strategy()) {
        let ab = Relation::compose(&left, 1, &right, 2, &pairs);
        let flipped: Vec<(Pre, Pre)> = pairs.iter().map(|&(a, b)| (b, a)).collect();
        let ba = Relation::compose(&right, 2, &left, 1, &flipped);
        prop_assert_eq!(ab.len(), ba.len());
        // Same multiset of (var1, var2) bindings.
        let mut x: Vec<(Pre, Pre)> =
            ab.col(1).iter().zip(ab.col(2)).map(|(&a, &b)| (a, b)).collect();
        let mut y: Vec<(Pre, Pre)> =
            ba.col(1).iter().zip(ba.col(2)).map(|(&a, &b)| (a, b)).collect();
        x.sort_unstable();
        y.sort_unstable();
        prop_assert_eq!(x, y);
    }

    #[test]
    fn distinct_is_idempotent(rel in single_rel(1)) {
        let mut once = rel.clone();
        once.distinct();
        let mut twice = once.clone();
        twice.distinct();
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn distinct_matches_hashset_reference(left in single_rel(1), right in single_rel(2), pairs in pairs_strategy()) {
        // Two-column relation so dedup works on real row tuples.
        let mut rel = Relation::compose(&left, 1, &right, 2, &pairs);
        // Reference: first-occurrence filter via a HashSet of rows (the
        // pre-vectorization implementation).
        let mut seen = std::collections::HashSet::new();
        let keep: Vec<bool> = (0..rel.len())
            .map(|i| seen.insert((rel.col(1)[i], rel.col(2)[i])))
            .collect();
        let mut expected = rel.clone();
        expected.retain_rows(&keep);
        rel.distinct();
        prop_assert_eq!(rel, expected);
    }

    #[test]
    fn sort_is_idempotent_and_stable_cardinality(rel in single_rel(1)) {
        let mut s1 = rel.clone();
        s1.sort_by(&[1]);
        prop_assert_eq!(s1.len(), rel.len());
        let mut s2 = s1.clone();
        s2.sort_by(&[1]);
        prop_assert_eq!(s1, s2);
    }

    #[test]
    fn tail_output_is_sorted_and_distinct(rel in single_rel(1)) {
        let tail = Tail { dedup_vars: vec![1], sort_vars: vec![1], output_vars: vec![1] };
        let out = tail.apply(&rel, &mut Cost::new());
        let col = out.col(1);
        prop_assert!(col.windows(2).all(|w| w[0] < w[1]), "strictly increasing after dedup");
        // Same distinct node set as the input.
        prop_assert_eq!(col.to_vec(), rel.distinct_nodes(1));
    }

    #[test]
    fn expand_preserves_left_bindings(rel in single_rel(1), raw in prop::collection::vec((0u32..20, 0u32..12), 0..20)) {
        let pairs: Vec<(u32, Pre)> = raw
            .into_iter()
            .filter(|(row, _)| (*row as usize) < rel.len())
            .collect();
        let ex = rel.expand(&pairs, 2, DocId(1));
        prop_assert_eq!(ex.len(), pairs.len());
        prop_assert_eq!(ex.doc_of(2), DocId(1));
        for (i, &(row, node)) in pairs.iter().enumerate() {
            prop_assert_eq!(ex.col(1)[i], rel.col(1)[row as usize]);
            prop_assert_eq!(ex.col(2)[i], node);
        }
    }
}
