//! Engine ↔ snapshot-storage integration: cold opens serve bit-identical
//! results without parsing or index builds, the buffer-pool ledger stays
//! coherent under eviction pressure, and the storage-event routing
//! guarantees a snapshot never serves an index from a superseded epoch.

use rox_core::{PlanReuse, RoxEngine, RoxOptions, StorageEventSink};
use rox_xmldb::{Catalog, DocId};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const SITE_V1: &str = r#"<site><open_auction><bidder><increase>12</increase></bidder><bidder><increase>30</increase></bidder><current>150</current></open_auction><open_auction><bidder><increase>7</increase></bidder><current>40</current></open_auction></site>"#;
const SITE_V2: &str = r#"<site><open_auction><bidder><increase>99</increase></bidder><current>500</current></open_auction></site>"#;

const QUERY: &str =
    r#"for $a in doc("site.xml")//open_auction, $b in $a/bidder, $i in $b/increase return $i"#;

fn snap_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("rox-engine-snap-{}-{name}.rox", std::process::id()));
    p
}

fn parsed_engine(xml: &str) -> RoxEngine {
    let catalog = Arc::new(Catalog::new());
    catalog.load_str("site.xml", xml).unwrap();
    RoxEngine::new(catalog)
}

fn run(engine: &RoxEngine) -> rox_ops::Relation {
    let graph = rox_joingraph::compile_query(QUERY).unwrap();
    engine.run(&graph, RoxOptions::default()).unwrap().output
}

#[test]
fn open_snapshot_serves_bit_identical_outputs_without_rebuilds() {
    let path = snap_path("bitident");
    let fresh = parsed_engine(SITE_V1);
    let expected = run(&fresh);
    let report = fresh.save_snapshot(&path).unwrap();
    assert_eq!(report.docs, 1);

    let engine = RoxEngine::open_snapshot(&path, None).unwrap();
    // Nothing resident before the first query.
    let id = engine.catalog().resolve("site.xml").unwrap();
    assert!(engine.catalog().get(id).is_none());
    let output = run(&engine);
    assert_eq!(
        output, expected,
        "snapshot-served output must be bit-identical"
    );

    let stats = engine.stats();
    assert_eq!(stats.index_builds, 0, "indexes must decode, not rebuild");
    assert!(stats.storage_loads >= 2, "doc + indexes faulted: {stats:?}");
    assert!(stats.pages.misses > 0, "pages were read: {stats:?}");
    assert_eq!(stats.snapshot_pages, report.pages as u64);
    assert!(stats.pages.capacity >= stats.pages.resident);
    std::fs::remove_file(&path).ok();
}

#[test]
fn eviction_pressure_keeps_results_and_ledger_coherent() {
    let path = snap_path("pressure");
    let fresh = parsed_engine(SITE_V1);
    let expected = run(&fresh);
    let report = fresh.save_snapshot(&path).unwrap();

    // A pool a quarter the catalog's size (floor 1).
    let frames = (report.pages as usize / 4).max(1);
    let engine = RoxEngine::open_snapshot(&path, Some(frames)).unwrap();
    for round in 0..3 {
        let released = if round == 0 {
            0
        } else {
            engine.release_residency()
        };
        if round > 0 {
            assert_eq!(released, 1, "round {round} released the document");
        }
        assert_eq!(run(&engine), expected, "round {round} output diverged");
    }
    let s = engine.stats().pages;
    assert_eq!(s.capacity, frames as u64);
    assert!(s.resident <= s.capacity, "ledger incoherent: {s:?}");
    assert!(s.evictions <= s.misses, "ledger incoherent: {s:?}");
    assert!(
        s.evictions > 0,
        "a quarter-size pool must have evicted: {s:?}"
    );
    assert!(s.hits + s.misses > 0);
    std::fs::remove_file(&path).ok();
}

/// The scan-resistance regression: under a pool half the catalog's size,
/// warm replays (residency released between rounds) must be *served
/// partly from the pool* — the two-cohort replacer keeps each segment's
/// reused pages resident where a recency-only replacer let every scan
/// flush them (this exact assertion was 0 hits before the 2Q policy).
#[test]
fn half_pool_warm_replay_keeps_reused_pages_resident() {
    let path = snap_path("halfpool");
    // A document big enough that half its pages is a real pool (small
    // pages keep the test deterministic and fast).
    let mut xml = String::from("<site>");
    for i in 0..150 {
        xml.push_str(&format!(
            "<open_auction><bidder><increase>{}</increase></bidder><current>{}</current></open_auction>",
            i % 40,
            i * 3
        ));
    }
    xml.push_str("</site>");
    let fresh = parsed_engine(&xml);
    let expected = run(&fresh);
    let report = rox_storage::Snapshot::save_with_page_size(&path, fresh.store(), 256).unwrap();
    let frames = (report.pages as usize / 2).max(1);

    let engine = RoxEngine::open_snapshot(&path, Some(frames)).unwrap();
    for round in 0..3 {
        if round > 0 {
            engine.release_residency();
        }
        assert_eq!(run(&engine), expected, "round {round} output diverged");
    }
    let s = engine.stats().pages;
    assert!(s.hits > 0, "half-size pool served zero page hits: {s:?}");
    assert_eq!(
        s.hits,
        s.probation_hits + s.protected_hits + s.prefetch_hits,
        "hit ledger incoherent: {s:?}"
    );
    assert!(s.prefetched > 0, "scan readahead never ran: {s:?}");
    assert!(
        s.ghost_promotions > 0,
        "replayed pages never re-admitted protected: {s:?}"
    );
    assert!(s.evictions <= s.misses, "ledger incoherent: {s:?}");
    std::fs::remove_file(&path).ok();
}

/// The eager cold path: a prefetched open decodes everything up front,
/// fanning the per-segment work across the engine's worker pool, so the
/// first query touches no storage at all.
#[test]
fn prefetched_open_is_resident_before_the_first_query() {
    let path = snap_path("prefetched");
    let fresh = parsed_engine(SITE_V1);
    let expected = run(&fresh);
    fresh.save_snapshot(&path).unwrap();

    let engine = RoxEngine::open_snapshot_prefetched(&path, None).unwrap();
    let id = engine.catalog().resolve("site.xml").unwrap();
    assert!(
        engine.catalog().get(id).is_some(),
        "document must be resident before the first query"
    );
    let after_open = engine.stats();
    assert!(
        after_open.storage_par_decodes >= 2,
        "decode must dispatch through the worker pool: {after_open:?}"
    );
    assert!(after_open.storage_loads >= 2, "doc + indexes installed");

    assert_eq!(run(&engine), expected, "prefetched output diverged");
    let stats = engine.stats();
    assert_eq!(stats.index_builds, 0, "indexes must decode, not rebuild");
    assert_eq!(
        stats.storage_loads, after_open.storage_loads,
        "the warm query must not fault anything else in"
    );
    std::fs::remove_file(&path).ok();
}

/// Records every event the engine routes through the sink.
#[derive(Default)]
struct RecordingSink {
    invalidated: AtomicU64,
    reindexed: AtomicU64,
    last_epoch: AtomicU64,
}

impl StorageEventSink for RecordingSink {
    fn document_invalidated(&self, uri: &str, id: Option<DocId>, epoch: u64) {
        assert_eq!(uri, "site.xml");
        assert!(id.is_some());
        self.invalidated.fetch_add(1, Ordering::SeqCst);
        self.last_epoch.store(epoch, Ordering::SeqCst);
    }

    fn document_reindexed(&self, uri: &str, id: Option<DocId>) {
        assert_eq!(uri, "site.xml");
        assert!(id.is_some());
        self.reindexed.fetch_add(1, Ordering::SeqCst);
    }
}

#[test]
fn invalidation_routes_through_sinks_and_kills_stored_epochs() {
    let path = snap_path("invalidate");
    let fresh = parsed_engine(SITE_V1);
    run(&fresh);
    fresh.save_snapshot(&path).unwrap();

    let engine = RoxEngine::open_snapshot(&path, None).unwrap();
    let sink = Arc::new(RecordingSink::default());
    engine.register_storage_sink(Arc::<RecordingSink>::clone(&sink));
    // Warm the snapshot path first: stored indexes served once.
    run(&engine);
    assert_eq!(engine.stats().index_builds, 0);

    // Reload with new content, then invalidate. The stored index segments
    // are from the v1 epoch and must never be served again.
    engine.catalog().load_str("site.xml", SITE_V2).unwrap();
    engine.invalidate_document("site.xml");
    assert_eq!(sink.invalidated.load(Ordering::SeqCst), 1);
    assert_eq!(sink.last_epoch.load(Ordering::SeqCst), 1);
    assert_eq!(engine.doc_epoch("site.xml"), 1);
    let snapshot = engine.snapshot().unwrap();
    assert_eq!(snapshot.stale_count(), 1, "snapshot must be marked stale");

    let v2_expected = run(&parsed_engine(SITE_V2));
    assert_eq!(run(&engine), v2_expected, "query must see the new epoch");
    assert!(
        engine.stats().index_builds >= 1,
        "the new epoch's indexes must be rebuilt from the live document"
    );

    // Residency sweeps must not evict the only current copy either.
    engine.release_residency();
    assert_eq!(run(&engine), v2_expected, "stale doc evicted by sweep");
    std::fs::remove_file(&path).ok();
}

#[test]
fn reindex_routes_through_sinks_and_rebuilds_from_live_content() {
    let path = snap_path("reindex");
    let fresh = parsed_engine(SITE_V1);
    run(&fresh);
    fresh.save_snapshot(&path).unwrap();

    let engine = RoxEngine::open_snapshot(&path, None).unwrap();
    let sink = Arc::new(RecordingSink::default());
    engine.register_storage_sink(Arc::<RecordingSink>::clone(&sink));
    run(&engine);

    engine.catalog().load_str("site.xml", SITE_V2).unwrap();
    engine.reindex_document("site.xml");
    assert_eq!(sink.reindexed.load(Ordering::SeqCst), 1);
    // No epoch bump on the reindex path — plans stay servable.
    assert_eq!(engine.doc_epoch("site.xml"), 0);
    assert_eq!(engine.snapshot().unwrap().stale_count(), 1);

    let v2_expected = run(&parsed_engine(SITE_V2));
    assert_eq!(run(&engine), v2_expected);
    std::fs::remove_file(&path).ok();
}

#[test]
fn plan_replay_works_across_a_snapshot_reopen() {
    let path = snap_path("replay");
    let fresh = parsed_engine(SITE_V1);
    let expected = run(&fresh);
    fresh.save_snapshot(&path).unwrap();

    let engine = RoxEngine::open_snapshot(&path, None).unwrap();
    let graph = rox_joingraph::compile_query(QUERY).unwrap();
    let options = RoxOptions {
        plan_reuse: PlanReuse::ReuseValidated,
        ..Default::default()
    };
    let cold = engine.run(&graph, options).unwrap();
    let warm = engine.run(&graph, options).unwrap();
    assert!(!cold.plan_cache_hit && warm.plan_cache_hit);
    assert_eq!(cold.output, expected);
    assert_eq!(warm.output, expected);
    std::fs::remove_file(&path).ok();
}
