//! Kernel-equivalence property tests for the vectorized staircase join:
//! the Merge (gallop) and Bitset kernels, the range-pruned Probe kernel,
//! and the `step_join` dispatch must all be **bit-identical** — pairs,
//! pair order, truncation point, reduction-factor bookkeeping, and every
//! [`Cost`] counter — to the pre-vectorization probe loop, reimplemented
//! verbatim below as the oracle. This is what guarantees the figure
//! harnesses' work counters cannot observe which kernel ran.

use proptest::prelude::*;
use rox_index::{ElementIndex, PreSet};
use rox_ops::{
    choose_step_kernel, step_join, step_join_kernel, Axis, Cost, JoinOut, ScratchPool, StepKernel,
    StepScratch,
};
use rox_xmldb::catalog::DocId;
use rox_xmldb::{Document, DocumentBuilder, NodeKind, Pre};

/// The seed (pre-vectorization) probe loop, verbatim: per context node,
/// walk the axis and binary-search every produced node — no range
/// pruning, no level-based bulk charges, no kernels.
fn seed_step_join(
    doc: &Document,
    axis: Axis,
    ctx: &[Pre],
    cands: &[Pre],
    limit: Option<usize>,
    cost: &mut Cost,
) -> JoinOut<Pre> {
    let mut out = JoinOut::with_limit(ctx.len(), limit);
    let limit = limit.unwrap_or(usize::MAX);
    'outer: for (row, &c) in ctx.iter().enumerate() {
        let row = row as u32;
        cost.charge_in(1);
        match axis {
            Axis::Descendant | Axis::DescendantOrSelf => {
                let lo = if axis == Axis::Descendant { c + 1 } else { c };
                let hi = doc.post(c);
                cost.charge_probe(1);
                let start = cands.partition_point(|&s| s < lo);
                for &s in &cands[start..] {
                    if s > hi {
                        break;
                    }
                    if doc.kind(s) == NodeKind::Attribute {
                        continue;
                    }
                    if out.emit(row, s, limit, cost) {
                        break 'outer;
                    }
                }
            }
            Axis::Child => {
                for s in doc.children(c) {
                    cost.charge_probe(1);
                    if cands.binary_search(&s).is_ok() && out.emit(row, s, limit, cost) {
                        break 'outer;
                    }
                }
            }
            Axis::Attribute => {
                for s in doc.attributes(c) {
                    cost.charge_probe(1);
                    if cands.binary_search(&s).is_ok() && out.emit(row, s, limit, cost) {
                        break 'outer;
                    }
                }
            }
            Axis::Parent => {
                if c != 0 {
                    let p = doc.parent(c);
                    cost.charge_probe(1);
                    if cands.binary_search(&p).is_ok() && out.emit(row, p, limit, cost) {
                        break 'outer;
                    }
                }
            }
            Axis::Ancestor | Axis::AncestorOrSelf => {
                let mut cur = c;
                if axis == Axis::AncestorOrSelf {
                    cost.charge_probe(1);
                    if cands.binary_search(&cur).is_ok() && out.emit(row, cur, limit, cost) {
                        break 'outer;
                    }
                }
                while cur != 0 {
                    cur = doc.parent(cur);
                    cost.charge_probe(1);
                    if cands.binary_search(&cur).is_ok() && out.emit(row, cur, limit, cost) {
                        break 'outer;
                    }
                    if cur == 0 {
                        break;
                    }
                }
            }
            Axis::Following => {
                let hi = doc.post(c);
                cost.charge_probe(1);
                let start = cands.partition_point(|&s| s <= hi);
                for &s in &cands[start..] {
                    if doc.kind(s) == NodeKind::Attribute {
                        continue;
                    }
                    if out.emit(row, s, limit, cost) {
                        break 'outer;
                    }
                }
            }
            Axis::Preceding => {
                cost.charge_probe(1);
                let end = cands.partition_point(|&s| s < c);
                for &s in &cands[..end] {
                    if doc.post(s) >= c || doc.kind(s) == NodeKind::Attribute {
                        continue;
                    }
                    if out.emit(row, s, limit, cost) {
                        break 'outer;
                    }
                }
            }
            Axis::FollowingSibling | Axis::PrecedingSibling => {
                if c == 0 {
                    continue;
                }
                let p = doc.parent(c);
                for s in doc.children(p) {
                    let keep = if axis == Axis::FollowingSibling {
                        s > c
                    } else {
                        s < c
                    };
                    if !keep {
                        continue;
                    }
                    cost.charge_probe(1);
                    if cands.binary_search(&s).is_ok() && out.emit(row, s, limit, cost) {
                        break 'outer;
                    }
                }
            }
            Axis::SelfAxis => {
                cost.charge_probe(1);
                if cands.binary_search(&c).is_ok() && out.emit(row, c, limit, cost) {
                    break 'outer;
                }
            }
        }
        out.ctx_done(row);
    }
    out
}

/// Random document driving the builder (same shape as
/// `proptest_staircase.rs`).
fn doc_strategy() -> impl Strategy<Value = Document> {
    prop::collection::vec((0u8..4, 0u8..4), 1..80).prop_map(|actions| {
        let names = ["a", "b", "c", "d"];
        let mut b = DocumentBuilder::new("prop.xml");
        let mut depth = 0usize;
        let mut attrs_ok = false;
        for (action, pick) in actions {
            match action {
                0 => {
                    b.start_element(names[pick as usize]);
                    depth += 1;
                    attrs_ok = true;
                }
                1 => {
                    if depth > 0 {
                        b.end_element();
                        depth -= 1;
                        attrs_ok = false;
                    }
                }
                2 => {
                    if depth > 0 {
                        b.text(&format!("t{pick}"));
                        attrs_ok = false;
                    }
                }
                _ => {
                    if depth > 0 && attrs_ok {
                        b.attribute(names[pick as usize], "v");
                    }
                }
            }
        }
        while depth > 0 {
            b.end_element();
            depth -= 1;
        }
        b.finish(DocId(0))
    })
}

const AXES: [Axis; 12] = [
    Axis::Child,
    Axis::Descendant,
    Axis::DescendantOrSelf,
    Axis::Parent,
    Axis::Ancestor,
    Axis::AncestorOrSelf,
    Axis::Following,
    Axis::Preceding,
    Axis::FollowingSibling,
    Axis::PrecedingSibling,
    Axis::SelfAxis,
    Axis::Attribute,
];

/// Context: a pseudo-random sorted subset of elements (single-node and
/// empty subsets included); candidates: a pseudo-random subset of the
/// axis-appropriate node kind, so range pruning and gallop restarts see
/// gaps.
fn inputs(doc: &Document, axis: Axis, seed: u64) -> (Vec<Pre>, Vec<Pre>) {
    let idx = ElementIndex::build(doc);
    let mut ctx: Vec<Pre> = idx
        .elements()
        .iter()
        .copied()
        .filter(|p| (p.wrapping_mul(2654435761).wrapping_add(seed as u32)) % 3 != 0)
        .collect();
    ctx.sort_unstable();
    let cands: Vec<Pre> = if axis == Axis::Attribute {
        idx.attributes().to_vec()
    } else {
        (0..doc.node_count() as Pre)
            .filter(|&p| doc.kind(p) != NodeKind::Attribute)
            .filter(|p| (p.wrapping_mul(40503).wrapping_add(seed as u32)) % 4 != 0)
            .collect()
    };
    (ctx, cands)
}

/// Assert one kernel run is bit-identical to the seed loop's output.
fn assert_matches_seed(
    doc: &Document,
    axis: Axis,
    ctx: &[Pre],
    cands: &[Pre],
    limit: Option<usize>,
    kernel: StepKernel,
    scratch: StepScratch<'_>,
) -> Result<(), String> {
    let mut seed_cost = Cost::new();
    let expect = seed_step_join(doc, axis, ctx, cands, limit, &mut seed_cost);
    let mut cost = Cost::new();
    let got = step_join_kernel(doc, axis, ctx, cands, limit, kernel, scratch, &mut cost);
    prop_assert_eq!(&got.pairs, &expect.pairs, "{:?} {:?} pairs", axis, kernel);
    prop_assert_eq!(
        got.truncated,
        expect.truncated,
        "{:?} {:?} truncation",
        axis,
        kernel
    );
    prop_assert_eq!(
        got.reduction_factor().to_bits(),
        expect.reduction_factor().to_bits(),
        "{:?} {:?} reduction factor",
        axis,
        kernel
    );
    prop_assert_eq!(cost, seed_cost, "{:?} {:?} cost counters", axis, kernel);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn all_kernels_match_seed_probe_loop(doc in doc_strategy(), seed in 0u64..1000) {
        for axis in AXES {
            let (ctx, cands) = inputs(&doc, axis, seed);
            for kernel in [StepKernel::Probe, StepKernel::Merge, StepKernel::Bitset] {
                assert_matches_seed(
                    &doc, axis, &ctx, &cands, None, kernel, StepScratch::default(),
                )?;
            }
        }
    }

    #[test]
    fn all_kernels_match_seed_under_cutoff(doc in doc_strategy(), seed in 0u64..1000, limit in 1usize..12) {
        // Small limits force mid-context (and mid-child-list) cut-off
        // hits; charge parity must hold at the exact truncation point.
        for axis in AXES {
            let (ctx, cands) = inputs(&doc, axis, seed);
            for kernel in [StepKernel::Probe, StepKernel::Merge, StepKernel::Bitset] {
                assert_matches_seed(
                    &doc, axis, &ctx, &cands, Some(limit), kernel, StepScratch::default(),
                )?;
            }
        }
    }

    #[test]
    fn cached_set_and_pool_change_nothing(doc in doc_strategy(), seed in 0u64..1000) {
        let pool = ScratchPool::new();
        for axis in AXES {
            let (ctx, cands) = inputs(&doc, axis, seed);
            let universe = cands.last().map_or(0, |&p| p as usize + 1);
            let set = PreSet::from_nodes(universe, &cands);
            for scratch in [
                StepScratch { cands_set: Some(&set), pool: None },
                StepScratch { cands_set: None, pool: Some(&pool) },
                StepScratch { cands_set: Some(&set), pool: Some(&pool) },
            ] {
                assert_matches_seed(&doc, axis, &ctx, &cands, None, StepKernel::Bitset, scratch)?;
            }
        }
    }

    #[test]
    fn dispatch_equals_chosen_kernel(doc in doc_strategy(), seed in 0u64..1000, raw_limit in 0usize..12) {
        // raw_limit == 0 encodes "no cut-off".
        let limit = (raw_limit > 0).then_some(raw_limit);
        for axis in AXES {
            let (ctx, cands) = inputs(&doc, axis, seed);
            let kernel = choose_step_kernel(axis, ctx.len(), cands.len(), limit.is_some());
            if limit.is_some() {
                prop_assert_eq!(kernel, StepKernel::Probe, "sampled mode must stay zero-investment");
            }
            let mut c1 = Cost::new();
            let via_dispatch = step_join(&doc, axis, &ctx, &cands, limit, &mut c1);
            let mut c2 = Cost::new();
            let via_kernel = step_join_kernel(
                &doc, axis, &ctx, &cands, limit, kernel, StepScratch::default(), &mut c2,
            );
            prop_assert_eq!(via_dispatch.pairs, via_kernel.pairs);
            prop_assert_eq!(c1, c2);
        }
    }

    #[test]
    fn empty_and_single_node_edges(doc in doc_strategy()) {
        let idx = ElementIndex::build(&doc);
        let elements = idx.elements().to_vec();
        let one: Vec<Pre> = elements.iter().copied().take(1).collect();
        for axis in AXES {
            for kernel in [StepKernel::Probe, StepKernel::Merge, StepKernel::Bitset] {
                // Empty candidates: every context still pays its walk.
                assert_matches_seed(&doc, axis, &elements, &[], None, kernel, StepScratch::default())?;
                // Empty context.
                assert_matches_seed(&doc, axis, &[], &elements, None, kernel, StepScratch::default())?;
                // Single context node, single candidate.
                assert_matches_seed(&doc, axis, &one, &one, None, kernel, StepScratch::default())?;
            }
        }
    }
}
