//! Figure 6 benchmark: one correlated (3:1) combination measured across
//! plan classes, plus the ROX full run vs its pure-plan replay.

use criterion::{criterion_group, criterion_main, Criterion};
use rox_bench::fig6::measure_combo;
use rox_core::{run_plan_with_env, run_rox_with_env, RoxEnv, RoxOptions};
use rox_datagen::{dblp_query, venue_index};
use std::hint::black_box;
use std::sync::Arc;

fn bench_measure_combo(c: &mut Criterion) {
    let setup = rox_bench::dblp_catalog(1, 0.04, 13);
    let combo = [
        venue_index("VLDB"),
        venue_index("ICDE"),
        venue_index("ICIP"),
        venue_index("ADBIS"),
    ];
    c.bench_function("fig6/measure_combo_54_plans", |b| {
        b.iter(|| black_box(measure_combo(&setup, combo, 100, 13)))
    });
}

fn bench_rox_full_vs_pure(c: &mut Criterion) {
    let setup = rox_bench::dblp_catalog(1, 0.1, 13);
    let combo = [
        venue_index("VLDB"),
        venue_index("ICDE"),
        venue_index("ICIP"),
        venue_index("ADBIS"),
    ];
    let graph = rox_joingraph::compile_query(&dblp_query(&combo)).unwrap();
    let env = RoxEnv::new(Arc::clone(&setup.catalog), &graph).unwrap();
    let report = run_rox_with_env(&env, &graph, RoxOptions::default()).unwrap();
    let order = report.executed_order.clone();
    let mut group = c.benchmark_group("fig6");
    group.bench_function("rox_full_run", |b| {
        b.iter(|| black_box(run_rox_with_env(&env, &graph, RoxOptions::default()).unwrap()))
    });
    group.bench_function("rox_pure_plan", |b| {
        b.iter(|| black_box(run_plan_with_env(&env, &graph, &order).unwrap()))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_rox_full_vs_pure, bench_measure_combo
}
criterion_main!(benches);
