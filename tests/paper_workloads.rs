//! Integration tests on the paper's two workloads: the XMark example of
//! §3.2 and the DBLP template of §4.1 — checking result correctness
//! against the naive oracle and plan quality against the enumerated space.

use rox_core::{
    analyze_star, classical_join_order, enumerate_join_orders, naive_evaluate, plan_edges,
    run_plan_with_env, run_rox_with_env, Placement, RoxEnv, RoxOptions,
};
use rox_datagen::{
    dblp_query, generate_dblp, generate_xmark, venue_index, xmark_query, DblpConfig, XmarkConfig,
};
use rox_xmldb::Catalog;
use std::sync::Arc;

#[test]
fn xmark_q1_and_qm1_match_naive() {
    let catalog = Arc::new(Catalog::new());
    generate_xmark(
        &catalog,
        "xmark.xml",
        &XmarkConfig {
            persons: 120,
            items: 100,
            auctions: 100,
            ..XmarkConfig::default()
        },
    );
    for op in ["<", ">"] {
        let graph = rox_joingraph::compile_query(&xmark_query(op, 145.0)).unwrap();
        let env = RoxEnv::new(Arc::clone(&catalog), &graph).unwrap();
        let (_, naive_out) = naive_evaluate(&env, &graph);
        let report = run_rox_with_env(&env, &graph, RoxOptions::default()).unwrap();
        assert_eq!(report.output, naive_out, "variant current {op} 145");
        assert!(!report.output.is_empty(), "workload must be non-trivial");
    }
}

#[test]
fn xmark_correlation_shows_in_bidder_intermediates() {
    // §3.2: for near-equal auction counts, Qm1 (expensive auctions) must
    // process several times more bidder-side tuples than Q1 — the hidden
    // correlation. We compare the *total* work of replaying each query's
    // own plan, and the maximum step-result sizes.
    let catalog = Arc::new(Catalog::new());
    generate_xmark(
        &catalog,
        "xmark.xml",
        &XmarkConfig {
            persons: 300,
            items: 250,
            auctions: 300,
            ..XmarkConfig::default()
        },
    );
    let mut max_rows = Vec::new();
    for op in ["<", ">"] {
        let graph = rox_joingraph::compile_query(&xmark_query(op, 145.0)).unwrap();
        let env = RoxEnv::new(Arc::clone(&catalog), &graph).unwrap();
        let report = run_rox_with_env(&env, &graph, RoxOptions::default()).unwrap();
        max_rows.push(
            report
                .edge_log
                .iter()
                .map(|x| x.result_rows)
                .max()
                .unwrap_or(0),
        );
    }
    assert!(
        max_rows[1] as f64 >= max_rows[0] as f64 * 1.5,
        "Qm1's largest intermediate ({}) must dwarf Q1's ({})",
        max_rows[1],
        max_rows[0]
    );
}

#[test]
fn dblp_rox_matches_every_enumerated_plan() {
    let catalog = Arc::new(Catalog::new());
    let corpus = generate_dblp(
        &catalog,
        &DblpConfig {
            size_factor: 0.02,
            ..DblpConfig::default()
        },
    );
    let _ = corpus;
    let combo = [
        venue_index("SIGMOD"),
        venue_index("ICDE"),
        venue_index("ICIP"),
        venue_index("ADBIS"),
    ];
    let graph = rox_joingraph::compile_query(&dblp_query(&combo)).unwrap();
    let env = RoxEnv::new(Arc::clone(&catalog), &graph).unwrap();
    let star = analyze_star(&graph).unwrap();
    let rox = run_rox_with_env(&env, &graph, RoxOptions::default()).unwrap();
    for order in enumerate_join_orders(4) {
        for placement in Placement::ALL {
            let edges = plan_edges(&graph, &star, &order, placement);
            let run = run_plan_with_env(&env, &graph, &edges).unwrap();
            assert_eq!(
                run.output, rox.output,
                "order {} placement {:?}",
                order.name, placement
            );
        }
    }
}

#[test]
fn rox_beats_or_matches_classical_on_correlated_combo() {
    // The Fig. 5 combination: three DB venues + ICIP. The classical
    // smallest-input-first order joins ADBIS and ICDE first (both DB,
    // correlated); ROX should find an order with fewer cumulative
    // intermediates.
    let catalog = Arc::new(Catalog::new());
    let corpus = generate_dblp(
        &catalog,
        &DblpConfig {
            size_factor: 0.08,
            ..DblpConfig::default()
        },
    );
    let _ = corpus;
    let combo = [
        venue_index("VLDB"),
        venue_index("ICDE"),
        venue_index("ICIP"),
        venue_index("ADBIS"),
    ];
    let graph = rox_joingraph::compile_query(&dblp_query(&combo)).unwrap();
    let env = RoxEnv::new(Arc::clone(&catalog), &graph).unwrap();
    let star = analyze_star(&graph).unwrap();

    let rox = run_rox_with_env(&env, &graph, RoxOptions::default()).unwrap();
    let rox_pure = run_plan_with_env(&env, &graph, &rox.executed_order).unwrap();

    let classical = classical_join_order(&env, &graph, &star);
    let classical_cost = Placement::ALL
        .iter()
        .map(|&p| {
            run_plan_with_env(&env, &graph, &plan_edges(&graph, &star, &classical, p))
                .unwrap()
                .cost
                .total()
        })
        .min()
        .unwrap();
    // ROX's replayed plan should not be significantly worse than the
    // classical baseline's best placement (it usually wins).
    assert!(
        (rox_pure.cost.total() as f64) <= classical_cost as f64 * 1.5,
        "rox pure {} vs classical {}",
        rox_pure.cost.total(),
        classical_cost
    );
}

#[test]
fn dblp_results_scale_linearly() {
    let combo = [
        venue_index("KDD"),
        venue_index("ICDM"),
        venue_index("MLDM"),
        venue_index("BIOKDD"),
    ];
    let mut sizes = Vec::new();
    for scale in [1usize, 3] {
        let catalog = Arc::new(Catalog::new());
        generate_dblp(
            &catalog,
            &DblpConfig {
                scale,
                size_factor: 0.05,
                ..DblpConfig::default()
            },
        );
        let graph = rox_joingraph::compile_query(&dblp_query(&combo)).unwrap();
        let report = run_rox_with_env(
            &RoxEnv::new(Arc::clone(&catalog), &graph).unwrap(),
            &graph,
            RoxOptions::default(),
        )
        .unwrap();
        sizes.push(report.output.len());
    }
    // Replica suffixes prevent cross-replica joins: result scales ×3.
    assert_eq!(sizes[1], 3 * sizes[0]);
}
