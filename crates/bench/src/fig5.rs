//! Figure 5: impact of the join order on cumulative intermediate join
//! result sizes, for the VLDB / ICDE / ICIP / ADBIS combination.
//!
//! Due to the correlation among the three DB venues, join orders that
//! bring the IR venue (ICIP) in last must process up to orders of
//! magnitude more intermediate data than those starting with it. ROX must
//! find an ICIP-early order; the classical optimizer (which cannot see
//! cross-document correlation) generally does not.

use crate::setup::{dblp_catalog, extract_join_order, DblpSetup};
use rox_core::{
    analyze_star, classical_join_order, enumerate_join_orders, plan_edges, run_plan_with_env,
    run_rox_with_env, JoinOrder, Placement, RoxOptions,
};
use rox_datagen::{dblp_query, venue_index};

/// Configuration for the Fig. 5 reproduction.
#[derive(Debug, Clone)]
pub struct Fig5Config {
    /// Replication scale (the paper uses ×100).
    pub scale: usize,
    /// Document size factor (1.0 = full Table 3 counts).
    pub size_factor: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for Fig5Config {
    fn default() -> Self {
        Fig5Config {
            scale: 1,
            size_factor: 0.2,
            seed: 9,
        }
    }
}

/// One join order's measured result.
#[derive(Debug, Clone)]
pub struct OrderResult {
    /// The order's display name (paper's legend notation).
    pub name: String,
    /// Cumulative (intermediate) join result cardinality.
    pub cumulative_join_rows: u64,
    /// Marked when the classical optimizer picks this order.
    pub is_classical: bool,
    /// Marked when ROX picks this order.
    pub is_rox: bool,
}

/// Full output of the experiment.
#[derive(Debug)]
pub struct Fig5Output {
    /// Results per join order, in legend order.
    pub orders: Vec<OrderResult>,
    /// The classical optimizer's order name.
    pub classical: String,
    /// ROX's chosen order name.
    pub rox: String,
    /// ROX's own cumulative join rows (its actual run).
    pub rox_cumulative: u64,
}

/// Run the experiment. Documents 1..4 are VLDB, ICDE, ICIP, ADBIS as in
/// the paper's legend.
pub fn run(cfg: &Fig5Config) -> Fig5Output {
    let setup: DblpSetup = dblp_catalog(cfg.scale, cfg.size_factor, cfg.seed);
    let combo = [
        venue_index("VLDB"),
        venue_index("ICDE"),
        venue_index("ICIP"),
        venue_index("ADBIS"),
    ];
    let graph = rox_joingraph::compile_query(&dblp_query(&combo)).unwrap();
    let star = analyze_star(&graph).expect("DBLP query is a star");
    let env = setup.engine.session(&graph).unwrap();

    let classical = classical_join_order(&env, &graph, &star);
    let rox_report = run_rox_with_env(
        &env,
        &graph,
        RoxOptions {
            seed: cfg.seed,
            ..Default::default()
        },
    )
    .unwrap();
    let rox_order = extract_join_order(&graph, &star, &rox_report.executed_order);

    let same_merges = |a: &JoinOrder, b: &JoinOrder| {
        crate::setup::order_signature(&a.merges) == crate::setup::order_signature(&b.merges)
    };
    let mut orders = Vec::new();
    for order in enumerate_join_orders(4) {
        let edges = plan_edges(&graph, &star, &order, Placement::SJ);
        let run = run_plan_with_env(&env, &graph, &edges).unwrap();
        orders.push(OrderResult {
            is_classical: same_merges(&order, &classical),
            is_rox: same_merges(&order, &rox_order),
            name: order.name,
            cumulative_join_rows: run.cumulative_join_rows,
        });
    }
    Fig5Output {
        orders,
        classical: classical.name,
        rox: rox_order.name,
        rox_cumulative: rox_report
            .edge_log
            .iter()
            .filter(|x| {
                matches!(
                    graph.edge(x.edge).kind,
                    rox_joingraph::EdgeKind::EquiJoin { .. }
                )
            })
            .map(|x| x.result_rows as u64)
            .sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rox_order_is_near_optimal() {
        let out = run(&Fig5Config {
            scale: 1,
            size_factor: 0.05,
            seed: 11,
        });
        assert_eq!(out.orders.len(), 18);
        let best = out
            .orders
            .iter()
            .map(|o| o.cumulative_join_rows)
            .min()
            .unwrap();
        let worst = out
            .orders
            .iter()
            .map(|o| o.cumulative_join_rows)
            .max()
            .unwrap();
        assert!(worst > best, "orders must differ");
        // ROX's chosen order must be within a small factor of the best
        // enumerated order (the paper: ROX finds the smallest).
        let rox = out
            .orders
            .iter()
            .find(|o| o.is_rox)
            .map(|o| o.cumulative_join_rows)
            .unwrap_or(out.rox_cumulative);
        assert!(
            (rox as f64) <= (best as f64) * 4.0 + 16.0,
            "ROX picked a bad order: {rox} vs best {best} (worst {worst})"
        );
    }

    #[test]
    fn icip_early_orders_beat_icip_late() {
        // Doc 3 = ICIP (IR among three DB venues).
        let out = run(&Fig5Config {
            scale: 1,
            size_factor: 0.05,
            seed: 11,
        });
        let avg = |f: &dyn Fn(&str) -> bool| {
            let xs: Vec<u64> = out
                .orders
                .iter()
                .filter(|o| f(&o.name))
                .map(|o| o.cumulative_join_rows)
                .collect();
            xs.iter().sum::<u64>() as f64 / xs.len() as f64
        };
        // Orders starting with a pair containing 3 vs orders ending on 3.
        let early = avg(&|n: &str| n.starts_with("(3-") || n.contains("-3)"));
        let late = avg(&|n: &str| n.ends_with("-3"));
        assert!(
            late > early,
            "ICIP-late orders should accumulate more: early {early}, late {late}"
        );
    }
}
