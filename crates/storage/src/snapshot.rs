//! Snapshot save/open: persisting a shredded catalog and its indices as a
//! page file, and faulting them back in through the buffer pool.
//!
//! ## File layout
//!
//! Page 0 is the header page; its payload is:
//!
//! | field        | type  | meaning                                  |
//! |--------------|-------|------------------------------------------|
//! | magic        | 8 B   | `"ROXSNAP1"`                             |
//! | version      | `u32` | format version (currently 2)             |
//! | page_size    | `u32` | page size the file was written with      |
//! | page_count   | `u32` | total pages including this one           |
//! | symbols seg  | `u32`+`u64` | first page + byte length           |
//! | directory seg| `u32`+`u64` | first page + byte length           |
//!
//! Everything else lives in *segments* — page-aligned byte streams (see
//! [`crate::bytes`]): per document one **document segment** (the six
//! Pre-columnar node-table columns) and one **index segment** (element
//! index groups, CSR value tables, numeric runs), then the **symbol heap**
//! (the interner dump) and the **directory** (URI → segment locations).
//! The header page is written last, so a crash mid-save leaves a file
//! that fails header validation instead of a plausible half-snapshot.
//!
//! Since format version 2 every integer column travels as a *packed run*
//! ([`crate::bytes::RunCodec`]): sorted `Pre` postings, CSR offsets, and
//! near-sequential node columns as delta + varint, high-entropy symbol
//! columns bitpacked to the width of their largest value — whichever is
//! smaller per run, the choice tagged in the stream and summarized per
//! segment in the directory (`u8` codec masks). Only `f64` payloads and
//! the symbol heap's string blob stay raw. This is what turns a snapshot
//! ~2.5× the source XML into one smaller than it.
//!
//! ## Determinism
//!
//! The encoder is fully deterministic for a given catalog state: documents
//! are written in id order, element-index groups sorted by symbol, `f64`
//! as raw bits. Saving the same catalog twice yields byte-identical files,
//! which is what the committed golden fixture in CI leans on to detect
//! accidental format changes.

use crate::bytes::{ByteReader, ByteWriter, RunCodec, SegmentReader, SliceReader};
use crate::error::{Result, StorageError};
use crate::file::{read_header_payload, FileManager};
use crate::page::{encode_page, DEFAULT_PAGE_SIZE, MIN_PAGE_SIZE, PAGE_HEADER};
use crate::pool::{BufferPool, PoolStats};
use parking_lot::RwLock;
use rox_index::{DocIndexes, DocSource, ElementIndex, IndexedStore, SymbolTable, ValueIndex};
use rox_par::WorkerPool;
use rox_xmldb::{Catalog, DocId, Document, Interner, NodeKind, Pre, Symbol};
use std::collections::HashSet;
use std::fs::File;
use std::io::{Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// File magic of a snapshot header page payload.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"ROXSNAP1";

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 2;

/// What one [`Snapshot::save`] wrote.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SaveReport {
    /// Documents persisted.
    pub docs: usize,
    /// Total pages written, including the header page.
    pub pages: u32,
    /// Total file size in bytes.
    pub file_bytes: u64,
    /// Page size used.
    pub page_size: usize,
    /// Logical segment bytes actually written (compressed).
    pub payload_bytes: u64,
    /// What the segments would have occupied with raw 4-byte columns
    /// (the v1 format) — `payload_bytes / raw_payload_bytes` is the
    /// compression ratio before page framing.
    pub raw_payload_bytes: u64,
    /// Fsyncs issued to make the save durable: the file itself plus its
    /// parent directory (a file fsync alone does not persist the new
    /// directory entry across power failure).
    pub fsyncs: u32,
}

/// Location of one segment: first page and logical byte length.
#[derive(Debug, Clone, Copy)]
struct SegmentLoc {
    first_page: u32,
    len: u64,
}

/// One directory entry: where a document and its indices live, plus the
/// [`RunCodec`] mask each segment's packed runs used.
struct DocEntry {
    uri: String,
    doc_seg: SegmentLoc,
    doc_mask: u8,
    index_seg: SegmentLoc,
    index_mask: u8,
}

/// A fully encoded snapshot, not yet written anywhere: the header page
/// payload, every segment tagged with its first page, and the report the
/// writer will finish (its `fsyncs` field is the writer's to fill).
struct EncodedSnapshot {
    header: Vec<u8>,
    segments: Vec<(u32, Vec<u8>)>,
    report: SaveReport,
}

/// Encode every document of `store`'s catalog (plus indices) into page-
/// aligned segments and the header payload, in deterministic id order.
fn encode_snapshot(store: &IndexedStore, page_size: usize) -> EncodedSnapshot {
    assert!(
        page_size >= MIN_PAGE_SIZE,
        "page size {page_size} below minimum {MIN_PAGE_SIZE}"
    );
    let catalog = store.catalog();
    let payload_per_page = page_size - PAGE_HEADER;
    let pages_of = |len: u64| -> u32 { (len.div_ceil(payload_per_page as u64)) as u32 };

    let mut next_page = 1u32; // page 0 is the header
    let mut entries = Vec::new();
    let mut segments: Vec<(u32, Vec<u8>)> = Vec::new();
    let mut payload_bytes = 0u64;
    let mut raw_payload_bytes = 0u64;
    let mut place = |w: ByteWriter, next_page: &mut u32| -> (SegmentLoc, u8) {
        let mask = w.codec_mask();
        payload_bytes += w.len() as u64;
        raw_payload_bytes += w.raw_len();
        let bytes = w.into_bytes();
        let loc = SegmentLoc {
            first_page: *next_page,
            len: bytes.len() as u64,
        };
        *next_page += pages_of(bytes.len() as u64);
        segments.push((loc.first_page, bytes));
        (loc, mask)
    };
    for id in catalog.doc_ids() {
        let doc = store.doc(id);
        let indexes = store.indexes(id);
        let (doc_seg, doc_mask) = place(encode_document(&doc), &mut next_page);
        let (index_seg, index_mask) = place(encode_indexes(&indexes), &mut next_page);
        entries.push(DocEntry {
            uri: doc.uri().to_string(),
            doc_seg,
            doc_mask,
            index_seg,
            index_mask,
        });
    }

    // Symbol heap after all documents/indices are encoded, so every
    // symbol they reference is present.
    let (symbols_seg, _) = place(encode_symbols(catalog.interner()), &mut next_page);
    let (dir_seg, _) = place(encode_directory(&entries), &mut next_page);
    let page_count = next_page;

    let mut h = ByteWriter::new();
    h.put_u8(SNAPSHOT_MAGIC[0]);
    for &b in &SNAPSHOT_MAGIC[1..] {
        h.put_u8(b);
    }
    h.put_u32(SNAPSHOT_VERSION);
    h.put_u32(page_size as u32);
    h.put_u32(page_count);
    h.put_u32(symbols_seg.first_page);
    h.put_u64(symbols_seg.len);
    h.put_u32(dir_seg.first_page);
    h.put_u64(dir_seg.len);

    EncodedSnapshot {
        header: h.into_bytes(),
        segments,
        report: SaveReport {
            docs: entries.len(),
            pages: page_count,
            file_bytes: page_count as u64 * page_size as u64,
            page_size,
            payload_bytes,
            raw_payload_bytes,
            fsyncs: 0,
        },
    }
}

/// Namespace for snapshot save/open.
pub struct Snapshot;

impl Snapshot {
    /// Persist every document of `store`'s catalog (plus its element and
    /// value indices, building any that are missing) to a page file at
    /// `path`, using [`DEFAULT_PAGE_SIZE`] pages.
    pub fn save(path: &Path, store: &IndexedStore) -> Result<SaveReport> {
        Self::save_with_page_size(path, store, DEFAULT_PAGE_SIZE)
    }

    /// As [`Snapshot::save`] with an explicit page size (tests use tiny
    /// pages to force multi-page segments and eviction pressure).
    pub fn save_with_page_size(
        path: &Path,
        store: &IndexedStore,
        page_size: usize,
    ) -> Result<SaveReport> {
        let enc = encode_snapshot(store, page_size);
        let payload_per_page = page_size - PAGE_HEADER;

        // Write: zeroed header placeholder, then segment pages, then the
        // real header — a torn save never validates.
        let mut file = File::create(path)?;
        file.write_all(&vec![0u8; page_size])?;
        for (first_page, bytes) in &enc.segments {
            if bytes.is_empty() {
                continue;
            }
            for (i, chunk) in bytes.chunks(payload_per_page).enumerate() {
                file.write_all(&encode_page(first_page + i as u32, chunk, page_size))?;
            }
        }
        file.seek(SeekFrom::Start(0))?;
        file.write_all(&encode_page(0, &enc.header, page_size))?;
        file.sync_all()?;
        // The file's durability is not the save's durability: its
        // *directory entry* lives in the parent directory's data, which
        // needs its own fsync to survive power failure.
        crate::file::sync_parent_dir(path)?;
        let mut report = enc.report;
        report.fsyncs = 2;
        Ok(report)
    }

    /// Encode the whole snapshot as one contiguous page-file image
    /// (header page first). The checkpoint path writes this image to a
    /// temporary file and renames it into place — atomicity comes from
    /// the rename, not from header-last ordering, so the header can lead.
    pub fn encode_image(store: &IndexedStore, page_size: usize) -> (Vec<u8>, SaveReport) {
        let enc = encode_snapshot(store, page_size);
        let payload_per_page = page_size - PAGE_HEADER;
        let mut image = Vec::with_capacity(enc.report.file_bytes as usize);
        image.extend_from_slice(&encode_page(0, &enc.header, page_size));
        for (first_page, bytes) in &enc.segments {
            if bytes.is_empty() {
                continue;
            }
            for (i, chunk) in bytes.chunks(payload_per_page).enumerate() {
                image.extend_from_slice(&encode_page(first_page + i as u32, chunk, page_size));
            }
        }
        debug_assert_eq!(image.len() as u64, enc.report.file_bytes);
        (image, enc.report)
    }

    /// Open the snapshot at `path`: validate the header, restore the
    /// symbol heap and directory eagerly, and return a catalog with every
    /// stored URI *reserved but not resident* plus the [`SnapshotSource`]
    /// that faults content in on first touch.
    ///
    /// `frames` bounds the buffer pool (in pages); `None` sizes it to hold
    /// the whole file — pass a fraction of
    /// [`SnapshotSource::page_count`] to run catalogs larger than the
    /// pool.
    pub fn open(path: &Path, frames: Option<usize>) -> Result<(Arc<Catalog>, Arc<SnapshotSource>)> {
        let (file, header) = read_header_payload(path)?;
        let bad = |reason: String| StorageError::Format(reason);
        if header.len() < 40 {
            return Err(bad(format!(
                "header payload too short: {} bytes",
                header.len()
            )));
        }
        if header[..8] != SNAPSHOT_MAGIC {
            return Err(bad("not a ROX snapshot (bad magic)".to_string()));
        }
        let word = |at: usize| u32::from_le_bytes(header[at..at + 4].try_into().unwrap());
        let long = |at: usize| u64::from_le_bytes(header[at..at + 8].try_into().unwrap());
        let version = word(8);
        if version != SNAPSHOT_VERSION {
            return Err(bad(format!(
                "unsupported snapshot version {version} (expected {SNAPSHOT_VERSION})"
            )));
        }
        let page_size = word(12) as usize;
        if page_size < MIN_PAGE_SIZE {
            return Err(bad(format!("implausible page size {page_size}")));
        }
        let page_count = word(16);
        let symbols_seg = SegmentLoc {
            first_page: word(20),
            len: long(24),
        };
        let dir_seg = SegmentLoc {
            first_page: word(32),
            len: long(36),
        };
        let file = FileManager::new(file, page_size, page_count);
        let pool = BufferPool::new(frames.unwrap_or(page_count as usize));

        // Each segment is drained in one readahead-batched scan and
        // decoded from memory (see [`SegmentReader::read_all`]).
        let interner = {
            let bytes =
                SegmentReader::new_scan(&pool, &file, symbols_seg.first_page, symbols_seg.len)
                    .read_all()?;
            Arc::new(decode_symbols(&mut SliceReader::new(&bytes))?)
        };
        let dir = {
            let bytes = SegmentReader::new_scan(&pool, &file, dir_seg.first_page, dir_seg.len)
                .read_all()?;
            decode_directory(&mut SliceReader::new(&bytes))?
        };
        let catalog = Arc::new(Catalog::with_interner(Arc::clone(&interner)));
        for (i, entry) in dir.iter().enumerate() {
            let id = catalog.reserve(&entry.uri);
            if id.index() != i {
                return Err(bad(format!(
                    "duplicate URI {:?} in snapshot directory",
                    entry.uri
                )));
            }
        }
        let source = Arc::new(SnapshotSource {
            file,
            pool,
            dir,
            interner,
            stale: RwLock::new(HashSet::new()),
            par_decodes: AtomicU64::new(0),
        });
        Ok((catalog, source))
    }
}

/// The open side of a snapshot: faults documents and prebuilt indices in
/// through the buffer pool. Implements [`DocSource`], so an
/// [`IndexedStore::with_source`] store resolves first touches here.
pub struct SnapshotSource {
    file: FileManager,
    pool: BufferPool,
    dir: Vec<DocEntry>,
    interner: Arc<Interner>,
    /// Documents whose live copy diverged from the stored one: their
    /// stored *index* segments must never be served again.
    stale: RwLock<HashSet<DocId>>,
    /// Segments decoded by [`SnapshotSource::decode_all`] fan-outs.
    par_decodes: AtomicU64,
}

impl SnapshotSource {
    /// Documents stored in this snapshot.
    pub fn doc_count(&self) -> usize {
        self.dir.len()
    }

    /// Total pages in the snapshot file (the 100% mark for pool sizing).
    pub fn page_count(&self) -> u32 {
        self.file.page_count()
    }

    /// Page size of the snapshot file.
    pub fn page_size(&self) -> usize {
        self.file.page_size()
    }

    /// Buffer-pool traffic counters.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Decode the stored document `id`, or `Ok(None)` when the snapshot
    /// has no entry for it. Corruption surfaces as an error.
    pub fn try_document(&self, id: DocId) -> Result<Option<Arc<Document>>> {
        let Some(entry) = self.dir.get(id.index()) else {
            return Ok(None);
        };
        let bytes = SegmentReader::new_scan(
            &self.pool,
            &self.file,
            entry.doc_seg.first_page,
            entry.doc_seg.len,
        )
        .read_all()?;
        let mut r = SliceReader::new(&bytes);
        let doc = decode_document(&mut r, id, &entry.uri, &self.interner)?;
        Ok(Some(Arc::new(doc)))
    }

    /// Decode the stored indices for `id`; `Ok(None)` for unknown ids and
    /// for documents marked stale.
    pub fn try_indexes(&self, id: DocId) -> Result<Option<Arc<DocIndexes>>> {
        if self.stale.read().contains(&id) {
            return Ok(None);
        }
        let Some(entry) = self.dir.get(id.index()) else {
            return Ok(None);
        };
        let bytes = SegmentReader::new_scan(
            &self.pool,
            &self.file,
            entry.index_seg.first_page,
            entry.index_seg.len,
        )
        .read_all()?;
        let indexes = decode_indexes(&mut SliceReader::new(&bytes))?;
        // Re-check staleness after the decode: an invalidation that raced
        // the decode must win, never the stale indices.
        if self.stale.read().contains(&id) {
            return Ok(None);
        }
        Ok(Some(Arc::new(indexes)))
    }

    /// Decode **every** stored document and its indices, fanning the
    /// per-segment decode across `workers` with a budget of `threads`
    /// (the warm-everything cold path: one readahead-batched scan per
    /// segment instead of page-at-a-time faulting on first touch).
    /// Results come back in directory order; stale documents get
    /// `None` indices, exactly as [`SnapshotSource::try_indexes`] would
    /// serve them.
    pub fn decode_all(&self, workers: &WorkerPool, threads: usize) -> Result<Vec<DecodedEntry>> {
        // Two tasks per document — document and index segments decode
        // independently, so a single huge document still splits in two.
        let tasks = self.dir.len() * 2;
        let results = workers.par_map(threads.max(2), tasks, |t| {
            let id = DocId((t / 2) as u32);
            self.par_decodes.fetch_add(1, Ordering::Relaxed);
            if t % 2 == 0 {
                self.try_document(id).map(DecodedHalf::Doc)
            } else {
                self.try_indexes(id).map(DecodedHalf::Indexes)
            }
        });
        let mut out = Vec::with_capacity(self.dir.len());
        let mut halves = results.into_iter();
        for i in 0..self.dir.len() {
            let id = DocId(i as u32);
            let doc = match halves.next().expect("one doc half per entry")? {
                DecodedHalf::Doc(Some(doc)) => doc,
                _ => {
                    return Err(StorageError::Format(format!(
                        "directory entry {i} has no document segment"
                    )))
                }
            };
            let indexes = match halves.next().expect("one index half per entry")? {
                DecodedHalf::Indexes(idx) => idx,
                DecodedHalf::Doc(_) => unreachable!("odd task index decodes indexes"),
            };
            out.push((id, doc, indexes));
        }
        Ok(out)
    }

    /// Segments decoded through [`SnapshotSource::decode_all`] fan-outs.
    pub fn par_decodes(&self) -> u64 {
        self.par_decodes.load(Ordering::Relaxed)
    }

    /// Per-segment codec choices, in directory order: segment name
    /// (`uri#doc` / `uri#index`) and the [`RunCodec`]s its packed runs
    /// used.
    pub fn segment_codecs(&self) -> Vec<(String, Vec<RunCodec>)> {
        let mut out = Vec::with_capacity(self.dir.len() * 2);
        for e in &self.dir {
            out.push((format!("{}#doc", e.uri), RunCodec::from_mask(e.doc_mask)));
            out.push((
                format!("{}#index", e.uri),
                RunCodec::from_mask(e.index_mask),
            ));
        }
        out
    }

    /// Documents currently marked stale.
    pub fn stale_count(&self) -> usize {
        self.stale.read().len()
    }

    /// Has `id` been marked stale? A stale document's only current copy
    /// is the live resident one — residency sweeps must not evict it.
    pub fn is_stale(&self, id: DocId) -> bool {
        self.stale.read().contains(&id)
    }
}

/// One [`SnapshotSource::decode_all`] result: a document and its stored
/// indices (`None` when the document is marked stale).
pub type DecodedEntry = (DocId, Arc<Document>, Option<Arc<DocIndexes>>);

/// One half of a [`SnapshotSource::decode_all`] task's result.
enum DecodedHalf {
    Doc(Option<Arc<Document>>),
    Indexes(Option<Arc<DocIndexes>>),
}

impl DocSource for SnapshotSource {
    fn document(&self, id: DocId) -> Option<Arc<Document>> {
        self.try_document(id)
            .unwrap_or_else(|e| panic!("snapshot document fault for {id:?} failed: {e}"))
    }

    fn indexes(&self, id: DocId) -> Option<Arc<DocIndexes>> {
        self.try_indexes(id)
            .unwrap_or_else(|e| panic!("snapshot index fault for {id:?} failed: {e}"))
    }

    fn mark_stale(&self, id: DocId) {
        self.stale.write().insert(id);
    }
}

/// Encode one document's columns as a standalone byte stream — the unit
/// the WAL logs for a document-carrying record (see [`crate::wal`]).
pub(crate) fn encode_document_bytes(doc: &Document) -> Vec<u8> {
    encode_document(doc).into_bytes()
}

fn encode_document(doc: &Document) -> ByteWriter {
    let cols = doc.columns();
    let n = cols.size.len();
    let mut w = ByteWriter::new();
    w.put_u32(u32::try_from(n).expect("node count overflow"));
    w.put_packed_u32s(cols.size);
    let level: Vec<u32> = cols.level.iter().map(|&v| u32::from(v)).collect();
    w.put_packed_u32s(&level);
    w.put_packed_u32s(cols.parent);
    let kind: Vec<u32> = cols.kind.iter().map(|&k| k as u32).collect();
    w.put_packed_u32s(&kind);
    let name: Vec<u32> = cols.name.iter().map(|&s| s.0).collect();
    w.put_packed_u32s(&name);
    let value: Vec<u32> = cols.value.iter().map(|&s| s.0).collect();
    w.put_packed_u32s(&value);
    w
}

pub(crate) fn decode_document<R: ByteReader>(
    r: &mut R,
    id: DocId,
    uri: &str,
    interner: &Arc<Interner>,
) -> Result<Document> {
    let n = r.get_u32()? as usize;
    if n == 0 {
        return Err(StorageError::Format(
            "document segment with zero nodes".to_string(),
        ));
    }
    let size = r.get_packed_u32s(n)?;
    // Validate whole columns up front, then convert in tight cast loops:
    // per-element `try_from` with a `Result` collect defeats
    // vectorization, which shows at hundreds of thousands of nodes.
    let level_raw = r.get_packed_u32s(n)?;
    if let Some(&bad) = level_raw.iter().find(|&&v| v > u32::from(u16::MAX)) {
        return Err(StorageError::Format(format!(
            "level {bad} exceeds u16 range"
        )));
    }
    let level: Vec<u16> = level_raw.iter().map(|&v| v as u16).collect();
    let parent = r.get_packed_u32s(n)?;
    let kind_raw = r.get_packed_u32s(n)?;
    if let Some(&bad) = kind_raw.iter().find(|&&v| v > 5) {
        return Err(StorageError::Format(format!("invalid node kind tag {bad}")));
    }
    // Tags are ≤ 5 after the check above; padding the table to 8 and
    // masking keeps the lookup branch- and bounds-check-free.
    const KINDS: [NodeKind; 8] = [
        NodeKind::Document,
        NodeKind::Element,
        NodeKind::Text,
        NodeKind::Attribute,
        NodeKind::Comment,
        NodeKind::ProcessingInstruction,
        NodeKind::Document,
        NodeKind::Document,
    ];
    let kind: Vec<NodeKind> = kind_raw.iter().map(|&v| KINDS[(v & 7) as usize]).collect();
    let symbol_bound = interner.len() as u32;
    let get_symbols = |r: &mut R| -> Result<Vec<Symbol>> {
        let raw = r.get_packed_u32s(n)?;
        if let Some(&bad) = raw.iter().find(|&&s| s >= symbol_bound) {
            return Err(StorageError::Format(format!(
                "symbol {bad} beyond heap of {symbol_bound}"
            )));
        }
        Ok(raw.into_iter().map(Symbol).collect())
    };
    let name = get_symbols(r)?;
    let value = get_symbols(r)?;
    Ok(Document::from_columns(
        id,
        uri.to_string(),
        size,
        level,
        parent,
        kind,
        name,
        value,
        Arc::clone(interner),
    ))
}

fn encode_groups(w: &mut ByteWriter, groups: &[(Symbol, &[Pre])]) {
    w.put_u32(groups.len() as u32);
    for (sym, pres) in groups {
        w.put_u32(sym.0);
        w.put_packed_u32_vec(pres);
    }
}

fn decode_groups<R: ByteReader>(r: &mut R) -> Result<Vec<(Symbol, Vec<Pre>)>> {
    let count = r.get_u32()? as usize;
    let mut groups = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let sym = Symbol(r.get_u32()?);
        groups.push((sym, r.get_packed_u32_vec()?));
    }
    Ok(groups)
}

/// Numeric runs split their columns: the `f64` values stay raw bits (any
/// bit pattern must survive), the sorted `Pre` column packs.
fn encode_numeric_run(w: &mut ByteWriter, run: &[(f64, Pre)]) {
    w.put_u32(run.len() as u32);
    for &(v, _) in run {
        w.put_f64(v);
    }
    let pres: Vec<u32> = run.iter().map(|&(_, p)| p).collect();
    w.put_packed_u32s(&pres);
}

fn decode_numeric_run<R: ByteReader>(r: &mut R) -> Result<Vec<(f64, Pre)>> {
    let count = r.get_u32()? as u64;
    if count * 8 > r.remaining() {
        return Err(StorageError::Format(format!(
            "numeric run of {count} entries exceeds remaining segment"
        )));
    }
    let values: Vec<f64> = r.with_run(count as usize * 8, |bytes| {
        Ok(bytes
            .chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().unwrap())))
            .collect())
    })?;
    let pres = r.get_packed_u32s(count as usize)?;
    Ok(values.into_iter().zip(pres).collect())
}

fn encode_indexes(indexes: &DocIndexes) -> ByteWriter {
    let mut w = ByteWriter::new();
    encode_groups(&mut w, &indexes.element.name_groups());
    encode_groups(&mut w, &indexes.element.attr_name_groups());
    w.put_packed_u32_vec(indexes.element.elements());
    w.put_packed_u32_vec(indexes.element.text_nodes());
    w.put_packed_u32_vec(indexes.element.attributes());
    for table in [indexes.value.text_table(), indexes.value.attr_table()] {
        w.put_packed_u32_vec(table.offsets());
        w.put_packed_u32_vec(table.values());
    }
    encode_numeric_run(&mut w, indexes.value.numeric_text_run());
    encode_numeric_run(&mut w, indexes.value.numeric_attr_run());
    w
}

fn decode_indexes<R: ByteReader>(r: &mut R) -> Result<DocIndexes> {
    let by_name = decode_groups(r)?;
    let attr_by_name = decode_groups(r)?;
    let all_elements = r.get_packed_u32_vec()?;
    let all_text = r.get_packed_u32_vec()?;
    let all_attributes = r.get_packed_u32_vec()?;
    let element = ElementIndex::from_parts(
        by_name,
        attr_by_name,
        all_elements,
        all_text,
        all_attributes,
    );
    let table = |r: &mut R| -> Result<SymbolTable> {
        let offsets = r.get_packed_u32_vec()?;
        let values = r.get_packed_u32_vec()?;
        SymbolTable::from_raw(offsets, values)
            .ok_or_else(|| StorageError::Format("malformed CSR value table".to_string()))
    };
    let text_by_value = table(r)?;
    let attr_by_value = table(r)?;
    let numeric_text = decode_numeric_run(r)?;
    let numeric_attr = decode_numeric_run(r)?;
    let value = ValueIndex::from_parts(text_by_value, attr_by_value, numeric_text, numeric_attr);
    Ok(DocIndexes { element, value })
}

fn encode_symbols(interner: &Interner) -> ByteWriter {
    let strings = interner.dump();
    let mut w = ByteWriter::new();
    w.put_u32(strings.len() as u32);
    for s in &strings {
        w.put_str(s);
    }
    w
}

fn decode_symbols<R: ByteReader>(r: &mut R) -> Result<Interner> {
    let count = r.get_u32()? as usize;
    if count == 0 {
        return Err(StorageError::Format(
            "symbol heap must contain at least the empty string".to_string(),
        ));
    }
    // Process the whole heap as one run — borrowed in place from a
    // drained segment — and slice the strings out of it: per-string
    // segment reads and intermediate `String`s would dominate cold
    // starts on catalogs with tens of thousands of symbols.
    let heap = r.remaining() as usize;
    r.with_run(heap, |blob| {
        let mut strings = Vec::with_capacity(count.min(1 << 20));
        let mut at = 0usize;
        for _ in 0..count {
            let end = at
                .checked_add(4)
                .filter(|&e| e <= blob.len())
                .ok_or_else(|| {
                    StorageError::Format("symbol heap truncated mid-length".to_string())
                })?;
            let len = u32::from_le_bytes(blob[at..end].try_into().unwrap()) as usize;
            at = end;
            let end = at
                .checked_add(len)
                .filter(|&e| e <= blob.len())
                .ok_or_else(|| {
                    StorageError::Format(format!("symbol of {len} bytes exceeds remaining heap"))
                })?;
            let s = std::str::from_utf8(&blob[at..end])
                .map_err(|e| StorageError::Format(format!("invalid UTF-8 in symbol heap: {e}")))?;
            strings.push(s);
            at = end;
        }
        if !strings[0].is_empty() {
            return Err(StorageError::Format(
                "symbol 0 of the heap is not the empty string".to_string(),
            ));
        }
        Interner::try_from_strings(&strings).map_err(StorageError::Format)
    })
}

fn encode_directory(entries: &[DocEntry]) -> ByteWriter {
    let mut w = ByteWriter::new();
    w.put_u32(entries.len() as u32);
    for e in entries {
        w.put_str(&e.uri);
        w.put_u32(e.doc_seg.first_page);
        w.put_u64(e.doc_seg.len);
        w.put_u8(e.doc_mask);
        w.put_u32(e.index_seg.first_page);
        w.put_u64(e.index_seg.len);
        w.put_u8(e.index_mask);
    }
    w
}

fn decode_directory<R: ByteReader>(r: &mut R) -> Result<Vec<DocEntry>> {
    let count = r.get_u32()? as usize;
    let mut entries = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let uri = r.get_str()?;
        let doc_seg = SegmentLoc {
            first_page: r.get_u32()?,
            len: r.get_u64()?,
        };
        let doc_mask = r.get_u8()?;
        let index_seg = SegmentLoc {
            first_page: r.get_u32()?,
            len: r.get_u64()?,
        };
        let index_mask = r.get_u8()?;
        entries.push(DocEntry {
            uri,
            doc_seg,
            doc_mask,
            index_seg,
            index_mask,
        });
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_snapshot(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "rox-storage-snap-{}-{name}.rox",
            std::process::id()
        ));
        p
    }

    fn sample_store() -> IndexedStore {
        let cat = Arc::new(Catalog::new());
        cat.load_str(
            "auctions.xml",
            r#"<site><item id="7"><name>chair</name><price>150</price></item><item id="9"><name>desk</name><price>12.5</price></item></site>"#,
        )
        .unwrap();
        cat.load_str("tiny.xml", "<a/>").unwrap();
        IndexedStore::new(cat)
    }

    #[test]
    fn save_open_roundtrips_documents_and_indexes() {
        let path = temp_snapshot("roundtrip");
        let store = sample_store();
        let report = Snapshot::save_with_page_size(&path, &store, 128).unwrap();
        assert_eq!(report.docs, 2);
        assert!(report.pages > 2);

        let (catalog, source) = Snapshot::open(&path, None).unwrap();
        assert_eq!(source.doc_count(), 2);
        assert_eq!(catalog.len(), 2);
        // Nothing resident yet: open is lazy.
        let id = catalog.resolve("auctions.xml").unwrap();
        assert!(catalog.get(id).is_none());

        let restored = IndexedStore::with_source(Arc::clone(&catalog), source);
        let original = store.doc(id);
        let faulted = restored.doc(id);
        // Bit-identical columns.
        let (a, b) = (original.columns(), faulted.columns());
        assert_eq!(a.size, b.size);
        assert_eq!(a.level, b.level);
        assert_eq!(a.parent, b.parent);
        assert_eq!(a.kind, b.kind);
        assert_eq!(a.name, b.name);
        assert_eq!(a.value, b.value);
        faulted.check_invariants().unwrap();
        // Index decode, not a rebuild.
        let idx = restored.indexes(id);
        assert_eq!(restored.build_count(), 0);
        let price = catalog.interner().get("price").unwrap();
        assert_eq!(idx.element.count(price), 2);
        let chair = catalog.interner().get("chair").unwrap();
        assert_eq!(idx.value.text_eq(chair).len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn packed_columns_shrink_and_decode_all_fans_out() {
        let path = temp_snapshot("packed");
        let store = sample_store();
        let report = Snapshot::save_with_page_size(&path, &store, 128).unwrap();
        assert!(
            report.payload_bytes < report.raw_payload_bytes,
            "packed segments must beat raw columns: {report:?}"
        );

        let (catalog, source) = Snapshot::open(&path, None).unwrap();
        // Every stored segment reports which codecs its runs used.
        let codecs = source.segment_codecs();
        assert_eq!(codecs.len(), 4);
        assert!(codecs
            .iter()
            .any(|(name, cs)| name.ends_with("#doc") && !cs.is_empty()));

        // decode_all fans both segments of every document through the
        // worker pool and returns directory order.
        let workers = WorkerPool::new(2);
        let before = workers.batch_tasks();
        let all = source.decode_all(&workers, 2).unwrap();
        assert_eq!(workers.batch_tasks() - before, 4);
        assert_eq!(source.par_decodes(), 4);
        assert_eq!(all.len(), 2);
        for (id, doc, indexes) in all {
            let orig = store.doc(id);
            assert_eq!(doc.columns().name, orig.columns().name);
            let idx = indexes.expect("nothing stale");
            assert_eq!(idx.element.elements(), store.indexes(id).element.elements());
        }

        // Stale documents come back without stored indices.
        let id = catalog.resolve("tiny.xml").unwrap();
        source.mark_stale(id);
        let all = source.decode_all(&workers, 2).unwrap();
        assert!(all[id.index()].2.is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn saving_twice_is_byte_identical() {
        let p1 = temp_snapshot("det1");
        let p2 = temp_snapshot("det2");
        let store = sample_store();
        Snapshot::save_with_page_size(&p1, &store, 128).unwrap();
        Snapshot::save_with_page_size(&p2, &store, 128).unwrap();
        assert_eq!(std::fs::read(&p1).unwrap(), std::fs::read(&p2).unwrap());
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p2).ok();
    }

    #[test]
    fn tiny_pool_still_decodes_identically() {
        let path = temp_snapshot("tinypool");
        let store = sample_store();
        Snapshot::save_with_page_size(&path, &store, 64).unwrap();
        let (catalog, source) = Snapshot::open(&path, Some(2)).unwrap();
        for id in catalog.doc_ids() {
            let doc = source.try_document(id).unwrap().unwrap();
            let orig = store.doc(id);
            assert_eq!(doc.columns().name, orig.columns().name);
            let idx = source.try_indexes(id).unwrap().unwrap();
            let orig_idx = store.indexes(id);
            assert_eq!(idx.element.elements(), orig_idx.element.elements());
        }
        let stats = source.pool_stats();
        assert!(
            stats.evictions > 0,
            "tiny pool must have evicted: {stats:?}"
        );
        assert_eq!(stats.capacity, 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_page_is_a_clean_error() {
        let path = temp_snapshot("corrupt");
        let store = sample_store();
        Snapshot::save_with_page_size(&path, &store, 128).unwrap();
        // Flip a byte in the middle of page 1 (a document segment page).
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[128 + 40] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let (catalog, source) = Snapshot::open(&path, None).unwrap();
        let id = catalog.resolve("auctions.xml").unwrap();
        let err = source.try_document(id).unwrap_err();
        assert!(
            matches!(err, StorageError::Corrupt { page: 1, .. }),
            "{err}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_is_a_clean_error() {
        let path = temp_snapshot("truncated");
        let store = sample_store();
        let report = Snapshot::save_with_page_size(&path, &store, 128).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // Drop the last page: the directory (written near the end) or a
        // late segment becomes unreadable.
        std::fs::write(&path, &bytes[..bytes.len() - report.page_size]).unwrap();
        assert!(Snapshot::open(&path, None).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn not_a_snapshot_is_a_clean_error() {
        let path = temp_snapshot("garbage");
        std::fs::write(&path, b"<site>this is xml, not a snapshot</site>").unwrap();
        assert!(Snapshot::open(&path, None).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stale_documents_never_serve_stored_indexes() {
        let path = temp_snapshot("stale");
        let store = sample_store();
        Snapshot::save_with_page_size(&path, &store, 128).unwrap();
        let (catalog, source) = Snapshot::open(&path, None).unwrap();
        let id = catalog.resolve("tiny.xml").unwrap();
        source.mark_stale(id);
        assert!(source.try_indexes(id).unwrap().is_none());
        // The document segment itself stays decodable (it is only used
        // when no newer resident copy exists).
        assert!(source.try_document(id).unwrap().is_some());
        assert_eq!(source.stale_count(), 1);
        std::fs::remove_file(&path).ok();
    }
}
