//! Ablation tests: the optimizer variants (no chain sampling, no weight
//! re-sampling) must stay *correct* — only plan quality may change — and
//! full ROX must not lose to its own ablations on correlated data.

use rox_core::{run_plan, run_rox, RoxOptions};
use rox_datagen::{dblp_query, generate_dblp, venue_index, DblpConfig};
use rox_xmldb::Catalog;
use std::sync::Arc;

fn correlated_setup() -> (Arc<Catalog>, rox_joingraph::JoinGraph) {
    let catalog = Arc::new(Catalog::new());
    generate_dblp(
        &catalog,
        &DblpConfig {
            size_factor: 0.08,
            ..DblpConfig::default()
        },
    );
    let combo = [
        venue_index("VLDB"),
        venue_index("ICDE"),
        venue_index("ICIP"),
        venue_index("ADBIS"),
    ];
    let graph = rox_joingraph::compile_query(&dblp_query(&combo)).unwrap();
    (catalog, graph)
}

#[test]
fn ablated_variants_remain_correct() {
    let (catalog, graph) = correlated_setup();
    let full = run_rox(Arc::clone(&catalog), &graph, RoxOptions::default()).unwrap();
    for opts in [
        RoxOptions {
            chain_sampling: false,
            ..Default::default()
        },
        RoxOptions {
            resample: false,
            ..Default::default()
        },
        RoxOptions {
            chain_sampling: false,
            resample: false,
            ..Default::default()
        },
    ] {
        let ablated = run_rox(Arc::clone(&catalog), &graph, opts).unwrap();
        assert_eq!(ablated.output, full.output, "{opts:?}");
    }
}

#[test]
fn full_rox_plan_not_worse_than_no_resampling() {
    let (catalog, graph) = correlated_setup();
    let full = run_rox(Arc::clone(&catalog), &graph, RoxOptions::default()).unwrap();
    let frozen = run_rox(
        Arc::clone(&catalog),
        &graph,
        RoxOptions {
            resample: false,
            ..Default::default()
        },
    )
    .unwrap();
    // Compare the *replayed plans* (pure execution work) so sampling cost
    // differences don't blur the comparison.
    let full_plan = run_plan(Arc::clone(&catalog), &graph, &full.executed_order).unwrap();
    let frozen_plan = run_plan(catalog, &graph, &frozen.executed_order).unwrap();
    assert!(
        full_plan.cost.total() as f64 <= frozen_plan.cost.total() as f64 * 1.25,
        "full {} vs frozen-weights {}",
        full_plan.cost.total(),
        frozen_plan.cost.total()
    );
}

#[test]
fn greedy_without_chain_sampling_still_terminates_everywhere() {
    // Greedy on a branching correlated structure (the chain-sampling
    // motivation): must run to completion and match.
    let catalog = Arc::new(Catalog::new());
    let mut xml = String::from("<site>");
    for i in 0..80 {
        xml.push_str("<auction>");
        if i % 2 == 0 {
            xml.push_str("<cheap/><bidder/>");
        } else {
            xml.push_str("<exp/><bidder/><bidder/><bidder/><bidder/>");
        }
        xml.push_str("</auction>");
    }
    xml.push_str("</site>");
    catalog.load_str("d.xml", &xml).unwrap();
    let graph = rox_joingraph::compile_query(
        r#"for $a in doc("d.xml")//auction[./cheap], $b in $a/bidder return $b"#,
    )
    .unwrap();
    let greedy = run_rox(
        Arc::clone(&catalog),
        &graph,
        RoxOptions {
            chain_sampling: false,
            ..Default::default()
        },
    )
    .unwrap();
    let full = run_rox(catalog, &graph, RoxOptions::default()).unwrap();
    assert_eq!(greedy.output, full.output);
    assert_eq!(full.output.len(), 40);
}
