//! End-to-end kernel-equivalence properties over random join graphs: with
//! every consumer layer (Phase-1 weighting, chain-sampling extensions,
//! full edge execution, plan replay, the naive oracle) routed through
//! `rox_ops::edgeop`, a ROX run must stay
//!
//! * **internally deterministic** — bit-identical output, join order, edge
//!   log (including the per-edge operator choices), and cost counters
//!   under `Parallelism::Sequential` and `Parallelism::Threads(2)`;
//! * **replayable** — replaying the executed order through the plan layer
//!   reproduces the same relations, edge log, and operator choices; and
//! * **correct** — equal to the kernel-independent naive oracle's output.

use proptest::prelude::*;
use rox_core::{
    naive_evaluate, run_plan_with_env_parallel, run_rox_with_env, EdgeOpKind, Parallelism, RoxEnv,
    RoxOptions,
};
use rox_xmldb::Catalog;
use std::sync::Arc;

/// Random two-document corpus: an auction site plus a person registry so
/// queries exercise steps, branching predicates, and cross-document value
/// joins (both skewed and balanced — the NL/hash crossover is data-driven).
fn corpus_strategy() -> impl Strategy<Value = (String, String)> {
    (
        prop::collection::vec((0u8..4, 0u8..6, any::<bool>()), 1..25),
        1u8..30,
    )
        .prop_map(|(blocks, persons)| {
            let mut site = String::from("<site>");
            for (kind, n, flag) in blocks {
                match kind {
                    0..=1 => {
                        site.push_str("<auction>");
                        if flag {
                            site.push_str("<cheap/>");
                        }
                        for i in 0..n {
                            site.push_str(&format!(
                                "<bidder><personref person=\"p{}\"/></bidder>",
                                i % 7
                            ));
                        }
                        site.push_str("</auction>");
                    }
                    2 => site.push_str(&format!("<note>t{}</note>", n % 3)),
                    _ => site.push_str("<auction><cheap/><bidder/></auction>"),
                }
            }
            site.push_str("</site>");
            let mut reg = String::from("<people>");
            for p in 0..persons {
                reg.push_str(&format!("<person id=\"p{}\"/>", p % 9));
            }
            reg.push_str("</people>");
            (site, reg)
        })
}

const QUERIES: [&str; 5] = [
    r#"for $a in doc("d.xml")//auction, $b in $a/bidder return $b"#,
    r#"for $a in doc("d.xml")//auction[./cheap], $b in $a/bidder, $p in $b/personref return $p"#,
    r#"for $r in doc("d.xml")//personref, $p in doc("p.xml")//person
       where $r/@person = $p/@id return $r"#,
    r#"for $a in doc("d.xml")//auction, $r in $a//personref, $p in doc("p.xml")//person
       where $r/@person = $p/@id return $p"#,
    r#"for $a in doc("d.xml")//auction, $n in doc("d.xml")//note return $n"#,
];

fn check(site: &str, reg: &str, qi: usize, seed: u64) -> Result<(), String> {
    let catalog = Arc::new(Catalog::new());
    catalog.load_str("d.xml", site).unwrap();
    catalog.load_str("p.xml", reg).unwrap();
    let graph = rox_joingraph::compile_query(QUERIES[qi]).unwrap();
    let env = RoxEnv::new(Arc::clone(&catalog), &graph).unwrap();
    let base = RoxOptions {
        seed,
        tau: 12,
        trace: true,
        ..Default::default()
    };
    let seq = run_rox_with_env(&env, &graph, base).unwrap();
    let par = run_rox_with_env(
        &env,
        &graph,
        RoxOptions {
            parallelism: Parallelism::Threads(2),
            ..base
        },
    )
    .unwrap();

    // 1. Sequential and Threads(2) are bit-identical, operator log
    //    included.
    if par.output != seq.output {
        return Err("outputs differ across parallelism".into());
    }
    if par.executed_order != seq.executed_order {
        return Err("join orders differ across parallelism".into());
    }
    if par.edge_log != seq.edge_log {
        return Err("edge logs (incl. operator choices) differ".into());
    }
    if par.exec_cost != seq.exec_cost || par.sample_cost != seq.sample_cost {
        return Err("cost counters differ across parallelism".into());
    }
    for (a, b) in par.traces.iter().zip(&seq.traces) {
        if a.rounds != b.rounds {
            return Err("chain traces (incl. operator tags) differ".into());
        }
    }

    // 2. Plan replay through the same kernel reproduces the run exactly —
    //    including which physical operator each edge used.
    for replay_par in [Parallelism::Sequential, Parallelism::Threads(2)] {
        let replay = run_plan_with_env_parallel(&env, &graph, &seq.executed_order, replay_par)
            .map_err(|e| e.to_string())?;
        if replay.output != seq.output {
            return Err("replay output differs".into());
        }
        if replay.edge_log != seq.edge_log {
            return Err("replay edge log / operator choices differ".into());
        }
    }

    // 3. The kernel-independent oracle agrees on the output.
    let (_, oracle) = naive_evaluate(&env, &graph);
    if oracle != seq.output {
        return Err("naive oracle disagrees".into());
    }

    // 4. Every executed edge carries a kernel operator tag consistent with
    //    its mode: selections only for repeat-component edges, and value
    //    joins never tagged as steps.
    for x in &seq.edge_log {
        let edge = graph.edge(x.edge);
        match x.op {
            EdgeOpKind::StepJoin if !edge.is_step() => {
                return Err(format!("edge {} tagged step but is a join", x.edge));
            }
            EdgeOpKind::IndexNLValueJoin | EdgeOpKind::HashValueJoin if edge.is_step() => {
                return Err(format!("edge {} tagged value-join but is a step", x.edge));
            }
            _ => {}
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn kernel_routing_is_bit_identical_and_correct(
        (site, reg) in corpus_strategy(),
        qi in 0usize..QUERIES.len(),
        seed in 0u64..500,
    ) {
        let r = check(&site, &reg, qi, seed);
        prop_assert!(r.is_ok(), "{} (query {qi}, seed {seed})", r.unwrap_err());
    }
}

/// Deterministic regression: a corpus sized so the skewed value join takes
/// the index-NL path and the balanced one takes hash, with both visible in
/// the edge log.
#[test]
fn operator_log_distinguishes_nl_from_hash() {
    let mut site = String::from("<site>");
    for i in 0..400 {
        site.push_str(&format!(
            "<auction><bidder><personref person=\"p{}\"/></bidder></auction>",
            i % 300
        ));
    }
    site.push_str("</site>");
    // One person: the person side is tiny vs. 400 personrefs -> index-NL.
    let catalog = Arc::new(Catalog::new());
    catalog.load_str("d.xml", &site).unwrap();
    catalog
        .load_str("p.xml", "<people><person id=\"p7\"/></people>")
        .unwrap();
    let graph = rox_joingraph::compile_query(
        r#"for $r in doc("d.xml")//personref, $p in doc("p.xml")//person
           where $r/@person = $p/@id return $r"#,
    )
    .unwrap();
    let env = RoxEnv::new(Arc::clone(&catalog), &graph).unwrap();
    let run = run_rox_with_env(&env, &graph, RoxOptions::default()).unwrap();
    assert!(
        run.edge_log
            .iter()
            .any(|x| x.op == EdgeOpKind::IndexNLValueJoin),
        "skewed join should use index-NL; log: {:?}",
        run.edge_log
    );

    // Balanced registry -> hash join.
    let catalog2 = Arc::new(Catalog::new());
    catalog2.load_str("d.xml", &site).unwrap();
    let mut reg = String::from("<people>");
    for p in 0..300 {
        reg.push_str(&format!("<person id=\"p{p}\"/>"));
    }
    reg.push_str("</people>");
    catalog2.load_str("p.xml", &reg).unwrap();
    let env2 = RoxEnv::new(Arc::clone(&catalog2), &graph).unwrap();
    let run2 = run_rox_with_env(&env2, &graph, RoxOptions::default()).unwrap();
    assert!(
        run2.edge_log
            .iter()
            .any(|x| x.op == EdgeOpKind::HashValueJoin),
        "balanced join should use hash; log: {:?}",
        run2.edge_log
    );
}
