//! Guarded plan replay: sampled revalidation and mid-query demotion.
//!
//! Since the plan cache replays on shape match alone, it silently gives up
//! the paper's whole robustness story the moment the data drifts. This
//! module puts Algorithm 1 back in the loop *continuously*: every
//! `ReuseValidated` replay is checked against the cardinalities the
//! seeding run recorded, and a breach demotes the replay **mid-query** to
//! a fresh run-time optimization of the remaining edges.
//!
//! Two kinds of checks, both compared through the documented thresholds in
//! `rox_ops::cost` ([`DRIFT_RATIO`] /
//! [`DRIFT_ABS_FLOOR`](rox_ops::DRIFT_ABS_FLOOR)):
//!
//! 1. **Sampled spot checks** (before any execution): the first
//!    [`REVALIDATE_SPOT_CHECKS`] plan
//!    edges are re-estimated by a cheap zero-investment probe — both
//!    endpoints sampled at the small, τ-independent
//!    [`REVALIDATE_SPOT_TAU`] under an RNG
//!    derived from the recorded plan seed and the edge id. The recorded
//!    expectation was computed by the *same* probe procedure at seed time,
//!    so on unchanged data the replay's probe is **bit-identical** to it
//!    (ratio exactly 1) and zero drift can never spuriously demote; the
//!    charged work is capped by
//!    [`revalidation_budget`].
//! 2. **Observed checks** (during execution, free): after each replayed
//!    edge, the actual node-level pairs and result rows are compared
//!    against the recorded [`EdgeExec`] — exact values, no sampling noise
//!    — which is what catches *correlation* drift that leaves every base
//!    cardinality untouched.
//!
//! On breach the state — with its executed prefix, tables, and
//! cardinalities — is handed to the same Phase-1 + Phase-2 machinery an
//! optimizing run uses ([`crate::optimizer`]): samples are re-seeded from
//! the *current* `T(v)` tables and the remaining edges are optimized from
//! scratch. Output correctness is unconditional (any edge order joins to
//! the same relation); demotion recovers the *order* quality.

use crate::env::RoxEnv;
use crate::estimate::{estimate_card, estimate_cards};
use crate::optimizer::{optimize_loop, RoxOptions};
use crate::plan::{validate_plan, PlanError};
use crate::state::{EdgeExec, EvalState};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rox_joingraph::{EdgeId, JoinGraph};
use rox_ops::{
    drift_ratio, revalidation_budget, Cost, Relation, Tail, DRIFT_RATIO, REVALIDATE_SPOT_CHECKS,
    REVALIDATE_SPOT_TAU,
};
use std::time::{Duration, Instant};

/// What the seeding run recorded for one plan edge — the expectations a
/// guarded replay checks the live run against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeExpectation {
    /// The seed-time spot-probe estimate of the edge, recorded by the
    /// exact probe procedure the replay re-runs (`None` when the edge sits
    /// past the spot-check window or the probe had nothing to sample).
    pub spot_estimate: Option<f64>,
    /// Component result rows the seeding run observed ([`EdgeExec`]).
    pub result_rows: usize,
    /// Node-level pairs the seeding run observed.
    pub pairs: usize,
    /// Input cardinalities `(|T(v1)|, |T(v2)|)` at the seeding execution.
    pub inputs: (usize, usize),
}

impl EdgeExpectation {
    /// Recorded reduction factor `pairs / (|T(v1)|·|T(v2)|)`.
    pub fn reduction(&self) -> f64 {
        let denom = (self.inputs.0 as f64) * (self.inputs.1 as f64);
        if denom == 0.0 {
            return 0.0;
        }
        self.pairs as f64 / denom
    }
}

/// The replayable slice of a plan-cache entry: what [`run_guarded`] needs,
/// with no strings attached (cloning it out of the cache lock is cheap).
#[derive(Debug, Clone)]
pub(crate) struct GuardSpec {
    /// Edge order to replay.
    pub order: Vec<EdgeId>,
    /// Per-edge expectations, parallel to `order`.
    pub expected: Vec<EdgeExpectation>,
    /// τ the seeding run sampled with (governs the Phase-1 reproduction).
    pub tau: usize,
    /// RNG seed of the seeding run.
    pub seed: u64,
}

/// Which comparison a [`SpotCheck`] made.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckKind {
    /// Pre-execution sampled probe vs the recorded Phase-1 weight.
    SampledWeight,
    /// Post-execution observed pairs / result rows vs the recorded
    /// [`EdgeExec`] (exact, free).
    Observed,
}

/// One drift comparison a guarded replay performed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpotCheck {
    /// The checked edge.
    pub edge: EdgeId,
    /// Sampled or observed.
    pub kind: CheckKind,
    /// The recorded expectation.
    pub expected: f64,
    /// What the replay measured.
    pub observed: f64,
    /// Symmetric floored ratio (see [`rox_ops::drift_ratio`]).
    pub ratio: f64,
    /// Did the ratio breach [`DRIFT_RATIO`]?
    pub breached: bool,
}

/// How a guarded replay ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardVerdict {
    /// Every check passed; the cached plan was replayed to completion.
    Revalidated,
    /// A check breached after `at_edge` plan edges had been executed; the
    /// remaining edges were re-optimized from the live state (`at_edge`
    /// is 0 when a pre-execution sampled check fired).
    Demoted {
        /// Executed-prefix length at the breach.
        at_edge: usize,
    },
}

/// Everything one guarded replay produces (the engine folds this into an
/// [`EngineRun`](crate::EngineRun)).
#[derive(Debug)]
pub(crate) struct GuardedRun {
    /// Fully joined relation.
    pub joined: Relation,
    /// Output after the tail.
    pub output: Relation,
    /// Edges actually executed, in order (replayed prefix + re-optimized
    /// suffix when demoted).
    pub executed_order: Vec<EdgeId>,
    /// Per-edge observations.
    pub edge_log: Vec<EdgeExec>,
    /// Full-execution work.
    pub exec_cost: Cost,
    /// Sampling work: the budget-capped spot checks, plus the fresh
    /// optimization's sampling when demoted.
    pub sample_cost: Cost,
    /// Wall-clock of the run.
    pub wall: Duration,
    /// Revalidated or demoted.
    pub verdict: GuardVerdict,
    /// Every drift comparison made, in order.
    pub checks: Vec<SpotCheck>,
}

/// Replay `spec` under drift guards; demote to a fresh optimization of the
/// remaining edges on breach. See the module docs for the check semantics.
pub(crate) fn run_guarded(
    env: &RoxEnv,
    graph: &JoinGraph,
    spec: &GuardSpec,
    options: RoxOptions,
) -> Result<GuardedRun, PlanError> {
    validate_plan(graph, &spec.order)?;
    debug_assert_eq!(spec.order.len(), spec.expected.len());
    let started = Instant::now();
    let mut state = EvalState::new(env, graph);
    state.set_parallelism(options.parallelism);
    let mut sample_cost = Cost::new();
    let mut sample_wall = Duration::ZERO;
    let mut exec_wall = Duration::ZERO;
    let mut traces = Vec::new();
    let mut checks: Vec<SpotCheck> = Vec::new();
    let mut breached = false;

    for e in graph.edges() {
        if e.redundant {
            state.mark_executed(e.id);
        }
    }

    // ---- Sampled spot checks: re-run the seed-time probe procedure ----
    // ---- on the first K plan edges and compare bit-for-bit.        ----
    let t0 = Instant::now();
    let budget = revalidation_budget(spec.tau);
    for (i, &e) in spec.order.iter().enumerate().take(REVALIDATE_SPOT_CHECKS) {
        if sample_cost.total() >= budget {
            break;
        }
        let Some(expected) = spec.expected[i].spot_estimate else {
            continue;
        };
        let Some(observed) = spot_probe(&mut state, e, spec.seed, &mut sample_cost) else {
            continue;
        };
        let ratio = drift_ratio(observed, expected);
        let fired = ratio > DRIFT_RATIO;
        checks.push(SpotCheck {
            edge: e,
            kind: CheckKind::SampledWeight,
            expected,
            observed,
            ratio,
            breached: fired,
        });
        if fired {
            breached = true;
            break;
        }
    }
    sample_wall += t0.elapsed();

    // ---- Replay, with free observed checks after every edge. ----
    let mut executed_order = Vec::new();
    if !breached {
        for (i, &e) in spec.order.iter().enumerate() {
            if graph.edge(e).redundant {
                continue;
            }
            let t_exec = Instant::now();
            state.execute_edge(e, None);
            exec_wall += t_exec.elapsed();
            executed_order.push(e);
            let exec = *state.edge_log.last().expect("edge just logged");
            let exp = &spec.expected[i];
            // The worse of the pair-level and row-level drifts: pairs is
            // what the sampled probes estimate, result rows is what the
            // component join actually pays for.
            let pair_ratio = drift_ratio(exec.pairs as f64, exp.pairs as f64);
            let row_ratio = drift_ratio(exec.result_rows as f64, exp.result_rows as f64);
            let (observed, expected, ratio) = if pair_ratio >= row_ratio {
                (exec.pairs as f64, exp.pairs as f64, pair_ratio)
            } else {
                (exec.result_rows as f64, exp.result_rows as f64, row_ratio)
            };
            let fired = ratio > DRIFT_RATIO;
            checks.push(SpotCheck {
                edge: e,
                kind: CheckKind::Observed,
                expected,
                observed,
                ratio,
                breached: fired,
            });
            if fired {
                breached = true;
                break;
            }
        }
    }

    // ---- Breach: demote mid-query — re-seed Phase 1 from the current ----
    // ---- tables and drive Algorithm 1 over the remaining edges.      ----
    let verdict = if breached {
        let at_edge = executed_order.len();
        let t1 = Instant::now();
        let mut rng = StdRng::seed_from_u64(options.seed);
        for v in graph.vertices() {
            state.seed_sample_current(v.id, &mut rng, options.tau);
        }
        let mut weights: Vec<Option<f64>> = vec![None; graph.edge_count()];
        let candidates = state.unexecuted_edges();
        let ws = estimate_cards(
            &state,
            &candidates,
            options.tau,
            options.parallelism,
            &mut sample_cost,
        );
        for (&e, w) in candidates.iter().zip(ws) {
            weights[e as usize] = w;
        }
        sample_wall += t1.elapsed();
        optimize_loop(
            &mut state,
            &mut weights,
            &mut rng,
            &options,
            &mut executed_order,
            &mut sample_cost,
            &mut sample_wall,
            &mut exec_wall,
            &mut traces,
        );
        GuardVerdict::Demoted { at_edge }
    } else {
        GuardVerdict::Revalidated
    };

    // ---- Finalize exactly like every other run driver. ----
    let joined = state.finalize();
    state.recycle_scratch();
    let tail = Tail {
        dedup_vars: graph.tail.dedup.clone(),
        sort_vars: graph.tail.sort.clone(),
        output_vars: vec![graph.tail.output],
    };
    let mut exec_cost = state.exec_cost;
    let output = tail.apply(&joined, &mut exec_cost);

    Ok(GuardedRun {
        joined,
        output,
        executed_order,
        edge_log: state.edge_log.clone(),
        exec_cost,
        sample_cost,
        wall: started.elapsed(),
        verdict,
        checks,
    })
}

/// Deterministic RNG for edge `e`'s spot probe, derived from the plan's
/// recorded seed (splitmix-style spread so neighbouring edge ids draw
/// uncorrelated streams).
fn spot_rng(seed: u64, e: EdgeId) -> StdRng {
    StdRng::seed_from_u64(seed ^ (e as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// One zero-investment spot probe of edge `e` on a *pre-execution* state:
/// sample both endpoints at [`REVALIDATE_SPOT_TAU`] under the edge-derived
/// RNG and estimate the edge cardinality with a cut-off probe. The
/// procedure reads nothing but the base lists and the derived seed, so the
/// seed-time recording and every zero-drift replay compute bit-identical
/// values — and its cost is independent of the run's τ.
fn spot_probe(state: &mut EvalState<'_>, e: EdgeId, seed: u64, cost: &mut Cost) -> Option<f64> {
    let edge = state.graph.edge(e);
    let (v1, v2) = (edge.v1, edge.v2);
    let mut rng = spot_rng(seed, e);
    state.seed_sample(v1, &mut rng, REVALIDATE_SPOT_TAU);
    state.seed_sample(v2, &mut rng, REVALIDATE_SPOT_TAU);
    estimate_card(state, e, REVALIDATE_SPOT_TAU, cost)
}

/// Build the per-edge expectations for seeding (or re-seeding, after a
/// demotion) the plan cache: observed cardinalities come from the run's
/// own `edge_log`, and the first [`REVALIDATE_SPOT_CHECKS`] edges get a
/// recorded spot estimate computed by the exact probe procedure a future
/// guarded replay will re-run (same derived RNG, same probe τ, same base
/// lists) — so the next zero-drift replay compares bit-equal values. The
/// sampling charged here is cache-maintenance work, not part of any run's
/// counters.
pub(crate) fn plan_expectations(
    env: &RoxEnv,
    graph: &JoinGraph,
    order: &[EdgeId],
    edge_log: &[EdgeExec],
    options: &RoxOptions,
) -> Vec<EdgeExpectation> {
    debug_assert_eq!(order.len(), edge_log.len());
    let mut state = EvalState::new(env, graph);
    for e in graph.edges() {
        if e.redundant {
            state.mark_executed(e.id);
        }
    }
    let mut maintenance = Cost::new();
    let mut expectations = Vec::with_capacity(order.len());
    for (i, (&e, exec)) in order.iter().zip(edge_log).enumerate() {
        let spot_estimate = if i < REVALIDATE_SPOT_CHECKS {
            spot_probe(&mut state, e, options.seed, &mut maintenance)
        } else {
            None
        };
        expectations.push(EdgeExpectation {
            spot_estimate,
            result_rows: exec.result_rows,
            pairs: exec.pairs,
            inputs: exec.inputs,
        });
    }
    state.recycle_scratch();
    expectations
}
