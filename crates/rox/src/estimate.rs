//! Sampling-based cardinality estimation (§2.3 and Algorithm 1's
//! `EstimateCard`).
//!
//! An edge is sampled by feeding a (τ-sized) sample of one endpoint into
//! the edge's operator with cut-off execution, then linearly extrapolating:
//!
//! ```text
//! EstimateCard(e) = card(v)/|S(v)| × est,   (R, est) = τ(exec(e, S(v), T(v′)))
//! ```
//!
//! Only zero-investment operators are sampled: staircase steps and the
//! index nested-loop value join. The inner side is the materialized `T(v′)`
//! when available, else the vertex's index base list. Dispatch goes
//! through the edge-operator kernel ([`rox_ops::edgeop`]) in
//! [`ExecMode::Sampled`], so the operator sampled here is chosen by the
//! same cost function that full execution consults.

use crate::state::EvalState;
use rox_joingraph::{EdgeId, VertexId};
use rox_ops::{execute_edge_op_with, Cost, DenseState, EdgeOpCtx, EdgeOpKind, ExecMode};
use rox_par::Parallelism;
use rox_xmldb::Pre;

/// Output of one sampled edge execution.
#[derive(Debug, Clone)]
pub struct SampledExec {
    /// Result nodes (the `v′` side of produced pairs, multiplicity kept,
    /// in context order) — the `I(p′)` input of the next chain round.
    pub output: Vec<Pre>,
    /// Extrapolated full cardinality of the operator on this input.
    pub est: f64,
    /// The physical operator the kernel chose (recorded in chain traces).
    pub op: EdgeOpKind,
}

/// Execute edge `e` on a *sample* of nodes of `from` (the outer side),
/// cutting off at `limit` produced pairs. `input` must be sorted on pre
/// (duplicates allowed — chain sampling feeds flow-through outputs).
pub fn sampled_edge_exec(
    state: &EvalState<'_>,
    e: EdgeId,
    from: VertexId,
    input: &[Pre],
    limit: usize,
    cost: &mut Cost,
) -> SampledExec {
    let edge = state.graph.edge(e);
    debug_assert!(
        edge.v1 == from || edge.v2 == from,
        "from must be an endpoint"
    );
    let to = edge.other(from);
    let outer_is_v1 = edge.v1 == from;
    let from_doc = state.env.doc(from);
    let to_doc = state.env.doc(to);
    let inner = state.table_or_base(to);
    // The inner value index and membership bitset (value joins only;
    // steps need neither). The bitset comes from the evaluation state's
    // scratch arena, so repeated rounds over an unchanged `T(v′)` probe
    // the same buffer instead of rebuilding it per sampled run.
    let to_indexes = (!edge.is_step()).then(|| state.env.store().indexes(state.env.doc_id(to)));
    let to_index = to_indexes.as_ref().map(|i| &i.value);
    let to_set = (!edge.is_step()).then(|| state.vertex_set(to));
    let (from_kind, to_kind) = (state.vertex_kind(from), state.vertex_kind(to));
    let mode = ExecMode::Sampled { limit, outer_is_v1 };
    let (ctx, dense) = if outer_is_v1 {
        (
            EdgeOpCtx {
                class: edge.kind.class(),
                mode,
                doc1: &from_doc,
                doc2: &to_doc,
                input1: input,
                input2: &inner,
                index1: None,
                index2: to_index,
                kind1: from_kind,
                kind2: to_kind,
                // Cut-off execution is inherently sequential (§2.3);
                // sampling parallelizes one level up, across candidate
                // edges.
                par: Parallelism::Sequential,
                workers: None,
            },
            DenseState {
                set2: to_set.as_deref(),
                ..DenseState::default()
            },
        )
    } else {
        (
            EdgeOpCtx {
                class: edge.kind.class(),
                mode,
                doc1: &to_doc,
                doc2: &from_doc,
                input1: &inner,
                input2: input,
                index1: to_index,
                index2: None,
                kind1: to_kind,
                kind2: from_kind,
                par: Parallelism::Sequential,
                workers: None,
            },
            DenseState {
                set1: to_set.as_deref(),
                ..DenseState::default()
            },
        )
    };
    let out = execute_edge_op_with(ctx, dense, cost);
    let run = out.result.into_sampled();
    SampledExec {
        est: run.estimate(),
        output: run.pairs.into_iter().map(|(_, s)| s).collect(),
        op: out.choice.kind,
    }
}

/// `EstimateCard(e)`: the weight of an unexecuted edge — its estimated
/// node-level result cardinality on the current `T` tables. Returns `None`
/// when neither endpoint has a sample yet (the edge "stays unweighted for
/// now", §3 Phase 1).
pub fn estimate_card(state: &EvalState<'_>, e: EdgeId, tau: usize, cost: &mut Cost) -> Option<f64> {
    let edge = state.graph.edge(e);
    // Choose the sampled endpoint: the smaller-cardinality one among those
    // that actually have a sample ("a sample from a smaller table provides
    // a more representative set").
    let mut candidates: Vec<VertexId> = [edge.v1, edge.v2]
        .into_iter()
        .filter(|&v| state.sample(v).is_some())
        .collect();
    if candidates.is_empty() {
        return None;
    }
    candidates.sort_by_key(|&v| state.card(v));
    let from = candidates[0];
    let s = state.sample(from).expect("sample present");
    if s.is_empty() {
        return Some(0.0);
    }
    let run = sampled_edge_exec(state, e, from, s, tau, cost);
    let scale = state.card(from) as f64 / s.len() as f64;
    Some(run.est * scale)
}

/// Weigh a batch of candidate edges, fanning the independent sampled
/// operator runs out across `par` worker threads (the parallel candidate
/// sampling phase). Each edge's [`estimate_card`] reads the shared
/// evaluation state immutably and charges a thread-local [`Cost`]; results
/// and cost charges are merged back **in edge order**, so the returned
/// weights and the `cost` totals are bit-identical to calling
/// [`estimate_card`] sequentially over `edges` — regardless of thread
/// count or scheduling. Duplicate edge ids are estimated once each, like a
/// sequential loop would.
pub fn estimate_cards(
    state: &EvalState<'_>,
    edges: &[EdgeId],
    tau: usize,
    par: Parallelism,
    cost: &mut Cost,
) -> Vec<Option<f64>> {
    // Every task is a full sampled operator run — coarse enough that one
    // task per thread already pays for the fan-out.
    let threads = par.effective_threads(edges.len(), 1);
    let runs = state.env.workers().par_map(threads, edges.len(), |i| {
        let mut local = Cost::new();
        let w = estimate_card(state, edges[i], tau, &mut local);
        (w, local)
    });
    runs.into_iter()
        .map(|(w, local)| {
            cost.add(local);
            w
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::RoxEnv;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rox_joingraph::{compile_query, EdgeKind, JoinGraph};
    use rox_xmldb::Catalog;
    use std::sync::Arc;

    fn setup(src: &str, docs: &[(&str, &str)]) -> (Arc<Catalog>, JoinGraph) {
        let cat = Arc::new(Catalog::new());
        for (uri, xml) in docs {
            cat.load_str(uri, xml).unwrap();
        }
        (cat, compile_query(src).unwrap())
    }

    fn many_auctions(n: usize, bidders_per: usize) -> String {
        let mut s = String::from("<site>");
        for _ in 0..n {
            s.push_str("<auction>");
            for _ in 0..bidders_per {
                s.push_str("<bidder/>");
            }
            s.push_str("</auction>");
        }
        s.push_str("</site>");
        s
    }

    #[test]
    fn step_estimate_is_close_to_truth() {
        let xml = many_auctions(200, 3);
        let (cat, g) = setup(
            r#"for $a in doc("d.xml")//auction, $b in $a/bidder return $b"#,
            &[("d.xml", &xml)],
        );
        let env = RoxEnv::new(cat, &g).unwrap();
        let mut st = EvalState::new(&env, &g);
        let mut rng = StdRng::seed_from_u64(5);
        let a = g.var_vertices["a"];
        st.seed_sample(a, &mut rng, 50);
        let e = g.edges().iter().find(|e| !e.redundant).unwrap().id;
        let mut cost = Cost::new();
        let w = estimate_card(&st, e, 50, &mut cost).unwrap();
        // True cardinality: 600 pairs. Allow sampling noise.
        assert!(w > 300.0 && w < 1200.0, "w = {w}");
        assert!(cost.total() > 0);
    }

    #[test]
    fn unweighted_without_samples() {
        let xml = many_auctions(5, 1);
        let (cat, g) = setup(
            r#"for $a in doc("d.xml")//auction, $b in $a/bidder return $b"#,
            &[("d.xml", &xml)],
        );
        let env = RoxEnv::new(cat, &g).unwrap();
        let st = EvalState::new(&env, &g);
        let e = g.edges().iter().find(|e| !e.redundant).unwrap().id;
        assert_eq!(estimate_card(&st, e, 10, &mut Cost::new()), None);
    }

    #[test]
    fn equi_join_estimate() {
        let (cat, g) = setup(
            r#"for $x in doc("x.xml")//a, $y in doc("y.xml")//b
               where $x/text() = $y/text() return $x"#,
            &[
                ("x.xml", "<r><a>k</a><a>k</a><a>z</a></r>"),
                ("y.xml", "<r><b>k</b><b>w</b></r>"),
            ],
        );
        let env = RoxEnv::new(cat, &g).unwrap();
        let mut st = EvalState::new(&env, &g);
        let mut rng = StdRng::seed_from_u64(5);
        // Seed samples on the text vertices adjacent to the equi edge.
        let equi = g
            .edges()
            .iter()
            .find(|e| matches!(e.kind, EdgeKind::EquiJoin { .. }))
            .unwrap();
        st.seed_sample(equi.v1, &mut rng, 100);
        st.seed_sample(equi.v2, &mut rng, 100);
        let w = estimate_card(&st, equi.id, 100, &mut Cost::new()).unwrap();
        // Exact: "k"x2 matches 1 -> 2 pairs (full sample, no cutoff).
        assert_eq!(w, 2.0);
    }

    #[test]
    fn sampled_exec_respects_direction() {
        let xml = many_auctions(10, 2);
        let (cat, g) = setup(
            r#"for $a in doc("d.xml")//auction, $b in $a/bidder return $b"#,
            &[("d.xml", &xml)],
        );
        let env = RoxEnv::new(cat, &g).unwrap();
        let st = EvalState::new(&env, &g);
        let e = g.edges().iter().find(|e| !e.redundant).unwrap();
        // Execute from the bidder side: parent step.
        let bidders = st.table_or_base(e.v2);
        let mut cost = Cost::new();
        let run = sampled_edge_exec(&st, e.id, e.v2, &bidders, 1000, &mut cost);
        assert_eq!(run.output.len(), 20); // each bidder has one auction parent
        assert_eq!(run.est, 20.0);
    }
}
