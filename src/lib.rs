#![warn(missing_docs)]

//! # rox-suite — the workspace umbrella crate
//!
//! Re-exports the full ROX stack for the examples under `examples/` and
//! the integration tests under `tests/`. Library users should depend on
//! the individual crates (`rox-core`, `rox-xmldb`, ...) directly; this
//! crate exists so the repository root can host runnable examples and
//! cross-crate tests, mirroring the paper's system structure:
//!
//! * [`xmldb`] — storage substrate (shredding, pre/size/level encoding);
//! * [`index`] — element and value indices;
//! * [`ops`] — staircase joins, value joins, cut-off sampling, and their
//!   morsel-partitioned parallel variants;
//! * [`joingraph`] — XQuery front end and Join Graph isolation;
//! * [`par`] — the morsel-driven parallel execution substrate
//!   ([`par::Parallelism`], order-preserving `par_map`);
//! * [`rox`] — the run-time optimizer, baselines, plan enumeration;
//! * [`datagen`] — XMark-like and DBLP-like workload generators.
//!
//! ```
//! use std::sync::Arc;
//! let catalog = Arc::new(rox_suite::xmldb::Catalog::new());
//! catalog.load_str("d.xml", "<a><b/><b/></a>").unwrap();
//! let graph = rox_suite::joingraph::compile_query(
//!     r#"for $b in doc("d.xml")//b return $b"#,
//! ).unwrap();
//! let report = rox_suite::rox::run_rox(catalog, &graph, Default::default()).unwrap();
//! assert_eq!(report.output.len(), 2);
//! ```

pub use rox_core as rox;
pub use rox_datagen as datagen;
pub use rox_index as index;
pub use rox_joingraph as joingraph;
pub use rox_ops as ops;
pub use rox_par as par;
pub use rox_xmldb as xmldb;
