//! [`IndexedStore`]: a catalog whose documents carry their element and
//! value indices — the complete "execution environment" of the paper
//! (storage + structural/value indices) that ROX's run-time optimizer
//! probes.
//!
//! The store is built to be shared across concurrent queries: index
//! lookups take a read lock only, and a first-touch build runs inside a
//! per-document [`OnceLock`] cell, so two queries racing to index
//! *different* documents build concurrently while racers on the *same*
//! document build it exactly once.

use crate::element::ElementIndex;
use crate::value::ValueIndex;
use rox_xmldb::{Catalog, DocId, Document};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Both indices of one document.
pub struct DocIndexes {
    /// The element (qname) index.
    pub element: ElementIndex,
    /// The text/attribute value index.
    pub value: ValueIndex,
}

impl DocIndexes {
    /// Build both indices for `doc`.
    pub fn build(doc: &Document) -> Self {
        DocIndexes {
            element: ElementIndex::build(doc),
            value: ValueIndex::build(doc),
        }
    }
}

/// A document catalog plus lazily built per-document indices.
pub struct IndexedStore {
    catalog: Arc<Catalog>,
    /// doc → once-cell holding its built indices. The outer map is only
    /// ever locked to fetch/insert a (cheap) cell; the expensive
    /// [`DocIndexes::build`] happens inside the cell, outside both locks'
    /// critical paths for other documents.
    indexes: RwLock<HashMap<DocId, Arc<OnceLock<Arc<DocIndexes>>>>>,
    /// How many times [`DocIndexes::build`] ran — the "warm queries do
    /// zero redundant index work" observable the engine tests assert on.
    builds: AtomicUsize,
}

impl IndexedStore {
    /// Wrap an existing catalog.
    pub fn new(catalog: Arc<Catalog>) -> Self {
        IndexedStore {
            catalog,
            indexes: RwLock::new(HashMap::new()),
            builds: AtomicUsize::new(0),
        }
    }

    /// The underlying catalog.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// The document with id `id`.
    pub fn doc(&self, id: DocId) -> Arc<Document> {
        self.catalog.doc(id)
    }

    /// The indices of document `id`, building them on first access.
    ///
    /// Warm calls take the read lock only. A cold call inserts an empty
    /// per-document cell under the write lock (cheap) and then builds
    /// inside the cell — so concurrent first touches of *different*
    /// documents index in parallel, and concurrent first touches of the
    /// *same* document build it once (the losers block on that one cell,
    /// not on a store-wide lock).
    pub fn indexes(&self, id: DocId) -> Arc<DocIndexes> {
        let cell = {
            let map = self.indexes.read().expect("index cache poisoned");
            map.get(&id).cloned()
        };
        let cell = match cell {
            Some(cell) => cell,
            None => {
                let mut map = self.indexes.write().expect("index cache poisoned");
                Arc::clone(map.entry(id).or_default())
            }
        };
        Arc::clone(cell.get_or_init(|| {
            self.builds.fetch_add(1, Ordering::Relaxed);
            Arc::new(DocIndexes::build(&self.catalog.doc(id)))
        }))
    }

    /// How many index builds have run so far. A shared store serving warm
    /// traffic must not advance this — see the engine's
    /// zero-redundant-work tests.
    pub fn build_count(&self) -> usize {
        self.builds.load(Ordering::Relaxed)
    }

    /// Drop cached indices (used after re-loading a document).
    pub fn invalidate(&self, id: DocId) {
        self.indexes
            .write()
            .expect("index cache poisoned")
            .remove(&id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexes_are_cached() {
        let cat = Arc::new(Catalog::new());
        let id = cat.load_str("a.xml", "<a><b/><b/></a>").unwrap();
        let store = IndexedStore::new(cat);
        let i1 = store.indexes(id);
        let i2 = store.indexes(id);
        assert!(Arc::ptr_eq(&i1, &i2));
        assert_eq!(store.build_count(), 1);
    }

    #[test]
    fn element_counts_via_store() {
        let cat = Arc::new(Catalog::new());
        let id = cat.load_str("a.xml", "<a><b/><c/><b/></a>").unwrap();
        let store = IndexedStore::new(Arc::clone(&cat));
        let b = cat.interner().get("b").unwrap();
        assert_eq!(store.indexes(id).element.count(b), 2);
    }

    #[test]
    fn invalidate_rebuilds() {
        let cat = Arc::new(Catalog::new());
        let id = cat.load_str("a.xml", "<a><b/></a>").unwrap();
        let store = IndexedStore::new(Arc::clone(&cat));
        let b = cat.interner().get("b").unwrap();
        assert_eq!(store.indexes(id).element.count(b), 1);
        cat.load_str("a.xml", "<a><b/><b/></a>").unwrap();
        store.invalidate(id);
        assert_eq!(store.indexes(id).element.count(b), 2);
        assert_eq!(store.build_count(), 2);
    }

    #[test]
    fn concurrent_first_touch_builds_each_document_once() {
        let cat = Arc::new(Catalog::new());
        let mut ids = Vec::new();
        for i in 0..8 {
            let xml = format!("<r>{}</r>", "<x/>".repeat(i + 1));
            ids.push(cat.load_str(&format!("{i}.xml"), &xml).unwrap());
        }
        let store = IndexedStore::new(cat);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for &id in &ids {
                        let idx = store.indexes(id);
                        assert!(idx.element.text_nodes().is_empty());
                    }
                });
            }
        });
        // Every document indexed exactly once despite 4 racing threads.
        assert_eq!(store.build_count(), ids.len());
    }
}
