//! Durability benchmarks: WAL append latency, group-commit fsync
//! batching, and recovery replay time against a snapshot-only cold
//! start (the `bench_recovery` binary, which emits the machine-readable
//! `BENCH_RECOVERY.json` consumed by CI).
//!
//! Three measured regimes over an XMark corpus plus a pool of small
//! mutable side documents (so each logged record carries a realistic,
//! bounded document image instead of the whole corpus):
//!
//! 1. **Append latency** — a single-threaded stream of durable
//!    invalidations, each acknowledged only after its record is
//!    fsynced; reports mean latency and log bytes per record.
//! 2. **Group commit** — concurrent committers hammering the log;
//!    reports acknowledged commits per fsync (the batching factor) and
//!    end-to-end throughput.
//! 3. **Recovery** — `RoxEngine::recover` with the full mutation tail
//!    in the log vs after a checkpoint truncated it (snapshot-only),
//!    with the recovered output asserted bit-identical to the writer's
//!    before any timing is reported.

use rox_core::{RoxEngine, RoxOptions};
use rox_datagen::{generate_xmark, xmark_query, XmarkConfig};
use rox_storage::SaveReport;
use rox_xmldb::Catalog;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of the durability benchmarks.
#[derive(Debug, Clone)]
pub struct RecoveryBenchConfig {
    /// XMark corpus shape (the snapshot's bulk).
    pub xmark: XmarkConfig,
    /// Small side documents the mutation stream targets.
    pub mutable_docs: usize,
    /// Single-threaded durable mutations in the append-latency phase.
    pub mutations: usize,
    /// Concurrent committers in the group-commit phase.
    pub threads: usize,
    /// Durable mutations per committer thread.
    pub ops_per_thread: usize,
    /// Timed repetitions per recovery measurement (minimum reported).
    pub repeats: usize,
}

impl Default for RecoveryBenchConfig {
    fn default() -> Self {
        RecoveryBenchConfig {
            xmark: XmarkConfig {
                persons: 3000,
                items: 2500,
                auctions: 2500,
                ..XmarkConfig::default()
            },
            mutable_docs: 16,
            mutations: 2000,
            threads: 8,
            ops_per_thread: 64,
            repeats: 3,
        }
    }
}

impl RecoveryBenchConfig {
    /// A seconds-scale configuration for CI smoke runs.
    pub fn smoke() -> Self {
        RecoveryBenchConfig {
            xmark: XmarkConfig {
                persons: 300,
                items: 250,
                auctions: 250,
                ..XmarkConfig::default()
            },
            mutable_docs: 8,
            mutations: 200,
            threads: 4,
            ops_per_thread: 32,
            repeats: 2,
        }
    }
}

/// Everything the `bench_recovery` binary reports.
#[derive(Debug, Clone)]
pub struct RecoveryBenchResult {
    /// The initial checkpoint's snapshot shape.
    pub report: SaveReport,
    /// Mutation records appended in the single-threaded phase.
    pub appends: u64,
    /// Wall time of the single-threaded append phase.
    pub append_total: Duration,
    /// Mean acknowledged-append latency, microseconds.
    pub append_mean_us: f64,
    /// Log bytes per record in the append phase.
    pub wal_bytes_per_record: f64,
    /// Commits acknowledged in the group-commit phase.
    pub group_commits: u64,
    /// Fsyncs those commits rode on.
    pub group_fsyncs: u64,
    /// `group_commits / group_fsyncs` — the batching factor.
    pub acks_per_fsync: f64,
    /// Wall time of the group-commit phase.
    pub group_total: Duration,
    /// Acknowledged mutations per second across all committers.
    pub group_ops_per_sec: f64,
    /// Records the with-log recovery replayed over the snapshot.
    pub replayed: u64,
    /// `RoxEngine::recover` with the full mutation tail in the log.
    pub recover_with_log: Duration,
    /// The checkpoint that truncated the log (snapshot write + rotation).
    pub checkpoint: Duration,
    /// `RoxEngine::recover` after the checkpoint: snapshot only.
    pub recover_snapshot_only: Duration,
    /// `recover_with_log / recover_snapshot_only` — the replay overhead.
    pub replay_overhead: f64,
    /// Output rows of the anchor query (all recoveries bit-identical).
    pub anchor_rows: usize,
}

fn best_of(repeats: usize, mut f: impl FnMut() -> Duration) -> Duration {
    (0..repeats.max(1))
        .map(|_| f())
        .min()
        .expect("at least one repeat")
}

fn bench_dir() -> PathBuf {
    std::env::temp_dir().join(format!("rox-bench-recovery-{}", std::process::id()))
}

fn mutable_uri(i: usize) -> String {
    format!("m{i}.xml")
}

/// Small deterministic content for mutable doc `i`, version `v`.
fn mutable_xml(i: usize, v: usize) -> String {
    format!(
        "<site><open_auction><bidder><increase>{}</increase></bidder><current>{}</current></open_auction></site>",
        (i * 31 + v) % 97,
        (v * 7 + i) % 311
    )
}

/// Run the durability benchmarks.
pub fn run(cfg: &RecoveryBenchConfig) -> RecoveryBenchResult {
    let graph = rox_joingraph::compile_query(&xmark_query("<", 145.0)).unwrap();
    let options = RoxOptions::default();
    let dir = bench_dir();
    std::fs::remove_dir_all(&dir).ok();

    // Seed corpus: the XMark document plus the mutable side pool.
    let catalog = Arc::new(Catalog::new());
    generate_xmark(&catalog, "xmark.xml", &cfg.xmark);
    for i in 0..cfg.mutable_docs {
        catalog
            .load_str(&mutable_uri(i), &mutable_xml(i, 0))
            .unwrap();
    }
    let engine = RoxEngine::new(catalog);
    let reference = engine.run(&graph, options).unwrap().output;
    let anchor_rows = reference.len();
    let report = engine.make_durable(&dir).expect("make durable");

    // ---- 1. Append latency: a single-threaded durable mutation stream,
    // each op reloading one small doc and logging its image. ----
    let before = engine.stats().wal;
    let t = Instant::now();
    for k in 0..cfg.mutations {
        let i = k % cfg.mutable_docs;
        engine
            .catalog()
            .load_str(&mutable_uri(i), &mutable_xml(i, k + 1))
            .unwrap();
        engine
            .try_invalidate_document(&mutable_uri(i))
            .expect("durable invalidate")
            .expect("returns its LSN");
    }
    let append_total = t.elapsed();
    let after = engine.stats().wal;
    let appends = after.records - before.records;
    let append_mean_us = append_total.as_secs_f64() * 1e6 / (appends as f64).max(1.0);
    let wal_bytes_per_record = (after.bytes - before.bytes) as f64 / (appends as f64).max(1.0);

    // ---- 2. Group commit: concurrent committers on distinct URIs
    // (never-loaded documents log compact epoch-bump records, so the
    // phase measures commit coordination, not serialization). ----
    let engine = Arc::new(engine);
    let before = engine.stats().wal;
    let t = Instant::now();
    let handles: Vec<_> = (0..cfg.threads)
        .map(|thread| {
            let engine = Arc::clone(&engine);
            let ops = cfg.ops_per_thread;
            std::thread::spawn(move || {
                for k in 0..ops {
                    engine
                        .try_invalidate_document(&format!("g{thread}-{k}.xml"))
                        .expect("durable invalidate")
                        .expect("returns its LSN");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let group_total = t.elapsed();
    let after = engine.stats().wal;
    let group_commits = after.commits - before.commits;
    let group_fsyncs = after.fsyncs - before.fsyncs;
    let acks_per_fsync = group_commits as f64 / (group_fsyncs as f64).max(1.0);
    let group_ops_per_sec = group_commits as f64 / group_total.as_secs_f64().max(f64::EPSILON);
    drop(engine); // the writer is gone; the directory is the truth

    // ---- 3. Recovery: replay the whole mutation tail, then truncate it
    // with a checkpoint and measure the snapshot-only cold start. ----
    let expect_replayed = cfg.mutations + cfg.threads * cfg.ops_per_thread;
    let mut replayed = 0u64;
    let recover_with_log = best_of(cfg.repeats, || {
        let t = Instant::now();
        let (engine, rec) = RoxEngine::recover(&dir, None).expect("recover");
        let wall = t.elapsed();
        assert_eq!(rec.replayed, expect_replayed, "replay lost records");
        assert_eq!(rec.torn_tail_bytes, 0, "clean shutdown left a torn tail");
        replayed = rec.replayed as u64;
        drop(engine);
        wall
    });

    // Bit-identity before any number is trusted: the recovered engine
    // answers the anchor query exactly like the writer did.
    let (recovered, _) = RoxEngine::recover(&dir, None).expect("recover");
    let out = recovered.run(&graph, options).unwrap().output;
    assert_eq!(out, reference, "recovered output diverged from the writer");
    let t = Instant::now();
    recovered.checkpoint().expect("checkpoint");
    let checkpoint = t.elapsed();
    drop(recovered);

    let recover_snapshot_only = best_of(cfg.repeats, || {
        let t = Instant::now();
        let (engine, rec) = RoxEngine::recover(&dir, None).expect("recover");
        let wall = t.elapsed();
        assert_eq!(rec.replayed, 0, "the checkpoint did not truncate the log");
        drop(engine);
        wall
    });
    let replay_overhead =
        recover_with_log.as_secs_f64() / recover_snapshot_only.as_secs_f64().max(f64::EPSILON);

    std::fs::remove_dir_all(&dir).ok();
    RecoveryBenchResult {
        report,
        appends,
        append_total,
        append_mean_us,
        wal_bytes_per_record,
        group_commits,
        group_fsyncs,
        acks_per_fsync,
        group_total,
        group_ops_per_sec,
        replayed,
        recover_with_log,
        checkpoint,
        recover_snapshot_only,
        replay_overhead,
        anchor_rows,
    }
}

/// Render the result as the `BENCH_RECOVERY.json` document (hand-rolled
/// — the workspace is dependency-free by policy).
pub fn to_json(cfg: &RecoveryBenchConfig, r: &RecoveryBenchResult) -> String {
    format!(
        "{{\n  \"machine\": {},\n  \"config\": {{\"persons\": {}, \"items\": {}, \"auctions\": {}, \"mutable_docs\": {}, \"mutations\": {}, \"threads\": {}, \"ops_per_thread\": {}, \"repeats\": {}}},\n  \"snapshot\": {{\"docs\": {}, \"pages\": {}, \"file_bytes\": {}, \"fsyncs\": {}}},\n  \"wal_append\": {{\"records\": {}, \"total_ms\": {:.3}, \"mean_us\": {:.2}, \"bytes_per_record\": {:.1}}},\n  \"group_commit\": {{\"commits\": {}, \"fsyncs\": {}, \"acks_per_fsync\": {:.2}, \"total_ms\": {:.3}, \"ops_per_sec\": {:.0}}},\n  \"recovery\": {{\"replayed\": {}, \"with_log_ms\": {:.3}, \"checkpoint_ms\": {:.3}, \"snapshot_only_ms\": {:.3}, \"replay_overhead\": {:.2}}},\n  \"anchor_rows\": {}\n}}\n",
        crate::machine_json(),
        cfg.xmark.persons,
        cfg.xmark.items,
        cfg.xmark.auctions,
        cfg.mutable_docs,
        cfg.mutations,
        cfg.threads,
        cfg.ops_per_thread,
        cfg.repeats,
        r.report.docs,
        r.report.pages,
        r.report.file_bytes,
        r.report.fsyncs,
        r.appends,
        r.append_total.as_secs_f64() * 1e3,
        r.append_mean_us,
        r.wal_bytes_per_record,
        r.group_commits,
        r.group_fsyncs,
        r.acks_per_fsync,
        r.group_total.as_secs_f64() * 1e3,
        r.group_ops_per_sec,
        r.replayed,
        r.recover_with_log.as_secs_f64() * 1e3,
        r.checkpoint.as_secs_f64() * 1e3,
        r.recover_snapshot_only.as_secs_f64() * 1e3,
        r.replay_overhead,
        r.anchor_rows,
    )
}

/// Render a human-readable summary table.
pub fn render(r: &RecoveryBenchResult) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    writeln!(
        out,
        "snapshot   {} docs, {} pages, {} B ({} fsyncs to publish)",
        r.report.docs, r.report.pages, r.report.file_bytes, r.report.fsyncs
    )
    .unwrap();
    writeln!(
        out,
        "append     {} records in {:?} ({:.1} µs/record, {:.0} B/record)",
        r.appends, r.append_total, r.append_mean_us, r.wal_bytes_per_record
    )
    .unwrap();
    writeln!(
        out,
        "group      {} commits over {} fsyncs ({:.2} acks/fsync, {:.0} ops/s)",
        r.group_commits, r.group_fsyncs, r.acks_per_fsync, r.group_ops_per_sec
    )
    .unwrap();
    writeln!(
        out,
        "recover    {} records replayed in {:?}; checkpoint {:?}; snapshot-only {:?} ({:.2}x overhead)",
        r.replayed, r.recover_with_log, r.checkpoint, r.recover_snapshot_only, r.replay_overhead
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_is_consistent() {
        let cfg = RecoveryBenchConfig {
            xmark: XmarkConfig::tiny(),
            mutable_docs: 4,
            mutations: 24,
            threads: 2,
            ops_per_thread: 8,
            repeats: 1,
        };
        let r = run(&cfg);
        assert!(r.anchor_rows > 0, "anchor query returned nothing");
        assert_eq!(r.appends, 24);
        assert_eq!(r.group_commits, 16);
        assert_eq!(r.replayed, 24 + 16);
        assert!(r.group_fsyncs >= 1 && r.group_fsyncs <= r.group_commits);
        assert!(r.wal_bytes_per_record > 0.0);
        let json = to_json(&cfg, &r);
        assert!(json.contains("\"wal_append\""));
        assert!(json.contains("\"group_commit\""));
        assert!(json.contains("\"recovery\""));
        let table = render(&r);
        assert!(table.contains("acks/fsync"));
        assert!(table.contains("replayed"));
    }
}
