//! Structural (staircase) joins over the pre/size/level encoding.
//!
//! `step_join(axis, C, S)` evaluates one XPath step for a context sequence
//! `C` against a candidate sequence `S` (both pre-sorted within one
//! document), producing *pairs* `(context row, result node)` so the caller
//! can both derive the duplicate-free node result (the paper's staircase
//! join output) and compose fully-joined component relations.
//!
//! All implementations are **zero-investment** with respect to `C` (§2.3):
//! work is `O(|C|·log|S| + |R|)` or better — no preprocessing proportional
//! to `|S|` happens before the first result can be produced, which is what
//! makes cut-off sampling of these operators strictly bounded.
//!
//! # Kernels
//!
//! Since the vectorized-execution refactor the join is served by one of
//! three *kernels*, selected per call by the documented cost rule
//! [`choose_step_kernel`](crate::cost::choose_step_kernel()):
//!
//! * [`StepKernel::Probe`] — the classic walk: per context node, traverse
//!   the axis and test each produced node against the sorted candidate
//!   slice. Probes are **range-pruned**: a produced node outside
//!   `[S.first(), S.last()]` skips its binary search (charged as if it
//!   ran), and the Ancestor walk stops chasing parents the moment the
//!   chain drops below `S.first()` — the remaining probes are bulk-charged
//!   from the node's stored level.
//! * [`StepKernel::Merge`] — Child/Attribute only: a single forward merge
//!   over `S` with galloping (exponential search) per context node,
//!   touching only the candidates inside the context's subtree range and
//!   deciding each with one `parent` read — no per-child binary search,
//!   no walk over high-fanout child lists.
//! * [`StepKernel::Bitset`] — the probe walk with membership answered by
//!   a [`PreSet`] (one shift + mask). The set is the caller's cached one
//!   ([`StepScratch::cands_set`], the evaluation state's scratch arena),
//!   a pooled universe, or built on the fly.
//!
//! All kernels are **bit-identical** in pairs, pair order, truncation
//! point, and [`Cost`] charges (pinned by
//! `tests/proptest_staircase_kernels.rs`): every kernel charges exactly
//! the probes the probe walk performs, so the figure harnesses' work
//! counters cannot observe which kernel ran.

use crate::axis::Axis;
use crate::cost::{choose_step_kernel, Cost, StepKernel};
use crate::cutoff::JoinOut;
use crate::pool::ScratchPool;
use rox_index::PreSet;
use rox_xmldb::{Document, NodeKind, Pre};

/// Caller-provided reusable state for one [`step_join_kernel`] call. Both
/// fields are optional — the kernel builds (and frees) whatever a `None`
/// withholds; supplying them only skips rebuilds, never changes results.
#[derive(Default, Clone, Copy)]
pub struct StepScratch<'a> {
    /// A membership set over exactly the call's candidate list (the
    /// evaluation state caches one per vertex table version).
    pub cands_set: Option<&'a PreSet>,
    /// Buffer pool for the pair output and, when `cands_set` is absent,
    /// the bitset kernel's universe.
    pub pool: Option<&'a ScratchPool>,
}

/// Evaluate `axis::S` for every context node, stopping once `limit` pairs
/// have been produced (cut-off execution, §2.3). Produced pairs carry the
/// context node's *position* in `ctx` as their row id — the densely
/// increasing row identifier the reduction factor relies on. `ctx` must be
/// sorted on pre (duplicates allowed); `cands` must be sorted,
/// duplicate-free, and pre-filtered by the step's node test
/// (element-index / value-index lookups produce exactly this shape).
///
/// The kernel is chosen by
/// [`choose_step_kernel`](crate::cost::choose_step_kernel()); see
/// [`step_join_scratch`] to also reuse cached scratch state and
/// [`step_join_kernel`] to force a kernel.
pub fn step_join(
    doc: &Document,
    axis: Axis,
    ctx: &[Pre],
    cands: &[Pre],
    limit: Option<usize>,
    cost: &mut Cost,
) -> JoinOut<Pre> {
    step_join_scratch(doc, axis, ctx, cands, limit, StepScratch::default(), cost)
}

/// As [`step_join`] with caller-provided scratch state (cached candidate
/// set and/or buffer pool).
pub fn step_join_scratch(
    doc: &Document,
    axis: Axis,
    ctx: &[Pre],
    cands: &[Pre],
    limit: Option<usize>,
    scratch: StepScratch<'_>,
    cost: &mut Cost,
) -> JoinOut<Pre> {
    let kernel = choose_step_kernel(axis, ctx.len(), cands.len(), limit.is_some());
    step_join_kernel(doc, axis, ctx, cands, limit, kernel, scratch, cost)
}

/// As [`step_join`] with an explicit kernel (the entry point of the
/// kernel-equivalence proptests and the `bench_staircase` microbench).
/// [`StepKernel::Merge`] on a non-Child/Attribute axis falls back to the
/// probe walk (the merge kernel is only defined for those axes).
#[allow(clippy::too_many_arguments)]
pub fn step_join_kernel(
    doc: &Document,
    axis: Axis,
    ctx: &[Pre],
    cands: &[Pre],
    limit: Option<usize>,
    kernel: StepKernel,
    scratch: StepScratch<'_>,
    cost: &mut Cost,
) -> JoinOut<Pre> {
    debug_assert!(
        ctx.windows(2).all(|w| w[0] <= w[1]),
        "context not sorted on pre"
    );
    debug_assert!(
        cands.windows(2).all(|w| w[0] < w[1]),
        "candidates not sorted/unique"
    );
    match kernel {
        StepKernel::Merge if matches!(axis, Axis::Child | Axis::Attribute) => {
            merge_walk(doc, axis, ctx, cands, limit, scratch.pool, cost)
        }
        StepKernel::Probe | StepKernel::Merge => {
            probe_walk(doc, axis, ctx, cands, None, limit, scratch.pool, cost)
        }
        StepKernel::Bitset => {
            let set = resolve_cands_set(cands, scratch);
            let out = probe_walk(
                doc,
                axis,
                ctx,
                cands,
                Some(set.get()),
                limit,
                scratch.pool,
                cost,
            );
            set.finish();
            out
        }
    }
}

/// The bitset kernel's candidate membership set, resolved from one
/// [`StepScratch`]: the caller's cached set when provided, else a pooled
/// universe, else a fresh build — the one place that owns the
/// `cands.last() + 1` universe rule (shared by the sequential and
/// partitioned entry points).
pub(crate) enum CandsSet<'a> {
    /// The caller's cached set (scratch arena).
    Borrowed(&'a PreSet),
    /// Leased from the pool; returned by [`CandsSet::finish`].
    Leased(PreSet, &'a ScratchPool),
    /// Built fresh for this call.
    Owned(PreSet),
}

impl<'a> CandsSet<'a> {
    /// The membership set over the call's candidates.
    pub(crate) fn get(&self) -> &PreSet {
        match self {
            CandsSet::Borrowed(set) => set,
            CandsSet::Leased(set, _) => set,
            CandsSet::Owned(set) => set,
        }
    }

    /// Hand a leased set back to its pool (no-op otherwise).
    pub(crate) fn finish(self) {
        if let CandsSet::Leased(set, pool) = self {
            pool.give_set(set);
        }
    }
}

/// Resolve the bitset kernel's candidate set from the caller's scratch.
pub(crate) fn resolve_cands_set<'a>(cands: &[Pre], scratch: StepScratch<'a>) -> CandsSet<'a> {
    if let Some(set) = scratch.cands_set {
        return CandsSet::Borrowed(set);
    }
    let universe = cands.last().map_or(0, |&p| p as usize + 1);
    match scratch.pool {
        Some(pool) => CandsSet::Leased(pool.lease_set(universe, cands), pool),
        None => CandsSet::Owned(PreSet::from_nodes(universe, cands)),
    }
}

/// Candidate membership for the probe walk: the range prune applies to
/// both backends, the lookup is a binary search (slice) or a shift + mask
/// (bitset). The set, when given, must cover exactly `cands`.
#[inline]
fn member(cands: &[Pre], set: Option<&PreSet>, lo: Pre, hi: Pre, p: Pre) -> bool {
    if p < lo || p > hi {
        return false;
    }
    match set {
        Some(s) => s.contains(p),
        None => cands.binary_search(&p).is_ok(),
    }
}

/// The probe-loop walk shared by the Probe and Bitset kernels: per context
/// node, traverse the axis and test every produced node. One probe is
/// charged per produced node whether or not the range prune skips its
/// lookup, so charges are independent of pruning and membership backend.
#[allow(clippy::too_many_arguments)]
fn probe_walk(
    doc: &Document,
    axis: Axis,
    ctx: &[Pre],
    cands: &[Pre],
    set: Option<&PreSet>,
    limit: Option<usize>,
    pool: Option<&ScratchPool>,
    cost: &mut Cost,
) -> JoinOut<Pre> {
    let mut out = JoinOut::with_limit_pooled(ctx.len(), limit, pool);
    let limit = limit.unwrap_or(usize::MAX);
    // Range prune bounds (empty candidate list: lo > hi rejects all).
    let lo = cands.first().copied().unwrap_or(1);
    let hi = cands.last().copied().unwrap_or(0);
    'outer: for (row, &c) in ctx.iter().enumerate() {
        let row = row as u32;
        cost.charge_in(1);
        match axis {
            Axis::Descendant | Axis::DescendantOrSelf => {
                let from = if axis == Axis::Descendant { c + 1 } else { c };
                let until = doc.post(c);
                cost.charge_probe(1);
                let start = cands.partition_point(|&s| s < from);
                for &s in &cands[start..] {
                    if s > until {
                        break;
                    }
                    // The descendant axes exclude attribute nodes even
                    // though they fall inside the pre range.
                    if doc.kind(s) == NodeKind::Attribute {
                        continue;
                    }
                    if out.emit(row, s, limit, cost) {
                        break 'outer;
                    }
                }
            }
            Axis::Child => {
                for s in doc.children(c) {
                    cost.charge_probe(1);
                    if member(cands, set, lo, hi, s) && out.emit(row, s, limit, cost) {
                        break 'outer;
                    }
                }
            }
            Axis::Attribute => {
                for s in doc.attributes(c) {
                    cost.charge_probe(1);
                    if member(cands, set, lo, hi, s) && out.emit(row, s, limit, cost) {
                        break 'outer;
                    }
                }
            }
            Axis::Parent => {
                if c != 0 {
                    let p = doc.parent(c);
                    cost.charge_probe(1);
                    if member(cands, set, lo, hi, p) && out.emit(row, p, limit, cost) {
                        break 'outer;
                    }
                }
            }
            Axis::Ancestor | Axis::AncestorOrSelf => {
                let mut cur = c;
                if axis == Axis::AncestorOrSelf {
                    cost.charge_probe(1);
                    if member(cands, set, lo, hi, cur) && out.emit(row, cur, limit, cost) {
                        break 'outer;
                    }
                }
                while cur != 0 {
                    cur = doc.parent(cur);
                    if cur < lo {
                        // The chain left the candidate range for good
                        // (ancestor pres only decrease): bulk-charge the
                        // probes the un-pruned walk would still make —
                        // this node plus one per remaining ancestor — and
                        // stop chasing parents.
                        cost.charge_probe(1 + doc.level(cur) as usize);
                        break;
                    }
                    cost.charge_probe(1);
                    if member(cands, set, lo, hi, cur) && out.emit(row, cur, limit, cost) {
                        break 'outer;
                    }
                    if cur == 0 {
                        break;
                    }
                }
            }
            Axis::Following => {
                let until = doc.post(c);
                cost.charge_probe(1);
                let start = cands.partition_point(|&s| s <= until);
                for &s in &cands[start..] {
                    if doc.kind(s) == NodeKind::Attribute {
                        continue;
                    }
                    if out.emit(row, s, limit, cost) {
                        break 'outer;
                    }
                }
            }
            Axis::Preceding => {
                cost.charge_probe(1);
                let end = cands.partition_point(|&s| s < c);
                for &s in &cands[..end] {
                    // Exclude ancestors (whose subtree contains c) and
                    // attribute nodes.
                    if doc.post(s) >= c || doc.kind(s) == NodeKind::Attribute {
                        continue;
                    }
                    if out.emit(row, s, limit, cost) {
                        break 'outer;
                    }
                }
            }
            Axis::FollowingSibling | Axis::PrecedingSibling => {
                if c == 0 {
                    continue;
                }
                let p = doc.parent(c);
                for s in doc.children(p) {
                    let keep = if axis == Axis::FollowingSibling {
                        s > c
                    } else {
                        s < c
                    };
                    if !keep {
                        continue;
                    }
                    cost.charge_probe(1);
                    if member(cands, set, lo, hi, s) && out.emit(row, s, limit, cost) {
                        break 'outer;
                    }
                }
            }
            Axis::SelfAxis => {
                cost.charge_probe(1);
                if member(cands, set, lo, hi, c) && out.emit(row, c, limit, cost) {
                    break 'outer;
                }
            }
        }
        out.ctx_done(row);
    }
    out
}

/// First index `>= from` whose candidate is `>= target`, found by
/// exponential search from `from` (the merge kernel's shared cursor only
/// ever moves forward, so short gallops dominate).
fn gallop(cands: &[Pre], from: usize, target: Pre) -> usize {
    if from >= cands.len() || cands[from] >= target {
        return from;
    }
    // cands[from + prev] < target holds throughout.
    let mut prev = 0usize;
    let mut bound = 1usize;
    while from + bound < cands.len() && cands[from + bound] < target {
        prev = bound;
        bound *= 2;
    }
    let lo = from + prev + 1;
    let hi = (from + bound + 1).min(cands.len());
    lo + cands[lo..hi].partition_point(|&s| s < target)
}

/// The merge kernel (Child/Attribute): gallop the shared candidate cursor
/// to each context's subtree range and decide each in-range candidate with
/// one `parent` read. Emission order equals the probe walk's (children in
/// document order = ascending pre), and probes are charged exactly as the
/// probe walk charges them — one per child (attribute) the walk would
/// visit, which on a cut-off hit means only the children up to and
/// including the emitting node.
fn merge_walk(
    doc: &Document,
    axis: Axis,
    ctx: &[Pre],
    cands: &[Pre],
    limit: Option<usize>,
    pool: Option<&ScratchPool>,
    cost: &mut Cost,
) -> JoinOut<Pre> {
    let want_attr = axis == Axis::Attribute;
    let mut out = JoinOut::with_limit_pooled(ctx.len(), limit, pool);
    let limit = limit.unwrap_or(usize::MAX);
    let mut start = 0usize;
    'outer: for (row, &c) in ctx.iter().enumerate() {
        let row = row as u32;
        cost.charge_in(1);
        // Contexts ascend, so `c + 1` ascends: one forward cursor serves
        // every gallop as its lower bound.
        start = gallop(cands, start, c + 1);
        let until = doc.post(c);
        let mut cut_at: Option<Pre> = None;
        for &s in &cands[start..] {
            if s > until {
                break;
            }
            if (doc.kind(s) == NodeKind::Attribute) == want_attr
                && doc.parent(s) == c
                && out.emit(row, s, limit, cost)
            {
                cut_at = Some(s);
                break;
            }
        }
        // Probe-walk charge parity: the walk probes every child
        // (attribute) of `c` — on a cut-off hit, only those up to and
        // including the emitting node.
        let walked = match (want_attr, cut_at) {
            (false, None) => doc.children(c).count(),
            (false, Some(s)) => doc.children(c).take_while(|&ch| ch <= s).count(),
            (true, None) => doc.attributes(c).count(),
            (true, Some(s)) => doc.attributes(c).take_while(|&a| a <= s).count(),
        };
        cost.charge_probe(walked);
        if cut_at.is_some() {
            break 'outer;
        }
        out.ctx_done(row);
    }
    out
}

/// Reference (naive) axis semantics used by the property tests: enumerate
/// every node of the document and decide membership per the XPath data
/// model. O(|C|·|D|) — never used by the engine itself.
pub fn naive_axis(doc: &Document, axis: Axis, c: Pre, s: Pre) -> bool {
    let anc = |a: Pre, d: Pre| doc.is_ancestor(a, d);
    let s_attr = doc.kind(s) == NodeKind::Attribute;
    match axis {
        Axis::Child => !s_attr && doc.parent(s) == c && s != c,
        Axis::Attribute => s_attr && doc.parent(s) == c,
        Axis::Descendant => !s_attr && anc(c, s),
        Axis::DescendantOrSelf => !s_attr && (s == c || anc(c, s)),
        Axis::Parent => c != 0 && doc.parent(c) == s,
        Axis::Ancestor => anc(s, c),
        Axis::AncestorOrSelf => s == c || anc(s, c),
        Axis::Following => !s_attr && s > doc.post(c),
        Axis::Preceding => !s_attr && doc.post(s) < c,
        // The root is its own parent in the encoding, so exclude it
        // explicitly: it is nobody's sibling.
        Axis::FollowingSibling => {
            c != 0 && s != 0 && s != c && !s_attr && doc.parent(s) == doc.parent(c) && s > c
        }
        Axis::PrecedingSibling => {
            c != 0 && s != 0 && s != c && !s_attr && doc.parent(s) == doc.parent(c) && s < c
        }
        Axis::SelfAxis => s == c,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axis::NodeTest;
    use rox_index::ElementIndex;
    use rox_xmldb::parse_document;

    const DOC: &str = r#"<site><people><person id="p1"><name>a</name></person><person id="p2"><name>b</name></person></people><auctions><auction><bidder><ref/></bidder><bidder><ref/></bidder></auction><auction><bidder><ref/></bidder></auction></auctions></site>"#;

    fn setup() -> (std::sync::Arc<rox_xmldb::Document>, ElementIndex) {
        let d = parse_document("t.xml", DOC).unwrap();
        let idx = ElementIndex::build(&d);
        (d, idx)
    }

    fn run(d: &rox_xmldb::Document, axis: Axis, ctx: &[Pre], cands: &[Pre]) -> Vec<(u32, Pre)> {
        let mut cost = Cost::new();
        step_join(d, axis, ctx, cands, None, &mut cost).pairs
    }

    /// Run one axis under every kernel and assert bit-identical output and
    /// charges; returns the probe kernel's pairs.
    fn run_all_kernels(
        d: &rox_xmldb::Document,
        axis: Axis,
        ctx: &[Pre],
        cands: &[Pre],
        limit: Option<usize>,
    ) -> Vec<(u32, Pre)> {
        let mut probe_cost = Cost::new();
        let probe = step_join_kernel(
            d,
            axis,
            ctx,
            cands,
            limit,
            StepKernel::Probe,
            StepScratch::default(),
            &mut probe_cost,
        );
        for kernel in [StepKernel::Merge, StepKernel::Bitset] {
            let mut cost = Cost::new();
            let got = step_join_kernel(
                d,
                axis,
                ctx,
                cands,
                limit,
                kernel,
                StepScratch::default(),
                &mut cost,
            );
            assert_eq!(got.pairs, probe.pairs, "{axis:?} {kernel:?} pairs");
            assert_eq!(got.truncated, probe.truncated, "{axis:?} {kernel:?}");
            assert_eq!(cost, probe_cost, "{axis:?} {kernel:?} cost");
        }
        probe.pairs
    }

    #[test]
    fn descendant_matches_naive() {
        let (d, idx) = setup();
        let bidder = d.interner().get("bidder").unwrap();
        let cands = idx.lookup(bidder);
        let pairs = run(&d, Axis::Descendant, &[0], cands);
        assert_eq!(pairs.len(), 3);
        for (_, s) in &pairs {
            assert!(naive_axis(&d, Axis::Descendant, 0, *s));
        }
    }

    #[test]
    fn child_only_direct_children() {
        let (d, idx) = setup();
        let auction = d.interner().get("auction").unwrap();
        let auctions_el = idx.lookup(d.interner().get("auctions").unwrap())[0];
        let pairs = run_all_kernels(&d, Axis::Child, &[auctions_el], idx.lookup(auction), None);
        assert_eq!(pairs.len(), 2);
    }

    #[test]
    fn attribute_axis_finds_attrs() {
        let (d, idx) = setup();
        let person = d.interner().get("person").unwrap();
        let persons = idx.lookup(person).to_vec();
        let attrs = idx.attributes().to_vec();
        let pairs = run_all_kernels(&d, Axis::Attribute, &persons, &attrs, None);
        assert_eq!(pairs.len(), 2);
        for (_, a) in pairs {
            assert_eq!(d.kind(a), NodeKind::Attribute);
        }
    }

    #[test]
    fn ancestor_walks_to_root() {
        let (d, idx) = setup();
        let refs = idx.lookup(d.interner().get("ref").unwrap()).to_vec();
        let elems = idx.elements().to_vec();
        let pairs = run_all_kernels(&d, Axis::Ancestor, &refs, &elems, None);
        // Each ref has ancestors: bidder, auction, auctions, site = 4.
        assert_eq!(pairs.len(), refs.len() * 4);
    }

    #[test]
    fn following_and_preceding_partition() {
        let (d, idx) = setup();
        let person = idx.lookup(d.interner().get("person").unwrap()).to_vec();
        let elems = idx.elements().to_vec();
        let c = person[0];
        let foll = run(&d, Axis::Following, &[c], &elems);
        let prec = run(&d, Axis::Preceding, &[c], &elems);
        for (_, s) in &foll {
            assert!(naive_axis(&d, Axis::Following, c, *s));
        }
        for (_, s) in &prec {
            assert!(naive_axis(&d, Axis::Preceding, c, *s));
        }
        // person[0] has no preceding elements (only ancestors before it).
        assert!(prec.is_empty());
        assert!(!foll.is_empty());
    }

    #[test]
    fn siblings() {
        let (d, idx) = setup();
        let person = idx.lookup(d.interner().get("person").unwrap()).to_vec();
        let folls = run_all_kernels(&d, Axis::FollowingSibling, &[person[0]], &person, None);
        assert_eq!(folls, vec![(0, person[1])]);
        let precs = run_all_kernels(&d, Axis::PrecedingSibling, &[person[1]], &person, None);
        assert_eq!(precs, vec![(0, person[0])]);
    }

    #[test]
    fn parent_and_self() {
        let (d, idx) = setup();
        let name = idx.lookup(d.interner().get("name").unwrap()).to_vec();
        let person = idx.lookup(d.interner().get("person").unwrap()).to_vec();
        let pairs = run_all_kernels(&d, Axis::Parent, &name, &person, None);
        assert_eq!(pairs.len(), 2);
        let selfs = run_all_kernels(&d, Axis::SelfAxis, &person, &person, None);
        assert_eq!(selfs.len(), 2);
    }

    #[test]
    fn cutoff_truncates_and_extrapolates() {
        let (d, idx) = setup();
        let bidder = idx.lookup(d.interner().get("bidder").unwrap()).to_vec();
        // Context: the two auction elements -> 3 bidder pairs total.
        let auction = idx.lookup(d.interner().get("auction").unwrap()).to_vec();
        let mut cost = Cost::new();
        let out = step_join(&d, Axis::Descendant, &auction, &bidder, Some(2), &mut cost);
        assert!(out.truncated);
        assert_eq!(out.pairs.len(), 2);
        // First auction (row 0) produced both pairs before the cut-off:
        // f = 1/2 processed, estimate = 2 / (1/2) = 4 (true value 3).
        let est = out.estimate();
        assert!((3.0..=4.5).contains(&est), "est = {est}");
    }

    #[test]
    fn cutoff_is_kernel_independent() {
        let (d, idx) = setup();
        let bidder = idx.lookup(d.interner().get("bidder").unwrap()).to_vec();
        let auction = idx.lookup(d.interner().get("auction").unwrap()).to_vec();
        for limit in 1..=4 {
            run_all_kernels(&d, Axis::Child, &auction, &bidder, Some(limit));
        }
    }

    #[test]
    fn empty_candidates_are_kernel_independent() {
        let (d, idx) = setup();
        let person = idx.lookup(d.interner().get("person").unwrap()).to_vec();
        for axis in [Axis::Child, Axis::Attribute, Axis::Parent, Axis::Ancestor] {
            let pairs = run_all_kernels(&d, axis, &person, &[], None);
            assert!(pairs.is_empty());
        }
    }

    #[test]
    fn node_test_prefilter_equivalence() {
        // Using a name-filtered candidate list is the same as filtering after.
        let (d, idx) = setup();
        let bidder_sym = d.interner().get("bidder").unwrap();
        let all = idx.elements().to_vec();
        let pairs_all = run(&d, Axis::Descendant, &[0], &all);
        let test = NodeTest::element(bidder_sym);
        let filtered: Vec<_> = pairs_all
            .into_iter()
            .filter(|(_, s)| test.matches(&d, *s))
            .collect();
        let direct = run(&d, Axis::Descendant, &[0], idx.lookup(bidder_sym));
        assert_eq!(filtered, direct);
    }

    #[test]
    fn gallop_finds_lower_bound_from_any_cursor() {
        let cands: Vec<Pre> = vec![2, 3, 5, 8, 13, 21, 34, 55];
        for from in 0..=cands.len() {
            for target in 0..60u32 {
                let expect = cands.partition_point(|&s| s < target).max(from);
                assert_eq!(
                    gallop(&cands, from, target),
                    expect,
                    "from={from} target={target}"
                );
            }
        }
    }
}
