//! Dense-join microbenchmarks: CSR/bitset layouts vs the hash-map and
//! binary-search structures they replaced, plus an end-to-end Q1 anchor.
//! Writes the machine-readable `BENCH_joins.json` consumed by CI.
//!
//! ```text
//! cargo run --release -p rox-bench --bin bench_joins -- \
//!     [--smoke] [--out BENCH_joins.json] [--persons 3000] [--items 2500] \
//!     [--auctions 2500] [--probe-rounds 20] [--sampling-rounds 200] \
//!     [--tau 256] [--repeats 3]
//! ```

use rox_bench::args::Args;
use rox_bench::joins::{self, JoinsBenchConfig};

fn main() {
    let args = Args::from_env();
    let mut cfg = if args.has("smoke") {
        JoinsBenchConfig::smoke()
    } else {
        JoinsBenchConfig::default()
    };
    cfg.xmark.persons = args.get("persons", cfg.xmark.persons);
    cfg.xmark.items = args.get("items", cfg.xmark.items);
    cfg.xmark.auctions = args.get("auctions", cfg.xmark.auctions);
    cfg.probe_rounds = args.get("probe-rounds", cfg.probe_rounds);
    cfg.sampling_rounds = args.get("sampling-rounds", cfg.sampling_rounds);
    cfg.tau = args.get("tau", cfg.tau);
    cfg.repeats = args.get("repeats", cfg.repeats);
    let out_path = args.get("out", "BENCH_joins.json".to_string());

    println!(
        "join microbench — XMark persons={} items={} auctions={}, τ={}",
        cfg.xmark.persons, cfg.xmark.items, cfg.xmark.auctions, cfg.tau
    );
    let r = joins::run(&cfg);
    println!(
        "document: {} text nodes, {} interned symbols\n",
        r.text_nodes, r.symbols
    );
    println!(
        "probe kernel     hash {:>12?}  csr    {:>12?}  speedup {:>5.2}x  ({} probes)",
        r.probe.before, r.probe.after, r.probe.speedup, r.probe.work_items
    );
    println!(
        "sampling loop    bsearch {:>9?}  bitset {:>12?}  speedup {:>5.2}x  ({} rounds)",
        r.sampling_loop.before,
        r.sampling_loop.after,
        r.sampling_loop.speedup,
        r.sampling_loop.work_items
    );
    println!(
        "end-to-end Q1    total {:?}  sampling {:?}  ({} output rows)",
        r.end_to_end_total, r.end_to_end_sampling, r.end_to_end_rows
    );

    let json = joins::to_json(&cfg, &r);
    std::fs::write(&out_path, &json).expect("write BENCH_joins.json");
    println!("\nwrote {out_path}");
}
