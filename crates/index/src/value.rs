//! The value index: equality and numeric-range access to text and
//! attribute node values.

use crate::dense::SymbolTable;
use rox_xmldb::value::parse_number;
use rox_xmldb::{CmpOp, Constant, Document, NodeKind, Pre, Symbol, ValuePredicate};

/// Value index of one document, conceptually an ordered store of
/// `(val, qelt, qattr, pre)` tuples (§2.2 of the paper).
///
/// String equality is answered **without hashing**: the shared interner
/// already hash-consed every value to a dense [`Symbol`], so the per-kind
/// maps are CSR [`SymbolTable`]s indexed directly by `Symbol.0` — an
/// equality probe is two array reads. Numeric range predicates are
/// answered over per-kind projections sorted by numeric value.
pub struct ValueIndex {
    /// text value symbol → text node pres (document order), CSR layout.
    text_by_value: SymbolTable,
    /// attribute value symbol → attribute node pres (document order), CSR.
    attr_by_value: SymbolTable,
    /// Text nodes whose value casts to a double, sorted by (value, pre).
    numeric_text: Vec<(f64, Pre)>,
    /// Attribute nodes whose value casts to a double, sorted by (value, pre).
    numeric_attr: Vec<(f64, Pre)>,
}

/// Per-symbol memo of [`parse_number`] results: repeated values (dense
/// symbol ids) parse once instead of once per node.
struct NumericMemo {
    parsed: Vec<Option<Option<f64>>>,
}

impl NumericMemo {
    fn new(symbol_count: usize) -> Self {
        NumericMemo {
            parsed: vec![None; symbol_count],
        }
    }

    fn get(&mut self, doc: &Document, sym: Symbol, pre: Pre) -> Option<f64> {
        if sym.index() >= self.parsed.len() {
            self.parsed.resize(sym.index() + 1, None);
        }
        match self.parsed[sym.index()] {
            Some(cached) => cached,
            None => {
                let n = parse_number(&doc.value_str(pre));
                self.parsed[sym.index()] = Some(n);
                n
            }
        }
    }
}

impl ValueIndex {
    /// Build the index with a single scan of the node table. Node values
    /// are grouped per symbol in CSR layout (a counting sort — no
    /// hashing), and numeric parsing is memoized per distinct symbol.
    pub fn build(doc: &Document) -> Self {
        let mut text_syms: Vec<Symbol> = Vec::new();
        let mut text_pres: Vec<Pre> = Vec::new();
        let mut attr_syms: Vec<Symbol> = Vec::new();
        let mut attr_pres: Vec<Pre> = Vec::new();
        let mut numeric_text = Vec::new();
        let mut numeric_attr = Vec::new();
        let mut memo = NumericMemo::new(doc.symbol_count());
        for pre in 0..doc.node_count() as Pre {
            match doc.kind(pre) {
                NodeKind::Text => {
                    let v = doc.value(pre);
                    text_syms.push(v);
                    text_pres.push(pre);
                    if let Some(n) = memo.get(doc, v, pre) {
                        numeric_text.push((n, pre));
                    }
                }
                NodeKind::Attribute => {
                    let v = doc.value(pre);
                    attr_syms.push(v);
                    attr_pres.push(pre);
                    if let Some(n) = memo.get(doc, v, pre) {
                        numeric_attr.push((n, pre));
                    }
                }
                _ => {}
            }
        }
        numeric_text.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        numeric_attr.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        ValueIndex {
            text_by_value: SymbolTable::from_pairs(&text_syms, &text_pres),
            attr_by_value: SymbolTable::from_pairs(&attr_syms, &attr_pres),
            numeric_text,
            numeric_attr,
        }
    }

    /// Reassemble an index from its serialized parts (the snapshot decode
    /// path). The numeric runs must already be sorted the way
    /// [`ValueIndex::build`] sorts them — the snapshot encoder writes them
    /// verbatim, so decoding preserves that order bit-for-bit.
    pub fn from_parts(
        text_by_value: SymbolTable,
        attr_by_value: SymbolTable,
        numeric_text: Vec<(f64, Pre)>,
        numeric_attr: Vec<(f64, Pre)>,
    ) -> Self {
        ValueIndex {
            text_by_value,
            attr_by_value,
            numeric_text,
            numeric_attr,
        }
    }

    /// The text-value CSR table — the snapshot encode path's payload.
    pub fn text_table(&self) -> &SymbolTable {
        &self.text_by_value
    }

    /// The attribute-value CSR table.
    pub fn attr_table(&self) -> &SymbolTable {
        &self.attr_by_value
    }

    /// The sorted numeric text run, as built.
    pub fn numeric_text_run(&self) -> &[(f64, Pre)] {
        &self.numeric_text
    }

    /// The sorted numeric attribute run, as built.
    pub fn numeric_attr_run(&self) -> &[(f64, Pre)] {
        &self.numeric_attr
    }

    /// `D³ₜₑₓₜ(v)`: text nodes with exactly value `v` (interned symbol),
    /// sorted on pre. Two array reads, no hashing.
    pub fn text_eq(&self, value: Symbol) -> &[Pre] {
        self.text_by_value.get(value)
    }

    /// Attribute nodes with exactly value `v`, sorted on pre. Two array
    /// reads, no hashing.
    pub fn attr_eq(&self, value: Symbol) -> &[Pre] {
        self.attr_by_value.get(value)
    }

    /// `D³ₐₜₜᵣ(v, qelt, qattr)`: the *owner elements* (paper semantics) of
    /// attributes named `qattr` with value `v` whose element is named
    /// `qelt`. Passing `None` skips the respective name restriction.
    pub fn attr_owners(
        &self,
        doc: &Document,
        value: Symbol,
        qelt: Option<Symbol>,
        qattr: Option<Symbol>,
    ) -> Vec<Pre> {
        let mut out: Vec<Pre> = self
            .attr_eq(value)
            .iter()
            .copied()
            .filter(|&a| qattr.is_none_or(|q| doc.name(a) == q))
            .map(|a| doc.parent(a))
            .filter(|&e| qelt.is_none_or(|q| doc.name(e) == q))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Evaluate a selection predicate over text nodes using the cheapest
    /// index path: hash for string equality, sorted-range scan for numeric
    /// comparisons, full scan fallback for the rest. Result sorted on pre.
    pub fn select_text(&self, doc: &Document, pred: &ValuePredicate) -> Vec<Pre> {
        self.select(doc, pred, NodeKind::Text)
    }

    /// As [`Self::select_text`] but over attribute nodes.
    pub fn select_attr(&self, doc: &Document, pred: &ValuePredicate) -> Vec<Pre> {
        self.select(doc, pred, NodeKind::Attribute)
    }

    fn select(&self, doc: &Document, pred: &ValuePredicate, kind: NodeKind) -> Vec<Pre> {
        let (by_value, numeric) = match kind {
            NodeKind::Text => (&self.text_by_value, &self.numeric_text),
            NodeKind::Attribute => (&self.attr_by_value, &self.numeric_attr),
            _ => unreachable!("value index only covers text and attribute nodes"),
        };
        match (&pred.op, &pred.rhs) {
            (CmpOp::Eq, Constant::Str(s)) => {
                // Symbol path: resolve the literal through the interner
                // (its hash was paid at load time); if it was never
                // interned the document cannot contain it. The lookup
                // itself is two array reads.
                match doc.interner().get(s) {
                    Some(sym) => by_value.get(sym).to_vec(),
                    None => Vec::new(),
                }
            }
            (op, Constant::Num(n)) => {
                let mut out: Vec<Pre> = match op {
                    CmpOp::Eq => range(numeric, *n, *n, true, true),
                    CmpOp::Lt => range(numeric, f64::NEG_INFINITY, *n, true, false),
                    CmpOp::Le => range(numeric, f64::NEG_INFINITY, *n, true, true),
                    CmpOp::Gt => range(numeric, *n, f64::INFINITY, false, true),
                    CmpOp::Ge => range(numeric, *n, f64::INFINITY, true, true),
                    CmpOp::Ne => numeric
                        .iter()
                        .filter(|(v, _)| *v != *n)
                        .map(|&(_, p)| p)
                        .collect(),
                };
                out.sort_unstable();
                out
            }
            (_, Constant::Str(_)) => {
                // Non-equality string comparison: scan the distinct value
                // groups (not index-selectable; ROX never seeds from
                // these, matching the paper).
                let mut out: Vec<Pre> = by_value
                    .groups()
                    .filter(|(sym, _)| pred.matches(&doc.interner().resolve(*sym)))
                    .flat_map(|(_, pres)| pres.iter().copied())
                    .collect();
                out.sort_unstable();
                out
            }
        }
    }

    /// Number of distinct text values.
    pub fn distinct_text_values(&self) -> usize {
        self.text_by_value.distinct_symbols()
    }
}

/// Collect pres whose numeric value lies in the given interval.
fn range(sorted: &[(f64, Pre)], lo: f64, hi: f64, lo_incl: bool, hi_incl: bool) -> Vec<Pre> {
    let start = sorted.partition_point(|(v, _)| if lo_incl { *v < lo } else { *v <= lo });
    let end = sorted.partition_point(|(v, _)| if hi_incl { *v <= hi } else { *v < hi });
    sorted[start..end].iter().map(|&(_, p)| p).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rox_xmldb::parse_document;

    fn doc() -> std::sync::Arc<Document> {
        parse_document(
            "v.xml",
            r#"<r><p id="7">x</p><q id="9">x</q><n>12</n><n>145</n><n>150</n><n>abc</n></r>"#,
        )
        .unwrap()
    }

    #[test]
    fn text_equality_uses_hash_path() {
        let d = doc();
        let idx = ValueIndex::build(&d);
        let hits = idx.select_text(&d, &ValuePredicate::eq_str("x"));
        assert_eq!(hits.len(), 2);
        for &p in &hits {
            assert_eq!(d.value_str(p), "x");
        }
        assert!(idx
            .select_text(&d, &ValuePredicate::eq_str("zzz"))
            .is_empty());
    }

    #[test]
    fn numeric_ranges_on_text() {
        let d = doc();
        let idx = ValueIndex::build(&d);
        let lt = idx.select_text(&d, &ValuePredicate::num(CmpOp::Lt, 145.0));
        assert_eq!(lt.len(), 1);
        assert_eq!(d.value_str(lt[0]), "12");
        let ge = idx.select_text(&d, &ValuePredicate::num(CmpOp::Ge, 145.0));
        assert_eq!(ge.len(), 2);
        let ne = idx.select_text(&d, &ValuePredicate::num(CmpOp::Ne, 145.0));
        assert_eq!(ne.len(), 2); // 12 and 150; "abc"/"x" don't cast
    }

    #[test]
    fn attr_lookup_and_owners() {
        let d = doc();
        let idx = ValueIndex::build(&d);
        let seven = d.interner().get("7").unwrap();
        assert_eq!(idx.attr_eq(seven).len(), 1);
        let p_name = d.interner().get("p").unwrap();
        let id_name = d.interner().get("id").unwrap();
        let owners = idx.attr_owners(&d, seven, Some(p_name), Some(id_name));
        assert_eq!(owners.len(), 1);
        assert_eq!(d.name_str(owners[0]), "p");
        // Wrong element name restriction filters it out.
        let q_name = d.interner().get("q").unwrap();
        assert!(idx
            .attr_owners(&d, seven, Some(q_name), Some(id_name))
            .is_empty());
    }

    #[test]
    fn numeric_attr_select() {
        let d = doc();
        let idx = ValueIndex::build(&d);
        let hits = idx.select_attr(&d, &ValuePredicate::num(CmpOp::Gt, 7.0));
        assert_eq!(hits.len(), 1);
        assert_eq!(d.value_str(hits[0]), "9");
    }

    #[test]
    fn results_are_sorted_on_pre() {
        let d = doc();
        let idx = ValueIndex::build(&d);
        let all = idx.select_text(&d, &ValuePredicate::num(CmpOp::Ge, 0.0));
        assert!(all.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn string_inequality_falls_back_to_scan() {
        let d = doc();
        let idx = ValueIndex::build(&d);
        let p = ValuePredicate {
            op: CmpOp::Ne,
            rhs: Constant::Str("x".into()),
        };
        let hits = idx.select_text(&d, &p);
        // 12, 145, 150, abc
        assert_eq!(hits.len(), 4);
    }
}
