//! Uniform sampling from indices and materialized node lists.
//!
//! ROX draws its start samples "from indices … using techniques like
//! partial sum trees" (§2.3). Our index leaves are in-memory sorted
//! vectors, so an exact uniform draw of `τ` positions without replacement
//! is both simpler and strictly cheaper; it has the same statistical
//! properties the paper requires (every qualifying node equally likely).

use rand::prelude::*;
use rox_xmldb::Pre;

/// Draw a uniform, without-replacement sample of `amount` items from a
/// pre-sorted slice, returning the sample *sorted on pre* (operators expect
/// pre-sorted inputs). When `amount >= items.len()` the whole slice is
/// returned.
pub fn sample_sorted<R: Rng + ?Sized>(rng: &mut R, items: &[Pre], amount: usize) -> Vec<Pre> {
    if amount >= items.len() {
        return items.to_vec();
    }
    let mut picked: Vec<Pre> = rand::seq::index::sample(rng, items.len(), amount)
        .into_iter()
        .map(|i| items[i])
        .collect();
    picked.sort_unstable();
    picked
}

/// Uniform without-replacement sample of arbitrary clonable values,
/// preserving the input's relative order (used to sample component tables
/// whose rows are already in a canonical order).
pub fn sample_values<R: Rng + ?Sized, T: Clone>(rng: &mut R, items: &[T], amount: usize) -> Vec<T> {
    if amount >= items.len() {
        return items.to_vec();
    }
    let mut idx: Vec<usize> = rand::seq::index::sample(rng, items.len(), amount).into_vec();
    idx.sort_unstable();
    idx.into_iter().map(|i| items[i].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;

    #[test]
    fn sample_is_subset_and_sorted() {
        let mut rng = StdRng::seed_from_u64(42);
        let items: Vec<Pre> = (0..1000).map(|i| i * 2).collect();
        let s = sample_sorted(&mut rng, &items, 50);
        assert_eq!(s.len(), 50);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        for v in &s {
            assert!(items.binary_search(v).is_ok());
        }
    }

    #[test]
    fn oversampling_returns_everything() {
        let mut rng = StdRng::seed_from_u64(1);
        let items: Vec<Pre> = vec![3, 5, 9];
        assert_eq!(sample_sorted(&mut rng, &items, 10), items);
        assert_eq!(sample_sorted(&mut rng, &items, 3), items);
    }

    #[test]
    fn sampling_is_deterministic_under_seed() {
        let items: Vec<Pre> = (0..500).collect();
        let a = sample_sorted(&mut StdRng::seed_from_u64(7), &items, 20);
        let b = sample_sorted(&mut StdRng::seed_from_u64(7), &items, 20);
        assert_eq!(a, b);
    }

    #[test]
    fn coverage_is_roughly_uniform() {
        // Draw many samples of 10 from 100 items; every item should appear.
        let items: Vec<Pre> = (0..100).collect();
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = vec![0u32; 100];
        for _ in 0..500 {
            for v in sample_sorted(&mut rng, &items, 10) {
                seen[v as usize] += 1;
            }
        }
        // Expected hits per item = 50; allow a generous band.
        assert!(seen.iter().all(|&c| c > 15 && c < 120), "{seen:?}");
    }

    #[test]
    fn sample_values_preserves_order() {
        let mut rng = StdRng::seed_from_u64(3);
        let items: Vec<(u32, &str)> = (0..100).map(|i| (i, "x")).collect();
        let s = sample_values(&mut rng, &items, 10);
        assert!(s.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn empty_input_yields_empty_sample() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(sample_sorted(&mut rng, &[], 5).is_empty());
    }
}
