//! Tokenizer for the XQuery subset (FLWOR + XPath steps + value
//! comparisons) that the paper's workloads use.

use std::fmt;

/// A token with its byte offset (for error reporting).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind/payload.
    pub kind: TokenKind,
    /// Byte offset of the first character.
    pub offset: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// `let`
    Let,
    /// `for`
    For,
    /// `where`
    Where,
    /// `return`
    Return,
    /// `in`
    In,
    /// `and`
    And,
    /// `doc`
    Doc,
    /// `$name`
    Var(String),
    /// A qualified name (also used for `text` before `()`).
    Name(String),
    /// A string literal (quotes stripped).
    Str(String),
    /// A numeric literal.
    Num(f64),
    /// `:=`
    Assign,
    /// `/`
    Slash,
    /// `//`
    DoubleSlash,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `@`
    At,
    /// `.`
    Dot,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Var(v) => write!(f, "${v}"),
            TokenKind::Name(n) => write!(f, "{n}"),
            TokenKind::Str(s) => write!(f, "\"{s}\""),
            TokenKind::Num(n) => write!(f, "{n}"),
            other => {
                let s = match other {
                    TokenKind::Let => "let",
                    TokenKind::For => "for",
                    TokenKind::Where => "where",
                    TokenKind::Return => "return",
                    TokenKind::In => "in",
                    TokenKind::And => "and",
                    TokenKind::Doc => "doc",
                    TokenKind::Assign => ":=",
                    TokenKind::Slash => "/",
                    TokenKind::DoubleSlash => "//",
                    TokenKind::LBracket => "[",
                    TokenKind::RBracket => "]",
                    TokenKind::LParen => "(",
                    TokenKind::RParen => ")",
                    TokenKind::Comma => ",",
                    TokenKind::At => "@",
                    TokenKind::Dot => ".",
                    TokenKind::Eq => "=",
                    TokenKind::Ne => "!=",
                    TokenKind::Lt => "<",
                    TokenKind::Le => "<=",
                    TokenKind::Gt => ">",
                    TokenKind::Ge => ">=",
                    TokenKind::Eof => "<eof>",
                    _ => unreachable!(),
                };
                f.write_str(s)
            }
        }
    }
}

/// A lexical error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// What went wrong.
    pub message: String,
    /// Byte offset.
    pub offset: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at offset {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

fn is_name_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_name_char(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '_' | '-' | '.' | ':')
}

/// Tokenize the whole input. The trailing token is always [`TokenKind::Eof`].
pub fn tokenize(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes: Vec<char> = input.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        let offset = i;
        match c {
            c if c.is_whitespace() => {
                i += 1;
                continue;
            }
            '(' if i + 1 < bytes.len() && bytes[i + 1] == ':' => {
                // XQuery comment (: ... :) — skip, allowing nesting.
                let mut depth = 1;
                i += 2;
                while i + 1 < bytes.len() && depth > 0 {
                    if bytes[i] == '(' && bytes[i + 1] == ':' {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == ':' && bytes[i + 1] == ')' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                if depth > 0 {
                    return Err(LexError {
                        message: "unterminated comment".into(),
                        offset,
                    });
                }
                continue;
            }
            '$' => {
                i += 1;
                let start = i;
                while i < bytes.len() && is_name_char(bytes[i]) {
                    i += 1;
                }
                if start == i {
                    return Err(LexError {
                        message: "expected variable name after $".into(),
                        offset,
                    });
                }
                let name: String = bytes[start..i].iter().collect();
                out.push(Token {
                    kind: TokenKind::Var(name),
                    offset,
                });
            }
            '"' | '\'' | '\u{201c}' | '\u{201d}' => {
                // Accept curly quotes too — the paper's text uses them.
                let close: &[char] = match c {
                    '"' => &['"'],
                    '\'' => &['\''],
                    _ => &['\u{201c}', '\u{201d}'],
                };
                i += 1;
                let start = i;
                while i < bytes.len() && !close.contains(&bytes[i]) {
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(LexError {
                        message: "unterminated string".into(),
                        offset,
                    });
                }
                let s: String = bytes[start..i].iter().collect();
                i += 1;
                out.push(Token {
                    kind: TokenKind::Str(s),
                    offset,
                });
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == '.') {
                    i += 1;
                }
                let s: String = bytes[start..i].iter().collect();
                let n = s.parse::<f64>().map_err(|_| LexError {
                    message: format!("bad number {s}"),
                    offset,
                })?;
                out.push(Token {
                    kind: TokenKind::Num(n),
                    offset,
                });
            }
            '/' => {
                if i + 1 < bytes.len() && bytes[i + 1] == '/' {
                    out.push(Token {
                        kind: TokenKind::DoubleSlash,
                        offset,
                    });
                    i += 2;
                } else {
                    out.push(Token {
                        kind: TokenKind::Slash,
                        offset,
                    });
                    i += 1;
                }
            }
            ':' if i + 1 < bytes.len() && bytes[i + 1] == '=' => {
                out.push(Token {
                    kind: TokenKind::Assign,
                    offset,
                });
                i += 2;
            }
            '[' => {
                out.push(Token {
                    kind: TokenKind::LBracket,
                    offset,
                });
                i += 1;
            }
            ']' => {
                out.push(Token {
                    kind: TokenKind::RBracket,
                    offset,
                });
                i += 1;
            }
            '(' => {
                out.push(Token {
                    kind: TokenKind::LParen,
                    offset,
                });
                i += 1;
            }
            ')' => {
                out.push(Token {
                    kind: TokenKind::RParen,
                    offset,
                });
                i += 1;
            }
            ',' => {
                out.push(Token {
                    kind: TokenKind::Comma,
                    offset,
                });
                i += 1;
            }
            '@' => {
                out.push(Token {
                    kind: TokenKind::At,
                    offset,
                });
                i += 1;
            }
            '.' => {
                out.push(Token {
                    kind: TokenKind::Dot,
                    offset,
                });
                i += 1;
            }
            '=' => {
                out.push(Token {
                    kind: TokenKind::Eq,
                    offset,
                });
                i += 1;
            }
            '!' if i + 1 < bytes.len() && bytes[i + 1] == '=' => {
                out.push(Token {
                    kind: TokenKind::Ne,
                    offset,
                });
                i += 2;
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == '=' {
                    out.push(Token {
                        kind: TokenKind::Le,
                        offset,
                    });
                    i += 2;
                } else {
                    out.push(Token {
                        kind: TokenKind::Lt,
                        offset,
                    });
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == '=' {
                    out.push(Token {
                        kind: TokenKind::Ge,
                        offset,
                    });
                    i += 2;
                } else {
                    out.push(Token {
                        kind: TokenKind::Gt,
                        offset,
                    });
                    i += 1;
                }
            }
            c if is_name_start(c) => {
                let start = i;
                while i < bytes.len() && is_name_char(bytes[i]) {
                    i += 1;
                }
                let name: String = bytes[start..i].iter().collect();
                let kind = match name.as_str() {
                    "let" => TokenKind::Let,
                    "for" => TokenKind::For,
                    "where" => TokenKind::Where,
                    "return" => TokenKind::Return,
                    "in" => TokenKind::In,
                    "and" => TokenKind::And,
                    "doc" => TokenKind::Doc,
                    _ => TokenKind::Name(name),
                };
                out.push(Token { kind, offset });
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character '{other}'"),
                    offset,
                })
            }
        }
    }
    out.push(Token {
        kind: TokenKind::Eof,
        offset: bytes.len(),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(s: &str) -> Vec<TokenKind> {
        tokenize(s).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn tokenizes_flwor_keywords() {
        let k = kinds("let for where return in and doc");
        assert_eq!(
            k,
            vec![
                TokenKind::Let,
                TokenKind::For,
                TokenKind::Where,
                TokenKind::Return,
                TokenKind::In,
                TokenKind::And,
                TokenKind::Doc,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn variables_and_paths() {
        let k = kinds("$a//open_auction/bidder[./reserve]");
        assert_eq!(
            k,
            vec![
                TokenKind::Var("a".into()),
                TokenKind::DoubleSlash,
                TokenKind::Name("open_auction".into()),
                TokenKind::Slash,
                TokenKind::Name("bidder".into()),
                TokenKind::LBracket,
                TokenKind::Dot,
                TokenKind::Slash,
                TokenKind::Name("reserve".into()),
                TokenKind::RBracket,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comparisons_and_numbers() {
        let k = kinds("text() < 145.5 >= <= != =");
        assert_eq!(
            k,
            vec![
                TokenKind::Name("text".into()),
                TokenKind::LParen,
                TokenKind::RParen,
                TokenKind::Lt,
                TokenKind::Num(145.5),
                TokenKind::Ge,
                TokenKind::Le,
                TokenKind::Ne,
                TokenKind::Eq,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn strings_and_curly_quotes() {
        let k = kinds("doc(\u{201c}auction.xml\u{201d}) 'x'");
        assert_eq!(
            k,
            vec![
                TokenKind::Doc,
                TokenKind::LParen,
                TokenKind::Str("auction.xml".into()),
                TokenKind::RParen,
                TokenKind::Str("x".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        let k = kinds("for (: a (: nested :) comment :) $x");
        assert_eq!(
            k,
            vec![TokenKind::For, TokenKind::Var("x".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn attribute_tokens() {
        let k = kinds("$a/@person = $b/@id");
        // Var / At Name Eq Var / At Name Eof = 10 tokens.
        assert_eq!(k.len(), 10);
        assert_eq!(k[1], TokenKind::Slash);
        assert_eq!(k[2], TokenKind::At);
    }

    #[test]
    fn lex_error_reports_offset() {
        let e = tokenize("for $a ^").unwrap_err();
        assert_eq!(e.offset, 7);
    }
}
