//! Property tests for the indices: index-backed selection must agree with
//! a full scan, and element lookups must partition the element set.

use proptest::prelude::*;
use rox_index::{ElementIndex, ValueIndex};
use rox_xmldb::{parse_document, CmpOp, NodeKind, Pre, ValuePredicate};

fn doc_strategy() -> impl Strategy<Value = String> {
    let tag = prop::sample::select(vec!["a", "b", "c"]);
    let val = prop::sample::select(vec!["1", "2", "10", "x", "2.5", ""]);
    prop::collection::vec((tag, val, any::<bool>()), 0..40).prop_map(|items| {
        let mut s = String::from("<root>");
        for (t, v, attr) in items {
            if attr {
                s.push_str(&format!("<{t} k=\"{v}\"/>"));
            } else if v.is_empty() {
                s.push_str(&format!("<{t}/>"));
            } else {
                s.push_str(&format!("<{t}>{v}</{t}>"));
            }
        }
        s.push_str("</root>");
        s
    })
}

fn pred_strategy() -> impl Strategy<Value = ValuePredicate> {
    let op = prop::sample::select(vec![
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ]);
    prop_oneof![
        (
            op.clone(),
            prop::sample::select(vec![1.0f64, 2.0, 2.5, 10.0])
        )
            .prop_map(|(op, n)| ValuePredicate::num(op, n)),
        prop::sample::select(vec!["1", "x", "zz"]).prop_map(ValuePredicate::eq_str),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn select_text_matches_scan(xml in doc_strategy(), pred in pred_strategy()) {
        let d = parse_document("p.xml", &xml).unwrap();
        let idx = ValueIndex::build(&d);
        let got = idx.select_text(&d, &pred);
        let expected: Vec<Pre> = (0..d.node_count() as Pre)
            .filter(|&p| d.kind(p) == NodeKind::Text && pred.matches(&d.value_str(p)))
            .collect();
        prop_assert_eq!(got, expected, "pred {}", pred);
    }

    #[test]
    fn select_attr_matches_scan(xml in doc_strategy(), pred in pred_strategy()) {
        let d = parse_document("p.xml", &xml).unwrap();
        let idx = ValueIndex::build(&d);
        let got = idx.select_attr(&d, &pred);
        let expected: Vec<Pre> = (0..d.node_count() as Pre)
            .filter(|&p| d.kind(p) == NodeKind::Attribute && pred.matches(&d.value_str(p)))
            .collect();
        prop_assert_eq!(got, expected, "pred {}", pred);
    }

    #[test]
    fn element_lookups_partition_elements(xml in doc_strategy()) {
        let d = parse_document("p.xml", &xml).unwrap();
        let idx = ElementIndex::build(&d);
        let mut union: Vec<Pre> = idx
            .names()
            .flat_map(|n| idx.lookup(n).to_vec())
            .collect();
        union.sort_unstable();
        prop_assert_eq!(&union[..], idx.elements(), "lookups must cover all elements exactly once");
    }

    #[test]
    fn attr_owner_lookup_is_sound(xml in doc_strategy()) {
        let d = parse_document("p.xml", &xml).unwrap();
        let idx = ValueIndex::build(&d);
        if let Some(k) = d.interner().get("k") {
            if let Some(one) = d.interner().get("1") {
                for owner in idx.attr_owners(&d, one, None, Some(k)) {
                    // Every reported owner really has a k="1" attribute.
                    let has = d.attributes(owner).any(|a| {
                        d.name(a) == k && d.value_str(a) == "1"
                    });
                    prop_assert!(has);
                }
            }
        }
    }
}
