//! Property tests for the shredded encoding: arbitrary trees must satisfy
//! the pre/size/level/parent invariants and round-trip through
//! serialize ∘ parse.

use proptest::prelude::*;
use rox_xmldb::catalog::DocId;
use rox_xmldb::{parse_document, serialize_document, DocumentBuilder, NodeKind};

/// A recursive tree model we can drive the builder with.
#[derive(Debug, Clone)]
enum Node {
    Element {
        name: String,
        attrs: Vec<(String, String)>,
        children: Vec<Node>,
    },
    Text(String),
    Comment(String),
}

fn name_strategy() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["a", "b", "c", "item", "author", "bidder", "x-1"])
        .prop_map(|s| s.to_string())
}

fn text_strategy() -> impl Strategy<Value = String> {
    // Printable, non-empty after trim so whitespace stripping keeps them.
    "[a-zA-Z0-9 <>&'\"]{1,12}".prop_filter("keep non-whitespace", |s| !s.trim().is_empty())
}

fn node_strategy() -> impl Strategy<Value = Node> {
    let leaf = prop_oneof![
        text_strategy().prop_map(Node::Text),
        "[a-zA-Z0-9 ]{0,8}"
            .prop_filter("no double dash", |s| !s.contains("--"))
            .prop_map(Node::Comment),
    ];
    leaf.prop_recursive(4, 40, 5, |inner| {
        (
            name_strategy(),
            prop::collection::vec(("[a-z]{1,4}", "[a-zA-Z0-9]{0,6}"), 0..3),
            prop::collection::vec(inner, 0..5),
        )
            .prop_map(|(name, raw_attrs, children)| {
                // Deduplicate attribute names (XML forbids duplicates).
                let mut attrs: Vec<(String, String)> = Vec::new();
                for (n, v) in raw_attrs {
                    if !attrs.iter().any(|(en, _)| *en == n) {
                        attrs.push((n, v));
                    }
                }
                Node::Element {
                    name,
                    attrs,
                    children,
                }
            })
    })
}

fn root_strategy() -> impl Strategy<Value = Node> {
    (
        name_strategy(),
        prop::collection::vec(("[a-z]{1,4}", "[a-zA-Z0-9]{0,6}"), 0..3),
        prop::collection::vec(node_strategy(), 0..6),
    )
        .prop_map(|(name, raw_attrs, children)| {
            let mut attrs: Vec<(String, String)> = Vec::new();
            for (n, v) in raw_attrs {
                if !attrs.iter().any(|(en, _)| *en == n) {
                    attrs.push((n, v));
                }
            }
            Node::Element {
                name,
                attrs,
                children,
            }
        })
}

fn build(node: &Node, b: &mut DocumentBuilder) {
    match node {
        Node::Element {
            name,
            attrs,
            children,
        } => {
            b.start_element(name);
            for (n, v) in attrs {
                b.attribute(n, v);
            }
            // Coalesce adjacent text children: the parser merges adjacent
            // character data, so the model must too for round-tripping.
            let mut pending: Option<String> = None;
            for c in children {
                if let Node::Text(t) = c {
                    pending = Some(pending.unwrap_or_default() + t);
                } else {
                    if let Some(t) = pending.take() {
                        b.text(&t);
                    }
                    build(c, b);
                }
            }
            if let Some(t) = pending.take() {
                b.text(&t);
            }
            b.end_element();
        }
        Node::Text(t) => {
            b.text(t);
        }
        Node::Comment(c) => {
            b.comment(c);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn built_documents_satisfy_invariants(root in root_strategy()) {
        let mut b = DocumentBuilder::new("prop.xml");
        build(&root, &mut b);
        let d = b.finish(DocId(0));
        prop_assert!(d.check_invariants().is_ok(), "{:?}", d.check_invariants());
    }

    #[test]
    fn serialize_parse_roundtrip(root in root_strategy()) {
        let mut b = DocumentBuilder::new("prop.xml");
        build(&root, &mut b);
        let d = b.finish(DocId(0));
        let s1 = serialize_document(&d);
        let d2 = parse_document("prop.xml", &s1).expect("reparse");
        prop_assert!(d2.check_invariants().is_ok());
        let s2 = serialize_document(&d2);
        prop_assert_eq!(s1, s2);
    }

    #[test]
    fn parent_child_ranges_agree(root in root_strategy()) {
        let mut b = DocumentBuilder::new("prop.xml");
        build(&root, &mut b);
        let d = b.finish(DocId(0));
        for pre in 1..d.node_count() as u32 {
            let p = d.parent(pre);
            prop_assert!(d.is_ancestor(p, pre));
            // Every child enumerated from the parent includes this node
            // (unless it is an attribute, which children() skips).
            if d.kind(pre) != NodeKind::Attribute && d.level(pre) == d.level(p) + 1 {
                let found = d.children(p).any(|c| c == pre);
                prop_assert!(found, "child {} not enumerated from parent {}", pre, p);
            }
        }
    }

    #[test]
    fn post_order_is_consistent(root in root_strategy()) {
        let mut b = DocumentBuilder::new("prop.xml");
        build(&root, &mut b);
        let d = b.finish(DocId(0));
        for pre in 1..d.node_count() as u32 {
            let parent = d.parent(pre);
            prop_assert!(d.post(pre) <= d.post(parent));
            prop_assert!(pre > parent);
        }
    }
}
