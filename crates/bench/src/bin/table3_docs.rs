//! Reproduces **Table 3**: the generated DBLP venue inventory.
//!
//! ```text
//! cargo run --release -p rox-bench --bin table3_docs -- \
//!     [--scale 1] [--size-factor 1.0] [--seed 1975]
//! ```

use rox_bench::args::Args;
use rox_bench::table3;

fn human_bytes(b: usize) -> String {
    if b >= 1 << 20 {
        format!("{:.1} MB", b as f64 / (1 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1} KB", b as f64 / (1 << 10) as f64)
    } else {
        format!("{b} B")
    }
}

fn main() {
    let args = Args::from_env();
    let scale = args.get("scale", 1usize);
    let size_factor = args.get("size-factor", 1.0f64);
    let seed = args.get("seed", 1975u64);
    let out = table3::run(scale, size_factor, seed);
    println!(
        "Table 3 reproduction — scale ×{}, size factor {}\n",
        out.scale, out.size_factor
    );
    println!(
        "{:<20} {:<6} {:>12} {:>12} {:>10} {:>10}",
        "venue", "areas", "target ×1", "generated", "nodes", "size"
    );
    for r in &out.rows {
        println!(
            "{:<20} {:<6} {:>12} {:>12} {:>10} {:>10}",
            r.name,
            r.areas,
            r.target_tags,
            r.generated_tags,
            r.nodes,
            human_bytes(r.bytes)
        );
    }
    let total_tags: usize = out.rows.iter().map(|r| r.generated_tags).sum();
    let total_bytes: usize = out.rows.iter().map(|r| r.bytes).sum();
    println!(
        "\ntotal: {} author tags, {} across 23 documents",
        total_tags,
        human_bytes(total_bytes)
    );
}
