//! Property tests for the snapshot format: arbitrary catalogs must
//! round-trip bit-identically through save → open (documents, interner
//! symbols, and index segments — the latter pinned by re-saving the
//! decoded store and comparing files byte-for-byte), under any page size
//! and any frame budget; and any single-byte corruption or truncation
//! must surface as a clean [`StorageError`] or leave the decoded bits
//! untouched — never silently wrong data.

use proptest::prelude::*;
use rox_index::IndexedStore;
use rox_storage::Snapshot;
use rox_xmldb::Catalog;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A fresh path per proptest case (cases run concurrently per-thread).
fn case_path(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "rox-prop-snap-{}-{tag}-{n}.rox",
        std::process::id()
    ))
}

/// A flat document model: element names, attributes, and text/numeric
/// values drawn from small pools (symbol reuse) plus unique spills
/// (symbol growth). Rendered to XML and loaded through the parser so the
/// catalog owns the symbols, exactly like production ingest.
#[derive(Debug, Clone)]
struct DocModel {
    items: Vec<Item>,
}

#[derive(Debug, Clone)]
enum Item {
    /// `<name attr="av">text</name>`
    Leaf {
        name: String,
        attr: Option<(String, String)>,
        text: String,
    },
    /// `<name/>` — no text child at all.
    Empty { name: String },
}

fn name_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        prop::sample::select(vec!["item", "bid", "seller", "b"]).prop_map(str::to_string),
        "[a-z]{1,6}",
    ]
}

fn value_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        // Numeric-looking values exercise the numeric run encoder.
        (0u32..10_000).prop_map(|n| n.to_string()),
        (0u32..500, 0u32..100).prop_map(|(a, b)| format!("{a}.{b}")),
        "[a-zA-Z0-9 ]{1,10}".prop_filter("non-blank", |s| !s.trim().is_empty()),
    ]
}

fn item_strategy() -> impl Strategy<Value = Item> {
    prop_oneof![
        (
            name_strategy(),
            "[a-z]{1,4}",
            value_strategy(),
            value_strategy()
        )
            .prop_map(|(name, an, av, text)| Item::Leaf {
                name,
                attr: Some((an, av)),
                text,
            }),
        (name_strategy(), value_strategy()).prop_map(|(name, text)| Item::Leaf {
            name,
            attr: None,
            text,
        }),
        name_strategy().prop_map(|name| Item::Empty { name }),
    ]
}

fn doc_strategy() -> impl Strategy<Value = DocModel> {
    prop::collection::vec(item_strategy(), 0..24).prop_map(|items| DocModel { items })
}

fn render(doc: &DocModel) -> String {
    let mut xml = String::from("<root>");
    for item in &doc.items {
        match item {
            Item::Leaf { name, attr, text } => {
                xml.push('<');
                xml.push_str(name);
                if let Some((an, av)) = attr {
                    xml.push_str(&format!(" {an}=\"{av}\""));
                }
                xml.push_str(&format!(">{text}</{name}>"));
            }
            Item::Empty { name } => xml.push_str(&format!("<{name}/>")),
        }
    }
    xml.push_str("</root>");
    xml
}

fn build_catalog(docs: &[DocModel]) -> Arc<Catalog> {
    let catalog = Arc::new(Catalog::new());
    for (i, doc) in docs.iter().enumerate() {
        catalog
            .load_str(&format!("doc-{i}.xml"), &render(doc))
            .unwrap();
    }
    catalog
}

/// Assert every column of every document (and the symbol heap) matches.
fn assert_catalogs_bit_identical(a: &Catalog, b: &Catalog, source: &rox_storage::SnapshotSource) {
    assert_eq!(a.len(), b.len());
    assert_eq!(
        a.interner().dump(),
        b.interner().dump(),
        "symbol heaps differ"
    );
    for id in a.doc_ids() {
        let expect = a.doc(id);
        let got = source
            .try_document(id)
            .expect("decode document")
            .expect("document present");
        assert_eq!(expect.uri(), got.uri());
        let (ce, cg) = (expect.columns(), got.columns());
        assert_eq!(ce.size, cg.size, "size column, doc {id:?}");
        assert_eq!(ce.level, cg.level, "level column, doc {id:?}");
        assert_eq!(ce.parent, cg.parent, "parent column, doc {id:?}");
        assert_eq!(ce.kind, cg.kind, "kind column, doc {id:?}");
        assert_eq!(ce.name, cg.name, "name column, doc {id:?}");
        assert_eq!(ce.value, cg.value, "value column, doc {id:?}");
        got.check_invariants().unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// save → open → save is a fixed point: the second file is
    /// byte-for-byte the first. Because the second save re-encodes the
    /// *decoded* documents, symbols and indexes, equality proves every
    /// segment round-trips bit-identically — at any page size.
    #[test]
    fn save_open_save_is_byte_identical(
        docs in prop::collection::vec(doc_strategy(), 1..4),
        page_size in prop::sample::select(vec![64usize, 96, 256, 1024, 4096]),
    ) {
        let (p1, p2) = (case_path("a"), case_path("b"));
        let catalog = build_catalog(&docs);
        let store = IndexedStore::new(Arc::clone(&catalog));
        // Force index builds so the first file has real index segments.
        for id in catalog.doc_ids() {
            store.indexes(id);
        }
        Snapshot::save_with_page_size(&p1, &store, page_size).unwrap();

        let (reopened, source) = Snapshot::open(&p1, None).unwrap();
        assert_catalogs_bit_identical(&catalog, &reopened, &source);
        let store2 = IndexedStore::with_source(
            Arc::clone(&reopened),
            Arc::clone(&source) as Arc<dyn rox_index::DocSource>,
        );
        for id in reopened.doc_ids() {
            store2.doc(id);
            store2.indexes(id);
        }
        prop_assert_eq!(store2.build_count(), 0, "reopen rebuilt indexes");
        Snapshot::save_with_page_size(&p2, &store2, page_size).unwrap();

        let (b1, b2) = (std::fs::read(&p1).unwrap(), std::fs::read(&p2).unwrap());
        prop_assert_eq!(b1, b2, "resave diverged from the original file");
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p2).ok();
    }

    /// A starved pool (1–3 frames) must decode the same bits as an
    /// unbounded one, just with evictions.
    #[test]
    fn tiny_pools_decode_identically(
        docs in prop::collection::vec(doc_strategy(), 1..4),
        frames in 1usize..4,
    ) {
        let path = case_path("pool");
        let catalog = build_catalog(&docs);
        let store = IndexedStore::new(Arc::clone(&catalog));
        Snapshot::save_with_page_size(&path, &store, 64).unwrap();
        let (reopened, source) = Snapshot::open(&path, Some(frames)).unwrap();
        assert_catalogs_bit_identical(&catalog, &reopened, &source);
        let stats = source.pool_stats();
        prop_assert!(stats.resident <= stats.capacity);
        prop_assert!(stats.evictions <= stats.misses);
        std::fs::remove_file(&path).ok();
    }

    /// Flip one byte anywhere in the file: every decode path either
    /// returns a clean error or the original bits. A flip in a page's
    /// zero padding is invisible (checksums cover payloads); a flip
    /// anywhere else must be caught — never silently wrong data.
    #[test]
    fn corruption_is_caught_or_harmless(
        docs in prop::collection::vec(doc_strategy(), 1..3),
        pos_seed in any::<u64>(),
        xor in 1u8..=255,
    ) {
        let path = case_path("corrupt");
        let catalog = build_catalog(&docs);
        let store = IndexedStore::new(Arc::clone(&catalog));
        Snapshot::save_with_page_size(&path, &store, 64).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let pos = (pos_seed % bytes.len() as u64) as usize;
        bytes[pos] ^= xor;
        std::fs::write(&path, &bytes).unwrap();

        if let Ok((reopened, source)) = Snapshot::open(&path, None) {
            for id in reopened.doc_ids() {
                let Ok(Some(got)) = source.try_document(id) else {
                    continue; // clean error (or absent): corruption caught
                };
                let expect = catalog.doc(id);
                let (ce, cg) = (expect.columns(), got.columns());
                prop_assert_eq!(ce.size, cg.size, "corrupt decode served wrong bits");
                prop_assert_eq!(ce.name, cg.name, "corrupt decode served wrong bits");
                prop_assert_eq!(ce.value, cg.value, "corrupt decode served wrong bits");
                let _ = source.try_indexes(id); // must not panic either way
            }
        }
        std::fs::remove_file(&path).ok();
    }

    /// Truncate the file at any length: open or decode fails cleanly, or
    /// whatever still decodes matches the original.
    #[test]
    fn truncation_is_a_clean_error(
        docs in prop::collection::vec(doc_strategy(), 1..3),
        keep_seed in any::<u64>(),
    ) {
        let path = case_path("trunc");
        let catalog = build_catalog(&docs);
        let store = IndexedStore::new(Arc::clone(&catalog));
        Snapshot::save_with_page_size(&path, &store, 64).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let keep = (keep_seed % bytes.len() as u64) as usize;
        std::fs::write(&path, &bytes[..keep]).unwrap();

        if let Ok((reopened, source)) = Snapshot::open(&path, None) {
            for id in reopened.doc_ids() {
                if let Ok(Some(got)) = source.try_document(id) {
                    let expect = catalog.doc(id);
                    prop_assert_eq!(
                        expect.columns().value,
                        got.columns().value,
                        "truncated decode served wrong bits"
                    );
                }
            }
        }
        std::fs::remove_file(&path).ok();
    }
}

/// The two edge shapes the format must pin down exactly: a minimal
/// document (root element only) and a symbol-dense document whose names
/// and values are all distinct (the interner's upper reaches).
#[test]
fn minimal_and_symbol_dense_documents_roundtrip() {
    let path = case_path("edge");
    let catalog = Arc::new(Catalog::new());
    catalog.load_str("min.xml", "<a/>").unwrap();
    let mut dense = String::from("<root>");
    for i in 0..400 {
        dense.push_str(&format!("<n{i} a{i}=\"v{i}\">t{i}</n{i}>"));
    }
    dense.push_str("</root>");
    catalog.load_str("dense.xml", &dense).unwrap();

    let store = IndexedStore::new(Arc::clone(&catalog));
    Snapshot::save(&path, &store).unwrap();
    let (reopened, source) = Snapshot::open(&path, None).unwrap();
    assert_catalogs_bit_identical(&catalog, &reopened, &source);
    for id in reopened.doc_ids() {
        assert!(source.try_indexes(id).unwrap().is_some());
    }
    std::fs::remove_file(&path).ok();
}
