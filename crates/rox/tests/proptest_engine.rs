//! Engine-sharing equivalence: N worker threads running a random query
//! mix against **one** [`RoxEngine`] must produce results, edge logs, and
//! cost counters bit-identical to a fresh standalone `run_rox` per query —
//! shared indexes, shared base lists, and cache warm-up order must never
//! leak into any output. A plan-cache replay (`ReuseValidated`) must
//! reproduce the optimizing run that seeded it with zero redundant index /
//! base-list work, sampling at most the guard's budget-capped drift spot
//! checks. And `invalidate_document` racing concurrent replays must never
//! let a plan versioned against dropped statistics be served.

use proptest::prelude::*;
use rox_core::{run_rox, Parallelism, PlanReuse, RoxEngine, RoxOptions, RunMode};
use rox_joingraph::JoinGraph;
use rox_ops::revalidation_budget;
use rox_xmldb::Catalog;
use std::sync::Arc;

/// Random auction-flavoured document (same family as
/// `proptest_parallel.rs`: branchy enough for chain sampling, with value
/// joins whose NL/hash choice is data-driven).
fn doc_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec((0u8..5, 0u8..7, any::<bool>()), 1..30).prop_map(|blocks| {
        let mut s = String::from("<site>");
        for (kind, n, flag) in blocks {
            match kind {
                0..=1 => {
                    s.push_str("<auction>");
                    if flag {
                        s.push_str("<cheap/>");
                    }
                    for i in 0..n {
                        s.push_str(&format!(
                            "<bidder><personref person=\"p{}\"/></bidder>",
                            i % 5
                        ));
                    }
                    s.push_str("</auction>");
                }
                2 => {
                    s.push_str(&format!("<person id=\"p{}\"/>", n % 5));
                }
                3 => {
                    s.push_str(&format!("<note>txt{}</note>", n % 4));
                }
                _ => {
                    s.push_str("<auction><cheap/></auction>");
                }
            }
        }
        s.push_str("</site>");
        s
    })
}

const QUERIES: [&str; 4] = [
    r#"for $a in doc("d.xml")//auction, $b in $a/bidder return $b"#,
    r#"for $a in doc("d.xml")//auction[./cheap], $b in $a/bidder, $p in $b/personref return $p"#,
    r#"for $r in doc("d.xml")//personref, $p in doc("d.xml")//person
       where $r/@person = $p/@id return $r"#,
    r#"for $a in doc("d.xml")//auction, $n in doc("d.xml")//note return $n"#,
];

fn catalog_for(xml: &str) -> Arc<Catalog> {
    let catalog = Arc::new(Catalog::new());
    catalog.load_str("d.xml", xml).unwrap();
    catalog
}

fn options(seed: u64) -> RoxOptions {
    RoxOptions {
        seed,
        tau: 16,
        ..Default::default()
    }
}

/// One shared engine, a concurrent mixed workload, fresh-run oracle.
fn check_concurrent_mix(xml: &str, jobs: &[(usize, u64)], threads: usize) -> Result<(), String> {
    let catalog = catalog_for(xml);
    let graphs: Vec<JoinGraph> = QUERIES
        .iter()
        .map(|q| rox_joingraph::compile_query(q).unwrap())
        .collect();
    let engine = RoxEngine::new(Arc::clone(&catalog));
    let engine_jobs: Vec<(&JoinGraph, RoxOptions)> = jobs
        .iter()
        .map(|&(qi, seed)| (&graphs[qi], options(seed)))
        .collect();
    let served = engine.run_many(&engine_jobs, Parallelism::Threads(threads));
    for (i, (&(qi, seed), run)) in jobs.iter().zip(served).enumerate() {
        let run = run.map_err(|e| e.to_string())?;
        // Oracle: a completely fresh, sequential, cache-less run.
        let fresh =
            run_rox(Arc::clone(&catalog), &graphs[qi], options(seed)).map_err(|e| e.to_string())?;
        if run.output != fresh.output {
            return Err(format!("job {i} (q{qi}, seed {seed}): outputs differ"));
        }
        if run.executed_order != fresh.executed_order {
            return Err(format!(
                "job {i} (q{qi}, seed {seed}): join orders differ: {:?} vs {:?}",
                run.executed_order, fresh.executed_order
            ));
        }
        if run.edge_log != fresh.edge_log {
            return Err(format!("job {i} (q{qi}, seed {seed}): edge logs differ"));
        }
        if run.exec_cost != fresh.exec_cost {
            return Err(format!("job {i} (q{qi}, seed {seed}): exec costs differ"));
        }
        if run.sample_cost != fresh.sample_cost {
            return Err(format!("job {i} (q{qi}, seed {seed}): sample costs differ"));
        }
    }
    Ok(())
}

/// Seed the plan cache with an optimizing run, then replay: identical
/// output/joined/edge log, no sampling beyond the guard's spot checks
/// (bounded by what the seeding run itself charged), zero new index or
/// base-list builds.
fn check_plan_reuse(xml: &str, qi: usize, seed: u64) -> Result<(), String> {
    let catalog = catalog_for(xml);
    let graph = rox_joingraph::compile_query(QUERIES[qi]).unwrap();
    let engine = RoxEngine::new(catalog);
    let opts = RoxOptions {
        plan_reuse: PlanReuse::ReuseValidated,
        ..options(seed)
    };
    let cold = engine.run(&graph, opts).map_err(|e| e.to_string())?;
    if cold.plan_cache_hit {
        return Err("first run cannot hit the plan cache".into());
    }
    let after_cold = engine.stats();
    let warm = engine.run(&graph, opts).map_err(|e| e.to_string())?;
    let after_warm = engine.stats();
    if !warm.plan_cache_hit {
        return Err("repeat run must hit the plan cache".into());
    }
    if warm.mode != RunMode::Revalidated {
        return Err(format!(
            "unchanged data must revalidate, got {:?}",
            warm.mode
        ));
    }
    if warm.sample_cost.total() > 2 * revalidation_budget(opts.tau) {
        return Err(format!(
            "replay spot checks ({}) blew through the revalidation budget ({})",
            warm.sample_cost.total(),
            revalidation_budget(opts.tau)
        ));
    }
    if warm.output != cold.output {
        return Err("replay output differs from seeding run".into());
    }
    if warm.joined != cold.joined {
        return Err("replay joined relation differs".into());
    }
    if warm.executed_order != cold.executed_order {
        return Err("replay order differs".into());
    }
    if warm.edge_log != cold.edge_log {
        return Err("replay edge log (incl. operator choices) differs".into());
    }
    if after_warm.index_builds != after_cold.index_builds {
        return Err("warm run rebuilt document indexes".into());
    }
    if after_warm.base_list_builds != after_cold.base_list_builds {
        return Err("warm run rebuilt base lists".into());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn shared_engine_mix_matches_fresh_sequential_runs(
        xml in doc_strategy(),
        jobs in prop::collection::vec((0usize..4, 0u64..500), 1..10),
        threads in 2usize..9,
    ) {
        let r = check_concurrent_mix(&xml, &jobs, threads);
        prop_assert!(r.is_ok(), "{} (threads {threads})", r.unwrap_err());
    }

    #[test]
    fn plan_cache_replay_matches_seeding_run(
        xml in doc_strategy(),
        qi in 0usize..4,
        seed in 0u64..500,
    ) {
        let r = check_plan_reuse(&xml, qi, seed);
        prop_assert!(r.is_ok(), "{} (query {qi}, seed {seed})", r.unwrap_err());
    }
}

/// Deterministic regression: a warm engine serving repeats of an already
/// seen query mix does zero index builds and zero base-list builds, and
/// every repeat replays from the plan cache.
#[test]
fn warm_engine_does_zero_redundant_work_across_a_mix() {
    let mut xml = String::from("<site>");
    for i in 0..200 {
        xml.push_str(&format!(
            "<auction>{}<bidder><personref person=\"p{}\"/></bidder></auction>",
            if i % 3 == 0 { "<cheap/>" } else { "" },
            i % 11
        ));
    }
    for p in 0..11 {
        xml.push_str(&format!("<person id=\"p{p}\"/>"));
    }
    xml.push_str("<note>txt</note></site>");
    let catalog = catalog_for(&xml);
    let graphs: Vec<JoinGraph> = QUERIES
        .iter()
        .map(|q| rox_joingraph::compile_query(q).unwrap())
        .collect();
    let engine = RoxEngine::new(catalog);
    let opts = RoxOptions {
        plan_reuse: PlanReuse::ReuseValidated,
        ..options(42)
    };

    // Warm-up pass: one cold run per query shape.
    let firsts: Vec<_> = graphs
        .iter()
        .map(|g| engine.run(g, opts).unwrap())
        .collect();
    let warmed = engine.stats();
    assert_eq!(warmed.plan_hits, 0);
    assert_eq!(warmed.cached_plans, graphs.len());

    // Serving pass: 3 concurrent repeats of every query.
    let jobs: Vec<(&JoinGraph, RoxOptions)> = (0..3)
        .flat_map(|_| graphs.iter().map(|g| (g, opts)))
        .collect();
    let served = engine.run_many(&jobs, Parallelism::Threads(4));
    for (i, run) in served.into_iter().enumerate() {
        let run = run.unwrap();
        let cold = &firsts[i % graphs.len()];
        assert!(run.plan_cache_hit, "warm job {i} missed the plan cache");
        assert!(
            run.sample_cost.total() <= 2 * revalidation_budget(opts.tau),
            "warm job {i} sampled beyond its guard's spot-check budget"
        );
        assert_eq!(run.output, cold.output, "job {i}");
    }
    let after = engine.stats();
    assert_eq!(
        after.index_builds, warmed.index_builds,
        "warm traffic rebuilt document indexes"
    );
    assert_eq!(
        after.base_list_builds, warmed.base_list_builds,
        "warm traffic rebuilt base lists"
    );
    assert_eq!(after.plan_hits, jobs.len() as u64);
}

/// Deterministic regression for the scratch pool: once a query shape has
/// been served and its result relations recycled (the serving lifecycle —
/// respond, then return the buffers), a warm repeat leases **every**
/// pooled buffer from the pool. The acceptance bar is the miss counter:
/// zero new allocations on the warm replay.
#[test]
fn warm_replay_leases_every_scratch_buffer_from_the_pool() {
    let mut xml = String::from("<site>");
    for i in 0..120 {
        xml.push_str(&format!(
            "<auction>{}<bidder><personref person=\"p{}\"/></bidder></auction>",
            if i % 3 == 0 { "<cheap/>" } else { "" },
            i % 7
        ));
    }
    for p in 0..7 {
        xml.push_str(&format!("<person id=\"p{p}\"/>"));
    }
    xml.push_str("</site>");
    let catalog = catalog_for(&xml);
    let engine = RoxEngine::new(catalog);
    let opts = RoxOptions {
        plan_reuse: PlanReuse::ReuseValidated,
        ..options(42)
    };
    for (qi, query) in QUERIES.iter().enumerate() {
        let graph = rox_joingraph::compile_query(query).unwrap();
        let pool = Arc::clone(engine.scratch_pool());
        // Cold optimizing run + one replay to warm the replay-path lease
        // pattern; recycle each run's relations like a serving loop would
        // after responding.
        let cold = engine.run(&graph, opts).unwrap();
        cold.joined.recycle(&pool);
        cold.output.recycle(&pool);
        let first = engine.run(&graph, opts).unwrap();
        assert!(first.plan_cache_hit, "q{qi}: replay missed the plan cache");
        let reference = first.output.clone();
        first.joined.recycle(&pool);
        first.output.recycle(&pool);

        let before = pool.stats();
        let warm = engine.run(&graph, opts).unwrap();
        assert!(warm.plan_cache_hit, "q{qi}: warm replay missed plan cache");
        assert_eq!(warm.output, reference, "q{qi}: warm output diverged");
        let after = pool.stats();
        assert!(
            after.leases > before.leases,
            "q{qi}: warm replay bypassed the pool entirely"
        );
        assert_eq!(
            after.misses,
            before.misses,
            "q{qi}: warm replay allocated {} fresh scratch buffers",
            after.misses - before.misses
        );
        warm.joined.recycle(&pool);
        warm.output.recycle(&pool);
    }
}

/// Threaded regression for the invalidation/replay race: a writer loops
/// `invalidate_document` while readers hammer `ReuseValidated` replays of
/// the same (unchanged) document. The epoch protocol — bump strictly
/// before dropping derived data, re-check under the plan-cache lock on
/// insert — must guarantee that (a) no run is ever served from a plan
/// versioned against dropped statistics (here: unchanged data, so any
/// demotion or wrong output is a versioning bug), and (b) the cache never
/// *ends up* holding a plan whose recorded epochs disagree with the live
/// ones.
#[test]
fn concurrent_invalidation_never_serves_a_stale_versioned_plan() {
    use std::sync::atomic::{AtomicBool, Ordering};

    let mut xml = String::from("<site>");
    for i in 0..60 {
        xml.push_str(&format!(
            "<auction>{}<bidder><personref person=\"p{}\"/></bidder></auction>",
            if i % 3 == 0 { "<cheap/>" } else { "" },
            i % 7
        ));
    }
    for p in 0..7 {
        xml.push_str(&format!("<person id=\"p{p}\"/>"));
    }
    xml.push_str("<note>txt</note></site>");
    let catalog = catalog_for(&xml);
    let engine = RoxEngine::new(catalog);
    let graphs: Vec<JoinGraph> = QUERIES
        .iter()
        .map(|q| rox_joingraph::compile_query(q).unwrap())
        .collect();
    let opts = RoxOptions {
        plan_reuse: PlanReuse::ReuseValidated,
        ..options(42)
    };
    let references: Vec<_> = graphs
        .iter()
        .map(|g| engine.run(g, opts).unwrap().output)
        .collect();

    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let writer = scope.spawn(|| {
            while !stop.load(Ordering::Relaxed) {
                engine.invalidate_document("d.xml");
                std::thread::yield_now();
            }
        });
        let readers: Vec<_> = (0..4)
            .map(|t| {
                let engine = &engine;
                let graphs = &graphs;
                let references = &references;
                scope.spawn(move || {
                    for i in 0..30 {
                        let qi = (t + i) % graphs.len();
                        let run = engine.run(&graphs[qi], opts).unwrap();
                        // The data never changes, so a demotion means a
                        // replay was validated against one statistics
                        // version and checked against another.
                        assert!(
                            !matches!(run.mode, RunMode::Demoted { .. }),
                            "reader {t} iteration {i}: demoted on unchanged data"
                        );
                        assert_eq!(
                            run.output, references[qi],
                            "reader {t} iteration {i}: stale plan served"
                        );
                    }
                })
            })
            .collect();
        for r in readers {
            r.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    });

    // The cache may hold plans (re-seeded after the last invalidation) but
    // never one versioned against dropped statistics.
    for g in &graphs {
        if let Some(plan) = engine.cached_plan(g) {
            for (uri, epoch) in &plan.stats_epochs {
                assert_eq!(
                    *epoch,
                    engine.doc_epoch(uri),
                    "cached plan pinned to a dropped statistics version of {uri}"
                );
            }
        }
    }
    // And one more invalidation deterministically forces the next run to
    // re-optimize.
    engine.invalidate_document("d.xml");
    let post = engine.run(&graphs[0], opts).unwrap();
    assert!(!post.plan_cache_hit, "replay served across an invalidation");
}
