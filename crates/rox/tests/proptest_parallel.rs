//! Parallel/sequential equivalence: `run_rox` under any `Parallelism`
//! must be **bit-identical** to the sequential run — same output, same
//! chosen join order, same edge log, same deterministic cost counters —
//! across random documents, queries, seeds, and thread counts. This is the
//! contract that makes the parallel candidate-sampling subsystem safe to
//! enable everywhere.

use proptest::prelude::*;
use rox_core::{run_plan_parallel, run_rox, Parallelism, RoxOptions};
use rox_xmldb::Catalog;
use std::sync::Arc;

/// Random auction-flavoured document (same family as `tests/equivalence.rs`
/// at the workspace root, kept deliberately branchy so chain sampling has
/// paths to explore).
fn doc_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec((0u8..5, 0u8..7, any::<bool>()), 1..30).prop_map(|blocks| {
        let mut s = String::from("<site>");
        for (kind, n, flag) in blocks {
            match kind {
                0..=1 => {
                    s.push_str("<auction>");
                    if flag {
                        s.push_str("<cheap/>");
                    }
                    for i in 0..n {
                        s.push_str(&format!(
                            "<bidder><personref person=\"p{}\"/></bidder>",
                            i % 5
                        ));
                    }
                    s.push_str("</auction>");
                }
                2 => {
                    s.push_str(&format!("<person id=\"p{}\"/>", n % 5));
                }
                3 => {
                    s.push_str(&format!("<note>txt{}</note>", n % 4));
                }
                _ => {
                    s.push_str("<auction><cheap/></auction>");
                }
            }
        }
        s.push_str("</site>");
        s
    })
}

const QUERIES: [&str; 4] = [
    r#"for $a in doc("d.xml")//auction, $b in $a/bidder return $b"#,
    r#"for $a in doc("d.xml")//auction[./cheap], $b in $a/bidder, $p in $b/personref return $p"#,
    r#"for $r in doc("d.xml")//personref, $p in doc("d.xml")//person
       where $r/@person = $p/@id return $r"#,
    r#"for $a in doc("d.xml")//auction, $n in doc("d.xml")//note return $n"#,
];

fn assert_identical_runs(xml: &str, qi: usize, seed: u64, par: Parallelism) -> Result<(), String> {
    let catalog = Arc::new(Catalog::new());
    catalog.load_str("d.xml", xml).unwrap();
    let graph = rox_joingraph::compile_query(QUERIES[qi]).unwrap();
    let base = RoxOptions {
        seed,
        tau: 16,
        trace: true,
        ..Default::default()
    };
    let seq = run_rox(Arc::clone(&catalog), &graph, base).unwrap();
    let parl = run_rox(
        Arc::clone(&catalog),
        &graph,
        RoxOptions {
            parallelism: par,
            ..base
        },
    )
    .unwrap();
    if parl.output != seq.output {
        return Err("outputs differ".into());
    }
    if parl.executed_order != seq.executed_order {
        return Err(format!(
            "join orders differ: {:?} vs {:?}",
            parl.executed_order, seq.executed_order
        ));
    }
    if parl.joined != seq.joined {
        return Err("joined relations differ".into());
    }
    if parl.edge_log != seq.edge_log {
        return Err("edge logs differ".into());
    }
    if parl.exec_cost != seq.exec_cost {
        return Err(format!(
            "exec costs differ: {:?} vs {:?}",
            parl.exec_cost, seq.exec_cost
        ));
    }
    if parl.sample_cost != seq.sample_cost {
        return Err(format!(
            "sample costs differ: {:?} vs {:?}",
            parl.sample_cost, seq.sample_cost
        ));
    }
    if parl.traces.len() != seq.traces.len() {
        return Err("trace counts differ".into());
    }
    for (a, b) in parl.traces.iter().zip(&seq.traces) {
        if a.chosen != b.chosen || a.seed_edge != b.seed_edge || a.rounds != b.rounds {
            return Err("chain-sampling traces differ".into());
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn threads_match_sequential_bit_for_bit(
        xml in doc_strategy(),
        qi in 0usize..4,
        seed in 0u64..1000,
        threads in 2usize..9,
    ) {
        let r = assert_identical_runs(&xml, qi, seed, Parallelism::Threads(threads));
        prop_assert!(r.is_ok(), "{} (query {qi}, seed {seed}, threads {threads})", r.unwrap_err());
    }

    #[test]
    fn auto_parallelism_matches_sequential(xml in doc_strategy(), qi in 0usize..4) {
        let r = assert_identical_runs(&xml, qi, 7, Parallelism::Auto);
        prop_assert!(r.is_ok(), "{} (query {qi})", r.unwrap_err());
    }
}

/// A document large enough that full edge execution crosses the
/// partitioned operators' engagement threshold (2 * `MIN_PARTITION_INPUT`
/// = 4096 probe tuples), so the partitioned staircase and hash joins
/// genuinely run multi-threaded — and must still be bit-identical.
fn large_doc() -> String {
    let mut s = String::from("<site>");
    for i in 0..9000 {
        s.push_str("<auction>");
        if i % 3 == 0 {
            s.push_str("<cheap/>");
        }
        for j in 0..2 {
            s.push_str(&format!(
                "<bidder><personref person=\"p{}\"/></bidder>",
                (i + j) % 40
            ));
        }
        s.push_str("</auction>");
    }
    for p in 0..40 {
        s.push_str(&format!("<person id=\"p{p}\"/>"));
    }
    s.push_str("</site>");
    s
}

#[test]
fn partitioned_execution_is_identical_on_large_inputs() {
    let xml = large_doc();
    for qi in 0..QUERIES.len() {
        assert_identical_runs(&xml, qi, 42, Parallelism::Threads(4))
            .unwrap_or_else(|e| panic!("query {qi}: {e}"));
    }
}

#[test]
fn plan_replay_is_identical_under_parallelism() {
    let xml = large_doc();
    let catalog = Arc::new(Catalog::new());
    catalog.load_str("d.xml", &xml).unwrap();
    let graph = rox_joingraph::compile_query(QUERIES[1]).unwrap();
    let order: Vec<u32> = graph
        .edges()
        .iter()
        .filter(|e| !e.redundant)
        .map(|e| e.id)
        .collect();
    let seq = rox_core::run_plan(Arc::clone(&catalog), &graph, &order).unwrap();
    let par = run_plan_parallel(catalog, &graph, &order, Parallelism::Threads(4)).unwrap();
    assert_eq!(par.output, seq.output);
    assert_eq!(par.edge_log, seq.edge_log);
    assert_eq!(par.cost, seq.cost);
    assert_eq!(par.cumulative_rows, seq.cumulative_rows);
}
