//! Deterministic work accounting and the physical-operator cost model.
//!
//! Every physical operator charges the tuples it touches to a [`Cost`]
//! counter following the cost column of Table 1 in the paper. The ROX
//! optimizer keeps two counters — execution work and sampling work — which
//! is how the experiments separate "full run" from "pure plan" time
//! (Figs. 6–8).
//!
//! This module also hosts [`choose_op`], the Table-1-style cost function
//! that maps an edge (kind + current input cardinalities + execution mode)
//! to the physical operator the kernel in [`crate::edgeop`] runs. Keeping
//! the choice in one auditable function is what guarantees sampling and
//! full execution can never disagree on operator selection.

use crate::edgeop::{EdgeClass, EdgeOpChoice, EdgeOpKind, ExecMode};

/// Crossover factor of the index nested-loop vs. hash value join (the
/// Table 1 cost comparison): with `|small|` outer probes against the inner
/// value index, the nested loop wins while
/// `|small| * NL_VS_HASH_FACTOR < |large|` — i.e. while the per-probe
/// index-lookup overhead is amortized by skipping the `|small| + |large|`
/// hash build/probe scan. The factor is deliberately conservative: the
/// hash join is only abandoned when the outer side is nearly an order of
/// magnitude smaller.
pub const NL_VS_HASH_FACTOR: usize = 8;

/// Is the index nested-loop value join cheaper than the hash join for a
/// `small`-sized outer against a `large`-sized inner? (Table 1 comparison;
/// see [`NL_VS_HASH_FACTOR`].)
#[inline]
pub fn nl_cheaper(small: usize, large: usize) -> bool {
    small * NL_VS_HASH_FACTOR < large
}

/// The explicit per-edge operator choice (the cost function of Table 1,
/// lifted out of the evaluation state so every phase — sampling,
/// chain-sampling, full execution, replay — consults the same rule).
///
/// * **Sampled mode** keeps the caller-fixed outer side (the sampled
///   endpoint) and always picks the zero-investment variant of the edge's
///   operator — a staircase step or the index nested-loop value join —
///   because only zero-investment operators admit cut-off execution
///   (§2.3).
/// * **Full mode** executes steps from the smaller side (the direction in
///   the graph is representational only, §2.1) and picks index-NL over
///   hash for value joins when one side is much smaller
///   ([`nl_cheaper`]).
pub fn choose_op(class: EdgeClass, n1: usize, n2: usize, mode: ExecMode) -> EdgeOpChoice {
    match mode {
        ExecMode::Sampled { outer_is_v1, .. } => EdgeOpChoice {
            kind: match class {
                EdgeClass::Step(_) => EdgeOpKind::StepJoin,
                EdgeClass::ValueJoin => EdgeOpKind::IndexNLValueJoin,
            },
            outer_is_v1,
        },
        ExecMode::Full => {
            let outer_is_v1 = n1 <= n2;
            let kind = match class {
                EdgeClass::Step(_) => EdgeOpKind::StepJoin,
                EdgeClass::ValueJoin => {
                    let (small, large) = if outer_is_v1 { (n1, n2) } else { (n2, n1) };
                    if nl_cheaper(small, large) {
                        EdgeOpKind::IndexNLValueJoin
                    } else {
                        EdgeOpKind::HashValueJoin
                    }
                }
            };
            EdgeOpChoice { kind, outer_is_v1 }
        }
    }
}

/// Physical kernel variants of the staircase join (see
/// [`crate::staircase`]). All three produce bit-identical pairs, order,
/// truncation, and cost charges; they differ only in how they *find*
/// matches, so picking between them is purely a wall-clock decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepKernel {
    /// The classic probe loop: walk the axis per context node and test
    /// each produced node against the sorted candidate list (binary
    /// search, range-pruned). Zero-investment; the only kernel sampled
    /// (cut-off) execution uses.
    Probe,
    /// One forward merge over the candidate list with galloping
    /// (exponential search) per context node: only candidates inside the
    /// context's subtree range are touched. Child/Attribute axes only.
    /// Zero-investment.
    Merge,
    /// The probe-loop walk with candidate membership answered by a
    /// [`PreSet`](rox_index::PreSet) bitset (one shift + mask instead of
    /// a binary search). Pays an `O(|S|)` set build unless the caller
    /// supplies a cached set, so full execution only.
    Bitset,
}

/// Merge-kernel engagement bound for Child/Attribute steps: the merge
/// kernel gallops to each context's subtree range and touches only the
/// candidates inside it, beating the per-child binary searches whenever
/// the candidate list is not much larger than the context. Engaged while
/// `|S| <= |C| * STEP_MERGE_FACTOR`.
pub const STEP_MERGE_FACTOR: usize = 1;

/// Bitset-kernel engagement bound: building (or resetting) the candidate
/// membership bitset costs `O(|S|)`, amortized by the `|C| * fanout`
/// membership probes that each drop from a binary search to one shift and
/// mask. Engaged while `|S| <= |C| * STEP_BITSET_FACTOR` (with at least
/// one expected probe per 8 candidate-set bits, the build pays for
/// itself on every real document shape we measured).
pub const STEP_BITSET_FACTOR: usize = 8;

/// Pick the staircase kernel for one `step_join` call (the Table-1-style
/// selection rule of the vectorized execution layer; see
/// [`crate::staircase`] for the kernel semantics):
///
/// | condition | kernel |
/// |---|---|
/// | sampled (cut-off) execution | [`StepKernel::Probe`] — zero-investment, and the cut-off's incremental probe charging is native to the walk |
/// | Descendant/Following/Preceding axes | [`StepKernel::Probe`] — these already scan a candidate range; there is no binary search to beat |
/// | Child/Attribute, `\|S\| <= \|C\|·`[`STEP_MERGE_FACTOR`] | [`StepKernel::Merge`] |
/// | any probing axis, `\|S\| <= \|C\|·`[`STEP_BITSET_FACTOR`] | [`StepKernel::Bitset`] |
/// | otherwise | [`StepKernel::Probe`] — context too small to amortize anything |
pub fn choose_step_kernel(
    axis: crate::axis::Axis,
    ctx_len: usize,
    cands_len: usize,
    sampled: bool,
) -> StepKernel {
    use crate::axis::Axis;
    if sampled || ctx_len == 0 || cands_len == 0 {
        return StepKernel::Probe;
    }
    match axis {
        // Range-scan axes: the probe loop is already a merge.
        Axis::Descendant | Axis::DescendantOrSelf | Axis::Following | Axis::Preceding => {
            StepKernel::Probe
        }
        Axis::Child | Axis::Attribute if cands_len <= ctx_len * STEP_MERGE_FACTOR => {
            StepKernel::Merge
        }
        _ if cands_len <= ctx_len * STEP_BITSET_FACTOR => StepKernel::Bitset,
        _ => StepKernel::Probe,
    }
}

/// Accumulated operator work, in tuples touched.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Cost {
    /// Tuples read from operator inputs.
    pub tuples_in: u64,
    /// Tuples produced into operator outputs.
    pub tuples_out: u64,
    /// Index probes (binary searches / hash lookups).
    pub probes: u64,
}

impl Cost {
    /// A zeroed counter.
    pub fn new() -> Self {
        Cost::default()
    }

    /// Charge `n` input tuples.
    #[inline]
    pub fn charge_in(&mut self, n: usize) {
        self.tuples_in += n as u64;
    }

    /// Charge `n` output tuples.
    #[inline]
    pub fn charge_out(&mut self, n: usize) {
        self.tuples_out += n as u64;
    }

    /// Charge `n` index probes.
    #[inline]
    pub fn charge_probe(&mut self, n: usize) {
        self.probes += n as u64;
    }

    /// Total work units (the scalar the harnesses report alongside wall
    /// time).
    #[inline]
    pub fn total(&self) -> u64 {
        self.tuples_in + self.tuples_out + self.probes
    }

    /// Merge another counter into this one.
    pub fn add(&mut self, other: Cost) {
        self.tuples_in += other.tuples_in;
        self.tuples_out += other.tuples_out;
        self.probes += other.probes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let mut c = Cost::new();
        c.charge_in(10);
        c.charge_out(3);
        c.charge_probe(2);
        assert_eq!(c.total(), 15);
    }

    #[test]
    fn nl_vs_hash_crossover_is_pinned() {
        use crate::axis::Axis;
        // With a 10-node outer the crossover sits exactly at 80 inner
        // nodes: 10 * NL_VS_HASH_FACTOR = 80 is NOT strictly smaller than
        // 80 (hash), but is strictly smaller than 81 (index-NL).
        assert!(!nl_cheaper(10, 10 * NL_VS_HASH_FACTOR));
        assert!(nl_cheaper(10, 10 * NL_VS_HASH_FACTOR + 1));
        let at = choose_op(
            EdgeClass::ValueJoin,
            10,
            10 * NL_VS_HASH_FACTOR,
            ExecMode::Full,
        );
        assert_eq!(at.kind, EdgeOpKind::HashValueJoin);
        let above = choose_op(
            EdgeClass::ValueJoin,
            10,
            10 * NL_VS_HASH_FACTOR + 1,
            ExecMode::Full,
        );
        assert_eq!(above.kind, EdgeOpKind::IndexNLValueJoin);
        assert!(above.outer_is_v1);
        // Symmetric: the small side may be v2.
        let flipped = choose_op(
            EdgeClass::ValueJoin,
            10 * NL_VS_HASH_FACTOR + 1,
            10,
            ExecMode::Full,
        );
        assert_eq!(flipped.kind, EdgeOpKind::IndexNLValueJoin);
        assert!(!flipped.outer_is_v1);
        // Steps always use the staircase join, from the smaller side.
        let step = choose_op(EdgeClass::Step(Axis::Child), 5, 3, ExecMode::Full);
        assert_eq!(step.kind, EdgeOpKind::StepJoin);
        assert!(!step.outer_is_v1);
    }

    #[test]
    fn sampled_mode_keeps_forced_direction_and_zero_investment_ops() {
        use crate::axis::Axis;
        for outer_is_v1 in [true, false] {
            let mode = ExecMode::Sampled {
                limit: 7,
                outer_is_v1,
            };
            let s = choose_op(EdgeClass::Step(Axis::Descendant), 1000, 1, mode);
            assert_eq!(s.kind, EdgeOpKind::StepJoin);
            assert_eq!(s.outer_is_v1, outer_is_v1);
            // Even when hash would win at full scale, sampling stays on
            // the zero-investment index nested loop.
            let v = choose_op(EdgeClass::ValueJoin, 1000, 1000, mode);
            assert_eq!(v.kind, EdgeOpKind::IndexNLValueJoin);
            assert_eq!(v.outer_is_v1, outer_is_v1);
        }
    }

    #[test]
    fn add_merges() {
        let mut a = Cost {
            tuples_in: 1,
            tuples_out: 2,
            probes: 3,
        };
        a.add(Cost {
            tuples_in: 10,
            tuples_out: 20,
            probes: 30,
        });
        assert_eq!(
            a,
            Cost {
                tuples_in: 11,
                tuples_out: 22,
                probes: 33
            }
        );
    }
}
