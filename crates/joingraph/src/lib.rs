#![warn(missing_docs)]

//! # rox-joingraph — XQuery frontend and Join Graph isolation
//!
//! The ROX paper defers all join/step ordering decisions to run-time by
//! having the static compiler (Pathfinder, \[17,18\]) isolate **Join Graphs**
//! out of XQuery plans. This crate provides that front end for the query
//! fragment the paper's workloads exercise:
//!
//! * [`lexer`]/[`parser`] — a FLWOR + XPath-steps + comparisons parser;
//! * [`ast`] — the surface syntax tree;
//! * [`graph`] — the order-independent [`JoinGraph`] (Definition 1):
//!   vertices annotated with element names / text / attribute predicates,
//!   edges that are staircase steps or value equi-joins, plus the plan
//!   tail (π·δ·τ·π) and the inferred join-equivalence edges of Fig. 4;
//! * [`compile`](mod@compile) — AST → Join Graph translation.
//!
//! ```
//! let q = rox_joingraph::parse_query(
//!     r#"for $a in doc("d.xml")//author return $a"#,
//! ).unwrap();
//! let g = rox_joingraph::compile(&q).unwrap();
//! assert_eq!(g.vertex_count(), 2); // root + author
//! ```

pub mod ast;
pub mod compile;
pub mod graph;
pub mod lexer;
pub mod parser;
pub mod pretty;

pub use ast::Query;
pub use compile::{compile, CompileError};
pub use graph::{
    fingerprint_of, Edge, EdgeId, EdgeKind, JoinGraph, TailSpec, Vertex, VertexId, VertexLabel,
};
pub use parser::{parse_query, SyntaxError};

/// Parse and compile in one call.
pub fn compile_query(src: &str) -> Result<JoinGraph, String> {
    let q = parse_query(src).map_err(|e| e.to_string())?;
    compile(&q).map_err(|e| e.to_string())
}
