//! Staircase-kernel microbenchmarks: the vectorized Merge (gallop) and
//! Bitset kernels against the Probe kernel they replace, plus the
//! end-to-end anchors the kernels serve (the `bench_staircase` binary,
//! which emits the machine-readable `BENCH_staircase.json`).
//!
//! Three measured units, all over one generated XMark document:
//!
//! 1. **Per-axis kernel throughput** — identical `(ctx, cands)` inputs
//!    run through every applicable [`StepKernel`]; outputs are asserted
//!    pair-for-pair identical (and cost counters equal — the kernels'
//!    charge-parity contract) before any timing is reported. The Bitset
//!    kernel runs with a prebuilt candidate set, which is exactly what
//!    the evaluation state's scratch arena hands it in production.
//! 2. **Fig-8 anchor** — one full `run_rox` of the paper's Q1: its
//!    *work counters* are kernel-independent by construction (the
//!    charge-parity contract), so the values printed here must equal the
//!    pre-vectorization seed's; wall time is what the kernels improve.
//! 3. **Warm-engine latency** — cold vs plan-replay latency against a
//!    [`RoxEngine`], the replay recycling its result relations like a
//!    serving loop; compared against the committed pre-vectorization
//!    baseline (`BENCH_engine.json`, PR 4: 15.30 ms warm replay at the
//!    default document shape).

use crate::xmark_catalog;
use rox_core::{PlanReuse, RoxEngine, RoxOptions};
use rox_datagen::{xmark_query, XmarkConfig};
use rox_index::{ElementIndex, PreSet};
use rox_ops::{step_join_kernel, Axis, Cost, ScratchPool, StepKernel, StepScratch};
use rox_xmldb::{Document, Pre};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Committed warm-replay latency of the pre-vectorization engine
/// (`BENCH_engine.json` as of the engine-layer PR) at the default
/// document shape — the baseline the `warm_replay_ms` of a default run
/// is compared against. Meaningless for `--smoke` shapes.
pub const BASELINE_WARM_REPLAY_MS: f64 = 15.30;

/// Configuration of the staircase benchmarks.
#[derive(Debug, Clone)]
pub struct StaircaseBenchConfig {
    /// XMark document shape.
    pub xmark: XmarkConfig,
    /// Kernel invocations per timed measurement.
    pub rounds: usize,
    /// Timed repetitions per measurement (the minimum is reported).
    pub repeats: usize,
}

impl Default for StaircaseBenchConfig {
    fn default() -> Self {
        StaircaseBenchConfig {
            xmark: XmarkConfig {
                persons: 3000,
                items: 2500,
                auctions: 2500,
                ..XmarkConfig::default()
            },
            rounds: 20,
            repeats: 3,
        }
    }
}

impl StaircaseBenchConfig {
    /// A seconds-scale configuration for CI smoke runs.
    pub fn smoke() -> Self {
        StaircaseBenchConfig {
            xmark: XmarkConfig {
                persons: 300,
                items: 250,
                auctions: 250,
                ..XmarkConfig::default()
            },
            rounds: 5,
            repeats: 2,
        }
    }
}

/// One axis × kernel measurement.
#[derive(Debug, Clone)]
pub struct KernelPoint {
    /// Kernel measured.
    pub kernel: StepKernel,
    /// Wall time for `rounds` invocations.
    pub wall: Duration,
    /// `probe wall / this wall`.
    pub speedup_vs_probe: f64,
}

/// One per-axis benchmark: identical inputs through every applicable
/// kernel.
#[derive(Debug, Clone)]
pub struct AxisBench {
    /// The axis (as executed — context side fixed by the input choice).
    pub axis: Axis,
    /// Context nodes.
    pub ctx_len: usize,
    /// Candidate nodes.
    pub cands_len: usize,
    /// Result pairs per invocation.
    pub pairs: usize,
    /// Probe-kernel wall time (the before side).
    pub probe_wall: Duration,
    /// The vectorized kernels (Merge where applicable, Bitset always).
    pub kernels: Vec<KernelPoint>,
}

impl AxisBench {
    /// Best speedup over the probe kernel across the measured kernels.
    pub fn best_speedup(&self) -> f64 {
        self.kernels
            .iter()
            .map(|k| k.speedup_vs_probe)
            .fold(0.0, f64::max)
    }
}

/// Everything the `bench_staircase` binary reports.
#[derive(Debug, Clone)]
pub struct StaircaseBenchResult {
    /// Nodes in the generated document.
    pub nodes: usize,
    /// Per-axis kernel measurements.
    pub axes: Vec<AxisBench>,
    /// Fig-8 anchor: Q1 execution work (kernel-independent).
    pub fig8_exec_work: u64,
    /// Fig-8 anchor: Q1 sampling work (kernel-independent).
    pub fig8_sample_work: u64,
    /// Fig-8 anchor: Q1 output rows.
    pub fig8_rows: usize,
    /// Fig-8 anchor: Q1 wall time (what the kernels improve).
    pub fig8_wall: Duration,
    /// Cold engine latency (fresh engine, first query).
    pub cold: Duration,
    /// Warm plan-replay latency (results recycled between repeats).
    pub warm_replay: Duration,
    /// Scratch-pool misses during the *timed* warm replays (zero once
    /// traffic is steady-state).
    pub warm_pool_misses: u64,
}

fn best_of(repeats: usize, mut f: impl FnMut() -> Duration) -> Duration {
    (0..repeats.max(1))
        .map(|_| f())
        .min()
        .expect("at least one repeat")
}

fn lookup(doc: &Document, idx: &ElementIndex, name: &str) -> Vec<Pre> {
    doc.interner()
        .get(name)
        .map(|sym| idx.lookup(sym).to_vec())
        .unwrap_or_default()
}

/// Time one kernel for `rounds` invocations on fixed inputs.
#[allow(clippy::too_many_arguments)]
fn time_kernel(
    doc: &Document,
    axis: Axis,
    ctx: &[Pre],
    cands: &[Pre],
    kernel: StepKernel,
    scratch: StepScratch<'_>,
    cfg: &StaircaseBenchConfig,
) -> Duration {
    best_of(cfg.repeats, || {
        let t = Instant::now();
        for _ in 0..cfg.rounds {
            let mut cost = Cost::new();
            let out = step_join_kernel(doc, axis, ctx, cands, None, kernel, scratch, &mut cost);
            std::hint::black_box(&out.pairs);
        }
        t.elapsed()
    })
}

/// Measure one axis: probe vs the applicable vectorized kernels, with an
/// equivalence check (pairs and cost counters) before any timing.
fn bench_axis(
    doc: &Document,
    axis: Axis,
    ctx: &[Pre],
    cands: &[Pre],
    pool: &ScratchPool,
    cfg: &StaircaseBenchConfig,
) -> AxisBench {
    let universe = cands.last().map_or(0, |&p| p as usize + 1);
    let set = PreSet::from_nodes(universe, cands);
    let cached = StepScratch {
        cands_set: Some(&set),
        pool: Some(pool),
    };
    let plain = StepScratch::default();
    let mut probe_cost = Cost::new();
    let expect = step_join_kernel(
        doc,
        axis,
        ctx,
        cands,
        None,
        StepKernel::Probe,
        plain,
        &mut probe_cost,
    );
    let mut kernels = Vec::new();
    let applicable: &[StepKernel] = if matches!(axis, Axis::Child | Axis::Attribute) {
        &[StepKernel::Merge, StepKernel::Bitset]
    } else {
        &[StepKernel::Bitset]
    };
    for &kernel in applicable {
        let scratch = if kernel == StepKernel::Bitset {
            cached
        } else {
            plain
        };
        let mut cost = Cost::new();
        let got = step_join_kernel(doc, axis, ctx, cands, None, kernel, scratch, &mut cost);
        assert_eq!(got.pairs, expect.pairs, "{axis:?} {kernel:?} diverged");
        assert_eq!(cost, probe_cost, "{axis:?} {kernel:?} charges diverged");
        kernels.push((kernel, scratch));
    }
    let probe_wall = time_kernel(doc, axis, ctx, cands, StepKernel::Probe, plain, cfg);
    let kernels = kernels
        .into_iter()
        .map(|(kernel, scratch)| {
            let wall = time_kernel(doc, axis, ctx, cands, kernel, scratch, cfg);
            KernelPoint {
                kernel,
                wall,
                speedup_vs_probe: probe_wall.as_secs_f64() / wall.as_secs_f64().max(f64::EPSILON),
            }
        })
        .collect();
    AxisBench {
        axis,
        ctx_len: ctx.len(),
        cands_len: cands.len(),
        pairs: expect.pairs.len(),
        probe_wall,
        kernels,
    }
}

/// Run the staircase benchmarks.
pub fn run(cfg: &StaircaseBenchConfig) -> StaircaseBenchResult {
    let catalog = xmark_catalog(&cfg.xmark);
    let doc_id = catalog.resolve("xmark.xml").expect("generated document");
    let doc = catalog.doc(doc_id);
    let idx = ElementIndex::build(&doc);
    let pool = ScratchPool::new();

    // ---- 1. Per-axis kernels on production-shaped inputs.
    let auctions = lookup(&doc, &idx, "open_auction");
    let bidders = lookup(&doc, &idx, "bidder");
    let personrefs = lookup(&doc, &idx, "personref");
    let persons = lookup(&doc, &idx, "person");
    let attrs = idx.attributes().to_vec();
    let axes = vec![
        // auction/bidder: the classic forward child step.
        bench_axis(&doc, Axis::Child, &auctions, &bidders, &pool, cfg),
        // person/@*: attribute step.
        bench_axis(&doc, Axis::Attribute, &persons, &attrs, &pool, cfg),
        // bidder/parent::open_auction: one probe per context.
        bench_axis(&doc, Axis::Parent, &bidders, &auctions, &pool, cfg),
        // personref/ancestor::open_auction: the walk the range prune and
        // bitset target — every context chases parents to the root.
        bench_axis(&doc, Axis::Ancestor, &personrefs, &auctions, &pool, cfg),
    ];

    // ---- 2. Fig-8 anchor: Q1, work counters kernel-independent.
    let graph = rox_joingraph::compile_query(&xmark_query("<", 100.0)).unwrap();
    let t = Instant::now();
    let report = rox_core::run_rox(Arc::clone(&catalog), &graph, RoxOptions::default()).unwrap();
    let fig8_wall = t.elapsed();

    // ---- 3. Warm-engine latency (the serving loop the pool feeds).
    let reuse = RoxOptions {
        plan_reuse: PlanReuse::ReuseValidated,
        ..Default::default()
    };
    let cold = best_of(cfg.repeats, || {
        let fresh = RoxEngine::new(Arc::clone(&catalog));
        let t = Instant::now();
        let run = fresh.run(&graph, reuse).unwrap();
        let wall = t.elapsed();
        assert_eq!(run.output, report.output, "cold engine output diverged");
        wall
    });
    let engine = RoxEngine::new(Arc::clone(&catalog));
    // Seed the plan cache and the scratch pool, recycling like a server.
    for _ in 0..2 {
        let run = engine.run(&graph, reuse).unwrap();
        run.joined.recycle(engine.scratch_pool());
        run.output.recycle(engine.scratch_pool());
    }
    let misses_before = engine.scratch_pool().stats().misses;
    let warm_replay = best_of(cfg.repeats, || {
        let t = Instant::now();
        let run = engine.run(&graph, reuse).unwrap();
        let wall = t.elapsed();
        assert!(run.plan_cache_hit, "warm replay missed the plan cache");
        assert_eq!(run.output, report.output, "warm replay output diverged");
        run.joined.recycle(engine.scratch_pool());
        run.output.recycle(engine.scratch_pool());
        wall
    });
    let warm_pool_misses = engine.scratch_pool().stats().misses - misses_before;

    StaircaseBenchResult {
        nodes: doc.node_count(),
        axes,
        fig8_exec_work: report.exec_cost.total(),
        fig8_sample_work: report.sample_cost.total(),
        fig8_rows: report.output.len(),
        fig8_wall,
        cold,
        warm_replay,
        warm_pool_misses,
    }
}

/// Render the result as the `BENCH_staircase.json` document (hand-rolled
/// — the workspace is dependency-free by policy).
pub fn to_json(cfg: &StaircaseBenchConfig, r: &StaircaseBenchResult) -> String {
    let axis_rows: Vec<String> = r
        .axes
        .iter()
        .map(|a| {
            let kernels: Vec<String> = a
                .kernels
                .iter()
                .map(|k| {
                    format!(
                        "{{\"kernel\": \"{:?}\", \"wall_us\": {:.1}, \"speedup_vs_probe\": {:.2}}}",
                        k.kernel,
                        k.wall.as_secs_f64() * 1e6,
                        k.speedup_vs_probe
                    )
                })
                .collect();
            format!(
                "{{\"axis\": \"{:?}\", \"ctx\": {}, \"cands\": {}, \"pairs\": {}, \"probe_wall_us\": {:.1}, \"kernels\": [{}]}}",
                a.axis,
                a.ctx_len,
                a.cands_len,
                a.pairs,
                a.probe_wall.as_secs_f64() * 1e6,
                kernels.join(", ")
            )
        })
        .collect();
    format!(
        "{{\n  \"machine\": {},\n  \"config\": {{\"persons\": {}, \"items\": {}, \"auctions\": {}, \"rounds\": {}, \"repeats\": {}}},\n  \"nodes\": {},\n  \"axis_kernels\": [\n    {}\n  ],\n  \"fig8_anchor\": {{\"exec_work\": {}, \"sample_work\": {}, \"rows\": {}, \"wall_ms\": {:.2}}},\n  \"engine_latency\": {{\"cold_ms\": {:.2}, \"warm_replay_ms\": {:.2}, \"warm_pool_misses\": {}, \"baseline_warm_replay_ms\": {:.2}}}\n}}\n",
        crate::machine_json(),
        cfg.xmark.persons,
        cfg.xmark.items,
        cfg.xmark.auctions,
        cfg.rounds,
        cfg.repeats,
        r.nodes,
        axis_rows.join(",\n    "),
        r.fig8_exec_work,
        r.fig8_sample_work,
        r.fig8_rows,
        r.fig8_wall.as_secs_f64() * 1e3,
        r.cold.as_secs_f64() * 1e3,
        r.warm_replay.as_secs_f64() * 1e3,
        r.warm_pool_misses,
        BASELINE_WARM_REPLAY_MS,
    )
}

/// Render a human-readable summary table.
pub fn render(r: &StaircaseBenchResult) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    writeln!(
        out,
        "{:>10}  {:>7}  {:>7}  {:>7}  {:>12}  kernels",
        "axis", "ctx", "cands", "pairs", "probe"
    )
    .unwrap();
    for a in &r.axes {
        let kernels: Vec<String> = a
            .kernels
            .iter()
            .map(|k| format!("{:?} {:?} ({:.2}x)", k.kernel, k.wall, k.speedup_vs_probe))
            .collect();
        writeln!(
            out,
            "{:>10}  {:>7}  {:>7}  {:>7}  {:>12.3?}  {}",
            format!("{:?}", a.axis),
            a.ctx_len,
            a.cands_len,
            a.pairs,
            a.probe_wall,
            kernels.join("  ")
        )
        .unwrap();
    }
    writeln!(
        out,
        "fig8 anchor  exec work {}  sample work {}  rows {}  wall {:.3?}",
        r.fig8_exec_work, r.fig8_sample_work, r.fig8_rows, r.fig8_wall
    )
    .unwrap();
    writeln!(
        out,
        "engine       cold {:.3?}  warm-replay {:.3?}  (baseline {:.2} ms)  pool misses in timed replays: {}",
        r.cold, r.warm_replay, BASELINE_WARM_REPLAY_MS, r.warm_pool_misses
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_is_consistent() {
        let cfg = StaircaseBenchConfig {
            xmark: XmarkConfig::tiny(),
            rounds: 2,
            repeats: 1,
        };
        let r = run(&cfg);
        assert_eq!(r.axes.len(), 4);
        for a in &r.axes {
            assert!(!a.kernels.is_empty(), "{:?} measured no kernels", a.axis);
        }
        // The warm replays must be fully pool-served.
        assert_eq!(r.warm_pool_misses, 0, "steady-state replay allocated");
        let json = to_json(&cfg, &r);
        assert!(json.contains("\"axis_kernels\""));
        assert!(json.contains("\"fig8_anchor\""));
        assert!(json.contains("\"engine_latency\""));
        let table = render(&r);
        assert!(table.contains("fig8 anchor"));
    }
}
