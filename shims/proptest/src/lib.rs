//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so this crate implements
//! the strategy combinators and macros the workspace's property tests use:
//! [`Strategy`] with `prop_map`/`prop_filter`/`prop_recursive`/`boxed`,
//! range and tuple strategies, regex-lite string strategies
//! (`"[a-z]{1,4}"`-style class-repetition patterns), `prop::collection::vec`,
//! `prop::sample::select`, `prop::bool::ANY`, [`Just`], `any::<T>()`,
//! `prop_oneof!`, and the [`proptest!`] test macro with
//! `#![proptest_config(...)]` support.
//!
//! Differences from crates.io proptest: cases are generated from a
//! deterministic per-test seed (override the count with `PROPTEST_CASES`),
//! and there is **no shrinking** — a failing case panics with its seed,
//! case number, and `Debug`-printed inputs so it can be replayed by
//! re-running the test.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// A generator of random values of one type.
///
/// Unlike crates.io proptest there is no value tree: `generate` returns the
/// value directly and shrinking is not supported.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Discard generated values failing `f` (regenerating, bounded).
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            f,
        }
    }

    /// Build a recursive strategy: `self` is the leaf case and `f` lifts a
    /// strategy for depth `d` to one for depth `d + 1`. `_desired_size` and
    /// `_expected_branch` are accepted for API parity and ignored — the
    /// strategies passed to `f` already bound their own branching.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            // At every level, bottom out at the leaf half of the time so
            // expected tree size stays bounded.
            cur = union(vec![leaf.clone(), f(cur).boxed()]);
        }
        cur
    }

    /// Type-erase into a clonable boxed strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// A clonable, type-erased strategy.
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Uniform choice among boxed strategies (backs `prop_oneof!`).
pub fn union<T>(arms: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T>
where
    T: 'static,
{
    assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
    Union { arms }.boxed()
}

struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.random_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter gave up after 1000 rejections: {}", self.reason);
    }
}

/// Always produce a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---- Range strategies ------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

// ---- Tuple strategies ------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// ---- Regex-lite string strategies ------------------------------------

/// `&str` literals act as string strategies for the pattern subset
/// `[class]{m,n}` / `[class]{n}` / `[class]*`-free simple forms used in
/// this workspace (a single character class with a repetition count).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, min, max) = parse_class_repetition(self).unwrap_or_else(|| {
            panic!(
                "string strategy {self:?} is not of the supported \
                 `[class]{{m,n}}` form"
            )
        });
        let len = rng.random_range(min..=max);
        (0..len)
            .map(|_| chars[rng.random_range(0..chars.len())])
            .collect()
    }
}

/// Parse `[chars]{m,n}` (or `[chars]{n}`) into the expanded alphabet and
/// repetition bounds.
fn parse_class_repetition(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class = &rest[..close];
    let rep = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = match rep.split_once(',') {
        Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
        None => {
            let n = rep.trim().parse().ok()?;
            (n, n)
        }
    };
    let mut chars = Vec::new();
    let src: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < src.len() {
        if i + 2 < src.len() && src[i + 1] == '-' {
            let (lo, hi) = (src[i], src[i + 2]);
            for c in lo..=hi {
                chars.push(c);
            }
            i += 3;
        } else {
            chars.push(src[i]);
            i += 1;
        }
    }
    if chars.is_empty() {
        return None;
    }
    Some((chars, min, max))
}

// ---- any / Arbitrary --------------------------------------------------

/// Types with a canonical default strategy.
pub trait Arbitrary: Sized {
    /// Generate one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.random()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.random()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The canonical strategy for an [`Arbitrary`] type.
pub struct AnyStrategy<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The default strategy of `T` (`any::<bool>()`, ...).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(core::marker::PhantomData)
}

// ---- prop:: namespace -------------------------------------------------

/// The `prop::` namespace mirrored from crates.io proptest.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use rand::Rng;

        /// Strategy for `Vec<S::Value>` with length drawn from `size`.
        #[derive(Clone)]
        pub struct VecStrategy<S> {
            element: S,
            min: usize,
            max: usize,
        }

        /// `vec(element, min..max)`: vectors with `min <= len < max`.
        pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
            assert!(size.start < size.end, "empty vec size range");
            VecStrategy {
                element,
                min: size.start,
                max: size.end - 1,
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = rng.random_range(self.min..=self.max);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use super::super::{Strategy, TestRng};
        use rand::Rng;

        /// Uniform choice among explicit values.
        #[derive(Clone)]
        pub struct Select<T: Clone>(Vec<T>);

        /// `select(values)`: one of the given values, uniformly.
        pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
            assert!(!values.is_empty(), "select of empty vec");
            Select(values)
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                self.0[rng.random_range(0..self.0.len())].clone()
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use super::super::{Strategy, TestRng};
        use rand::Rng;

        /// The fair-coin boolean strategy.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// Fair coin.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;
            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.random()
            }
        }
    }
}

// ---- Runner / config ---------------------------------------------------

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases generated per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Resolve the effective case count (`PROPTEST_CASES` overrides).
pub fn effective_cases(config: &ProptestConfig) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(config.cases)
}

/// Deterministic per-test seed derived from the test path (FNV-1a).
pub fn seed_for(test_name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Build the RNG for one case.
pub fn case_rng(seed: u64, case: u32) -> TestRng {
    TestRng::seed_from_u64(seed ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

// ---- Macros ------------------------------------------------------------

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l == *r, "assertion failed: `{:?}` != `{:?}`", l, r);
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `{:?}` != `{:?}`: {}",
                    l,
                    r,
                    format!($($fmt)*)
                );
            }
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::union(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Define property tests. Each function runs `cases` times with fresh
/// deterministic inputs; failures panic with seed, case number, and the
/// `Debug` rendering of the inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let cases = $crate::effective_cases(&config);
                let seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
                let strategies = ($($strat,)+);
                for case in 0..cases {
                    let mut rng = $crate::case_rng(seed, case);
                    let __values = $crate::Strategy::generate(&strategies, &mut rng);
                    let repr = format!("{:?}", &__values);
                    let ($($arg,)+) = __values;
                    let outcome: ::core::result::Result<(), ::std::string::String> =
                        (move || {
                            $body
                            #[allow(unreachable_code)]
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(message) = outcome {
                        panic!(
                            "proptest case {case}/{cases} failed (seed {seed:#x}):\n\
                             {message}\ninputs: {repr}"
                        );
                    }
                }
            }
        )*
    };
}

/// The customary glob import.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, union, Arbitrary, BoxedStrategy,
        Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn string_pattern_generates_matching_text() {
        let mut rng = crate::case_rng(1, 0);
        for _ in 0..100 {
            let s = crate::Strategy::generate(&"[a-c1-3]{2,5}", &mut rng);
            assert!((2..=5).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| "abc123".contains(c)), "{s:?}");
        }
    }

    #[test]
    fn union_hits_every_arm() {
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = crate::case_rng(2, 0);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[crate::Strategy::generate(&strat, &mut rng) as usize] = true;
        }
        assert_eq!(seen, [false, true, true, true]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_strategy_respects_bounds(v in prop::collection::vec(0u8..10, 1..7)) {
            prop_assert!((1..=6).contains(&v.len()), "len {}", v.len());
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn mapped_tuples_work(pair in (0u32..5, 5u32..9).prop_map(|(a, b)| (b, a))) {
            prop_assert!(pair.0 >= 5 && pair.1 < 5);
            prop_assert_eq!(pair.0 >= 5, true);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_reports_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(x in 0u8..4) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
