//! The crash-recovery torture suite: hundreds of seeded schedules of
//! durable mutations (invalidates, reindexes, checkpoints) are driven
//! into a fault-injected storage layer that dies mid-write — short
//! writes, torn pages, lying fsyncs — at a seeded byte offset. After
//! every crash the directory is recovered with honest I/O and checked
//! against an engine that never crashed:
//!
//! * **durability** — every LSN acknowledged while the I/O was still
//!   honest is ≤ the recovered water mark (an acked mutation is never
//!   lost);
//! * **consistency** — the recovered epoch table equals the reference's;
//! * **bit-identity** — re-snapshotting the recovered engine and the
//!   reference produces byte-for-byte identical files (documents,
//!   indexes, symbols), and query outputs match row-for-row;
//! * **liveness** — the recovered log accepts the next mutation at
//!   `water mark + 1`.

use rox_core::{RoxEngine, RoxOptions};
use rox_storage::{FailpointIo, FailpointState, FaultPlan, Lsn, StorageError, WalIo};
use rox_xmldb::Catalog;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const SITE_V0: &str = r#"<site><open_auction><bidder><increase>12</increase></bidder><current>150</current></open_auction><open_auction><bidder><increase>7</increase></bidder><current>40</current></open_auction></site>"#;
const ALT_V0: &str = r#"<site><open_auction><bidder><increase>3</increase></bidder><bidder><increase>44</increase></bidder><current>90</current></open_auction></site>"#;

const URIS: [&str; 2] = ["site.xml", "alt.xml"];

fn torture_dir(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("rox-torture-{}-{tag}", std::process::id()));
    p
}

/// Deterministic replacement content for a reload, from an op's seed.
fn variant_xml(v: u64) -> String {
    format!(
        "<site><open_auction><bidder><increase>{}</increase></bidder><current>{}</current></open_auction><open_auction><bidder><increase>{}</increase></bidder><current>{}</current></open_auction></site>",
        v % 97,
        (v / 97) % 997,
        (v * 7) % 89,
        v % 311
    )
}

fn fresh_catalog() -> Arc<Catalog> {
    let catalog = Arc::new(Catalog::new());
    catalog.load_str(URIS[0], SITE_V0).unwrap();
    catalog.load_str(URIS[1], ALT_V0).unwrap();
    catalog
}

/// SplitMix64 — the schedule generator (dependency-free, seed-stable).
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// One schedule step. Reloads happen *before* the durable call, so the
/// logged record carries the new content — exactly the ingest pattern.
#[derive(Debug, Clone)]
enum Op {
    Invalidate {
        uri: &'static str,
        reload: Option<u64>,
    },
    Reindex {
        uri: &'static str,
        reload: u64,
    },
    Checkpoint,
}

fn schedule(seed: u64, n: usize) -> Vec<Op> {
    let mut rng = SplitMix(seed.wrapping_mul(0x2545_F491_4F6C_DD1D).wrapping_add(seed));
    (0..n)
        .map(|_| {
            let r = rng.next();
            let uri = URIS[(r & 1) as usize];
            match (r >> 1) % 4 {
                0 => Op::Invalidate {
                    uri,
                    reload: Some(r >> 8),
                },
                1 => Op::Reindex {
                    uri,
                    reload: r >> 8,
                },
                2 => Op::Invalidate { uri, reload: None },
                _ => Op::Checkpoint,
            }
        })
        .collect()
}

/// Apply one op. On a durable engine every op consumes exactly one LSN
/// (returned for mutations, `None` for a checkpoint, whose record sits
/// at the consumed LSN); on a plain engine mutations return `Ok(None)`.
fn apply(engine: &RoxEngine, op: &Op) -> Result<Option<Lsn>, StorageError> {
    match op {
        Op::Invalidate { uri, reload } => {
            if let Some(v) = reload {
                engine.catalog().load_str(uri, &variant_xml(*v)).unwrap();
            }
            engine.try_invalidate_document(uri)
        }
        Op::Reindex { uri, reload } => {
            engine
                .catalog()
                .load_str(uri, &variant_xml(*reload))
                .unwrap();
            engine.try_reindex_document(uri)
        }
        Op::Checkpoint => engine.checkpoint().map(|_| None),
    }
}

/// What one armed schedule did before the fault (or clean completion).
struct Drive {
    /// `(op index, its LSN)` for every op that started, in order.
    executed: Vec<(usize, Lsn)>,
    /// LSNs acknowledged while [`FailpointState::honest`] still held —
    /// the mutations recovery must never lose.
    acked: Vec<Lsn>,
    crashed: bool,
}

fn drive(engine: &RoxEngine, ops: &[Op], state: &FailpointState) -> Drive {
    let mut run = Drive {
        executed: Vec::new(),
        acked: Vec::new(),
        crashed: false,
    };
    // The durable directory opens with its checkpoint record at LSN 1;
    // every subsequent op consumes exactly one LSN.
    for (lsn, (i, op)) in (2..).zip(ops.iter().enumerate()) {
        run.executed.push((i, lsn));
        match apply(engine, op) {
            Ok(got) => {
                if let Some(got) = got {
                    assert_eq!(got, lsn, "LSN accounting drifted at op {i}");
                }
                if state.honest() {
                    run.acked.push(lsn);
                }
            }
            Err(_) => {
                run.crashed = true;
                break;
            }
        }
    }
    run
}

/// Bytes the schedule writes after `make_durable`, measured on a
/// throwaway run with the fault unarmed — the per-seed budget window,
/// so crash points land uniformly across the whole workload.
fn calibrate(seed: u64, ops: &[Op]) -> u64 {
    let dir = torture_dir(&format!("cal-{seed}"));
    std::fs::remove_dir_all(&dir).ok();
    let io = Arc::new(FailpointIo::new());
    let state = io.state();
    let engine = RoxEngine::new(fresh_catalog());
    engine
        .make_durable_with_io(&dir, Arc::clone(&io) as Arc<dyn WalIo>)
        .unwrap();
    let base = state.written();
    for op in ops {
        apply(&engine, op).unwrap();
    }
    let written = state.written() - base;
    drop(engine);
    std::fs::remove_dir_all(&dir).ok();
    written
}

fn query_for(uri: &str) -> String {
    format!(r#"for $a in doc("{uri}")//open_auction, $b in $a/bidder, $i in $b/increase return $i"#)
}

/// Recover `dir` with honest I/O and prove it against a reference
/// engine that applied exactly the durable prefix of `ops`. Returns the
/// recovered water mark.
fn prove_recovery(tag: &str, dir: &Path, ops: &[Op], run: &Drive) -> Lsn {
    let (recovered, report) = RoxEngine::recover(dir, None).unwrap();

    // Durability: an LSN acked while the I/O was honest is never lost.
    for &lsn in &run.acked {
        assert!(
            lsn <= report.last_lsn,
            "{tag}: acked lsn {lsn} lost (water mark {})",
            report.last_lsn
        );
    }

    // The reference: a never-crashed engine applying the durable prefix
    // (ops whose LSN made it to disk — a superset of the acked ones).
    let reference = RoxEngine::new(fresh_catalog());
    for &(i, lsn) in run
        .executed
        .iter()
        .take_while(|&&(_, l)| l <= report.last_lsn)
    {
        let _ = lsn;
        match &ops[i] {
            Op::Checkpoint => {} // no logical state; the reference skips it
            op => {
                apply(&reference, op).unwrap();
            }
        }
    }

    // Consistency: the epoch tables agree.
    for uri in URIS {
        assert_eq!(
            recovered.doc_epoch(uri),
            reference.doc_epoch(uri),
            "{tag}: epoch of {uri} diverged"
        );
    }

    // Bit-identity: re-snapshotting both engines produces byte-for-byte
    // identical files — documents, indexes and symbol heap all equal.
    let p1 = dir.join("recovered.check.rox");
    let p2 = dir.join("reference.check.rox");
    recovered.save_snapshot(&p1).unwrap();
    reference.save_snapshot(&p2).unwrap();
    assert_eq!(
        std::fs::read(&p1).unwrap(),
        std::fs::read(&p2).unwrap(),
        "{tag}: recovered state is not bit-identical to the reference"
    );

    // Query outputs match row-for-row.
    for uri in URIS {
        let graph = rox_joingraph::compile_query(&query_for(uri)).unwrap();
        let got = recovered.run(&graph, RoxOptions::default()).unwrap().output;
        let want = reference.run(&graph, RoxOptions::default()).unwrap().output;
        assert_eq!(got, want, "{tag}: query output over {uri} diverged");
    }

    // Liveness: the truncated log extends cleanly at water mark + 1.
    let next = recovered
        .try_invalidate_document(URIS[0])
        .unwrap()
        .expect("recovered engine must be durable");
    assert_eq!(
        next,
        report.last_lsn + 1,
        "{tag}: recovered log misnumbered"
    );
    report.last_lsn
}

/// The torture loop: ≥ 200 seeded crash schedules across all three
/// fault modes (`seed % 3` cycles short write / torn page / fsync lie),
/// each calibrated so the crash lands uniformly anywhere in the
/// workload — inside a WAL append, a group commit, or a checkpoint's
/// snapshot write, rename or directory sync.
#[test]
fn torture_seeded_crash_schedules_all_recover() {
    const SEEDS: u64 = 240;
    const OPS: usize = 8;
    let mut crashes = 0u32;
    for seed in 0..SEEDS {
        let ops = schedule(seed, OPS);
        let window = calibrate(seed, &ops) + 1;

        let dir = torture_dir(&format!("s{seed}"));
        std::fs::remove_dir_all(&dir).ok();
        let io = Arc::new(FailpointIo::new());
        let state = io.state();
        let engine = RoxEngine::new(fresh_catalog());
        engine
            .make_durable_with_io(&dir, Arc::clone(&io) as Arc<dyn WalIo>)
            .unwrap();
        state.arm(FaultPlan::from_seed(seed, window));
        let run = drive(&engine, &ops, &state);
        crashes += run.crashed as u32;
        drop(engine); // the crash: the writer is gone

        prove_recovery(&format!("seed {seed}"), &dir, &ops, &run);
        std::fs::remove_dir_all(&dir).ok();
    }
    // The budget window is calibrated to the workload, so the
    // overwhelming majority of schedules really die mid-flight.
    assert!(
        crashes > SEEDS as u32 / 2,
        "only {crashes}/{SEEDS} schedules crashed — the harness lost its teeth"
    );
}

/// A clean shutdown is the degenerate schedule: no fault, no torn tail,
/// and recovery is exact.
#[test]
fn clean_shutdown_recovers_bit_identical_with_no_torn_tail() {
    let ops = schedule(7, 10);
    let dir = torture_dir("clean");
    std::fs::remove_dir_all(&dir).ok();
    let io = Arc::new(FailpointIo::new());
    let state = io.state();
    let engine = RoxEngine::new(fresh_catalog());
    engine
        .make_durable_with_io(&dir, Arc::clone(&io) as Arc<dyn WalIo>)
        .unwrap();
    let run = drive(&engine, &ops, &state);
    assert!(!run.crashed);
    assert_eq!(run.acked.len(), ops.len(), "unarmed I/O acks everything");
    drop(engine);

    let water_mark = prove_recovery("clean", &dir, &ops, &run);
    assert_eq!(water_mark, 1 + ops.len() as u64);
    let (_, report) = RoxEngine::recover(&dir, None).unwrap();
    assert_eq!(report.torn_tail_bytes, 0);
    std::fs::remove_dir_all(&dir).ok();
}

/// Concurrent durable mutations: appends interleave under the order
/// lock, commits ride the group fsync, and every acked epoch bump
/// survives recovery. The fsync count never exceeds the commit count
/// (batching can only help), and the durable water mark catches up to
/// the last LSN.
#[test]
fn concurrent_mutations_group_commit_and_recover() {
    const THREADS: u64 = 8;
    const EACH: u64 = 8;
    let dir = torture_dir("group");
    std::fs::remove_dir_all(&dir).ok();
    let engine = Arc::new(RoxEngine::new(fresh_catalog()));
    engine.make_durable(&dir).unwrap();

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                for k in 0..EACH {
                    let uri = format!("t{t}-{k}.xml");
                    engine
                        .try_invalidate_document(&uri)
                        .unwrap()
                        .expect("durable mutation returns its LSN");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let stats = engine.stats().wal;
    assert_eq!(stats.commits, THREADS * EACH);
    assert_eq!(stats.last_lsn, 1 + THREADS * EACH);
    assert_eq!(stats.durable_lsn, stats.last_lsn);
    assert!(
        (1..=stats.commits).contains(&stats.fsyncs),
        "fsyncs {} vs commits {}",
        stats.fsyncs,
        stats.commits
    );
    drop(engine);

    let (recovered, report) = RoxEngine::recover(&dir, None).unwrap();
    assert_eq!(report.last_lsn, 1 + THREADS * EACH);
    assert_eq!(report.torn_tail_bytes, 0);
    for t in 0..THREADS {
        for k in 0..EACH {
            assert_eq!(recovered.doc_epoch(&format!("t{t}-{k}.xml")), 1);
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}
