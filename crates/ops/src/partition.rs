//! Partitioned (morsel-parallel) variants of the pair-producing joins.
//!
//! Both operators split their *probe* input into contiguous morsels, run
//! the sequential operator per morsel on a worker pool, and concatenate the
//! per-morsel outputs in morsel order. Because
//!
//! * the sequential operators emit pairs in context order,
//! * morsels are contiguous, in-order slices of the context, and
//! * results are merged back in morsel order,
//!
//! the output is **bit-identical** to the sequential run — document order
//! is preserved without a sort. Cost counters are likewise summed in morsel
//! order; since every charge is per-tuple, the totals equal the sequential
//! charges exactly.
//!
//! Cut-off execution is inherently sequential (the cut-off is a global
//! scan position, §2.3), so these variants take no `limit`: they exist for
//! *full* edge execution, while sampling parallelizes one level up (across
//! candidate edges, see `rox-core`).

use crate::axis::Axis;
use crate::cost::{choose_step_kernel, Cost, StepKernel};
use crate::cutoff::JoinOut;
use crate::pool::ScratchPool;
use crate::staircase::{step_join_kernel, step_join_scratch, StepScratch};
use rox_index::SymbolTable;
use rox_par::{chunk_ranges, Parallelism, WorkerPool};
use rox_xmldb::{Document, Pre};

/// Minimum context tuples per worker thread. A parallel fan-out engages
/// only once the probe input reaches **twice** this (1024 tuples — see
/// [`Parallelism::effective_threads`]); below that the partitioned
/// operators fall back to the sequential path, where the fan-out would
/// cost more than it saves.
///
/// Re-derived for the pooled path: dispatching a batch onto the always-on
/// [`WorkerPool`] costs roughly a condvar wake plus atomic cursor claims
/// (~1–3 µs), versus the tens of microseconds a per-call
/// `std::thread::scope` spawn used to cost. At ~15–30 ns of staircase
/// probe/merge work per context tuple, 512 tuples ≈ 8–15 µs per worker —
/// several times the dispatch cost — so the gate drops from 2048 to 512.
pub const MIN_PARTITION_INPUT: usize = 512;

/// Partitioned [`step_join`](crate::staircase::step_join()): evaluates
/// `axis::cands` for the full context
/// with the work split across `par` worker threads. Produces exactly the
/// pairs, order, and cost charges of `step_join(doc, axis, ctx, cands,
/// None, cost)`.
pub fn step_join_partitioned(
    doc: &Document,
    axis: Axis,
    ctx: &[Pre],
    cands: &[Pre],
    par: Parallelism,
    cost: &mut Cost,
) -> JoinOut<Pre> {
    step_join_partitioned_scratch(
        doc,
        axis,
        ctx,
        cands,
        None,
        par,
        StepScratch::default(),
        cost,
    )
}

/// As [`step_join_partitioned`] with caller-provided scratch state (cached
/// candidate set and/or buffer pool; see [`StepScratch`]) and an optional
/// [`WorkerPool`] handle (`None` runs on the process-shared pool). The
/// staircase kernel is chosen **once** over the full context, then run per
/// morsel — every kernel charges and emits identically, so this only fixes
/// which kernel's wall-clock profile the whole call gets.
#[allow(clippy::too_many_arguments)]
pub fn step_join_partitioned_scratch(
    doc: &Document,
    axis: Axis,
    ctx: &[Pre],
    cands: &[Pre],
    workers: Option<&WorkerPool>,
    par: Parallelism,
    scratch: StepScratch<'_>,
    cost: &mut Cost,
) -> JoinOut<Pre> {
    let threads = par.effective_threads(ctx.len(), MIN_PARTITION_INPUT);
    if threads <= 1 {
        return step_join_scratch(doc, axis, ctx, cands, None, scratch, cost);
    }
    let kernel = choose_step_kernel(axis, ctx.len(), cands.len(), false);
    // Resolve the bitset kernel's candidate set once, up front, so the
    // morsels share it instead of each building their own.
    let shared_set =
        (kernel == StepKernel::Bitset).then(|| crate::staircase::resolve_cands_set(cands, scratch));
    let morsel_scratch = StepScratch {
        cands_set: shared_set.as_ref().map(|s| s.get()),
        pool: scratch.pool,
    };
    let morsels = chunk_ranges(ctx.len(), threads * 4);
    let pool = workers.unwrap_or_else(|| WorkerPool::shared());
    let runs = pool.par_map(threads, morsels.len(), |i| {
        let mut local = Cost::new();
        let mut out = step_join_kernel(
            doc,
            axis,
            &ctx[morsels[i].clone()],
            cands,
            None,
            kernel,
            morsel_scratch,
            &mut local,
        );
        // Row ids are positions within the morsel slice; shift them back
        // into the full context's row space before merging.
        let base = morsels[i].start as u32;
        for p in &mut out.pairs {
            p.0 += base;
        }
        (out, local)
    });
    if let Some(set) = shared_set {
        set.finish();
    }
    merge_runs(ctx.len(), runs, scratch.pool, cost)
}

/// Partitioned [`hash_value_join`](crate::valjoin::hash_value_join()):
/// builds the CSR join table on the
/// smaller side once (sequentially — an investment either way), then
/// probes the larger side in parallel morsels. Pair list, orientation,
/// order, and cost charges match `hash_value_join` exactly.
pub fn hash_value_join_partitioned(
    left_doc: &Document,
    left: &[Pre],
    right_doc: &Document,
    right: &[Pre],
    par: Parallelism,
    cost: &mut Cost,
) -> Vec<(Pre, Pre)> {
    hash_value_join_partitioned_with(left_doc, left, right_doc, right, None, None, par, cost)
}

/// As [`hash_value_join_partitioned`] with optional prebuilt CSR tables
/// per side (the evaluation state's scratch arena). A prebuilt table must
/// cover exactly the side's current input; the build investment is charged
/// either way, so cost counters stay bit-identical to an uncached run.
#[allow(clippy::too_many_arguments)]
pub fn hash_value_join_partitioned_with(
    left_doc: &Document,
    left: &[Pre],
    right_doc: &Document,
    right: &[Pre],
    left_table: Option<&SymbolTable>,
    right_table: Option<&SymbolTable>,
    par: Parallelism,
    cost: &mut Cost,
) -> Vec<(Pre, Pre)> {
    hash_value_join_partitioned_pooled(
        left_doc,
        left,
        right_doc,
        right,
        left_table,
        right_table,
        None,
        None,
        par,
        cost,
    )
}

/// As [`hash_value_join_partitioned_with`] with the pair buffers leased
/// from `pool` (the caller returns the final buffer via
/// [`ScratchPool::give_node_pairs`]) and an optional [`WorkerPool`] handle
/// (`None` runs on the process-shared pool).
#[allow(clippy::too_many_arguments)]
pub(crate) fn hash_value_join_partitioned_pooled(
    left_doc: &Document,
    left: &[Pre],
    right_doc: &Document,
    right: &[Pre],
    left_table: Option<&SymbolTable>,
    right_table: Option<&SymbolTable>,
    pool: Option<&ScratchPool>,
    workers: Option<&WorkerPool>,
    par: Parallelism,
    cost: &mut Cost,
) -> Vec<(Pre, Pre)> {
    let probe_len = left.len().max(right.len());
    let threads = par.effective_threads(probe_len, MIN_PARTITION_INPUT);
    if threads <= 1 {
        return crate::valjoin::hash_value_join_pooled(
            left_doc,
            left,
            right_doc,
            right,
            left_table,
            right_table,
            pool,
            cost,
        );
    }
    // The build/probe choice, build loop, and probe kernel are shared with
    // the sequential operator, so orientation, order, and charges cannot
    // drift apart.
    let build_left = crate::valjoin::hash_builds_left(left, right);
    let (build_doc, build, probe_doc, probe, prebuilt) = if build_left {
        (left_doc, left, right_doc, right, left_table)
    } else {
        (right_doc, right, left_doc, left, right_table)
    };
    let built;
    let table = match prebuilt {
        Some(t) => {
            debug_assert_eq!(t.build_len(), build.len(), "stale cached join table");
            crate::valjoin::charge_cached_build(t, cost);
            t
        }
        None => {
            built = crate::valjoin::build_join_table(build_doc, build, cost);
            &built
        }
    };
    let morsels = chunk_ranges(probe.len(), threads * 4);
    let worker_pool = workers.unwrap_or_else(|| WorkerPool::shared());
    let runs = worker_pool.par_map(threads, morsels.len(), |i| {
        let mut local = Cost::new();
        let mut out = match pool {
            Some(pool) => pool.lease_node_pairs(),
            None => Vec::new(),
        };
        crate::valjoin::probe_join_table(
            table,
            probe_doc,
            &probe[morsels[i].clone()],
            build_left,
            &mut local,
            &mut out,
        );
        (out, local)
    });
    let mut pairs = match pool {
        Some(pool) => pool.lease_node_pairs(),
        None => Vec::new(),
    };
    for (out, local) in runs {
        pairs.extend_from_slice(&out);
        if let Some(pool) = pool {
            pool.give_node_pairs(out);
        }
        cost.add(local);
    }
    pairs
}

/// Concatenate per-morsel `JoinOut`s (in morsel order) into one; morsel
/// pair buffers flow back into `pool` when one is given.
fn merge_runs(
    ctx_len: usize,
    runs: Vec<(JoinOut<Pre>, Cost)>,
    pool: Option<&ScratchPool>,
    cost: &mut Cost,
) -> JoinOut<Pre> {
    let mut merged = JoinOut::with_limit_pooled(ctx_len, None, pool);
    for (out, local) in runs {
        debug_assert!(!out.truncated, "partitioned execution never cuts off");
        merged.pairs.extend_from_slice(&out.pairs);
        if let Some(pool) = pool {
            pool.give_pairs(out.pairs);
        }
        cost.add(local);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::staircase::step_join;
    use crate::valjoin::hash_value_join;
    use rox_xmldb::{parse_document, NodeKind};

    fn big_doc(sections: usize, items_per: usize) -> std::sync::Arc<Document> {
        let mut s = String::from("<site>");
        for i in 0..sections {
            s.push_str("<sec>");
            for j in 0..items_per {
                s.push_str(&format!("<item>v{}</item>", (i * items_per + j) % 97));
            }
            s.push_str("</sec>");
        }
        s.push_str("</site>");
        parse_document("big.xml", &s).unwrap()
    }

    fn elements_named(doc: &Document, name: &str) -> Vec<Pre> {
        let sym = doc.interner().get(name).unwrap();
        (0..doc.node_count() as Pre)
            .filter(|&p| doc.kind(p) == NodeKind::Element && doc.name(p) == sym)
            .collect()
    }

    fn text_nodes(doc: &Document) -> Vec<Pre> {
        (0..doc.node_count() as Pre)
            .filter(|&p| doc.kind(p) == NodeKind::Text)
            .collect()
    }

    #[test]
    fn partitioned_step_join_matches_sequential() {
        // 9000 context tuples: crosses the 2*MIN_PARTITION_INPUT
        // engagement threshold with capacity for 4 workers.
        let doc = big_doc(9000, 2);
        let secs = elements_named(&doc, "sec");
        let items = elements_named(&doc, "item");
        let mut c_seq = Cost::new();
        let seq = step_join(&doc, Axis::Descendant, &secs, &items, None, &mut c_seq);
        for par in [
            Parallelism::Threads(2),
            Parallelism::Threads(4),
            Parallelism::Auto,
        ] {
            let mut c_par = Cost::new();
            let got = step_join_partitioned(&doc, Axis::Descendant, &secs, &items, par, &mut c_par);
            assert_eq!(got.pairs, seq.pairs);
            assert_eq!(c_par, c_seq);
        }
    }

    #[test]
    fn partitioned_step_join_small_input_falls_back() {
        let doc = big_doc(3, 2);
        let secs = elements_named(&doc, "sec");
        let items = elements_named(&doc, "item");
        let mut c1 = Cost::new();
        let a = step_join_partitioned(
            &doc,
            Axis::Child,
            &secs,
            &items,
            Parallelism::Threads(8),
            &mut c1,
        );
        let mut c2 = Cost::new();
        let b = step_join(&doc, Axis::Child, &secs, &items, None, &mut c2);
        assert_eq!(a.pairs, b.pairs);
        assert_eq!(c1, c2);
    }

    #[test]
    fn partitioned_hash_join_matches_sequential() {
        let da = big_doc(100, 40);
        let db = big_doc(120, 35);
        let (ta, tb) = (text_nodes(&da), text_nodes(&db));
        let mut c_seq = Cost::new();
        let seq = hash_value_join(&da, &ta, &db, &tb, &mut c_seq);
        for par in [Parallelism::Threads(2), Parallelism::Threads(4)] {
            let mut c_par = Cost::new();
            let got = hash_value_join_partitioned(&da, &ta, &db, &tb, par, &mut c_par);
            assert_eq!(got, seq);
            assert_eq!(c_par, c_seq);
        }
    }

    #[test]
    fn partitioned_hash_join_respects_orientation_both_ways() {
        let da = big_doc(100, 40); // larger
        let db = big_doc(30, 20); // smaller
        let (ta, tb) = (text_nodes(&da), text_nodes(&db));
        // Build side = right (smaller): probe = left.
        let mut c = Cost::new();
        let seq = hash_value_join(&da, &ta, &db, &tb, &mut Cost::new());
        let got = hash_value_join_partitioned(&da, &ta, &db, &tb, Parallelism::Threads(4), &mut c);
        assert_eq!(got, seq);
        // And flipped.
        let seq2 = hash_value_join(&db, &tb, &da, &ta, &mut Cost::new());
        let got2 = hash_value_join_partitioned(&db, &tb, &da, &ta, Parallelism::Threads(4), &mut c);
        assert_eq!(got2, seq2);
    }

    #[test]
    fn sequential_parallelism_is_identity() {
        let doc = big_doc(80, 30);
        let secs = elements_named(&doc, "sec");
        let items = elements_named(&doc, "item");
        let mut c1 = Cost::new();
        let a = step_join_partitioned(
            &doc,
            Axis::Descendant,
            &secs,
            &items,
            Parallelism::Sequential,
            &mut c1,
        );
        let mut c2 = Cost::new();
        let b = step_join(&doc, Axis::Descendant, &secs, &items, None, &mut c2);
        assert_eq!(a.pairs, b.pairs);
        assert_eq!(c1, c2);
    }
}
