//! Reproduces **Figure 5**: cumulative intermediate join result sizes for
//! all 18 join orders of the VLDB/ICDE/ICIP/ADBIS query, with the orders
//! chosen by the classical optimizer and by ROX marked.
//!
//! ```text
//! cargo run --release -p rox-bench --bin fig5_join_orders -- \
//!     [--scale 1] [--size-factor 0.2] [--seed 9]
//! ```

use rox_bench::args::Args;
use rox_bench::fig5::{self, Fig5Config};

fn main() {
    let args = Args::from_env();
    let cfg = Fig5Config {
        scale: args.get("scale", 1),
        size_factor: args.get("size-factor", 0.2),
        seed: args.get("seed", 9),
    };
    println!(
        "Figure 5 reproduction — docs: 1=VLDB 2=ICDE 3=ICIP 4=ADBIS (scale ×{}, size factor {})\n",
        cfg.scale, cfg.size_factor
    );
    let out = fig5::run(&cfg);
    let best = out
        .orders
        .iter()
        .map(|o| o.cumulative_join_rows)
        .min()
        .unwrap()
        .max(1);
    let mut sorted = out.orders.clone();
    sorted.sort_by_key(|o| o.cumulative_join_rows);
    println!(
        "{:<16} {:>16} {:>8}  marks",
        "join order", "cum. join rows", "×best"
    );
    for o in &sorted {
        let mut marks = String::new();
        if o.is_classical {
            marks.push_str(" <= c");
        }
        if o.is_rox {
            marks.push_str(" <= R");
        }
        println!(
            "{:<16} {:>16} {:>8.1} {}",
            o.name,
            o.cumulative_join_rows,
            o.cumulative_join_rows as f64 / best as f64,
            marks
        );
    }
    println!("\nclassical chose: {}", out.classical);
    println!(
        "ROX chose:       {} (its own run accumulated {} join rows)",
        out.rox, out.rox_cumulative
    );
    println!(
        "\nExpected shape (paper): orders that join ICIP (doc 3) early stay small;\n\
         orders that leave it last blow up by orders of magnitude. ROX lands near\n\
         the bottom; the classical optimizer cannot see the DB-area correlation."
    );
}
