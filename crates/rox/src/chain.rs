//! Chain sampling (Algorithm 2): exploring multiple operators ahead to
//! escape local minima caused by correlated data.
//!
//! Starting from the minimum-weight edge, path segments are extended
//! breadth-first — one edge per path per round — by feeding the output
//! sample of one sampled operator into the next (`I(p′) =
//! cutoff(exec(e, I(p), T(v′)))`). Each segment tracks
//!
//! * `cost(p)` — estimated combined cardinality of all its intermediates
//!   at full scale, and
//! * `sf(p)` — its cumulative join hit ratio (output per initial sample
//!   tuple).
//!
//! After every round the *stopping condition*
//! `cost(pᵢ) + sf(pᵢ)·cost(pⱼ) ≤ cost(pⱼ)` is checked pairwise: when
//! executing pᵢ first provably makes every alternative cheaper than that
//! alternative alone, exploration stops and pᵢ is executed. The cut-off
//! grows by τ per round to mitigate the front bias of cut-off sampling.

use crate::estimate::sampled_edge_exec;
use crate::state::EvalState;
use rand::rngs::StdRng;
use rox_index::sample_sorted;
use rox_joingraph::{EdgeId, VertexId};
use rox_ops::{Cost, EdgeOpKind};
use rox_par::Parallelism;
use rox_xmldb::Pre;

/// A path segment being explored.
#[derive(Debug, Clone)]
struct PathSeg {
    edges: Vec<EdgeId>,
    /// Physical operator the kernel chose per edge of `edges`.
    ops: Vec<EdgeOpKind>,
    stop: VertexId,
    input: Vec<Pre>,
    cost: f64,
    sf: f64,
}

/// A per-round snapshot of one path segment (the rows of Table 2).
#[derive(Debug, Clone, PartialEq)]
pub struct PathSnapshot {
    /// Edges of the segment so far.
    pub edges: Vec<EdgeId>,
    /// The physical operator the kernel sampled each edge with (parallel
    /// to `edges`) — lets Table-2-style traces distinguish steps from
    /// index-NL value joins.
    pub ops: Vec<EdgeOpKind>,
    /// `cost(p)` after this round.
    pub cost: f64,
    /// `sf(p)` after this round.
    pub sf: f64,
}

/// Full trace of one chain-sampling invocation (drives the Table 2 and
/// Fig. 3 reproductions).
#[derive(Debug, Clone, Default)]
pub struct ChainTrace {
    /// The minimum-weight seed edge.
    pub seed_edge: EdgeId,
    /// The chosen source vertex.
    pub source: VertexId,
    /// Snapshots of all live paths after each round.
    pub rounds: Vec<Vec<PathSnapshot>>,
    /// The selected path.
    pub chosen: Vec<EdgeId>,
    /// True when the strict stopping condition fired before exhaustion.
    pub stopped_early: bool,
}

/// Outcome of [`chain_sample`].
pub struct ChainOutcome {
    /// The path segment to execute next (never empty).
    pub path: Vec<EdgeId>,
    /// Trace for explain/experiment output.
    pub trace: ChainTrace,
}

/// Run one chain-sampling phase (Algorithm 2). `weights[e]` holds the
/// current edge weights (`None` = unweighted, treated as +∞).
/// Sampling work is charged to `cost`.
///
/// `par` fans the per-round path extensions — one cut-off sampled operator
/// run per (path, candidate edge) pair — out across worker threads. The
/// extensions of one round are mutually independent (each reads the shared
/// state immutably and feeds on its own path's input sample), and results
/// are merged back in the sequential loop's (path, edge) order, so the
/// outcome, trace, and cost charges are bit-identical to
/// [`Parallelism::Sequential`].
pub fn chain_sample(
    state: &EvalState<'_>,
    weights: &[Option<f64>],
    rng: &mut StdRng,
    tau: usize,
    par: Parallelism,
    cost: &mut Cost,
) -> ChainOutcome {
    let unexecuted = state.unexecuted_edges();
    debug_assert!(!unexecuted.is_empty());
    // Line 1: the minimum-weight unexecuted edge.
    let seed = *unexecuted
        .iter()
        .min_by(|&&a, &&b| {
            let wa = weights[a as usize].unwrap_or(f64::INFINITY);
            let wb = weights[b as usize].unwrap_or(f64::INFINITY);
            wa.partial_cmp(&wb).unwrap().then(a.cmp(&b))
        })
        .expect("at least one unexecuted edge");
    let edge = state.graph.edge(seed);
    let (v1, v2) = (edge.v1, edge.v2);
    let mut trace = ChainTrace {
        seed_edge: seed,
        ..ChainTrace::default()
    };

    // Lines 2-5: no chain sampling when neither endpoint branches.
    let branching =
        state.unexecuted_edges_of(v1).len() > 1 || state.unexecuted_edges_of(v2).len() > 1;
    if !branching {
        trace.chosen = vec![seed];
        trace.source = if state.card(v1) <= state.card(v2) {
            v1
        } else {
            v2
        };
        return ChainOutcome {
            path: vec![seed],
            trace,
        };
    }
    // Line 3: source = smaller-cardinality endpoint.
    let source = if state.card(v1) <= state.card(v2) {
        v1
    } else {
        v2
    };
    trace.source = source;

    // Lines 6-9: the empty path anchored at source.
    let initial_input: Vec<Pre> = match state.sample(source) {
        Some(s) => s.as_ref().clone(),
        None => {
            let base = state.env.base_list(state.graph, source);
            sample_sorted(rng, &base, tau)
        }
    };
    let mut paths = vec![PathSeg {
        edges: Vec::new(),
        ops: Vec::new(),
        stop: source,
        input: initial_input,
        cost: 0.0,
        sf: 1.0,
    }];
    let mut cutoff = tau;
    let max_rounds = state.graph.edge_count() + 2;

    for _round in 0..max_rounds {
        let extendable = |p: &PathSeg| {
            state
                .unexecuted_edges_of(p.stop)
                .iter()
                .any(|e| !p.edges.contains(e))
        };
        if !paths.iter().any(extendable) {
            break;
        }
        // Line 12: grow the cutoff to counter front bias.
        cutoff += tau;
        // Lines 13-23: extend every extendable path by each candidate edge.
        // All (path, edge) extensions of a round are independent sampled
        // operator runs — execute them concurrently and merge in the
        // deterministic (path, edge) order of the sequential loop.
        let ext_of: Vec<Vec<EdgeId>> = paths
            .iter()
            .map(|p| {
                state
                    .unexecuted_edges_of(p.stop)
                    .into_iter()
                    .filter(|e| !p.edges.contains(e))
                    .collect()
            })
            .collect();
        let tasks: Vec<(usize, EdgeId)> = ext_of
            .iter()
            .enumerate()
            .flat_map(|(i, exts)| exts.iter().map(move |&e| (i, e)))
            .collect();
        let threads = par.effective_threads(tasks.len(), 1);
        let paths_ref = &paths;
        let runs = state.env.workers().par_map(threads, tasks.len(), |t| {
            let (i, e) = tasks[t];
            let p = &paths_ref[i];
            let mut input = p.input.clone();
            input.sort_unstable();
            let mut local = Cost::new();
            let run = sampled_edge_exec(state, e, p.stop, &input, cutoff, &mut local);
            (run, local)
        });
        let mut next_paths: Vec<PathSeg> = Vec::new();
        let mut run_iter = runs.into_iter();
        for (i, p) in paths.into_iter().enumerate() {
            if ext_of[i].is_empty() {
                next_paths.push(p);
                continue;
            }
            for &e in &ext_of[i] {
                let (run, local) = run_iter.next().expect("one run per task");
                cost.add(local);
                let to = state.graph.edge(e).other(p.stop);
                let mut edges = p.edges.clone();
                edges.push(e);
                let mut ops = p.ops.clone();
                ops.push(run.op);
                let scale = state.card(source) as f64 / tau as f64;
                next_paths.push(PathSeg {
                    edges,
                    ops,
                    stop: to,
                    input: run.output,
                    cost: p.cost + run.est * scale,
                    sf: run.est / tau as f64,
                });
            }
        }
        debug_assert!(run_iter.next().is_none(), "all runs consumed");
        paths = next_paths;
        trace.rounds.push(
            paths
                .iter()
                .map(|p| PathSnapshot {
                    edges: p.edges.clone(),
                    ops: p.ops.clone(),
                    cost: p.cost,
                    sf: p.sf,
                })
                .collect(),
        );
        // Lines 24-31: the strict stopping condition.
        if paths.len() >= 2 {
            if let Some(winner) = strict_winner(&paths) {
                trace.stopped_early = true;
                trace.chosen = paths[winner].edges.clone();
                let path = paths[winner].edges.clone();
                return ChainOutcome { path, trace };
            }
        }
    }

    // Lines 32-39: exhausted — pick the best candidate by the symmetric
    // comparison, falling back to most pairwise wins / smallest cost.
    let idx = final_winner(&paths);
    trace.chosen = paths[idx].edges.clone();
    let mut path = paths.into_iter().nth(idx).expect("winner exists").edges;
    if path.is_empty() {
        // The source never produced an extension (e.g. empty sample):
        // degrade gracefully to the seed edge.
        path = vec![seed];
        trace.chosen = path.clone();
    }
    ChainOutcome { path, trace }
}

/// Index of a path satisfying `cost(pᵢ) + sf(pᵢ)·cost(pⱼ) ≤ cost(pⱼ)` for
/// every other path, if any (line 26).
fn strict_winner(paths: &[PathSeg]) -> Option<usize> {
    (0..paths.len()).find(|&i| {
        !paths[i].edges.is_empty()
            && (0..paths.len())
                .all(|j| i == j || paths[i].cost + paths[i].sf * paths[j].cost <= paths[j].cost)
    })
}

/// Final selection (line 34): a path beating all others under the
/// symmetric condition, else the one with most pairwise wins (ties broken
/// by smaller cost).
fn final_winner(paths: &[PathSeg]) -> usize {
    let candidates: Vec<usize> = (0..paths.len())
        .filter(|&i| !paths[i].edges.is_empty())
        .collect();
    if candidates.is_empty() {
        return 0;
    }
    let beats = |i: usize, j: usize| {
        paths[i].cost + paths[i].sf * paths[j].cost <= paths[j].cost + paths[j].sf * paths[i].cost
    };
    if let Some(&winner) = candidates
        .iter()
        .find(|&&i| candidates.iter().all(|&j| i == j || beats(i, j)))
    {
        return winner;
    }
    // Non-transitive estimates: count wins.
    let mut best = candidates[0];
    let mut best_wins = usize::MIN;
    for &i in &candidates {
        let wins = candidates
            .iter()
            .filter(|&&j| j != i && beats(i, j))
            .count();
        if wins > best_wins || (wins == best_wins && paths[i].cost < paths[best].cost) {
            best = i;
            best_wins = wins;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::RoxEnv;
    use rand::SeedableRng;
    use rox_joingraph::compile_query;
    use rox_xmldb::Catalog;
    use std::sync::Arc;

    /// Correlated document: auctions with a `cheap` child have exactly one
    /// bidder; auctions with an `exp` child have ten. A chain sampler
    /// starting from `cheap` should discover the small bidder branch.
    fn corr_doc() -> String {
        let mut s = String::from("<site>");
        for i in 0..60 {
            s.push_str("<auction>");
            if i % 2 == 0 {
                s.push_str("<cheap/>");
                s.push_str("<bidder/>");
            } else {
                s.push_str("<exp/>");
                for _ in 0..10 {
                    s.push_str("<bidder/>");
                }
            }
            s.push_str("</auction>");
        }
        s.push_str("</site>");
        s
    }

    fn setup() -> (Arc<Catalog>, rox_joingraph::JoinGraph) {
        let cat = Arc::new(Catalog::new());
        cat.load_str("d.xml", &corr_doc()).unwrap();
        let g =
            compile_query(r#"for $a in doc("d.xml")//auction[./cheap], $b in $a/bidder return $b"#)
                .unwrap();
        (cat, g)
    }

    #[test]
    fn returns_seed_when_no_branching() {
        let cat = Arc::new(Catalog::new());
        cat.load_str("d.xml", "<site><a><b/></a></site>").unwrap();
        let g = compile_query(r#"for $x in doc("d.xml")//a, $y in $x/b return $y"#).unwrap();
        let env = RoxEnv::new(cat, &g).unwrap();
        let mut st = EvalState::new(&env, &g);
        for e in g.edges() {
            if e.redundant {
                st.mark_executed(e.id);
            }
        }
        let weights = vec![Some(1.0); g.edge_count()];
        let mut rng = StdRng::seed_from_u64(1);
        let out = chain_sample(
            &st,
            &weights,
            &mut rng,
            10,
            Parallelism::Sequential,
            &mut Cost::new(),
        );
        assert_eq!(out.path.len(), 1);
        assert!(out.trace.rounds.is_empty());
    }

    #[test]
    fn explores_branches_and_chooses_nonempty_path() {
        let (cat, g) = setup();
        let env = RoxEnv::new(cat, &g).unwrap();
        let mut st = EvalState::new(&env, &g);
        let mut rng = StdRng::seed_from_u64(3);
        for e in g.edges() {
            if e.redundant {
                st.mark_executed(e.id);
            }
        }
        for v in g.vertices() {
            st.seed_sample(v.id, &mut rng, 20);
        }
        let mut cost = Cost::new();
        let mut weights: Vec<Option<f64>> = vec![None; g.edge_count()];
        for e in st.unexecuted_edges() {
            weights[e as usize] = crate::estimate::estimate_card(&st, e, 20, &mut cost);
        }
        let out = chain_sample(
            &st,
            &weights,
            &mut rng,
            20,
            Parallelism::Sequential,
            &mut cost,
        );
        assert!(!out.path.is_empty());
        // Branching exists (auction has two unexecuted edges), so rounds ran.
        assert!(!out.trace.rounds.is_empty());
        for e in &out.path {
            assert!(!st.is_executed(*e));
        }
        assert!(cost.total() > 0, "sampling must be accounted");
    }

    #[test]
    fn trace_costs_are_monotone_in_rounds() {
        let (cat, g) = setup();
        let env = RoxEnv::new(cat, &g).unwrap();
        let mut st = EvalState::new(&env, &g);
        let mut rng = StdRng::seed_from_u64(9);
        for e in g.edges() {
            if e.redundant {
                st.mark_executed(e.id);
            }
        }
        for v in g.vertices() {
            st.seed_sample(v.id, &mut rng, 20);
        }
        let mut cost = Cost::new();
        let mut weights: Vec<Option<f64>> = vec![None; g.edge_count()];
        for e in st.unexecuted_edges() {
            weights[e as usize] = crate::estimate::estimate_card(&st, e, 20, &mut cost);
        }
        let out = chain_sample(
            &st,
            &weights,
            &mut rng,
            20,
            Parallelism::Sequential,
            &mut cost,
        );
        // A path extended across rounds never reduces its cost.
        for w in out.trace.rounds.windows(2) {
            for snap in &w[1] {
                if let Some(prev) = w[0]
                    .iter()
                    .find(|s| snap.edges.starts_with(&s.edges) && s.edges.len() < snap.edges.len())
                {
                    assert!(snap.cost >= prev.cost - 1e-9);
                }
            }
        }
    }
}
