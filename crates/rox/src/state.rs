//! The evaluation state: fully-materialized execution of Join Graph edges.
//!
//! ROX "executes the operations in the Join Graph one by one, fully
//! materializing partial results" (§1.1). The state tracks:
//!
//! * **components** — maximal sets of vertices connected by already
//!   executed edges, each with its materialized fully-joined [`Relation`];
//! * **per-vertex tables** `T(v)` — the distinct nodes of `v` that still
//!   participate (Algorithm 1's semijoin-reduced vertex tables), plus
//!   `card(v)` and the sample `S(v)`;
//! * the executed-edge set and a per-edge result-size log (the data behind
//!   Fig. 5's cumulative intermediate cardinalities).
//!
//! Executing an edge between two components joins their relations through
//! node-level pairs produced by a staircase or value join; an edge within
//! one component is a selection. Both preserve XQuery multiplicity
//! semantics.

use crate::env::RoxEnv;
use rand::rngs::StdRng;
use rox_index::{sample_sorted, PreSet, SymbolTable};
use rox_joingraph::{EdgeId, EdgeKind, JoinGraph, VertexId, VertexLabel};
use rox_ops::{
    choose_op, choose_step_kernel, edge_predicate, execute_edge_op_with, Cost, DenseState,
    EdgeClass, EdgeOpCtx, EdgeOpKind, ExecMode, Relation, StepKernel,
};
use rox_xmldb::{NodeKind, Pre};
use std::sync::{Arc, RwLock};

/// One executed edge: the size of the component relation it produced and
/// the physical operator the kernel chose for it (the per-edge record
/// behind Fig-6-style plan-class analysis), plus the node-level observed
/// cardinalities the guarded plan replay compares against its recorded
/// expectations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeExec {
    /// The edge.
    pub edge: EdgeId,
    /// Rows of the (merged or filtered) component relation afterwards.
    pub result_rows: usize,
    /// The physical operator that executed the edge
    /// ([`EdgeOpKind::Select`] for intra-component selections).
    pub op: EdgeOpKind,
    /// Node-level pairs the edge operator produced (for a selection: rows
    /// kept) — the observed cardinality a guarded replay checks.
    pub pairs: usize,
    /// Distinct input cardinalities `(|T(v1)|, |T(v2)|)` at execution
    /// time, the denominators of the observed reduction factor.
    pub inputs: (usize, usize),
}

impl EdgeExec {
    /// Observed reduction factor `pairs / (|T(v1)|·|T(v2)|)` — the per-edge
    /// selectivity a cached plan records so a later replay can detect
    /// correlation drift even when base cardinalities are unchanged.
    pub fn reduction(&self) -> f64 {
        let denom = (self.inputs.0 as f64) * (self.inputs.1 as f64);
        if denom == 0.0 {
            return 0.0;
        }
        self.pairs as f64 / denom
    }
}

/// Per-vertex scratch arena: the dense join state (membership bitsets and
/// CSR join tables over `T(v)`-or-base) that the estimate → chain →
/// execute loop would otherwise rebuild for every sampled or full
/// operator run on the same unchanged vertex table.
///
/// Entries are built lazily behind shared locks (the parallel candidate
/// sampling fan-out reads the state concurrently) and **invalidated on
/// every write to `T(v)`** — the one rule that keeps a cached structure
/// interchangeable with a fresh build. Reuse never changes results *or*
/// cost counters: bitset membership is uncharged (as the binary search it
/// replaced was), and a cached join table still bills its build
/// investment per execution (see `rox_ops::hash_value_join_with`).
struct Scratch {
    /// vertex → membership bitset over `table_or_base(v)`.
    sets: RwLock<Vec<Option<Arc<PreSet>>>>,
    /// vertex → CSR join table over `table_or_base(v)`'s value symbols
    /// (only ever built for value-join endpoints).
    tables: RwLock<Vec<Option<Arc<SymbolTable>>>>,
}

impl Scratch {
    fn new(vertices: usize) -> Self {
        Scratch {
            sets: RwLock::new(vec![None; vertices]),
            tables: RwLock::new(vec![None; vertices]),
        }
    }

    /// Drop both cached structures of `v` (call on every `T(v)` write).
    /// A bitset this state held the last reference to returns its word
    /// buffer to the pool.
    fn invalidate(&self, v: VertexId, pool: &rox_ops::ScratchPool) {
        if let Some(set) = self.sets.write().expect("scratch sets")[v as usize].take() {
            if let Ok(set) = Arc::try_unwrap(set) {
                pool.give_set(set);
            }
        }
        self.tables.write().expect("scratch tables")[v as usize] = None;
    }

    /// Drain every cached bitset into the pool (end-of-run cleanup).
    fn recycle(&self, pool: &rox_ops::ScratchPool) {
        for slot in self.sets.write().expect("scratch sets").iter_mut() {
            if let Some(set) = slot.take() {
                if let Ok(set) = Arc::try_unwrap(set) {
                    pool.give_set(set);
                }
            }
        }
        for slot in self.tables.write().expect("scratch tables").iter_mut() {
            *slot = None;
        }
    }
}

/// Mutable evaluation state over one graph and environment.
pub struct EvalState<'a> {
    /// The environment (documents + indices).
    pub env: &'a RoxEnv,
    /// The Join Graph being evaluated.
    pub graph: &'a JoinGraph,
    comp_of: Vec<Option<usize>>,
    components: Vec<Option<Relation>>,
    t: Vec<Option<Arc<Vec<Pre>>>>,
    card: Vec<Option<usize>>,
    sample: Vec<Option<Arc<Vec<Pre>>>>,
    executed: Vec<bool>,
    /// Worker-thread budget for full edge executions (the partitioned
    /// staircase/hash joins). Initialized from the environment; callers
    /// with their own knob (e.g. `run_rox_with_env`) override it via
    /// [`EvalState::set_parallelism`].
    parallelism: rox_par::Parallelism,
    /// Reusable dense join state per vertex (bitsets + CSR tables),
    /// invalidated whenever `T(v)` changes.
    scratch: Scratch,
    /// Work done by full edge executions.
    pub exec_cost: Cost,
    /// Log of executed edges with result sizes, in execution order.
    pub edge_log: Vec<EdgeExec>,
}

impl<'a> EvalState<'a> {
    /// Fresh state; nothing materialized, nothing executed. Full edge
    /// execution inherits the environment's [`rox_par::Parallelism`]
    /// budget.
    pub fn new(env: &'a RoxEnv, graph: &'a JoinGraph) -> Self {
        let nv = graph.vertex_count();
        EvalState {
            env,
            graph,
            comp_of: vec![None; nv],
            components: Vec::new(),
            t: vec![None; nv],
            card: vec![None; nv],
            sample: vec![None; nv],
            executed: vec![false; graph.edge_count()],
            parallelism: env.parallelism(),
            scratch: Scratch::new(nv),
            exec_cost: Cost::new(),
            edge_log: Vec::new(),
        }
    }

    /// Override the worker-thread budget for this state's full edge
    /// executions (results are identical at any setting; only wall time
    /// changes).
    pub fn set_parallelism(&mut self, parallelism: rox_par::Parallelism) {
        self.parallelism = parallelism;
    }

    /// Has edge `e` been executed (or skipped as redundant)?
    pub fn is_executed(&self, e: EdgeId) -> bool {
        self.executed[e as usize]
    }

    /// Mark an edge executed without running it (redundant root steps).
    pub fn mark_executed(&mut self, e: EdgeId) {
        self.executed[e as usize] = true;
    }

    /// Ids of unexecuted edges.
    pub fn unexecuted_edges(&self) -> Vec<EdgeId> {
        (0..self.graph.edge_count() as EdgeId)
            .filter(|&e| !self.executed[e as usize])
            .collect()
    }

    /// Unexecuted edges incident to `v` (the paper's `edges(v)`).
    pub fn unexecuted_edges_of(&self, v: VertexId) -> Vec<EdgeId> {
        self.graph
            .edges_of(v)
            .iter()
            .copied()
            .filter(|&e| !self.executed[e as usize])
            .collect()
    }

    /// `T(v)` if materialized.
    pub fn table(&self, v: VertexId) -> Option<&Arc<Vec<Pre>>> {
        self.t[v as usize].as_ref()
    }

    /// `T(v)` if materialized, else the vertex base list (the index lookup
    /// the execution would initialize `T(v)` with) — what sampled
    /// estimation probes as the "inner" side.
    pub fn table_or_base(&self, v: VertexId) -> Arc<Vec<Pre>> {
        match &self.t[v as usize] {
            Some(t) => Arc::clone(t),
            None => self.env.base_list(self.graph, v),
        }
    }

    /// `card(v)`: materialized count if available, else the base count.
    pub fn card(&self, v: VertexId) -> usize {
        match self.card[v as usize] {
            Some(c) => c,
            None => self.env.base_count(self.graph, v),
        }
    }

    /// `S(v)` if present.
    pub fn sample(&self, v: VertexId) -> Option<&Arc<Vec<Pre>>> {
        self.sample[v as usize].as_ref()
    }

    /// The membership bitset over [`EvalState::table_or_base`]`(v)`, built
    /// once per `T(v)` version and shared across every sampled and full
    /// operator run until the table changes — the scratch-arena
    /// counterpart of the inner filter every index nested-loop value join
    /// probes.
    pub fn vertex_set(&self, v: VertexId) -> Arc<PreSet> {
        if let Some(set) = self.scratch.sets.read().expect("scratch sets")[v as usize].as_ref() {
            return Arc::clone(set);
        }
        let nodes = self.table_or_base(v);
        let set = Arc::new(
            self.env
                .pool()
                .lease_set(self.env.doc(v).node_count(), &nodes),
        );
        self.scratch.sets.write().expect("scratch sets")[v as usize] = Some(Arc::clone(&set));
        set
    }

    /// The CSR join table over [`EvalState::table_or_base`]`(v)`'s value
    /// symbols (value-join endpoints only), built once per `T(v)` version.
    /// Consumers still charge the build investment per execution, so cost
    /// counters are identical to rebuilding every time.
    pub fn vertex_join_table(&self, v: VertexId) -> Arc<SymbolTable> {
        if let Some(t) = self.scratch.tables.read().expect("scratch tables")[v as usize].as_ref() {
            return Arc::clone(t);
        }
        let nodes = self.table_or_base(v);
        let doc = self.env.doc(v);
        let symbols: Vec<rox_xmldb::Symbol> = nodes.iter().map(|&p| doc.value(p)).collect();
        let table = Arc::new(SymbolTable::from_pairs(&symbols, &nodes));
        self.scratch.tables.write().expect("scratch tables")[v as usize] = Some(Arc::clone(&table));
        table
    }

    /// Seed `S(v)` from the base list (Phase 1 of Algorithm 1).
    pub fn seed_sample(&mut self, v: VertexId, rng: &mut StdRng, tau: usize) {
        let base = self.env.base_list(self.graph, v);
        self.sample[v as usize] = Some(Arc::new(sample_sorted(rng, &base, tau)));
    }

    /// Seed `S(v)` from the *current* `T(v)` (falling back to the base
    /// list when the vertex is untouched) — the sample Algorithm 1 would
    /// hold had it arrived at this state itself. Mid-query demotion uses
    /// this to restart Phase 1 over an already-executed prefix.
    pub fn seed_sample_current(&mut self, v: VertexId, rng: &mut StdRng, tau: usize) {
        let t = self.table_or_base(v);
        self.sample[v as usize] = Some(Arc::new(sample_sorted(rng, &t, tau)));
    }

    /// Materialize a vertex as its own singleton component if untouched.
    fn ensure_materialized(&mut self, v: VertexId) {
        if self.comp_of[v as usize].is_some() {
            return;
        }
        let base = self.env.base_list(self.graph, v);
        self.exec_cost.charge_in(base.len());
        let mut nodes = self.env.pool().lease_pres();
        nodes.extend_from_slice(&base);
        let rel = Relation::single(v, self.env.doc_id(v), nodes);
        let cid = self.components.len();
        self.components.push(Some(rel));
        self.comp_of[v as usize] = Some(cid);
        self.t[v as usize] = Some(base);
        self.scratch.invalidate(v, self.env.pool());
        self.card[v as usize] = Some(self.t[v as usize].as_ref().unwrap().len());
    }

    /// Execute edge `e` fully, materializing the result. Returns the
    /// vertices whose `T`/`card` changed (their incident edges must be
    /// re-weighted, Algorithm 1 lines 18–19). When `sampler` is given,
    /// `S(v)` of changed vertices is refreshed (line 16); replays pass
    /// `None` and skip sampling entirely.
    pub fn execute_edge(
        &mut self,
        e: EdgeId,
        mut sampler: Option<(&mut StdRng, usize)>,
    ) -> Vec<VertexId> {
        assert!(!self.executed[e as usize], "edge {e} already executed");
        self.executed[e as usize] = true;
        let edge = self.graph.edge(e).clone();
        let (v1, v2) = (edge.v1, edge.v2);
        self.ensure_materialized(v1);
        self.ensure_materialized(v2);
        let c1 = self.comp_of[v1 as usize].unwrap();
        let c2 = self.comp_of[v2 as usize].unwrap();
        let inputs = (self.card(v1), self.card(v2));

        let (op, pair_count): (EdgeOpKind, usize) = if c1 == c2 {
            // Selection within one component.
            let rel = self.components[c1].take().expect("live component");
            let filtered = self.filter_component(&edge, rel);
            let kept = filtered.len();
            self.components[c1] = Some(filtered);
            (EdgeOpKind::Select, kept)
        } else {
            let left = self.components[c1].take().expect("live component");
            let right = self.components[c2].take().expect("live component");
            let (pairs, op) = self.node_pairs(&edge);
            let pair_count = pairs.len();
            let pool = self.env.pool();
            let joined = Relation::compose_pooled(&left, v1, &right, v2, &pairs, Some(pool));
            // The consumed inputs flow back into the pool: the pair list
            // and both operands' column buffers become the next edge's
            // scratch.
            pool.give_node_pairs(pairs);
            left.recycle(pool);
            right.recycle(pool);
            self.exec_cost.charge_out(joined.len());
            // Re-point all vertices of the absorbed component.
            for v in 0..self.comp_of.len() {
                if self.comp_of[v] == Some(c2) {
                    self.comp_of[v] = Some(c1);
                }
            }
            self.components[c1] = Some(joined);
            (op, pair_count)
        };

        let merged = self.components[c1].as_ref().expect("live component");
        self.edge_log.push(EdgeExec {
            edge: e,
            result_rows: merged.len(),
            op,
            pairs: pair_count,
            inputs,
        });

        // Refresh T(v), card(v) and S(v) for every vertex of the affected
        // component — the component join semijoin-reduces all of them. The
        // edge endpoints always count as changed: Algorithm 1 re-samples
        // their incident edges unconditionally (lines 14-19).
        let mut changed = vec![v1, v2];
        for i in 0..merged.schema().len() {
            let merged = self.components[c1].as_ref().expect("live component");
            let v = merged.schema()[i];
            let mut distinct = self.env.pool().lease_pres();
            merged.distinct_nodes_into(v, &mut distinct);
            let new_card = distinct.len();
            let t = Arc::new(distinct);
            let stale = self.t[v as usize].as_ref().is_none_or(|old| **old != *t);
            if (stale || self.card[v as usize] != Some(new_card)) && !changed.contains(&v) {
                changed.push(v);
            }
            self.card[v as usize] = Some(new_card);
            if let Some((rng, tau)) = sampler.as_mut() {
                self.sample[v as usize] = Some(Arc::new(sample_sorted(*rng, &t, *tau)));
            }
            // Recycle the replaced table when this state held the last
            // reference (samples and in-flight estimates hold their own).
            if let Some(old) = self.t[v as usize].replace(t) {
                if let Ok(buf) = Arc::try_unwrap(old) {
                    self.env.pool().give_pres(buf);
                }
            }
            self.scratch.invalidate(v, self.env.pool());
        }
        changed
    }

    /// Node-level pairs `(v1 node, v2 node)` for a cross-component edge,
    /// computed over the *distinct* vertex tables by the edge-operator
    /// kernel ([`rox_ops::edgeop`]) — the same dispatch layer the sampling
    /// phases consult, so the operator executed here is by construction
    /// the one the weights were sampled with.
    fn node_pairs(&mut self, edge: &rox_joingraph::Edge) -> (Vec<(Pre, Pre)>, EdgeOpKind) {
        let (v1, v2) = (edge.v1, edge.v2);
        let t1 = Arc::clone(self.t[v1 as usize].as_ref().expect("materialized"));
        let t2 = Arc::clone(self.t[v2 as usize].as_ref().expect("materialized"));
        let (id1, id2) = (self.env.doc_id(v1), self.env.doc_id(v2));
        debug_assert!(!edge.is_step() || id1 == id2, "step spans documents");
        let d1 = self.env.doc(v1);
        let d2 = self.env.doc(v2);
        // Value indexes only matter for value joins; both documents'
        // indexes are already cached from base-list materialization.
        let indexes = (!edge.is_step())
            .then(|| (self.env.store().indexes(id1), self.env.store().indexes(id2)));
        let (kind1, kind2) = (self.vertex_kind(v1), self.vertex_kind(v2));
        let class = edge.kind.class();
        // Hand the kernel the scratch arena's dense join state for exactly
        // the operator (and staircase kernel) it is about to choose —
        // `choose_op`/`choose_step_kernel` are the same cost functions the
        // kernel consults, so the prediction cannot drift: the inner
        // membership bitset for an index nested loop or a bitset-kernel
        // step, the build-side CSR table for a hash join. Cached or
        // rebuilt, results and cost charges are identical — this only
        // skips the rebuild.
        let mut set1 = None;
        let mut set2 = None;
        let mut table1 = None;
        let mut table2 = None;
        let choice = choose_op(class, t1.len(), t2.len(), ExecMode::Full);
        match class {
            EdgeClass::ValueJoin => match choice.kind {
                EdgeOpKind::IndexNLValueJoin => {
                    // The *inner* (non-outer) endpoint's set is the filter
                    // the nested loop probes.
                    if choice.outer_is_v1 {
                        set2 = Some(self.vertex_set(v2));
                    } else {
                        set1 = Some(self.vertex_set(v1));
                    }
                }
                EdgeOpKind::HashValueJoin => {
                    // The hash join builds on the outer (smaller) side —
                    // `choose_op` and `hash_builds_left` share the rule.
                    if choice.outer_is_v1 {
                        table1 = Some(self.vertex_join_table(v1));
                    } else {
                        table2 = Some(self.vertex_join_table(v2));
                    }
                }
                _ => {}
            },
            EdgeClass::Step(axis) => {
                // The bitset staircase kernel probes the inner endpoint's
                // membership set; supply the arena's cached one when that
                // kernel will engage.
                let (eff_axis, outer_len, inner_len) = if choice.outer_is_v1 {
                    (axis, t1.len(), t2.len())
                } else {
                    (axis.inverse(), t2.len(), t1.len())
                };
                if choose_step_kernel(eff_axis, outer_len, inner_len, false) == StepKernel::Bitset {
                    if choice.outer_is_v1 {
                        set2 = Some(self.vertex_set(v2));
                    } else {
                        set1 = Some(self.vertex_set(v1));
                    }
                }
            }
        }
        let dense = DenseState {
            set1: set1.as_deref(),
            set2: set2.as_deref(),
            table1: table1.as_deref(),
            table2: table2.as_deref(),
            pool: Some(self.env.pool()),
        };
        let out = execute_edge_op_with(
            EdgeOpCtx {
                class,
                mode: ExecMode::Full,
                doc1: &d1,
                doc2: &d2,
                input1: &t1,
                input2: &t2,
                index1: indexes.as_ref().map(|(i1, _)| &i1.value),
                index2: indexes.as_ref().map(|(_, i2)| &i2.value),
                kind1,
                kind2,
                par: self.parallelism,
                workers: Some(self.env.workers()),
            },
            dense,
            &mut self.exec_cost,
        );
        (out.result.into_full(), out.choice.kind)
    }

    /// Filter a component's rows by an intra-component edge predicate (the
    /// kernel's [`EdgeOpKind::Select`] path). The join columns are read as
    /// borrowed slices (no clones) and the keep-flags buffer is
    /// pool-leased.
    fn filter_component(&mut self, edge: &rox_joingraph::Edge, rel: Relation) -> Relation {
        let (v1, v2) = (edge.v1, edge.v2);
        self.exec_cost.charge_in(rel.len());
        let class = edge.kind.class();
        let d1 = self.env.doc(v1);
        let d2 = self.env.doc(v2);
        let pool = self.env.pool();
        let mut keep = pool.lease_flags();
        keep.extend(
            rel.col(v1)
                .iter()
                .zip(rel.col(v2))
                .map(|(&a, &b)| edge_predicate(class, &d1, &d2, a, b)),
        );
        let mut rel = rel;
        rel.retain_rows(&keep);
        pool.give_flags(keep);
        self.exec_cost.charge_out(rel.len());
        rel
    }

    /// Finish evaluation: materialize every non-root vertex that only had
    /// redundant edges, then return the full join as the product of the
    /// remaining components (they are unconstrained w.r.t. each other).
    pub fn finalize(&mut self) -> Relation {
        for v in self.graph.vertices() {
            if matches!(v.label, VertexLabel::Root) {
                continue;
            }
            self.ensure_materialized(v.id);
        }
        // Collect live components that contain at least one non-root
        // vertex. Finalization consumes them: the evaluation is over, so
        // the slots are drained rather than cloned.
        let mut parts: Vec<Relation> = Vec::new();
        let mut seen: Vec<usize> = Vec::new();
        for v in self.graph.vertices() {
            if matches!(v.label, VertexLabel::Root) {
                continue;
            }
            let cid = self.comp_of[v.id as usize].expect("materialized");
            if !seen.contains(&cid) {
                seen.push(cid);
                parts.push(self.components[cid].take().expect("live component"));
            }
        }
        let mut result = match parts.pop() {
            Some(r) => r,
            None => Relation::empty(vec![], vec![]),
        };
        for part in parts {
            let product = Relation::cartesian(&result, &part);
            result.recycle(self.env.pool());
            part.recycle(self.env.pool());
            result = product;
            self.exec_cost.charge_out(result.len());
        }
        result
    }

    /// Return every per-vertex scratch buffer this state still holds —
    /// `T(v)` tables and cached membership bitsets — to the environment's
    /// pool. Called by the run drivers once evaluation is finished (after
    /// [`EvalState::finalize`]); the next query on the same engine then
    /// leases these buffers instead of allocating. Only buffers with no
    /// outstanding references move (shared base lists and live samples
    /// stay untouched), so calling this is always safe.
    pub fn recycle_scratch(&mut self) {
        let pool = self.env.pool();
        for slot in self.t.iter_mut() {
            if let Some(arc) = slot.take() {
                if let Ok(buf) = Arc::try_unwrap(arc) {
                    pool.give_pres(buf);
                }
            }
        }
        self.scratch.recycle(pool);
    }

    /// Sum of all logged intermediate result sizes (Fig. 5's metric), over
    /// equi-join edges only when `joins_only` is set.
    pub fn cumulative_intermediate(&self, joins_only: bool) -> u64 {
        self.edge_log
            .iter()
            .filter(|x| {
                !joins_only || matches!(self.graph.edge(x.edge).kind, EdgeKind::EquiJoin { .. })
            })
            .map(|x| x.result_rows as u64)
            .sum()
    }

    /// The node kind of a vertex (text/attr distinction for value joins).
    pub fn vertex_kind(&self, v: VertexId) -> NodeKind {
        RoxEnv::vertex_kind(&self.graph.vertex(v).label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rox_joingraph::compile_query;
    use rox_xmldb::Catalog;

    fn setup(src: &str, docs: &[(&str, &str)]) -> (Arc<Catalog>, JoinGraph) {
        let cat = Arc::new(Catalog::new());
        for (uri, xml) in docs {
            cat.load_str(uri, xml).unwrap();
        }
        (cat, compile_query(src).unwrap())
    }

    const AUCTION: &str = r#"<site><auction><bidder><ref p="1"/></bidder><bidder><ref p="2"/></bidder></auction><auction><bidder><ref p="3"/></bidder></auction><person id="1"/><person id="2"/></site>"#;

    #[test]
    fn step_edge_execution_joins_components() {
        let (cat, g) = setup(
            r#"for $a in doc("d.xml")//auction, $b in $a/bidder return $b"#,
            &[("d.xml", AUCTION)],
        );
        let env = RoxEnv::new(cat, &g).unwrap();
        let mut st = EvalState::new(&env, &g);
        // Find the auction/bidder step edge (the non-redundant one).
        let e = g.edges().iter().find(|e| !e.redundant).unwrap().id;
        let changed = st.execute_edge(e, None);
        assert!(!changed.is_empty());
        let a = g.var_vertices["a"];
        let b = g.var_vertices["b"];
        // 3 (auction, bidder) pairs; auction 1 participates twice.
        assert_eq!(st.card(b), 3);
        assert_eq!(st.card(a), 2);
        assert_eq!(st.edge_log.len(), 1);
        assert_eq!(st.edge_log[0].result_rows, 3);
    }

    #[test]
    fn finalize_applies_redundant_only_vertices() {
        let (cat, g) = setup(
            r#"for $a in doc("d.xml")//person return $a"#,
            &[("d.xml", AUCTION)],
        );
        let env = RoxEnv::new(cat, &g).unwrap();
        let mut st = EvalState::new(&env, &g);
        for e in g.edges() {
            if e.redundant {
                st.mark_executed(e.id);
            }
        }
        assert!(st.unexecuted_edges().is_empty());
        let rel = st.finalize();
        assert_eq!(rel.len(), 2); // two persons
    }

    #[test]
    fn equi_join_across_documents() {
        let (cat, g) = setup(
            r#"for $x in doc("x.xml")//a, $y in doc("y.xml")//b
               where $x/text() = $y/text() return $x"#,
            &[
                ("x.xml", "<r><a>k1</a><a>k2</a></r>"),
                ("y.xml", "<r><b>k2</b><b>k3</b><b>k2</b></r>"),
            ],
        );
        let env = RoxEnv::new(cat, &g).unwrap();
        let mut st = EvalState::new(&env, &g);
        for e in g.edges() {
            if e.redundant {
                st.mark_executed(e.id);
            }
        }
        // Execute steps then the join, in edge order.
        for e in st.unexecuted_edges() {
            st.execute_edge(e, None);
        }
        let rel = st.finalize();
        // k2 text matches two y texts -> 2 rows.
        assert_eq!(rel.len(), 2);
        let x = g.var_vertices["x"];
        assert_eq!(st.card(x), 1);
    }

    #[test]
    fn intra_component_edge_filters() {
        // Triangle: auction//ref and auction/bidder and bidder/ref. After
        // joining auction–ref and auction–bidder, the bidder–ref edge is a
        // selection within the component.
        let (cat, g) = setup(
            r#"for $a in doc("d.xml")//auction, $b in $a/bidder, $r in $b/ref
               return $r"#,
            &[("d.xml", AUCTION)],
        );
        let env = RoxEnv::new(cat, &g).unwrap();
        let mut st = EvalState::new(&env, &g);
        for e in g.edges() {
            if e.redundant {
                st.mark_executed(e.id);
            }
        }
        let edges = st.unexecuted_edges();
        assert_eq!(edges.len(), 2);
        for e in edges {
            st.execute_edge(e, None);
        }
        let rel = st.finalize();
        assert_eq!(rel.len(), 3); // 3 refs, each with its bidder & auction
    }

    #[test]
    fn sampler_refreshes_samples() {
        let (cat, g) = setup(
            r#"for $a in doc("d.xml")//auction, $b in $a/bidder return $b"#,
            &[("d.xml", AUCTION)],
        );
        let env = RoxEnv::new(cat, &g).unwrap();
        let mut st = EvalState::new(&env, &g);
        let e = g.edges().iter().find(|e| !e.redundant).unwrap().id;
        let mut rng = StdRng::seed_from_u64(1);
        st.execute_edge(e, Some((&mut rng, 2)));
        let b = g.var_vertices["b"];
        assert_eq!(st.sample(b).unwrap().len(), 2);
    }

    #[test]
    fn skewed_equi_join_uses_index_nl_and_matches_hash_semantics() {
        // One tiny side against a large side: triggers the index
        // nested-loop path; results must match the reference count.
        let cat = Arc::new(Catalog::new());
        let mut big = String::from("<r>");
        for i in 0..500 {
            big.push_str(&format!("<b>v{}</b>", i % 50));
        }
        big.push_str("</r>");
        cat.load_str("x.xml", "<r><a>v7</a></r>").unwrap();
        cat.load_str("y.xml", &big).unwrap();
        let g = compile_query(
            r#"for $x in doc("x.xml")//a, $y in doc("y.xml")//b
               where $x/text() = $y/text() return $y"#,
        )
        .unwrap();
        let env = RoxEnv::new(cat, &g).unwrap();
        let mut st = EvalState::new(&env, &g);
        for e in g.edges() {
            if e.redundant {
                st.mark_executed(e.id);
            }
        }
        for e in st.unexecuted_edges() {
            st.execute_edge(e, None);
        }
        let rel = st.finalize();
        assert_eq!(rel.len(), 10); // "v7" appears 10 times in the big doc
    }

    #[test]
    fn cumulative_intermediate_counts() {
        let (cat, g) = setup(
            r#"for $x in doc("x.xml")//a, $y in doc("y.xml")//b
               where $x/text() = $y/text() return $x"#,
            &[
                ("x.xml", "<r><a>k</a></r>"),
                ("y.xml", "<r><b>k</b><b>k</b></r>"),
            ],
        );
        let env = RoxEnv::new(cat, &g).unwrap();
        let mut st = EvalState::new(&env, &g);
        for e in g.edges() {
            if e.redundant {
                st.mark_executed(e.id);
            }
        }
        for e in st.unexecuted_edges() {
            st.execute_edge(e, None);
        }
        assert!(st.cumulative_intermediate(false) >= st.cumulative_intermediate(true));
        assert!(st.cumulative_intermediate(true) >= 2);
    }
}
