//! String interning for qualified names and (optionally) frequent text
//! values.
//!
//! The shredded node table stores a [`Symbol`] (a dense `u32`) instead of an
//! owned string per tuple, which keeps the columnar representation compact
//! and makes qname comparisons O(1) — element-index lookups hinge on that.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A dense identifier for an interned string.
///
/// Symbols are only meaningful relative to the [`Interner`] that produced
/// them. Symbol `0` is always the empty string.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

impl Symbol {
    /// The interned empty string, present in every interner.
    pub const EMPTY: Symbol = Symbol(0);

    /// The raw index of the symbol.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// A thread-safe append-only string interner.
///
/// Interning is write-locked; resolution takes a read lock and returns an
/// owned `String` (resolution is off the hot path — operators compare
/// symbols, not strings).
#[derive(Default)]
pub struct Interner {
    inner: RwLock<InternerInner>,
}

#[derive(Default)]
struct InternerInner {
    // The same allocation backs both the dense table and the lookup key —
    // `Arc<str>` keeps interning to one allocation per distinct string.
    strings: Vec<Arc<str>>,
    lookup: HashMap<Arc<str>, Symbol>,
}

impl Interner {
    /// Create an interner pre-seeded with the empty string as [`Symbol::EMPTY`].
    pub fn new() -> Self {
        let interner = Interner::default();
        let empty = interner.intern("");
        debug_assert_eq!(empty, Symbol::EMPTY);
        interner
    }

    /// Intern `s`, returning its stable symbol.
    pub fn intern(&self, s: &str) -> Symbol {
        if let Some(sym) = self.inner.read().lookup.get(s) {
            return *sym;
        }
        let mut inner = self.inner.write();
        if let Some(sym) = inner.lookup.get(s) {
            return *sym;
        }
        let sym = Symbol(u32::try_from(inner.strings.len()).expect("interner overflow"));
        let shared: Arc<str> = s.into();
        inner.strings.push(Arc::clone(&shared));
        inner.lookup.insert(shared, sym);
        sym
    }

    /// Look up a string without interning it.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.inner.read().lookup.get(s).copied()
    }

    /// Resolve a symbol back to its string.
    ///
    /// # Panics
    /// Panics if `sym` was not produced by this interner.
    pub fn resolve(&self, sym: Symbol) -> String {
        self.inner.read().strings[sym.index()].to_string()
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.inner.read().strings.len()
    }

    /// Dump every interned string in symbol order (symbol `i` is
    /// `dump()[i]`) — the serialization order the snapshot's symbol heap
    /// uses. An interner restored via [`Interner::from_strings`] from this
    /// dump assigns bit-identical symbols.
    pub fn dump(&self) -> Vec<String> {
        self.inner
            .read()
            .strings
            .iter()
            .map(|s| s.to_string())
            .collect()
    }

    /// Dump the strings of symbols `start..len()` in symbol order — the
    /// *delta* since a caller's last high-water mark. The write-ahead
    /// log ships exactly this slice per record: replaying `dump_from`
    /// slices in order re-interns every symbol at its original id.
    pub fn dump_from(&self, start: usize) -> Vec<String> {
        let inner = self.inner.read();
        inner
            .strings
            .get(start..)
            .unwrap_or(&[])
            .iter()
            .map(|s| s.to_string())
            .collect()
    }

    /// Rebuild an interner from a symbol-ordered string dump (the inverse
    /// of [`Interner::dump`]): string `i` gets symbol `i`, so a document
    /// whose columns reference the dumped symbols resolves identically.
    ///
    /// # Panics
    /// Panics when the dump does not start with the empty string (every
    /// interner's symbol 0) or contains duplicates.
    pub fn from_strings<I, S>(strings: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        match Self::try_from_strings(strings) {
            Ok(interner) => interner,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Interner::from_strings`]: returns a description of the
    /// defect instead of panicking, so callers restoring an interner from
    /// untrusted bytes (the snapshot path) can surface a clean error.
    pub fn try_from_strings<I, S>(strings: I) -> std::result::Result<Self, String>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let interner = Interner::default();
        {
            let mut inner = interner.inner.write();
            let strings = strings.into_iter();
            let (expected, _) = strings.size_hint();
            inner.strings.reserve(expected);
            inner.lookup.reserve(expected);
            for (i, s) in strings.enumerate() {
                let s = s.as_ref();
                if i == 0 && !s.is_empty() {
                    return Err("symbol 0 must be the empty string".to_string());
                }
                let sym = Symbol(u32::try_from(i).map_err(|_| "interner overflow")?);
                let shared: Arc<str> = s.into();
                inner.strings.push(Arc::clone(&shared));
                if inner.lookup.insert(shared, sym).is_some() {
                    return Err(format!("duplicate string {s:?} in interner dump"));
                }
            }
        }
        if interner.inner.read().strings.is_empty() {
            return Err("interner dump must contain at least the empty string".to_string());
        }
        Ok(interner)
    }

    /// True when only the implicit empty string is present.
    pub fn is_empty(&self) -> bool {
        self.len() <= 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_string_is_symbol_zero() {
        let i = Interner::new();
        assert_eq!(i.intern(""), Symbol::EMPTY);
        assert_eq!(i.resolve(Symbol::EMPTY), "");
    }

    #[test]
    fn interning_is_idempotent() {
        let i = Interner::new();
        let a = i.intern("author");
        let b = i.intern("author");
        assert_eq!(a, b);
        assert_eq!(i.resolve(a), "author");
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let i = Interner::new();
        let a = i.intern("open_auction");
        let b = i.intern("closed_auction");
        assert_ne!(a, b);
    }

    #[test]
    fn get_does_not_intern() {
        let i = Interner::new();
        assert_eq!(i.get("bidder"), None);
        let s = i.intern("bidder");
        assert_eq!(i.get("bidder"), Some(s));
    }

    #[test]
    fn len_counts_distinct() {
        let i = Interner::new();
        i.intern("a");
        i.intern("b");
        i.intern("a");
        assert_eq!(i.len(), 3); // "", "a", "b"
        assert!(!i.is_empty());
    }

    #[test]
    fn dump_restore_roundtrips_symbols() {
        let i = Interner::new();
        let a = i.intern("auction");
        let b = i.intern("bidder");
        let dump = i.dump();
        assert_eq!(dump[0], "");
        let restored = Interner::from_strings(&dump);
        assert_eq!(restored.len(), i.len());
        assert_eq!(restored.get("auction"), Some(a));
        assert_eq!(restored.get("bidder"), Some(b));
        assert_eq!(restored.resolve(a), "auction");
        // Restored interner keeps interning past the dump.
        let c = restored.intern("fresh");
        assert_eq!(c.index(), dump.len());
    }

    #[test]
    #[should_panic(expected = "symbol 0")]
    fn restore_rejects_missing_empty_string() {
        let _ = Interner::from_strings(["nonempty"]);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn restore_rejects_duplicates() {
        let _ = Interner::from_strings(["", "x", "x"]);
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        use std::sync::Arc;
        let i = Arc::new(Interner::new());
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let i = Arc::clone(&i);
                std::thread::spawn(move || {
                    (0..100)
                        .map(|k| i.intern(&format!("s{}", (t * 100 + k) % 37)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // 37 distinct strings + empty
        assert_eq!(i.len(), 38);
    }
}
