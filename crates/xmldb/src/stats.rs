//! Per-document statistics: the cheap structural summaries a classical
//! optimizer would keep (and the numbers Table 3 of the paper reports).

use crate::doc::Document;
use crate::node::{NodeKind, Pre};

/// Structural statistics of one shredded document.
#[derive(Debug, Clone, PartialEq)]
pub struct DocStats {
    /// Total nodes including the virtual root.
    pub nodes: usize,
    /// Element count.
    pub elements: usize,
    /// Text node count.
    pub text_nodes: usize,
    /// Attribute count.
    pub attributes: usize,
    /// Comment count.
    pub comments: usize,
    /// Processing-instruction count.
    pub processing_instructions: usize,
    /// Maximum depth (root = 0).
    pub max_depth: u16,
    /// Average depth over all nodes.
    pub avg_depth: f64,
    /// Distinct element names.
    pub distinct_element_names: usize,
    /// Distinct text values.
    pub distinct_text_values: usize,
    /// Maximum fan-out (children per element, attributes excluded).
    pub max_fanout: usize,
}

impl DocStats {
    /// Compute all statistics in one pass (plus one pass for fan-out).
    pub fn compute(doc: &Document) -> Self {
        use std::collections::HashSet;
        let n = doc.node_count();
        let mut stats = DocStats {
            nodes: n,
            elements: 0,
            text_nodes: 0,
            attributes: 0,
            comments: 0,
            processing_instructions: 0,
            max_depth: 0,
            avg_depth: 0.0,
            distinct_element_names: 0,
            distinct_text_values: 0,
            max_fanout: 0,
        };
        let mut names = HashSet::new();
        let mut values = HashSet::new();
        let mut depth_sum = 0u64;
        // Children per parent (attributes excluded).
        let mut fanout = vec![0usize; n];
        for pre in 0..n as Pre {
            let level = doc.level(pre);
            stats.max_depth = stats.max_depth.max(level);
            depth_sum += level as u64;
            match doc.kind(pre) {
                NodeKind::Element => {
                    stats.elements += 1;
                    names.insert(doc.name(pre));
                    if pre != 0 {
                        fanout[doc.parent(pre) as usize] += 1;
                    }
                }
                NodeKind::Text => {
                    stats.text_nodes += 1;
                    values.insert(doc.value(pre));
                    fanout[doc.parent(pre) as usize] += 1;
                }
                NodeKind::Attribute => stats.attributes += 1,
                NodeKind::Comment => {
                    stats.comments += 1;
                    fanout[doc.parent(pre) as usize] += 1;
                }
                NodeKind::ProcessingInstruction => {
                    stats.processing_instructions += 1;
                    fanout[doc.parent(pre) as usize] += 1;
                }
                NodeKind::Document => {}
            }
        }
        stats.avg_depth = depth_sum as f64 / n as f64;
        stats.distinct_element_names = names.len();
        stats.distinct_text_values = values.len();
        stats.max_fanout = fanout.into_iter().max().unwrap_or(0);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_document;

    #[test]
    fn counts_node_kinds() {
        let d = parse_document(
            "s.xml",
            r#"<a x="1" y="2"><b>t</b><b>t</b><!--c--><?pi d?></a>"#,
        )
        .unwrap();
        let s = DocStats::compute(&d);
        assert_eq!(s.elements, 3); // a, b, b
        assert_eq!(s.attributes, 2);
        assert_eq!(s.text_nodes, 2);
        assert_eq!(s.comments, 1);
        assert_eq!(s.processing_instructions, 1);
        assert_eq!(s.distinct_element_names, 2);
        assert_eq!(s.distinct_text_values, 1);
    }

    #[test]
    fn depth_and_fanout() {
        let d = parse_document("s.xml", "<a><b><c/><c/><c/></b></a>").unwrap();
        let s = DocStats::compute(&d);
        assert_eq!(s.max_depth, 3);
        assert_eq!(s.max_fanout, 3);
        assert!(s.avg_depth > 0.0 && s.avg_depth < 3.0);
    }

    #[test]
    fn trivial_document() {
        let d = parse_document("s.xml", "<a/>").unwrap();
        let s = DocStats::compute(&d);
        assert_eq!(s.nodes, 2);
        assert_eq!(s.elements, 1);
        assert_eq!(s.max_fanout, 1); // root's single element child
    }
}
