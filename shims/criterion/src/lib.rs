//! Offline stand-in for `criterion`: a minimal wall-clock benchmarking
//! harness exposing the API subset the `rox-bench` benches use
//! (`criterion_group!`/`criterion_main!`, `Criterion`, `BenchmarkGroup`,
//! `Bencher`, `BenchmarkId`, `Throughput`).
//!
//! Each benchmark runs one warm-up iteration followed by `sample_size`
//! timed iterations and prints min/mean/max per-iteration times. There is
//! no statistical analysis, HTML report, or baseline comparison — the goal
//! is that `cargo bench` compiles, runs, and prints honest numbers offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Iteration driver handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `sample_size` iterations of `f` (after one warm-up call).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        for _ in 0..self.sample_size {
            let t = Instant::now();
            std::hint::black_box(f());
            self.samples.push(t.elapsed());
        }
    }
}

/// Throughput annotation (printed, not analyzed).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A composite benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

fn run_one(name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    let started = Instant::now();
    f(&mut b);
    let total = started.elapsed();
    if b.samples.is_empty() {
        println!("bench {name:<50} (no samples)");
        return;
    }
    let min = b.samples.iter().min().unwrap();
    let max = b.samples.iter().max().unwrap();
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    println!(
        "bench {name:<50} mean {mean:>12.3?}  min {min:>12.3?}  max {max:>12.3?}  ({} iters, {total:.3?} total)",
        b.samples.len(),
    );
}

impl Criterion {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Set the target measurement time (accepted and ignored).
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Record the per-iteration throughput (printed only).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        let label = match t {
            Throughput::Elements(n) => format!("{n} elements/iter"),
            Throughput::Bytes(n) => format!("{n} bytes/iter"),
        };
        println!("group {}: throughput {label}", self.name);
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Run one parameterized benchmark inside the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    /// Finish the group (no-op; exists for API parity).
    pub fn finish(self) {}
}

/// Mirror of criterion's `black_box` (std's since 1.66).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declare a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declare the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
