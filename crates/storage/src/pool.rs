//! The buffer pool: a bounded set of in-memory frames caching validated
//! page payloads, with pin/unpin and a clock (second-chance) replacer.
//!
//! The pool is what makes larger-than-RAM catalogs workable: the snapshot
//! decode paths never read the file directly — every page goes through
//! [`BufferPool::fetch`], which pins a frame for the duration of the
//! returned [`PageRef`]. Pinned frames are never evicted; unpinned frames
//! are reclaimed by a clock sweep that gives recently referenced pages a
//! second chance. Hits, misses and evictions are counted so the engine can
//! surface a coherent ledger in its stats.

use crate::error::{Result, StorageError};
use crate::file::{FileManager, PagePayload};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counters describing one pool's traffic; `hits + misses` is the total
/// number of page fetches, `evictions ≤ misses` (every eviction makes room
/// for a missed page).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Maximum resident frames.
    pub capacity: u64,
    /// Frames currently holding a page.
    pub resident: u64,
    /// Fetches answered from a resident frame.
    pub hits: u64,
    /// Fetches that had to read the file.
    pub misses: u64,
    /// Frames reclaimed by the clock replacer.
    pub evictions: u64,
}

struct Frame {
    page_id: u32,
    data: Arc<PagePayload>,
    pins: u32,
    referenced: bool,
}

struct Frames {
    slots: Vec<Frame>,
    map: HashMap<u32, usize>,
    clock: usize,
}

/// A bounded read-through cache of page payloads.
pub struct BufferPool {
    frames: Mutex<Frames>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl BufferPool {
    /// A pool holding at most `capacity` pages (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        BufferPool {
            frames: Mutex::new(Frames {
                slots: Vec::new(),
                map: HashMap::new(),
                clock: 0,
            }),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Maximum resident frames.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Fetch page `page_id` through the pool, pinning its frame until the
    /// returned [`PageRef`] drops. A resident page is a hit; otherwise the
    /// page is read (and checksum-validated) from `file`, evicting an
    /// unpinned frame if the pool is full.
    pub fn fetch<'a>(&'a self, file: &FileManager, page_id: u32) -> Result<PageRef<'a>> {
        let mut frames = self.frames.lock();
        if let Some(&slot) = frames.map.get(&page_id) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            let frame = &mut frames.slots[slot];
            frame.pins += 1;
            frame.referenced = true;
            return Ok(PageRef {
                pool: self,
                slot,
                data: Arc::clone(&frame.data),
            });
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Read (and validate) while holding the pool lock: concurrent
        // fetchers of the same page must not race to duplicate frames.
        let data = Arc::new(file.read_page(page_id)?);
        let slot = if frames.slots.len() < self.capacity {
            frames.slots.push(Frame {
                page_id,
                data: Arc::clone(&data),
                pins: 1,
                referenced: true,
            });
            frames.slots.len() - 1
        } else {
            let slot = Self::clock_victim(&mut frames)?;
            let old = frames.slots[slot].page_id;
            frames.map.remove(&old);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            frames.slots[slot] = Frame {
                page_id,
                data: Arc::clone(&data),
                pins: 1,
                referenced: true,
            };
            slot
        };
        frames.map.insert(page_id, slot);
        Ok(PageRef {
            pool: self,
            slot,
            data,
        })
    }

    /// Clock (second-chance) sweep: skip pinned frames, clear the
    /// reference bit on the first pass, reclaim on the second.
    fn clock_victim(frames: &mut Frames) -> Result<usize> {
        let n = frames.slots.len();
        for _ in 0..2 * n {
            let i = frames.clock;
            frames.clock = (frames.clock + 1) % n;
            let frame = &mut frames.slots[i];
            if frame.pins > 0 {
                continue;
            }
            if frame.referenced {
                frame.referenced = false;
                continue;
            }
            return Ok(i);
        }
        Err(StorageError::PoolExhausted)
    }

    fn unpin(&self, slot: usize) {
        let mut frames = self.frames.lock();
        let frame = &mut frames.slots[slot];
        debug_assert!(frame.pins > 0, "unpin without pin");
        frame.pins -= 1;
    }

    /// Current traffic counters.
    pub fn stats(&self) -> PoolStats {
        let resident = self.frames.lock().map.len() as u64;
        PoolStats {
            capacity: self.capacity as u64,
            resident,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

/// A pinned page payload; the frame stays resident until this drops.
/// Dereferences to the payload bytes.
pub struct PageRef<'a> {
    pool: &'a BufferPool,
    slot: usize,
    data: Arc<PagePayload>,
}

impl std::ops::Deref for PageRef<'_> {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl Drop for PageRef<'_> {
    fn drop(&mut self) {
        self.pool.unpin(self.slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::encode_page;
    use std::io::Write;

    fn page_file(name: &str, pages: u32) -> (std::path::PathBuf, FileManager) {
        let mut path = std::env::temp_dir();
        path.push(format!("rox-storage-pool-{}-{name}", std::process::id()));
        let mut f = std::fs::File::create(&path).unwrap();
        for id in 0..pages {
            f.write_all(&encode_page(id, format!("page-{id}").as_bytes(), 64))
                .unwrap();
        }
        drop(f);
        let fm = FileManager::new(std::fs::File::open(&path).unwrap(), 64, pages);
        (path, fm)
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let (path, fm) = page_file("hits", 4);
        let pool = BufferPool::new(4);
        assert_eq!(&*pool.fetch(&fm, 1).unwrap(), b"page-1");
        assert_eq!(&*pool.fetch(&fm, 1).unwrap(), b"page-1");
        let s = pool.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (1, 1, 0));
        assert_eq!(s.resident, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn full_pool_evicts_unpinned_pages() {
        let (path, fm) = page_file("evict", 8);
        let pool = BufferPool::new(2);
        for id in 0..8 {
            assert_eq!(
                &*pool.fetch(&fm, id).unwrap(),
                format!("page-{id}").as_bytes()
            );
        }
        let s = pool.stats();
        assert_eq!(s.misses, 8);
        assert_eq!(s.evictions, 6);
        assert_eq!(s.resident, 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pinned_pages_survive_eviction_pressure() {
        let (path, fm) = page_file("pin", 8);
        let pool = BufferPool::new(2);
        let pinned = pool.fetch(&fm, 0).unwrap();
        for id in 1..8 {
            let _ = pool.fetch(&fm, id).unwrap();
        }
        // The pinned frame was never reclaimed.
        assert_eq!(&*pinned, b"page-0");
        let again = pool.fetch(&fm, 0).unwrap();
        assert_eq!(&*again, b"page-0");
        let s = pool.stats();
        assert_eq!(s.hits, 1); // the re-fetch of the pinned page
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn all_pinned_reports_exhaustion() {
        let (path, fm) = page_file("exhausted", 4);
        let pool = BufferPool::new(2);
        let _a = pool.fetch(&fm, 0).unwrap();
        let _b = pool.fetch(&fm, 1).unwrap();
        assert!(matches!(
            pool.fetch(&fm, 2),
            Err(StorageError::PoolExhausted)
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn clock_gives_second_chances() {
        let (path, fm) = page_file("clock", 4);
        let pool = BufferPool::new(2);
        let _ = pool.fetch(&fm, 0).unwrap();
        let _ = pool.fetch(&fm, 1).unwrap();
        // Touch page 0 again (sets its reference bit), then fault page 2:
        // the clock should spare recently-referenced 0 on the first sweep
        // only if 1's bit is already clear — after one full sweep both
        // bits clear and *some* unpinned frame goes. Either way page 0
        // still being resident or not, the ledger stays coherent.
        let _ = pool.fetch(&fm, 0).unwrap();
        let _ = pool.fetch(&fm, 2).unwrap();
        let s = pool.stats();
        assert_eq!(s.hits + s.misses, 4);
        assert_eq!(s.resident, 2);
        assert_eq!(s.evictions, 1);
        std::fs::remove_file(&path).ok();
    }
}
