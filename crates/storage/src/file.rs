//! The page file manager: positioned page reads over one snapshot file.
//!
//! The file is an array of `page_size`-byte pages (see [`crate::page`]).
//! Reads are positioned (`pread` on unix, so no seek state to serialize),
//! validate the page in place and hand back a [`PagePayload`] that derefs
//! to the checksummed payload without copying it out of the raw page.

use crate::error::{Result, StorageError};
use crate::page::{decode_page, PAGE_HEADER};
use parking_lot::Mutex;
use std::fs::File;
use std::io::Read;
use std::path::Path;

/// Retry `op` across transient I/O failures (`EINTR`, `EAGAIN`) with a
/// bounded exponential backoff instead of bubbling a hard error: a signal
/// landing mid-`pread` or a briefly saturated device should not poison a
/// query or a WAL append. Any other error — and a transient one that
/// persists past the retry budget — is returned to the caller.
pub fn retry_transient<T>(mut op: impl FnMut() -> std::io::Result<T>) -> std::io::Result<T> {
    use std::io::ErrorKind;
    const ATTEMPTS: u32 = 6;
    let mut backoff = std::time::Duration::from_micros(50);
    let mut last = None;
    for attempt in 0..ATTEMPTS {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if matches!(e.kind(), ErrorKind::Interrupted | ErrorKind::WouldBlock) => {
                last = Some(e);
                if attempt + 1 < ATTEMPTS {
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(std::time::Duration::from_millis(5));
                }
            }
            Err(e) => return Err(e),
        }
    }
    Err(last.expect("retry loop exits early without an error"))
}

/// Fsync the parent directory of `path`: a file's own fsync persists its
/// data, but the *directory entry* naming it lives in the parent's data
/// and can still be lost on power failure until the directory is synced.
/// No-op on platforms where directories cannot be opened as files.
pub fn sync_parent_dir(path: &Path) -> std::io::Result<()> {
    #[cfg(unix)]
    {
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            retry_transient(|| File::open(dir))?.sync_all()?;
        }
    }
    #[cfg(not(unix))]
    let _ = path;
    Ok(())
}

/// Read access to one snapshot page file.
pub struct FileManager {
    file: Mutex<File>,
    page_size: usize,
    page_count: u32,
}

impl FileManager {
    /// Wrap an open file whose page size is already known (parsed from the
    /// header page — see [`read_header_payload`]).
    pub fn new(file: File, page_size: usize, page_count: u32) -> Self {
        FileManager {
            file: Mutex::new(file),
            page_size,
            page_count,
        }
    }

    /// The page size this file was written with.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Payload capacity of one full page.
    pub fn payload_per_page(&self) -> usize {
        self.page_size - PAGE_HEADER
    }

    /// Total pages in the file, including the header page.
    pub fn page_count(&self) -> u32 {
        self.page_count
    }

    /// Read and validate page `page_id`, returning its payload.
    ///
    /// The returned [`PagePayload`] keeps the raw page and dereferences to
    /// the payload slice — validation never copies the payload out.
    pub fn read_page(&self, page_id: u32) -> Result<PagePayload> {
        if page_id >= self.page_count {
            return Err(StorageError::Format(format!(
                "page {page_id} beyond file end ({} pages)",
                self.page_count
            )));
        }
        let mut raw = vec![0u8; self.page_size];
        let offset = page_id as u64 * self.page_size as u64;
        {
            let file = self.file.lock();
            read_at(&file, &mut raw, offset)?;
        }
        let len = decode_page(page_id, &raw)?.len();
        Ok(PagePayload { raw, len })
    }

    /// Read and validate the `count` pages starting at `first` with one
    /// positioned read, returning their payloads in order. This is the
    /// readahead path: one `pread` per contiguous run instead of one per
    /// page.
    pub fn read_pages(&self, first: u32, count: u32) -> Result<Vec<PagePayload>> {
        if count == 0 {
            return Ok(Vec::new());
        }
        let end = first
            .checked_add(count)
            .filter(|&e| e <= self.page_count)
            .ok_or_else(|| {
                StorageError::Format(format!(
                    "pages {first}..{} beyond file end ({} pages)",
                    first as u64 + count as u64,
                    self.page_count
                ))
            })?;
        let mut raw = vec![0u8; self.page_size * count as usize];
        let offset = first as u64 * self.page_size as u64;
        {
            let file = self.file.lock();
            read_at(&file, &mut raw, offset)?;
        }
        (first..end)
            .map(|page_id| {
                let at = (page_id - first) as usize * self.page_size;
                let one = raw[at..at + self.page_size].to_vec();
                let len = decode_page(page_id, &one)?.len();
                Ok(PagePayload { raw: one, len })
            })
            .collect()
    }
}

#[cfg(unix)]
fn read_at(file: &File, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
    use std::os::unix::fs::FileExt;
    retry_transient(|| file.read_exact_at(buf, offset))
}

#[cfg(not(unix))]
fn read_at(mut file: &File, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
    use std::io::{Seek, SeekFrom};
    retry_transient(|| {
        file.seek(SeekFrom::Start(offset))?;
        file.read_exact(buf)
    })
}

/// A validated page: the raw on-disk bytes plus the payload length.
/// Dereferences to the payload slice.
pub struct PagePayload {
    raw: Vec<u8>,
    len: usize,
}

impl std::ops::Deref for PagePayload {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.raw[PAGE_HEADER..PAGE_HEADER + self.len]
    }
}

/// Read and validate the header page (page 0) of the file at `path`
/// *without knowing the page size yet*: the fixed 16-byte page header
/// carries the payload length, so the payload can be read and checksummed
/// first and the page size parsed out of it afterwards.
///
/// Returns the opened file and the header payload.
pub fn read_header_payload(path: &Path) -> Result<(File, Vec<u8>)> {
    let mut file = File::open(path)?;
    let mut head = [0u8; PAGE_HEADER];
    file.read_exact(&mut head)?;
    let payload_len = u32::from_le_bytes(head[8..12].try_into().unwrap()) as usize;
    // An absurd length means this is not a snapshot; bound the read before
    // trusting it.
    if payload_len > 1 << 20 {
        return Err(StorageError::Corrupt {
            page: 0,
            reason: format!("header payload length {payload_len} is implausible"),
        });
    }
    let mut raw = vec![0u8; PAGE_HEADER + payload_len];
    raw[..PAGE_HEADER].copy_from_slice(&head);
    file.read_exact(&mut raw[PAGE_HEADER..])?;
    let payload = decode_page(0, &raw)?.to_vec();
    Ok((file, payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::encode_page;
    use std::io::Write;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("rox-storage-file-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn reads_pages_back() {
        let path = temp_path("roundtrip");
        {
            let mut f = File::create(&path).unwrap();
            f.write_all(&encode_page(0, b"zero", 128)).unwrap();
            f.write_all(&encode_page(1, b"one", 128)).unwrap();
        }
        let fm = FileManager::new(File::open(&path).unwrap(), 128, 2);
        assert_eq!(&*fm.read_page(0).unwrap(), b"zero");
        assert_eq!(&*fm.read_page(1).unwrap(), b"one");
        assert!(fm.read_page(2).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bulk_reads_validate_every_page() {
        let path = temp_path("bulk");
        {
            let mut f = File::create(&path).unwrap();
            for (id, body) in [b"zero" as &[u8], b"one", b"two"].iter().enumerate() {
                f.write_all(&encode_page(id as u32, body, 128)).unwrap();
            }
        }
        let fm = FileManager::new(File::open(&path).unwrap(), 128, 3);
        let pages = fm.read_pages(1, 2).unwrap();
        assert_eq!(&*pages[0], b"one");
        assert_eq!(&*pages[1], b"two");
        assert!(fm.read_pages(2, 2).is_err());
        assert!(fm.read_pages(u32::MAX, 2).is_err());
        assert!(fm.read_pages(0, 0).unwrap().is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_page_reads_without_page_size() {
        let path = temp_path("header");
        {
            let mut f = File::create(&path).unwrap();
            f.write_all(&encode_page(0, b"header payload", 256))
                .unwrap();
        }
        let (_file, payload) = read_header_payload(&path).unwrap();
        assert_eq!(payload, b"header payload");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn transient_errors_retry_and_hard_errors_bubble() {
        use std::io::{Error, ErrorKind};
        // EINTR twice, then success: retried to completion.
        let mut left = 2;
        let out = retry_transient(|| {
            if left > 0 {
                left -= 1;
                Err(Error::from(ErrorKind::Interrupted))
            } else {
                Ok(42)
            }
        });
        assert_eq!(out.unwrap(), 42);

        // EAGAIN forever: bounded, the error eventually bubbles.
        let mut calls = 0;
        let out: std::io::Result<()> = retry_transient(|| {
            calls += 1;
            Err(Error::from(ErrorKind::WouldBlock))
        });
        assert_eq!(out.unwrap_err().kind(), ErrorKind::WouldBlock);
        assert_eq!(calls, 6, "retry budget must be bounded");

        // A hard error returns on the first attempt.
        let mut calls = 0;
        let out: std::io::Result<()> = retry_transient(|| {
            calls += 1;
            Err(Error::from(ErrorKind::NotFound))
        });
        assert_eq!(out.unwrap_err().kind(), ErrorKind::NotFound);
        assert_eq!(calls, 1);
    }

    #[test]
    fn corrupt_header_is_rejected() {
        let path = temp_path("corrupt-header");
        {
            let mut page = encode_page(0, b"header payload", 256);
            page[20] ^= 0xFF;
            let mut f = File::create(&path).unwrap();
            f.write_all(&page).unwrap();
        }
        assert!(read_header_payload(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
