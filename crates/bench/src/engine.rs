//! Engine-serving benchmarks: what the [`RoxEngine`] layer amortizes
//! (the `bench_engine` binary, which emits the machine-readable
//! `BENCH_engine.json` consumed by CI).
//!
//! Three measured units, all against one XMark catalog:
//!
//! 1. **Cold vs warm latency** — the same query served by a *fresh*
//!    engine (index build + base lists + sampling all inside the call),
//!    by a warm engine re-optimizing (`AlwaysOptimize`: caches hot,
//!    sampling still paid), and by a warm engine replaying its cached
//!    plan (`ReuseValidated`: no sampling at all). The warm/cold gap is
//!    the per-query setup the shared engine deletes from the serving
//!    path.
//! 2. **Multi-threaded QPS** — a shuffled mix of distinct query shapes,
//!    `rounds` repeats each, fanned out with [`RoxEngine::run_many`] at
//!    increasing worker counts against the *same* engine. Every output is
//!    checked against a fresh standalone reference run before any timing
//!    is reported.
//! 3. **Plan-cache hit rate** — engine counters after the QPS runs: all
//!    but each shape's first-touch optimization should replay.
//!
//! Wall-clock QPS scaling tracks the machine's core count (a single-core
//! container reports ~1× by construction); the correctness of >1 query
//! in flight per run is asserted regardless.

use crate::xmark_catalog;
use rox_core::{Parallelism, PlanReuse, RoxEngine, RoxOptions};
use rox_datagen::{xmark_query, XmarkConfig};
use rox_joingraph::JoinGraph;
use rox_ops::Relation;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of the engine benchmarks.
#[derive(Debug, Clone)]
pub struct EngineBenchConfig {
    /// XMark document shape.
    pub xmark: XmarkConfig,
    /// Distinct query shapes (Q1 variants with distinct range constants —
    /// distinct join-graph fingerprints, so each seeds its own plan).
    pub queries: usize,
    /// Sample size τ for optimizing runs.
    pub tau: usize,
    /// Timed repetitions per latency measurement (the minimum is
    /// reported).
    pub repeats: usize,
    /// Worker counts for the QPS measurement.
    pub threads: Vec<usize>,
    /// Repeats of the full query mix per QPS run (total jobs per run =
    /// `queries × rounds`).
    pub rounds: usize,
}

impl Default for EngineBenchConfig {
    fn default() -> Self {
        EngineBenchConfig {
            xmark: XmarkConfig {
                persons: 3000,
                items: 2500,
                auctions: 2500,
                ..XmarkConfig::default()
            },
            queries: 6,
            tau: 100,
            repeats: 3,
            threads: vec![2, 4],
            rounds: 8,
        }
    }
}

impl EngineBenchConfig {
    /// A seconds-scale configuration for CI smoke runs.
    pub fn smoke() -> Self {
        EngineBenchConfig {
            xmark: XmarkConfig {
                persons: 300,
                items: 250,
                auctions: 250,
                ..XmarkConfig::default()
            },
            queries: 3,
            tau: 64,
            repeats: 2,
            threads: vec![2, 4],
            rounds: 4,
        }
    }

    /// The benchmark's query shapes: Q1 with per-shape range constants.
    pub fn graphs(&self) -> Vec<JoinGraph> {
        (0..self.queries.max(1))
            .map(|i| {
                let threshold = 100.0 + 15.0 * i as f64;
                rox_joingraph::compile_query(&xmark_query("<", threshold)).unwrap()
            })
            .collect()
    }
}

/// One QPS measurement point.
#[derive(Debug, Clone)]
pub struct QpsPoint {
    /// Worker threads used.
    pub threads: usize,
    /// Jobs served in the run (`queries × rounds`).
    pub jobs: usize,
    /// Wall time of the whole batch.
    pub wall: Duration,
    /// `jobs / wall` in queries per second.
    pub qps: f64,
    /// Queries served per thread in this run (the >1-per-thread
    /// concurrency check).
    pub jobs_per_thread: f64,
}

/// Everything the `bench_engine` binary reports.
#[derive(Debug, Clone)]
pub struct EngineBenchResult {
    /// Cold latency: fresh engine, first query (index + base lists +
    /// sampling inside the call).
    pub cold: Duration,
    /// Warm engine, full re-optimization (`AlwaysOptimize`).
    pub warm_optimize: Duration,
    /// Warm engine, plan-cache replay (`ReuseValidated`).
    pub warm_replay: Duration,
    /// Per-thread-count QPS measurements.
    pub qps: Vec<QpsPoint>,
    /// Plan-cache hits across the serving phase.
    pub plan_hits: u64,
    /// Plan-cache misses (first-touch optimizations).
    pub plan_misses: u64,
    /// `plan_hits / (plan_hits + plan_misses)`.
    pub plan_hit_rate: f64,
    /// Document index builds over the whole serving phase (should equal
    /// the number of documents).
    pub index_builds: usize,
    /// Base lists built (should stay at the distinct vertex-shape count).
    pub base_list_builds: usize,
    /// Output rows of the first query shape (sanity anchor).
    pub anchor_rows: usize,
}

fn best_of(repeats: usize, mut f: impl FnMut() -> Duration) -> Duration {
    (0..repeats.max(1))
        .map(|_| f())
        .min()
        .expect("at least one repeat")
}

/// Run the engine benchmarks.
pub fn run(cfg: &EngineBenchConfig) -> EngineBenchResult {
    let catalog = xmark_catalog(&cfg.xmark);
    let graphs = cfg.graphs();
    let reuse = RoxOptions {
        tau: cfg.tau,
        plan_reuse: PlanReuse::ReuseValidated,
        ..Default::default()
    };
    let optimize = RoxOptions {
        plan_reuse: PlanReuse::AlwaysOptimize,
        ..reuse
    };

    // Reference outputs: fresh standalone run per shape, nothing shared.
    let reference: Vec<Relation> = graphs
        .iter()
        .map(|g| {
            rox_core::run_rox(Arc::clone(&catalog), g, optimize)
                .unwrap()
                .output
        })
        .collect();

    // ---- 1a. Cold latency: a fresh engine per repeat, first call pays
    // index construction, base lists, and sampling.
    let cold = best_of(cfg.repeats, || {
        let fresh = RoxEngine::new(Arc::clone(&catalog));
        let t = Instant::now();
        let run = fresh.run(&graphs[0], reuse).unwrap();
        let wall = t.elapsed();
        assert_eq!(run.output, reference[0], "cold run output diverged");
        wall
    });

    // The serving engine for everything below.
    let engine = RoxEngine::new(Arc::clone(&catalog));
    let first = engine.run(&graphs[0], reuse).unwrap();
    let anchor_rows = first.output.len();

    // ---- 1b. Warm latencies against the seeded engine.
    let warm_optimize = best_of(cfg.repeats, || {
        let t = Instant::now();
        let run = engine.run(&graphs[0], optimize).unwrap();
        let wall = t.elapsed();
        assert_eq!(run.output, reference[0], "warm optimize output diverged");
        wall
    });
    let warm_replay = best_of(cfg.repeats, || {
        let t = Instant::now();
        let run = engine.run(&graphs[0], reuse).unwrap();
        let wall = t.elapsed();
        assert!(run.plan_cache_hit, "warm replay missed the plan cache");
        assert_eq!(run.output, reference[0], "warm replay output diverged");
        wall
    });

    // ---- 2. Multi-threaded QPS over the full mix (plan cache allowed —
    // this measures the serving path, not the optimizer).
    let jobs: Vec<(&JoinGraph, RoxOptions)> = (0..cfg.rounds)
        .flat_map(|_| graphs.iter().map(|g| (g, reuse)))
        .collect();
    let mut qps = Vec::new();
    for &n in &cfg.threads {
        let wall = best_of(cfg.repeats, || {
            let t = Instant::now();
            let served = engine.run_many(&jobs, Parallelism::Threads(n));
            let wall = t.elapsed();
            for (i, run) in served.into_iter().enumerate() {
                let run = run.unwrap();
                assert_eq!(
                    run.output,
                    reference[i % graphs.len()],
                    "served job {i} diverged at {n} threads"
                );
            }
            wall
        });
        qps.push(QpsPoint {
            threads: n,
            jobs: jobs.len(),
            wall,
            qps: jobs.len() as f64 / wall.as_secs_f64().max(f64::EPSILON),
            jobs_per_thread: jobs.len() as f64 / n as f64,
        });
    }

    let stats = engine.stats();
    EngineBenchResult {
        cold,
        warm_optimize,
        warm_replay,
        qps,
        plan_hits: stats.plan_hits,
        plan_misses: stats.plan_misses,
        plan_hit_rate: stats.plan_hit_rate(),
        index_builds: stats.index_builds,
        base_list_builds: stats.base_list_builds,
        anchor_rows,
    }
}

/// Render the result as the `BENCH_engine.json` document (hand-rolled —
/// the workspace is dependency-free by policy).
pub fn to_json(cfg: &EngineBenchConfig, r: &EngineBenchResult) -> String {
    let qps_points: Vec<String> = r
        .qps
        .iter()
        .map(|p| {
            format!(
                "{{\"threads\": {}, \"jobs\": {}, \"wall_ms\": {:.2}, \"qps\": {:.1}, \"jobs_per_thread\": {:.1}}}",
                p.threads,
                p.jobs,
                p.wall.as_secs_f64() * 1e3,
                p.qps,
                p.jobs_per_thread
            )
        })
        .collect();
    format!(
        "{{\n  \"machine\": {},\n  \"config\": {{\"persons\": {}, \"items\": {}, \"auctions\": {}, \"queries\": {}, \"tau\": {}, \"repeats\": {}, \"rounds\": {}}},\n  \"latency\": {{\"cold_ms\": {:.2}, \"warm_optimize_ms\": {:.2}, \"warm_replay_ms\": {:.2}, \"warm_replay_over_cold\": {:.3}}},\n  \"plan_cache\": {{\"hits\": {}, \"misses\": {}, \"hit_rate\": {:.3}}},\n  \"engine\": {{\"index_builds\": {}, \"base_list_builds\": {}}},\n  \"qps\": [{}],\n  \"anchor_rows\": {}\n}}\n",
        crate::machine_json(),
        cfg.xmark.persons,
        cfg.xmark.items,
        cfg.xmark.auctions,
        cfg.queries,
        cfg.tau,
        cfg.repeats,
        cfg.rounds,
        r.cold.as_secs_f64() * 1e3,
        r.warm_optimize.as_secs_f64() * 1e3,
        r.warm_replay.as_secs_f64() * 1e3,
        r.warm_replay.as_secs_f64() / r.cold.as_secs_f64().max(f64::EPSILON),
        r.plan_hits,
        r.plan_misses,
        r.plan_hit_rate,
        r.index_builds,
        r.base_list_builds,
        qps_points.join(", "),
        r.anchor_rows,
    )
}

/// Render a human-readable summary table.
pub fn render(r: &EngineBenchResult) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    writeln!(
        out,
        "latency    cold {:>10.3?}  warm-optimize {:>10.3?}  warm-replay {:>10.3?}",
        r.cold, r.warm_optimize, r.warm_replay
    )
    .unwrap();
    writeln!(
        out,
        "plan cache {} hits / {} misses ({:.1}% hit rate); {} index builds, {} base lists",
        r.plan_hits,
        r.plan_misses,
        100.0 * r.plan_hit_rate,
        r.index_builds,
        r.base_list_builds
    )
    .unwrap();
    writeln!(
        out,
        "{:>8}  {:>6}  {:>12}  {:>10}",
        "threads", "jobs", "wall", "qps"
    )
    .unwrap();
    for p in &r.qps {
        writeln!(
            out,
            "{:>8}  {:>6}  {:>12.3?}  {:>10.1}",
            p.threads, p.jobs, p.wall, p.qps
        )
        .unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_is_consistent() {
        let cfg = EngineBenchConfig {
            xmark: XmarkConfig::tiny(),
            queries: 2,
            tau: 16,
            repeats: 1,
            threads: vec![2],
            rounds: 2,
        };
        let r = run(&cfg);
        // Each shape optimizes at least once; all repeats replay.
        assert!(r.plan_hits > 0, "serving phase never hit the plan cache");
        assert!(r.plan_hit_rate > 0.0 && r.plan_hit_rate <= 1.0);
        assert_eq!(r.qps.len(), 1);
        assert!(r.qps[0].jobs_per_thread > 1.0, ">1 query per thread");
        let json = to_json(&cfg, &r);
        assert!(json.contains("\"latency\""));
        assert!(json.contains("\"plan_cache\""));
        assert!(json.contains("\"qps\""));
        let table = render(&r);
        assert!(table.contains("plan cache"));
    }
}
