//! Typed value comparisons for selection predicates on text and attribute
//! nodes (the range-selection annotations of Join Graph vertices, Def. 1 of
//! the paper).
//!
//! XQuery general comparisons on untyped data compare numerically when both
//! operands look like numbers, else by string. The paper's workloads use
//! string equality (`$a1/text() = $a2/text()`, `@person = @id`) and numeric
//! ranges (`current/text() < 145`, `quantity = 1`), which is exactly the
//! set modelled here.

use std::fmt;

/// Comparison operator of a value predicate.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Apply the operator to an ordering of `lhs` versus `rhs`.
    #[inline]
    pub fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }

    /// The operator with its operands swapped (`a < b` ⇔ `b > a`).
    pub fn flipped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

/// A constant compared against a node's string value.
#[derive(Clone, PartialEq, Debug)]
pub enum Constant {
    /// String literal — compared by string (in)equality.
    Str(String),
    /// Numeric literal — the node value is cast to a double first.
    Num(f64),
}

impl fmt::Display for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constant::Str(s) => write!(f, "\"{s}\""),
            Constant::Num(n) => write!(f, "{n}"),
        }
    }
}

/// A selection predicate `value <op> constant`.
#[derive(Clone, PartialEq, Debug)]
pub struct ValuePredicate {
    /// The comparison operator.
    pub op: CmpOp,
    /// The right-hand constant.
    pub rhs: Constant,
}

impl ValuePredicate {
    /// `= "literal"` — the form the value index can answer with a hash
    /// lookup (the paper's released MonetDB supported hash-based string
    /// equality, §2.2).
    pub fn eq_str(s: impl Into<String>) -> Self {
        ValuePredicate {
            op: CmpOp::Eq,
            rhs: Constant::Str(s.into()),
        }
    }

    /// A numeric comparison predicate.
    pub fn num(op: CmpOp, n: f64) -> Self {
        ValuePredicate {
            op,
            rhs: Constant::Num(n),
        }
    }

    /// Is this a string-equality predicate (index-selectable via hash)?
    pub fn is_string_eq(&self) -> Option<&str> {
        match (&self.op, &self.rhs) {
            (CmpOp::Eq, Constant::Str(s)) => Some(s),
            _ => None,
        }
    }

    /// Evaluate the predicate against a raw string value.
    pub fn matches(&self, value: &str) -> bool {
        match &self.rhs {
            Constant::Str(s) => self.op.eval(value.cmp(s.as_str())),
            Constant::Num(n) => match parse_number(value) {
                Some(v) => self
                    .op
                    .eval(v.partial_cmp(n).unwrap_or(std::cmp::Ordering::Greater)),
                // Untyped values that do not cast to a number never satisfy
                // a numeric comparison.
                None => false,
            },
        }
    }
}

impl fmt::Display for ValuePredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.op, self.rhs)
    }
}

/// Parse an XML untyped value as a double (xs:double cast, lexically
/// trimmed). Returns `None` for non-numeric strings and NaN.
pub fn parse_number(value: &str) -> Option<f64> {
    let t = value.trim();
    if t.is_empty() {
        return None;
    }
    t.parse::<f64>().ok().filter(|v| !v.is_nan())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_equality() {
        let p = ValuePredicate::eq_str("Codd");
        assert!(p.matches("Codd"));
        assert!(!p.matches("codd"));
        assert_eq!(p.is_string_eq(), Some("Codd"));
    }

    #[test]
    fn numeric_ranges() {
        let p = ValuePredicate::num(CmpOp::Lt, 145.0);
        assert!(p.matches("144.5"));
        assert!(p.matches(" 12 "));
        assert!(!p.matches("145"));
        assert!(!p.matches("banana"));
    }

    #[test]
    fn numeric_equality_casts() {
        let p = ValuePredicate::num(CmpOp::Eq, 1.0);
        assert!(p.matches("1"));
        assert!(p.matches("1.0"));
        assert!(!p.matches("2"));
        assert!(!p.matches(""));
    }

    #[test]
    fn flipped_is_involutive_on_ordering() {
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            assert_eq!(op.flipped().flipped(), op);
        }
        assert_eq!(CmpOp::Lt.flipped(), CmpOp::Gt);
        assert_eq!(CmpOp::Le.flipped(), CmpOp::Ge);
    }

    #[test]
    fn parse_number_rejects_garbage() {
        assert_eq!(parse_number("12"), Some(12.0));
        assert_eq!(parse_number("-3.5e2"), Some(-350.0));
        assert_eq!(parse_number("NaN"), None);
        assert_eq!(parse_number("12x"), None);
        assert_eq!(parse_number(""), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(ValuePredicate::num(CmpOp::Ge, 2.0).to_string(), ">= 2");
        assert_eq!(ValuePredicate::eq_str("x").to_string(), "= \"x\"");
    }
}
