//! Serialization of shredded documents (and arbitrary subtrees) back to
//! XML text — the inverse of shredding, needed to emit query results and to
//! round-trip documents in tests.

use crate::doc::Document;
use crate::node::{NodeKind, Pre};

/// Escape character data for element content.
fn escape_text(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            _ => out.push(c),
        }
    }
}

/// Escape character data for a double-quoted attribute value.
fn escape_attr(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
}

/// Serialize the subtree rooted at `pre` (an element, or the document root)
/// into `out`.
pub fn serialize_subtree(doc: &Document, pre: Pre, out: &mut String) {
    match doc.kind(pre) {
        NodeKind::Document => {
            for child in doc.children(pre) {
                serialize_subtree(doc, child, out);
            }
        }
        NodeKind::Element => {
            let name = doc.name_str(pre);
            out.push('<');
            out.push_str(&name);
            for attr in doc.attributes(pre) {
                out.push(' ');
                out.push_str(&doc.name_str(attr));
                out.push_str("=\"");
                escape_attr(&doc.value_str(attr), out);
                out.push('"');
            }
            // Children excluding attributes.
            let kids: Vec<Pre> = doc.children(pre).collect();
            if kids.is_empty() {
                out.push_str("/>");
            } else {
                out.push('>');
                for child in kids {
                    serialize_subtree(doc, child, out);
                }
                out.push_str("</");
                out.push_str(&name);
                out.push('>');
            }
        }
        NodeKind::Text => escape_text(&doc.value_str(pre), out),
        NodeKind::Comment => {
            out.push_str("<!--");
            out.push_str(&doc.value_str(pre));
            out.push_str("-->");
        }
        NodeKind::ProcessingInstruction => {
            out.push_str("<?");
            out.push_str(&doc.name_str(pre));
            let data = doc.value_str(pre);
            if !data.is_empty() {
                out.push(' ');
                out.push_str(&data);
            }
            out.push_str("?>");
        }
        NodeKind::Attribute => {
            // A bare attribute serializes as name="value" (XQuery
            // serialization of attribute nodes outside an element is an
            // error; we choose the pragmatic debugging form).
            out.push_str(&doc.name_str(pre));
            out.push_str("=\"");
            escape_attr(&doc.value_str(pre), out);
            out.push('"');
        }
    }
}

/// Serialize a subtree into a fresh string.
pub fn serialize_subtree_string(doc: &Document, pre: Pre) -> String {
    let mut out = String::new();
    serialize_subtree(doc, pre, &mut out);
    out
}

/// Serialize a whole document.
pub fn serialize_document(doc: &Document) -> String {
    let mut out = String::new();
    serialize_subtree(doc, 0, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_document;

    #[test]
    fn roundtrip_simple() {
        let src = "<a x=\"1\"><b>t1</b><c><b>t2</b></c></a>";
        let d = parse_document("r.xml", src).unwrap();
        assert_eq!(serialize_document(&d), src);
    }

    #[test]
    fn roundtrip_is_fixpoint() {
        let src = "<a><b>hi &amp; bye</b><!--c--><?pi data?><e/></a>";
        let d1 = parse_document("r.xml", src).unwrap();
        let s1 = serialize_document(&d1);
        let d2 = parse_document("r.xml", &s1).unwrap();
        let s2 = serialize_document(&d2);
        assert_eq!(s1, s2);
    }

    #[test]
    fn escapes_special_characters() {
        let d = parse_document("e.xml", "<a t=\"&quot;&lt;\">&lt;&amp;&gt;</a>").unwrap();
        let s = serialize_document(&d);
        assert_eq!(s, "<a t=\"&quot;&lt;\">&lt;&amp;&gt;</a>");
    }

    #[test]
    fn empty_element_self_closes() {
        let d = parse_document("e.xml", "<a><b></b></a>").unwrap();
        assert_eq!(serialize_document(&d), "<a><b/></a>");
    }

    #[test]
    fn serialize_inner_subtree() {
        let d = parse_document("s.xml", "<a><b>x</b><c>y</c></a>").unwrap();
        let mut out = String::new();
        // pre 2 is <b>
        serialize_subtree(&d, 2, &mut out);
        assert_eq!(out, "<b>x</b>");
    }
}
