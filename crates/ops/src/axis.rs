//! XPath axes and node tests for the structural (staircase) joins.

use rox_xmldb::{NodeKind, Symbol};
use std::fmt;

/// The XPath axes supported by the staircase join (§2.2, Table 1), plus
/// the attribute axis which the Join Graphs of the paper draw as a `/ @x`
/// edge (Fig. 3).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Axis {
    /// `child::`
    Child,
    /// `descendant::`
    Descendant,
    /// `descendant-or-self::` (the `//` shorthand from the root)
    DescendantOrSelf,
    /// `parent::`
    Parent,
    /// `ancestor::`
    Ancestor,
    /// `ancestor-or-self::`
    AncestorOrSelf,
    /// `following::`
    Following,
    /// `preceding::`
    Preceding,
    /// `following-sibling::`
    FollowingSibling,
    /// `preceding-sibling::`
    PrecedingSibling,
    /// `self::`
    SelfAxis,
    /// `attribute::`
    Attribute,
}

impl Axis {
    /// The inverse axis: `s ∈ axis(c)` iff `c ∈ axis.inverse()(s)`.
    ///
    /// ROX uses this to execute a step edge in either direction — the
    /// direction drawn in the Join Graph "is only a representational
    /// issue" (§2.1).
    pub fn inverse(self) -> Axis {
        match self {
            Axis::Child => Axis::Parent,
            Axis::Parent => Axis::Child,
            Axis::Descendant => Axis::Ancestor,
            Axis::Ancestor => Axis::Descendant,
            Axis::DescendantOrSelf => Axis::AncestorOrSelf,
            Axis::AncestorOrSelf => Axis::DescendantOrSelf,
            Axis::Following => Axis::Preceding,
            Axis::Preceding => Axis::Following,
            Axis::FollowingSibling => Axis::PrecedingSibling,
            Axis::PrecedingSibling => Axis::FollowingSibling,
            Axis::SelfAxis => Axis::SelfAxis,
            // The owner element of an attribute is its parent.
            Axis::Attribute => Axis::Parent,
        }
    }

    /// Short label used in plan explanations (`/`, `//`, ...).
    pub fn label(self) -> &'static str {
        match self {
            Axis::Child => "/",
            Axis::Descendant => "//",
            Axis::DescendantOrSelf => "//self",
            Axis::Parent => "parent",
            Axis::Ancestor => "anc",
            Axis::AncestorOrSelf => "ancs",
            Axis::Following => "foll",
            Axis::Preceding => "prec",
            Axis::FollowingSibling => "folls",
            Axis::PrecedingSibling => "precs",
            Axis::SelfAxis => "self",
            Axis::Attribute => "/@",
        }
    }
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A node test: kind restriction plus optional name restriction, the `k`
/// in `D_k/axis` of the paper's staircase join definition.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct NodeTest {
    /// Required node kind, or `None` for `node()`.
    pub kind: Option<NodeKind>,
    /// Required qualified name (elements/attributes), or `None` for `*`.
    pub name: Option<Symbol>,
}

impl NodeTest {
    /// `node()` — matches everything.
    pub const ANY: NodeTest = NodeTest {
        kind: None,
        name: None,
    };

    /// An element with the given interned name.
    pub fn element(name: Symbol) -> Self {
        NodeTest {
            kind: Some(NodeKind::Element),
            name: Some(name),
        }
    }

    /// Any text node.
    pub fn text() -> Self {
        NodeTest {
            kind: Some(NodeKind::Text),
            name: None,
        }
    }

    /// An attribute with the given interned name.
    pub fn attribute(name: Symbol) -> Self {
        NodeTest {
            kind: Some(NodeKind::Attribute),
            name: Some(name),
        }
    }

    /// Does the node at `pre` of `doc` satisfy the test?
    #[inline]
    pub fn matches(&self, doc: &rox_xmldb::Document, pre: rox_xmldb::Pre) -> bool {
        if let Some(k) = self.kind {
            if doc.kind(pre) != k {
                return false;
            }
        }
        if let Some(n) = self.name {
            if doc.name(pre) != n {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rox_xmldb::parse_document;

    #[test]
    fn inverse_is_an_involution() {
        let axes = [
            Axis::Child,
            Axis::Descendant,
            Axis::DescendantOrSelf,
            Axis::Parent,
            Axis::Ancestor,
            Axis::AncestorOrSelf,
            Axis::Following,
            Axis::Preceding,
            Axis::FollowingSibling,
            Axis::PrecedingSibling,
            Axis::SelfAxis,
        ];
        for a in axes {
            assert_eq!(a.inverse().inverse(), a, "{a:?}");
        }
    }

    #[test]
    fn node_test_matching() {
        let d = parse_document("t.xml", r#"<a x="1"><b>t</b></a>"#).unwrap();
        let b = d.interner().get("b").unwrap();
        let x = d.interner().get("x").unwrap();
        assert!(NodeTest::element(b).matches(&d, 3));
        assert!(!NodeTest::element(b).matches(&d, 1));
        assert!(NodeTest::attribute(x).matches(&d, 2));
        assert!(NodeTest::text().matches(&d, 4));
        assert!(NodeTest::ANY.matches(&d, 0));
    }
}
