//! Algebraic property tests for [`Relation`]: compose/expand laws,
//! distinct/sort idempotence, and tail invariants.

use proptest::prelude::*;
use rox_ops::{Cost, Relation, Tail};
use rox_xmldb::catalog::DocId;
use rox_xmldb::NodeId;

fn n(pre: u32) -> NodeId {
    NodeId::new(DocId(0), pre)
}

fn single_rel(var: u32) -> impl Strategy<Value = Relation> {
    prop::collection::vec(0u32..12, 0..20)
        .prop_map(move |pres| Relation::single(var, pres.into_iter().map(n).collect()))
}

fn pairs_strategy() -> impl Strategy<Value = Vec<(NodeId, NodeId)>> {
    prop::collection::vec((0u32..12, 0u32..12), 0..25)
        .prop_map(|ps| ps.into_iter().map(|(a, b)| (n(a), n(b))).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn compose_cardinality_formula(left in single_rel(1), right in single_rel(2), pairs in pairs_strategy()) {
        let joined = Relation::compose(&left, 1, &right, 2, &pairs);
        // |join| = Σ over pairs of (left multiplicity × right multiplicity).
        let mult = |r: &Relation, var: u32, node: NodeId| {
            r.col(var).iter().filter(|&&x| x == node).count()
        };
        let expected: usize = pairs
            .iter()
            .map(|&(a, b)| mult(&left, 1, a) * mult(&right, 2, b))
            .sum();
        prop_assert_eq!(joined.len(), expected);
    }

    #[test]
    fn compose_is_symmetric_up_to_schema(left in single_rel(1), right in single_rel(2), pairs in pairs_strategy()) {
        let ab = Relation::compose(&left, 1, &right, 2, &pairs);
        let flipped: Vec<(NodeId, NodeId)> = pairs.iter().map(|&(a, b)| (b, a)).collect();
        let ba = Relation::compose(&right, 2, &left, 1, &flipped);
        prop_assert_eq!(ab.len(), ba.len());
        // Same multiset of (var1, var2) bindings.
        let mut x: Vec<(NodeId, NodeId)> =
            ab.col(1).iter().zip(ab.col(2)).map(|(&a, &b)| (a, b)).collect();
        let mut y: Vec<(NodeId, NodeId)> =
            ba.col(1).iter().zip(ba.col(2)).map(|(&a, &b)| (a, b)).collect();
        x.sort_unstable();
        y.sort_unstable();
        prop_assert_eq!(x, y);
    }

    #[test]
    fn distinct_is_idempotent(rel in single_rel(1)) {
        let mut once = rel.clone();
        once.distinct();
        let mut twice = once.clone();
        twice.distinct();
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn sort_is_idempotent_and_stable_cardinality(rel in single_rel(1)) {
        let mut s1 = rel.clone();
        s1.sort_by(&[1]);
        prop_assert_eq!(s1.len(), rel.len());
        let mut s2 = s1.clone();
        s2.sort_by(&[1]);
        prop_assert_eq!(s1, s2);
    }

    #[test]
    fn tail_output_is_sorted_and_distinct(rel in single_rel(1)) {
        let tail = Tail { dedup_vars: vec![1], sort_vars: vec![1], output_vars: vec![1] };
        let out = tail.apply(&rel, &mut Cost::new());
        let col = out.col(1);
        prop_assert!(col.windows(2).all(|w| w[0] < w[1]), "strictly increasing after dedup");
        // Same distinct node set as the input.
        prop_assert_eq!(col.to_vec(), rel.distinct_nodes(1));
    }

    #[test]
    fn expand_preserves_left_bindings(rel in single_rel(1), raw in prop::collection::vec((0u32..20, 0u32..12), 0..20)) {
        let pairs: Vec<(u32, NodeId)> = raw
            .into_iter()
            .filter(|(row, _)| (*row as usize) < rel.len())
            .map(|(row, node)| (row, n(node)))
            .collect();
        let ex = rel.expand(&pairs, 2);
        prop_assert_eq!(ex.len(), pairs.len());
        for (i, &(row, node)) in pairs.iter().enumerate() {
            prop_assert_eq!(ex.col(1)[i], rel.col(1)[row as usize]);
            prop_assert_eq!(ex.col(2)[i], node);
        }
    }
}
