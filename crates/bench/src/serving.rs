//! Open-loop tail-latency serving benchmark (the `bench_serving` binary,
//! which emits the machine-readable `BENCH_serving.json`).
//!
//! A single dispatcher thread fires queries at a configured **arrival
//! rate** (exponential inter-arrival gaps — a Poisson process) against one
//! shared [`RoxEngine`], picking each query's shape from a **Zipf**
//! distribution over the shape set, and never waits for completions:
//! submissions go through the non-blocking [`RoxEngine::try_submit`]
//! admission path and come back as [`EngineTicket`]s that are drained
//! after the arrival window closes. Because the arrival clock never stops,
//! queueing delay shows up in the measured latency instead of silently
//! throttling the load — the *coordinated-omission*-free setup closed-loop
//! harnesses (like `bench_engine`'s QPS loop) cannot provide.
//!
//! Per-job latency is `finished_at − submitted_at`, where `finished_at` is
//! stamped by the worker the moment the query completes (see
//! [`TicketOutcome`](rox_core::TicketOutcome)) — collection lag in the dispatcher does not inflate
//! the tail. Reported per scenario: p50/p90/p99/p999/mean/max latency,
//! offered vs achieved QPS, admission-queue depth (sampled at every
//! arrival), and the rejection rate produced by the bounded admission
//! queue ([`RoxOptions::max_queued`]).
//!
//! Two committed scenarios: **steady** (arrival rate below the engine's
//! capacity; queue stays shallow, rejections at zero) and **overload**
//! (arrival rate above capacity with a small admission bound; the queue
//! saturates and the engine sheds load with
//! [`ServeError::Overloaded`] instead of buffering unboundedly).

use crate::xmark_catalog;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rox_core::{EngineTicket, PlanReuse, RoxEngine, RoxOptions, ServeError};
use rox_datagen::{xmark_query, XmarkConfig};
use rox_joingraph::JoinGraph;
use rox_ops::Relation;
use rox_par::{Parallelism, WorkerPool};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Workload shared by every scenario of one `bench_serving` run.
#[derive(Debug, Clone)]
pub struct ServingBenchConfig {
    /// XMark document shape.
    pub xmark: XmarkConfig,
    /// Distinct query shapes (Q1 variants, as in `bench_engine`).
    pub queries: usize,
    /// Sample size τ for the plan-seeding runs.
    pub tau: usize,
    /// Zipf skew `s` over the shape ranks (weight of rank `k` is
    /// `1/k^s`); `1.1` gives the classic hot-head/long-tail mix.
    pub zipf_s: f64,
    /// Worker threads in the engine's pool.
    pub workers: usize,
    /// RNG seed for arrivals and shape picks.
    pub seed: u64,
}

impl Default for ServingBenchConfig {
    fn default() -> Self {
        ServingBenchConfig {
            xmark: XmarkConfig {
                persons: 3000,
                items: 2500,
                auctions: 2500,
                ..XmarkConfig::default()
            },
            queries: 6,
            tau: 100,
            zipf_s: 1.1,
            workers: Parallelism::Auto.threads().max(2),
            seed: 42,
        }
    }
}

impl ServingBenchConfig {
    /// A sub-second configuration for CI smoke runs.
    pub fn smoke() -> Self {
        ServingBenchConfig {
            xmark: XmarkConfig {
                persons: 300,
                items: 250,
                auctions: 250,
                ..XmarkConfig::default()
            },
            queries: 3,
            tau: 64,
            ..Default::default()
        }
    }

    /// The query shapes — same Q1-variant family as `bench_engine`.
    pub fn graphs(&self) -> Vec<JoinGraph> {
        (0..self.queries.max(1))
            .map(|i| {
                let threshold = 100.0 + 15.0 * i as f64;
                rox_joingraph::compile_query(&xmark_query("<", threshold)).unwrap()
            })
            .collect()
    }
}

/// One traffic pattern fired at the engine.
#[derive(Debug, Clone)]
pub struct ServingScenario {
    /// Scenario label (`steady`, `overload`, ...).
    pub name: &'static str,
    /// Open-loop arrival rate in queries per second.
    pub arrival_qps: f64,
    /// Length of the arrival window.
    pub duration: Duration,
    /// Admission-queue bound handed to [`RoxOptions::max_queued`].
    pub max_queued: Option<usize>,
}

impl ServingScenario {
    /// Arrivals comfortably below a single warm replay stream's capacity.
    pub fn steady(smoke: bool) -> Self {
        ServingScenario {
            name: "steady",
            arrival_qps: 100.0,
            duration: Duration::from_millis(if smoke { 400 } else { 3000 }),
            max_queued: Some(512),
        }
    }

    /// Arrivals well above capacity behind a small admission bound — the
    /// queue saturates and load is shed via `Overloaded`.
    pub fn overload(smoke: bool) -> Self {
        ServingScenario {
            name: "overload",
            arrival_qps: 900.0,
            duration: Duration::from_millis(if smoke { 400 } else { 2000 }),
            // The smoke document is small enough that a queue of 32 never
            // fills; a tighter bound keeps the rejection path exercised.
            max_queued: Some(if smoke { 4 } else { 32 }),
        }
    }
}

/// Latency distribution of the served jobs in one scenario.
#[derive(Debug, Clone, Copy)]
pub struct LatencyStats {
    /// Median.
    pub p50: Duration,
    /// 90th percentile.
    pub p90: Duration,
    /// 99th percentile.
    pub p99: Duration,
    /// 99.9th percentile.
    pub p999: Duration,
    /// Arithmetic mean.
    pub mean: Duration,
    /// Worst observed.
    pub max: Duration,
}

impl LatencyStats {
    fn from_sorted(sorted: &[Duration]) -> Self {
        let pick = |q: f64| -> Duration {
            if sorted.is_empty() {
                return Duration::ZERO;
            }
            let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
            sorted[idx.min(sorted.len() - 1)]
        };
        let mean = if sorted.is_empty() {
            Duration::ZERO
        } else {
            sorted.iter().sum::<Duration>() / sorted.len() as u32
        };
        LatencyStats {
            p50: pick(0.50),
            p90: pick(0.90),
            p99: pick(0.99),
            p999: pick(0.999),
            mean,
            max: sorted.last().copied().unwrap_or(Duration::ZERO),
        }
    }
}

/// Everything measured for one scenario.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// The scenario that produced this.
    pub scenario: ServingScenario,
    /// Jobs offered by the generator (admitted or not).
    pub submitted: usize,
    /// Jobs that completed (all outputs verified against the reference).
    pub served: usize,
    /// Jobs rejected at admission (`Overloaded`).
    pub rejected: usize,
    /// Admitted jobs that never completed (should stay 0).
    pub aborted: usize,
    /// `rejected / submitted`.
    pub rejection_rate: f64,
    /// `submitted / arrival-window` — the load the generator actually
    /// offered (sleep granularity can make it dip below the target).
    pub offered_qps: f64,
    /// `served / total wall` including the drain of in-flight tickets.
    pub achieved_qps: f64,
    /// Latency distribution over served jobs (submit → worker finish).
    pub latency: LatencyStats,
    /// Mean admission-queue depth, sampled at every arrival.
    pub queue_depth_mean: f64,
    /// Deepest sampled admission queue.
    pub queue_depth_max: usize,
}

/// Result of a full `bench_serving` run.
#[derive(Debug, Clone)]
pub struct ServingBenchResult {
    /// Per-scenario measurements, in run order.
    pub scenarios: Vec<ScenarioResult>,
}

/// Draw a shape index from a Zipf distribution over `0..shapes` (rank
/// `k+1` has weight `1/(k+1)^s`) by inverting the CDF.
fn zipf_pick(rng: &mut StdRng, cdf: &[f64]) -> usize {
    let u: f64 = rng.random::<f64>() * cdf.last().copied().unwrap_or(1.0);
    cdf.iter().position(|&c| u < c).unwrap_or(cdf.len() - 1)
}

fn zipf_cdf(shapes: usize, s: f64) -> Vec<f64> {
    let mut acc = 0.0;
    (0..shapes.max(1))
        .map(|k| {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            acc
        })
        .collect()
}

/// Fire one scenario at a freshly seeded engine and collect its metrics.
pub fn run_scenario(cfg: &ServingBenchConfig, scenario: &ServingScenario) -> ScenarioResult {
    let catalog = xmark_catalog(&cfg.xmark);
    let graphs = cfg.graphs();
    let engine = Arc::new(RoxEngine::with_workers(
        catalog,
        Arc::new(WorkerPool::new(cfg.workers.max(1))),
    ));
    let seed_options = RoxOptions {
        tau: cfg.tau,
        plan_reuse: PlanReuse::ReuseValidated,
        ..Default::default()
    };
    let serve_options = RoxOptions {
        max_queued: scenario.max_queued,
        ..seed_options
    };

    // Warmup outside the measured window: seed indexes, base lists, and
    // one validated plan per shape, and keep the reference outputs.
    let reference: Vec<Relation> = graphs
        .iter()
        .map(|g| engine.run(g, seed_options).unwrap().output)
        .collect();

    let cdf = zipf_cdf(graphs.len(), cfg.zipf_s);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut inflight: Vec<(Instant, usize, EngineTicket)> = Vec::new();
    let mut rejected = 0usize;
    let mut submitted = 0usize;
    let mut depth_sum = 0u64;
    let mut depth_max = 0usize;

    // Open loop: arrivals follow the exponential clock no matter how the
    // engine keeps up; the dispatcher never blocks on a completion.
    let start = Instant::now();
    let mut next_at = Duration::ZERO;
    loop {
        let now = start.elapsed();
        if now >= scenario.duration {
            break;
        }
        if next_at > now {
            std::thread::sleep(next_at - now);
        }
        let shape = zipf_pick(&mut rng, &cdf);
        submitted += 1;
        let submitted_at = Instant::now();
        match engine.try_submit(&graphs[shape], serve_options) {
            Ok(ticket) => inflight.push((submitted_at, shape, ticket)),
            Err(ServeError::Overloaded { .. }) => rejected += 1,
            Err(e) => panic!("unexpected submit error: {e}"),
        }
        let depth = engine.queue_depth();
        depth_sum += depth as u64;
        depth_max = depth_max.max(depth);
        // Poisson arrivals: exponential inter-arrival gap 1/λ · −ln(1−u).
        let u: f64 = rng.random();
        next_at += Duration::from_secs_f64((-(1.0 - u).ln()) / scenario.arrival_qps);
    }
    let arrival_window = start.elapsed();

    // Drain: latency is worker-side finish minus submit, so collecting
    // tickets in submission order here cannot inflate the tail.
    let mut latencies = Vec::with_capacity(inflight.len());
    let mut aborted = 0usize;
    for (submitted_at, shape, ticket) in inflight {
        let outcome = ticket.wait();
        match outcome.result {
            Ok(run) => {
                assert_eq!(run.output, reference[shape], "served output diverged");
                latencies.push(outcome.finished_at.duration_since(submitted_at));
            }
            Err(ServeError::Aborted) => aborted += 1,
            Err(e) => panic!("serving failed: {e}"),
        }
    }
    let total_wall = start.elapsed();
    latencies.sort_unstable();

    let served = latencies.len();
    let stats = engine.stats();
    assert_eq!(stats.queue_depth, 0, "queue must be drained");
    assert_eq!(
        stats.jobs_submitted,
        stats.jobs_served + stats.jobs_rejected + stats.jobs_aborted,
        "serving counters must reconcile: {stats:?}"
    );

    ScenarioResult {
        scenario: scenario.clone(),
        submitted,
        served,
        rejected,
        aborted,
        rejection_rate: rejected as f64 / (submitted as f64).max(1.0),
        offered_qps: submitted as f64 / arrival_window.as_secs_f64().max(f64::EPSILON),
        achieved_qps: served as f64 / total_wall.as_secs_f64().max(f64::EPSILON),
        latency: LatencyStats::from_sorted(&latencies),
        queue_depth_mean: depth_sum as f64 / (submitted as f64).max(1.0),
        queue_depth_max: depth_max,
    }
}

/// Run every scenario in order.
pub fn run(cfg: &ServingBenchConfig, scenarios: &[ServingScenario]) -> ServingBenchResult {
    ServingBenchResult {
        scenarios: scenarios.iter().map(|s| run_scenario(cfg, s)).collect(),
    }
}

/// Render the result as the `BENCH_serving.json` document (hand-rolled —
/// the workspace is dependency-free by policy).
pub fn to_json(cfg: &ServingBenchConfig, r: &ServingBenchResult) -> String {
    let ms = |d: Duration| d.as_secs_f64() * 1e3;
    let scenarios: Vec<String> = r
        .scenarios
        .iter()
        .map(|s| {
            format!(
                concat!(
                    "    {{\"name\": \"{}\", \"arrival_qps\": {:.0}, \"duration_ms\": {}, ",
                    "\"max_queued\": {}, \"submitted\": {}, \"served\": {}, \"rejected\": {}, ",
                    "\"aborted\": {}, \"rejection_rate\": {:.3}, \"offered_qps\": {:.1}, ",
                    "\"achieved_qps\": {:.1}, \"latency_ms\": {{\"p50\": {:.2}, \"p90\": {:.2}, ",
                    "\"p99\": {:.2}, \"p999\": {:.2}, \"mean\": {:.2}, \"max\": {:.2}}}, ",
                    "\"queue_depth\": {{\"mean\": {:.1}, \"max\": {}}}}}"
                ),
                s.scenario.name,
                s.scenario.arrival_qps,
                s.scenario.duration.as_millis(),
                s.scenario
                    .max_queued
                    .map_or("null".to_string(), |m| m.to_string()),
                s.submitted,
                s.served,
                s.rejected,
                s.aborted,
                s.rejection_rate,
                s.offered_qps,
                s.achieved_qps,
                ms(s.latency.p50),
                ms(s.latency.p90),
                ms(s.latency.p99),
                ms(s.latency.p999),
                ms(s.latency.mean),
                ms(s.latency.max),
                s.queue_depth_mean,
                s.queue_depth_max,
            )
        })
        .collect();
    format!(
        "{{\n  \"machine\": {},\n  \"config\": {{\"persons\": {}, \"items\": {}, \"auctions\": {}, \"queries\": {}, \"tau\": {}, \"zipf_s\": {:.2}, \"workers\": {}, \"seed\": {}}},\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        crate::machine_json(),
        cfg.xmark.persons,
        cfg.xmark.items,
        cfg.xmark.auctions,
        cfg.queries,
        cfg.tau,
        cfg.zipf_s,
        cfg.workers,
        cfg.seed,
        scenarios.join(",\n"),
    )
}

/// Render a human-readable summary table.
pub fn render(r: &ServingBenchResult) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    writeln!(
        out,
        "{:>9}  {:>8}  {:>7}  {:>7}  {:>6}  {:>9}  {:>9}  {:>9}  {:>9}  {:>7}",
        "scenario", "offered", "served", "reject", "q-max", "p50", "p99", "p999", "max", "qps"
    )
    .unwrap();
    for s in &r.scenarios {
        writeln!(
            out,
            "{:>9}  {:>8.1}  {:>7}  {:>7}  {:>6}  {:>9.3?}  {:>9.3?}  {:>9.3?}  {:>9.3?}  {:>7.1}",
            s.scenario.name,
            s.offered_qps,
            s.served,
            s.rejected,
            s.queue_depth_max,
            s.latency.p50,
            s.latency.p99,
            s.latency.p999,
            s.latency.max,
            s.achieved_qps,
        )
        .unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_cdf_is_monotone_and_skewed() {
        let cdf = zipf_cdf(6, 1.1);
        assert_eq!(cdf.len(), 6);
        assert!(cdf.windows(2).all(|w| w[0] < w[1]));
        // Rank 1 carries the largest single mass.
        assert!(cdf[0] > cdf[1] - cdf[0]);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 6];
        for _ in 0..4000 {
            counts[zipf_pick(&mut rng, &cdf)] += 1;
        }
        assert!(counts[0] > counts[5], "head rank must dominate the tail");
    }

    #[test]
    fn smoke_scenarios_reconcile() {
        let cfg = ServingBenchConfig {
            xmark: XmarkConfig::tiny(),
            queries: 2,
            tau: 16,
            workers: 2,
            ..ServingBenchConfig::smoke()
        };
        let steady = ServingScenario {
            name: "steady",
            arrival_qps: 50.0,
            duration: Duration::from_millis(200),
            max_queued: Some(64),
        };
        let overload = ServingScenario {
            name: "overload",
            arrival_qps: 2000.0,
            duration: Duration::from_millis(200),
            max_queued: Some(4),
        };
        let r = run(&cfg, &[steady, overload]);
        assert_eq!(r.scenarios.len(), 2);
        for s in &r.scenarios {
            assert_eq!(s.submitted, s.served + s.rejected + s.aborted);
            assert!(s.served > 0, "{}: nothing served", s.scenario.name);
            assert!(s.latency.p50 <= s.latency.p99 && s.latency.p99 <= s.latency.max);
        }
        // 2000 QPS of arrivals against a tiny bound must shed load.
        assert!(
            r.scenarios[1].rejected > 0,
            "overload scenario never rejected"
        );
        let json = to_json(&cfg, &r);
        assert!(json.contains("\"machine\""));
        assert!(json.contains("\"p999\""));
        assert!(json.contains("\"rejection_rate\""));
        let table = render(&r);
        assert!(table.contains("overload"));
    }
}
