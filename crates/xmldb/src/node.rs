//! Node identifiers and node kinds for the shredded XML store.

use crate::catalog::DocId;
use std::fmt;

/// Preorder rank of a node within its document — the per-document node id.
pub type Pre = u32;

/// A global node identifier: document plus preorder rank.
///
/// The derived lexicographic `Ord` (doc major, pre minor) is exactly
/// document order for multi-document sequences, which the staircase-join
/// and tail operators rely on.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId {
    /// The owning document.
    pub doc: DocId,
    /// Preorder rank within the document.
    pub pre: Pre,
}

impl NodeId {
    /// Construct a node id.
    #[inline]
    pub fn new(doc: DocId, pre: Pre) -> Self {
        NodeId { doc, pre }
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.pre, self.doc.0)
    }
}

/// The node kinds of the XQuery data model that the store represents.
///
/// These mirror the kind tests `k` of the staircase join definition in the
/// paper (§2.2): `k ∈ {*, doc, elem, text, attr, comment, pi}`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum NodeKind {
    /// The document root node (pre = 0, level = 0).
    Document = 0,
    /// An element node; `name` holds the interned qualified name.
    Element = 1,
    /// A text node; `value` holds the interned character data.
    Text = 2,
    /// An attribute node; `name` is the attribute qname, `value` its value.
    Attribute = 3,
    /// A comment node; `value` holds the comment text.
    Comment = 4,
    /// A processing instruction; `name` is the target, `value` the data.
    ProcessingInstruction = 5,
}

impl NodeKind {
    /// All concrete node kinds, in tag order.
    pub const ALL: [NodeKind; 6] = [
        NodeKind::Document,
        NodeKind::Element,
        NodeKind::Text,
        NodeKind::Attribute,
        NodeKind::Comment,
        NodeKind::ProcessingInstruction,
    ];
}

/// A kind test as used in XPath steps: either any kind (`node()`) or a
/// specific [`NodeKind`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum KindTest {
    /// `node()` — matches every node kind.
    #[default]
    Any,
    /// Matches one specific kind.
    Is(NodeKind),
}

impl KindTest {
    /// Does `kind` satisfy this test?
    #[inline]
    pub fn matches(self, kind: NodeKind) -> bool {
        match self {
            KindTest::Any => true,
            KindTest::Is(k) => k == kind,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_orders_by_doc_then_pre() {
        let a = NodeId::new(DocId(0), 5);
        let b = NodeId::new(DocId(0), 9);
        let c = NodeId::new(DocId(1), 0);
        assert!(a < b);
        assert!(b < c);
    }

    #[test]
    fn kind_test_any_matches_all() {
        for k in NodeKind::ALL {
            assert!(KindTest::Any.matches(k));
        }
    }

    #[test]
    fn kind_test_is_matches_exactly() {
        let t = KindTest::Is(NodeKind::Text);
        assert!(t.matches(NodeKind::Text));
        assert!(!t.matches(NodeKind::Element));
        assert!(!t.matches(NodeKind::Attribute));
    }
}
