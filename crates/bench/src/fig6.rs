//! Figure 6: elapsed time of ROX versus four plan classes over many
//! 4-document combinations, clustered by area distribution (2:2, 3:1,
//! 4:0) and ordered by the correlation measure C.
//!
//! Plan classes per combination (§4.3):
//! * **largest** — the join order with the largest cumulative intermediate
//!   size, at its *slowest* canonical placement (max{SJ, S_J, JS});
//! * **classical** — the compile-time baseline's order, best placement;
//! * **ROX join-order** — ROX's equi-join order with canonical (not
//!   adaptive) step placement, best placement;
//! * **smallest** — the order with the smallest cumulative intermediates,
//!   best placement;
//!
//! plus **ROX full** (incl. sampling) and **ROX pure plan** (replay of the
//! executed order without sampling).
//!
//! All values are normalized to the fastest enumerated plan. Wall-clock
//! and the deterministic work counter are both reported; the work counter
//! is what the assertions in tests use (stable under CI noise).

use crate::setup::{dblp_catalog, extract_join_order, order_signature, DblpSetup};
use rand::prelude::*;
use rand::rngs::StdRng;
use rox_core::{
    analyze_star, classical_join_order, enumerate_join_orders, plan_edges, run_plan_with_env,
    run_rox_with_env, Placement, RoxOptions,
};
use rox_datagen::{correlation, dblp_query, grouped_combinations};

/// Configuration.
#[derive(Debug, Clone)]
pub struct Fig6Config {
    /// Replication scale.
    pub scale: usize,
    /// Document size factor.
    pub size_factor: f64,
    /// Combinations sampled per group (0 = all).
    pub per_group: usize,
    /// ROX sample size τ.
    pub tau: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for Fig6Config {
    fn default() -> Self {
        Fig6Config {
            scale: 1,
            size_factor: 0.05,
            per_group: 8,
            tau: 100,
            seed: 13,
        }
    }
}

/// Result for one document combination.
#[derive(Debug, Clone)]
pub struct ComboResult {
    /// Venue indices.
    pub combo: [usize; 4],
    /// Area-distribution group.
    pub group: &'static str,
    /// Correlation measure C.
    pub correlation: f64,
    /// Normalized work of the slowest placement of the worst join order.
    pub largest: f64,
    /// Normalized work of the classical baseline (best placement).
    pub classical: f64,
    /// Normalized work of ROX's join order under canonical placements.
    pub rox_order: f64,
    /// Normalized work of the best join order (best placement).
    pub smallest: f64,
    /// Normalized work of the full ROX run (incl. sampling).
    pub rox_full: f64,
    /// Normalized work of the replayed ROX plan (excl. sampling).
    pub rox_pure: f64,
    /// Wall-clock variants of the same ratios (noisier).
    pub wall: WallRatios,
    /// Cumulative-intermediate-join-rows ratios (Fig. 5's metric, the
    /// purest view of join-order quality): the classical order normalized
    /// by the best order's cumulative rows.
    pub classical_join_rows: f64,
    /// ROX's order, same normalization.
    pub rox_join_rows: f64,
    /// Worst enumerated order, same normalization.
    pub largest_join_rows: f64,
    /// Result cardinality (combinations with empty results are flagged).
    pub result_rows: usize,
}

/// Wall-clock normalized ratios.
#[derive(Debug, Clone, Default)]
pub struct WallRatios {
    /// Worst order at worst placement.
    pub largest: f64,
    /// Classical baseline.
    pub classical: f64,
    /// ROX order, canonical placements.
    pub rox_order: f64,
    /// Best enumerated plan is 1.0 by construction.
    pub smallest: f64,
    /// Full ROX run.
    pub rox_full: f64,
    /// Replay of ROX's plan.
    pub rox_pure: f64,
}

/// Measure a single combination against an existing corpus.
pub fn measure_combo(setup: &DblpSetup, combo: [usize; 4], tau: usize, seed: u64) -> ComboResult {
    let group = rox_datagen::group_of(&combo);
    let graph = rox_joingraph::compile_query(&dblp_query(&combo)).unwrap();
    let star = analyze_star(&graph).expect("star query");
    let env = setup.engine.session(&graph).unwrap();
    let docs: Vec<_> = combo.iter().map(|&i| setup.corpus.docs[i]).collect();
    let corr = correlation(&setup.catalog, &docs);

    // All 18 orders × 3 placements.
    struct Run {
        order_idx: usize,
        cost: u64,
        wall: f64,
        cumulative: u64,
    }
    let orders = enumerate_join_orders(4);
    let mut runs: Vec<Run> = Vec::with_capacity(orders.len() * 3);
    for (oi, order) in orders.iter().enumerate() {
        for placement in Placement::ALL {
            let edges = plan_edges(&graph, &star, order, placement);
            let r = run_plan_with_env(&env, &graph, &edges).unwrap();
            runs.push(Run {
                order_idx: oi,
                cost: r.cost.total(),
                wall: r.wall.as_secs_f64(),
                cumulative: r.cumulative_join_rows,
            });
        }
    }
    let best_cost = runs.iter().map(|r| r.cost).min().unwrap().max(1);
    let best_wall = runs
        .iter()
        .map(|r| r.wall)
        .fold(f64::INFINITY, f64::min)
        .max(1e-9);

    // Per-order aggregates.
    let per_order = |oi: usize| {
        let of: Vec<&Run> = runs.iter().filter(|r| r.order_idx == oi).collect();
        let min_cost = of.iter().map(|r| r.cost).min().unwrap();
        let max_cost = of.iter().map(|r| r.cost).max().unwrap();
        let min_wall = of.iter().map(|r| r.wall).fold(f64::INFINITY, f64::min);
        let max_wall = of.iter().map(|r| r.wall).fold(0.0f64, f64::max);
        let cumulative = of.iter().map(|r| r.cumulative).min().unwrap();
        (min_cost, max_cost, min_wall, max_wall, cumulative)
    };
    let smallest_oi = (0..orders.len()).min_by_key(|&oi| per_order(oi).4).unwrap();
    let largest_oi = (0..orders.len()).max_by_key(|&oi| per_order(oi).4).unwrap();

    let classical = classical_join_order(&env, &graph, &star);
    let classical_oi = (0..orders.len())
        .find(|&oi| order_signature(&orders[oi].merges) == order_signature(&classical.merges))
        .expect("classical order is linear, hence enumerated");

    let rox = run_rox_with_env(
        &env,
        &graph,
        RoxOptions {
            tau,
            seed,
            ..Default::default()
        },
    )
    .unwrap();
    let rox_replay = crate::fig8::replay(&env, &graph, &rox.executed_order);
    let rox_order = extract_join_order(&graph, &star, &rox.executed_order);
    let rox_oi = (0..orders.len())
        .find(|&oi| order_signature(&orders[oi].merges) == order_signature(&rox_order.merges));

    let (s_minc, _, s_minw, _, _) = per_order(smallest_oi);
    let (_, l_maxc, _, l_maxw, _) = per_order(largest_oi);
    let (c_minc, _, c_minw, _, _) = per_order(classical_oi);
    let (r_minc, r_minw) = match rox_oi {
        Some(oi) => {
            let (mc, _, mw, _, _) = per_order(oi);
            (mc, mw)
        }
        // ROX's order should always be one of the 18; fall back to its own
        // replay cost if extraction failed.
        None => (rox_replay.0, rox_replay.1),
    };

    // ROX work: execution + sampling (full) vs replayed plan only (pure).
    let rox_full_cost = rox.exec_cost.total() + rox.sample_cost.total();
    let (rox_pure_cost, rox_pure_wall) = rox_replay;
    let rox_full_wall = rox.total_wall.as_secs_f64();

    // Join-rows view (Fig. 5's metric).
    let best_rows = per_order(smallest_oi).4.max(1);
    let classical_join_rows = per_order(classical_oi).4 as f64 / best_rows as f64;
    let rox_join_rows = match rox_oi {
        Some(oi) => per_order(oi).4 as f64 / best_rows as f64,
        None => 1.0,
    };
    let largest_join_rows = per_order(largest_oi).4 as f64 / best_rows as f64;

    ComboResult {
        combo,
        group,
        correlation: corr,
        largest: l_maxc as f64 / best_cost as f64,
        classical: c_minc as f64 / best_cost as f64,
        rox_order: r_minc as f64 / best_cost as f64,
        smallest: s_minc as f64 / best_cost as f64,
        rox_full: rox_full_cost as f64 / best_cost as f64,
        rox_pure: rox_pure_cost as f64 / best_cost as f64,
        wall: WallRatios {
            largest: l_maxw / best_wall,
            classical: c_minw / best_wall,
            rox_order: r_minw / best_wall,
            smallest: s_minw / best_wall,
            rox_full: rox_full_wall / best_wall,
            rox_pure: rox_pure_wall / best_wall,
        },
        classical_join_rows,
        rox_join_rows,
        largest_join_rows,
        result_rows: rox.output.len(),
    }
}

/// Output of the full experiment.
#[derive(Debug)]
pub struct Fig6Output {
    /// Per-combination rows, clustered by group and sorted by correlation.
    pub rows: Vec<ComboResult>,
}

/// Pick combinations per group (deterministic under seed) and measure all.
pub fn run(cfg: &Fig6Config) -> Fig6Output {
    let setup = dblp_catalog(cfg.scale, cfg.size_factor, cfg.seed);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut rows = Vec::new();
    for group in ["2:2", "3:1", "4:0"] {
        let mut combos: Vec<[usize; 4]> = grouped_combinations()
            .into_iter()
            .filter(|(_, g)| *g == group)
            .map(|(c, _)| c)
            .collect();
        if cfg.per_group > 0 && combos.len() > cfg.per_group {
            combos.shuffle(&mut rng);
            combos.truncate(cfg.per_group);
        }
        let mut group_rows: Vec<ComboResult> = combos
            .into_iter()
            .map(|c| measure_combo(&setup, c, cfg.tau, cfg.seed))
            .filter(|r| r.result_rows > 0) // the paper omits empty results
            .collect();
        group_rows.sort_by(|a, b| a.correlation.partial_cmp(&b.correlation).unwrap());
        rows.extend(group_rows);
    }
    Fig6Output { rows }
}

/// Group-level averages of the normalized work ratios.
#[derive(Debug, Clone)]
pub struct GroupAverages {
    /// Group label.
    pub group: String,
    /// Rows averaged.
    pub combos: usize,
    /// Average of each plan class (same normalization as [`ComboResult`]).
    pub largest: f64,
    /// Classical baseline.
    pub classical: f64,
    /// ROX order, canonical placement.
    pub rox_order: f64,
    /// Best enumerated order.
    pub smallest: f64,
    /// ROX including sampling.
    pub rox_full: f64,
    /// ROX plan replayed without sampling.
    pub rox_pure: f64,
    /// Classical order's cumulative join rows over the best order's.
    pub classical_join_rows: f64,
    /// ROX's order, same normalization.
    pub rox_join_rows: f64,
    /// Worst order, same normalization.
    pub largest_join_rows: f64,
}

/// Group-level averages (the summary EXPERIMENTS.md quotes).
pub fn group_averages(rows: &[ComboResult]) -> Vec<GroupAverages> {
    let mut out = Vec::new();
    for group in ["2:2", "3:1", "4:0"] {
        let rs: Vec<&ComboResult> = rows.iter().filter(|r| r.group == group).collect();
        if rs.is_empty() {
            continue;
        }
        let n = rs.len() as f64;
        let avg = |f: &dyn Fn(&ComboResult) -> f64| rs.iter().map(|r| f(r)).sum::<f64>() / n;
        out.push(GroupAverages {
            group: group.to_string(),
            combos: rs.len(),
            largest: avg(&|r| r.largest),
            classical: avg(&|r| r.classical),
            rox_order: avg(&|r| r.rox_order),
            smallest: avg(&|r| r.smallest),
            rox_full: avg(&|r| r.rox_full),
            rox_pure: avg(&|r| r.rox_pure),
            classical_join_rows: avg(&|r| r.classical_join_rows),
            rox_join_rows: avg(&|r| r.rox_join_rows),
            largest_join_rows: avg(&|r| r.largest_join_rows),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_combo_measurement_is_consistent() {
        let setup = dblp_catalog(1, 0.03, 5);
        let combo = [
            rox_datagen::venue_index("VLDB"),
            rox_datagen::venue_index("ICDE"),
            rox_datagen::venue_index("ICIP"),
            rox_datagen::venue_index("ADBIS"),
        ];
        let r = measure_combo(&setup, combo, 50, 5);
        assert_eq!(r.group, "3:1");
        // Normalized values: smallest is by definition the best order's
        // best placement, so >= 1; largest dominates everything.
        assert!(r.smallest >= 1.0);
        assert!(r.largest >= r.smallest);
        assert!(r.classical >= 1.0);
        // ROX's pure plan must be competitive: within a small factor of
        // the optimum.
        assert!(
            r.rox_pure <= r.largest,
            "pure {} largest {}",
            r.rox_pure,
            r.largest
        );
    }

    #[test]
    fn small_sweep_produces_grouped_rows() {
        let out = run(&Fig6Config {
            per_group: 2,
            size_factor: 0.02,
            ..Default::default()
        });
        assert!(!out.rows.is_empty());
        for w in out.rows.windows(2) {
            if w[0].group == w[1].group {
                assert!(w[0].correlation <= w[1].correlation);
            }
        }
        let avgs = group_averages(&out.rows);
        assert!(!avgs.is_empty());
    }
}
