//! Durability benchmark binary: WAL append latency, group-commit fsync
//! batching, and recovery replay time vs a snapshot-only cold start.
//! Writes the machine-readable `BENCH_RECOVERY.json` consumed by CI.
//!
//! ```text
//! cargo run --release -p rox-bench --bin bench_recovery -- \
//!     [--smoke] [--out BENCH_RECOVERY.json] [--persons 3000] \
//!     [--items 2500] [--auctions 2500] [--mutations 2000] \
//!     [--threads 8] [--repeats 3]
//! ```

use rox_bench::args::Args;
use rox_bench::recovery::{self, RecoveryBenchConfig};

fn main() {
    let args = Args::from_env();
    let mut cfg = if args.has("smoke") {
        RecoveryBenchConfig::smoke()
    } else {
        RecoveryBenchConfig::default()
    };
    cfg.xmark.persons = args.get("persons", cfg.xmark.persons);
    cfg.xmark.items = args.get("items", cfg.xmark.items);
    cfg.xmark.auctions = args.get("auctions", cfg.xmark.auctions);
    cfg.mutations = args.get("mutations", cfg.mutations);
    cfg.threads = args.get("threads", cfg.threads);
    cfg.ops_per_thread = args.get("ops-per-thread", cfg.ops_per_thread);
    cfg.repeats = args.get("repeats", cfg.repeats);
    let out_path = args.get("out", "BENCH_RECOVERY.json".to_string());

    println!(
        "durability bench — XMark persons={} items={} auctions={}, {} mutations, {} committers × {}",
        cfg.xmark.persons,
        cfg.xmark.items,
        cfg.xmark.auctions,
        cfg.mutations,
        cfg.threads,
        cfg.ops_per_thread
    );
    let r = recovery::run(&cfg);
    print!("{}", recovery::render(&r));

    // The log must actually batch under concurrency (never more fsyncs
    // than commits), and a checkpoint must make recovery strictly
    // cheaper than replaying the whole mutation tail.
    assert!(
        r.group_fsyncs <= r.group_commits,
        "more fsyncs ({}) than commits ({})",
        r.group_fsyncs,
        r.group_commits
    );
    assert!(
        r.recover_snapshot_only <= r.recover_with_log,
        "snapshot-only recovery ({:?}) slower than replaying {} records ({:?})",
        r.recover_snapshot_only,
        r.replayed,
        r.recover_with_log
    );

    let json = recovery::to_json(&cfg, &r);
    std::fs::write(&out_path, &json).expect("write BENCH_RECOVERY.json");
    println!("\nwrote {out_path}");
}
