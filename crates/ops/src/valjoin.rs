//! Value-based equi-joins (the relational joins of the Join Graph).
//!
//! Three physical algorithms, mirroring Table 1:
//!
//! * [`index_value_join`] — nested-loop index lookup: for each (sampled)
//!   outer tuple, probe the inner document's value index. Zero-investment
//!   w.r.t. the outer input, hence the algorithm ROX samples with.
//! * [`hash_value_join`] — classic hash join on interned value symbols,
//!   used for full (materialized) edge execution. Cost `|C|+|S|+|R|`.
//! * [`merge_value_join`] — merge join over inputs pre-sorted by value
//!   symbol (zero-investment when the inner is already ordered).
//!
//! Cross-document joins compare interned [`Symbol`]s, which is sound
//! because all documents of one catalog share an interner.
//!
//! **Zero-hash layout.** Because symbols are dense interner ids and pres
//! are dense node ids, the build side of the hash join is a CSR
//! [`SymbolTable`] (probe = two array reads) and `inner_filter` membership
//! is a [`PreSet`] bitset probe — no SipHash, no per-hit binary search.
//! The slice-based entry points remain as thin wrappers that build the
//! dense structures on the fly; callers holding a reusable workspace (the
//! evaluation state's scratch arena) pass prebuilt ones through the
//! `*_set`/`*_with` variants instead.

use crate::cost::Cost;
use crate::cutoff::JoinOut;
use crate::pool::ScratchPool;
use rox_index::{PreSet, SymbolTable, ValueIndex};
use rox_xmldb::{Document, NodeKind, Pre, Symbol};

fn join_value(doc: &Document, pre: Pre) -> Symbol {
    debug_assert!(
        matches!(doc.kind(pre), NodeKind::Text | NodeKind::Attribute),
        "value join inputs must be text or attribute nodes"
    );
    doc.value(pre)
}

/// Nested-loop index-lookup join against a dense [`PreSet`] filter: probe
/// `inner_index` for each outer node and keep hits in `inner_filter` (the
/// materialized `T(v′)` as a bitset), or all hits when `inner_filter` is
/// `None`. Produced pairs carry the outer node's position in `outer` as
/// their row id. This is the hot entry point the edge-operator kernel and
/// the evaluation state's scratch arena feed.
pub fn index_value_join_set(
    outer_doc: &Document,
    outer: &[Pre],
    inner_index: &ValueIndex,
    inner_kind: NodeKind,
    inner_filter: Option<&PreSet>,
    limit: Option<usize>,
    cost: &mut Cost,
) -> JoinOut<Pre> {
    index_value_join_set_pooled(
        outer_doc,
        outer,
        inner_index,
        inner_kind,
        inner_filter,
        limit,
        None,
        cost,
    )
}

/// As [`index_value_join_set`] with the pair buffer leased from `pool`
/// (the caller returns `pairs` via [`ScratchPool::give_pairs`]).
#[allow(clippy::too_many_arguments)]
pub fn index_value_join_set_pooled(
    outer_doc: &Document,
    outer: &[Pre],
    inner_index: &ValueIndex,
    inner_kind: NodeKind,
    inner_filter: Option<&PreSet>,
    limit: Option<usize>,
    pool: Option<&ScratchPool>,
    cost: &mut Cost,
) -> JoinOut<Pre> {
    let mut out = JoinOut::with_limit_pooled(outer.len(), limit, pool);
    let limit = limit.unwrap_or(usize::MAX);
    'outer: for (row, &c) in outer.iter().enumerate() {
        let row = row as u32;
        cost.charge_in(1);
        cost.charge_probe(1);
        let v = join_value(outer_doc, c);
        let hits: &[Pre] = match inner_kind {
            NodeKind::Text => inner_index.text_eq(v),
            NodeKind::Attribute => inner_index.attr_eq(v),
            _ => unreachable!("value index covers text and attribute nodes"),
        };
        for &s in hits {
            if let Some(filter) = inner_filter {
                cost.charge_probe(1);
                if !filter.contains(s) {
                    continue;
                }
            }
            if out.emit(row, s, limit, cost) {
                break 'outer;
            }
        }
        out.ctx_done(row);
    }
    out
}

/// As [`index_value_join_set`] with the filter given as a sorted slice:
/// builds the [`PreSet`] on the fly (an allocation the evaluation state's
/// scratch arena avoids by caching the set per vertex).
pub fn index_value_join(
    outer_doc: &Document,
    outer: &[Pre],
    inner_index: &ValueIndex,
    inner_kind: NodeKind,
    inner_filter: Option<&[Pre]>,
    limit: Option<usize>,
    cost: &mut Cost,
) -> JoinOut<Pre> {
    let set = inner_filter.map(filter_set);
    index_value_join_set(
        outer_doc,
        outer,
        inner_index,
        inner_kind,
        set.as_ref(),
        limit,
        cost,
    )
}

/// Build the membership bitset for a sorted filter slice, sized by its
/// largest member (probes beyond it answer `false`).
pub(crate) fn filter_set(filter: &[Pre]) -> PreSet {
    debug_assert!(filter.windows(2).all(|w| w[0] <= w[1]));
    let universe = filter.last().map(|&p| p as usize + 1).unwrap_or(0);
    PreSet::from_nodes(universe, filter)
}

/// Build-side choice shared by the sequential and partitioned hash joins:
/// build on the smaller input, probe with the larger. Keeping this in one
/// place locks the two variants' orientation together.
pub(crate) fn hash_builds_left(left: &[Pre], right: &[Pre]) -> bool {
    left.len() <= right.len()
}

/// Build the CSR join table over the build side (an investment charged per
/// input tuple, exactly like the hash build it replaces).
pub(crate) fn build_join_table(
    build_doc: &Document,
    build: &[Pre],
    cost: &mut Cost,
) -> SymbolTable {
    cost.charge_in(build.len());
    let symbols: Vec<Symbol> = build.iter().map(|&p| join_value(build_doc, p)).collect();
    SymbolTable::from_pairs(&symbols, build)
}

/// Charge the build-side investment for a *cached* join table: the cost
/// model bills the build per execution whether or not the scratch arena
/// already holds the table, keeping counters bit-identical to an uncached
/// run.
pub(crate) fn charge_cached_build(table: &SymbolTable, cost: &mut Cost) {
    cost.charge_in(table.build_len());
}

/// Probe a slice of the probe side against the CSR table, appending
/// matches to `out` in probe order, oriented `(left, right)` per
/// `build_left`. The probe kernel of both [`hash_value_join`] and its
/// partitioned variant — two array reads per probe, no hashing.
pub(crate) fn probe_join_table(
    table: &SymbolTable,
    probe_doc: &Document,
    probe: &[Pre],
    build_left: bool,
    cost: &mut Cost,
    out: &mut Vec<(Pre, Pre)>,
) {
    for &p in probe {
        cost.charge_in(1);
        cost.charge_probe(1);
        for &m in table.get(join_value(probe_doc, p)) {
            cost.charge_out(1);
            if build_left {
                out.push((m, p));
            } else {
                out.push((p, m));
            }
        }
    }
}

/// Hash join at the node level: all `(left, right)` pre pairs with equal
/// values. Builds on the smaller side. (The "hash" is the interner's
/// already-paid hash-consing: at join time the build side is a CSR table
/// and probes are array reads.)
pub fn hash_value_join(
    left_doc: &Document,
    left: &[Pre],
    right_doc: &Document,
    right: &[Pre],
    cost: &mut Cost,
) -> Vec<(Pre, Pre)> {
    hash_value_join_with(left_doc, left, right_doc, right, None, None, cost)
}

/// As [`hash_value_join`] with optional prebuilt CSR tables per side (from
/// the evaluation state's scratch arena). A prebuilt table must have been
/// built over exactly the side's current input; the build investment is
/// charged either way.
pub fn hash_value_join_with(
    left_doc: &Document,
    left: &[Pre],
    right_doc: &Document,
    right: &[Pre],
    left_table: Option<&SymbolTable>,
    right_table: Option<&SymbolTable>,
    cost: &mut Cost,
) -> Vec<(Pre, Pre)> {
    hash_value_join_pooled(
        left_doc,
        left,
        right_doc,
        right,
        left_table,
        right_table,
        None,
        cost,
    )
}

/// As [`hash_value_join_with`] with the output pair buffer leased from
/// `pool` (the caller returns it via [`ScratchPool::give_node_pairs`]).
#[allow(clippy::too_many_arguments)]
pub(crate) fn hash_value_join_pooled(
    left_doc: &Document,
    left: &[Pre],
    right_doc: &Document,
    right: &[Pre],
    left_table: Option<&SymbolTable>,
    right_table: Option<&SymbolTable>,
    pool: Option<&ScratchPool>,
    cost: &mut Cost,
) -> Vec<(Pre, Pre)> {
    let build_left = hash_builds_left(left, right);
    let (build_doc, build, probe_doc, probe, prebuilt) = if build_left {
        (left_doc, left, right_doc, right, left_table)
    } else {
        (right_doc, right, left_doc, left, right_table)
    };
    let mut out = match pool {
        Some(pool) => pool.lease_node_pairs(),
        None => Vec::new(),
    };
    match prebuilt {
        Some(table) => {
            debug_assert_eq!(table.build_len(), build.len(), "stale cached join table");
            charge_cached_build(table, cost);
            probe_join_table(table, probe_doc, probe, build_left, cost, &mut out);
        }
        None => {
            let table = build_join_table(build_doc, build, cost);
            probe_join_table(&table, probe_doc, probe, build_left, cost, &mut out);
        }
    }
    out
}

/// Merge join over inputs sorted by value symbol. `left`/`right` are
/// `(symbol, pre)` pairs sorted on symbol.
pub fn merge_value_join(
    left: &[(Symbol, Pre)],
    right: &[(Symbol, Pre)],
    cost: &mut Cost,
) -> Vec<(Pre, Pre)> {
    debug_assert!(left.windows(2).all(|w| w[0].0 <= w[1].0));
    debug_assert!(right.windows(2).all(|w| w[0].0 <= w[1].0));
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < left.len() && j < right.len() {
        cost.charge_in(1);
        match left[i].0.cmp(&right[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                // Emit the cross product of the equal-symbol groups.
                let sym = left[i].0;
                let i_end = left[i..].iter().take_while(|(s, _)| *s == sym).count() + i;
                let j_end = right[j..].iter().take_while(|(s, _)| *s == sym).count() + j;
                for &(_, lp) in &left[i..i_end] {
                    for &(_, rp) in &right[j..j_end] {
                        cost.charge_out(1);
                        out.push((lp, rp));
                    }
                }
                i = i_end;
                j = j_end;
            }
        }
    }
    out
}

/// Sort a node list into `(symbol, pre)` pairs ordered by symbol — the
/// preparation step for [`merge_value_join`] (an investment, so only used
/// on fully materialized inputs).
pub fn sorted_by_value(doc: &Document, nodes: &[Pre]) -> Vec<(Symbol, Pre)> {
    let mut out: Vec<(Symbol, Pre)> = nodes.iter().map(|&p| (join_value(doc, p), p)).collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rox_xmldb::Catalog;
    use std::sync::Arc;

    fn setup() -> (
        Arc<Catalog>,
        Arc<Document>,
        Arc<Document>,
        ValueIndex,
        ValueIndex,
    ) {
        let cat = Arc::new(Catalog::new());
        let a = cat
            .load_str("a.xml", "<r><x>ann</x><x>bob</x><x>ann</x></r>")
            .unwrap();
        let b = cat
            .load_str("b.xml", "<r><y>ann</y><y>cat</y><y>bob</y></r>")
            .unwrap();
        let da = cat.doc(a);
        let db = cat.doc(b);
        let ia = ValueIndex::build(&da);
        let ib = ValueIndex::build(&db);
        (cat, da, db, ia, ib)
    }

    fn text_nodes(doc: &Document) -> Vec<Pre> {
        (0..doc.node_count() as Pre)
            .filter(|&p| doc.kind(p) == NodeKind::Text)
            .collect()
    }

    #[test]
    fn index_join_finds_cross_doc_matches() {
        let (_cat, da, _db, _ia, ib) = setup();
        let left = text_nodes(&da);
        let mut cost = Cost::new();
        let out = index_value_join(&da, &left, &ib, NodeKind::Text, None, None, &mut cost);
        // ann (x2 left) matches 1 right; bob matches 1 => 3 pairs.
        assert_eq!(out.pairs.len(), 3);
    }

    #[test]
    fn index_join_respects_filter() {
        let (_cat, da, db, _ia, ib) = setup();
        let left = text_nodes(&da);
        // Only allow the right "bob" text node.
        let right = text_nodes(&db);
        let bob_only: Vec<Pre> = right
            .iter()
            .copied()
            .filter(|&p| db.value_str(p) == "bob")
            .collect();
        let mut cost = Cost::new();
        let out = index_value_join(
            &da,
            &left,
            &ib,
            NodeKind::Text,
            Some(&bob_only),
            None,
            &mut cost,
        );
        assert_eq!(out.pairs.len(), 1);
        assert_eq!(da.value_str(left[out.pairs[0].0 as usize]), "bob");
    }

    #[test]
    fn hash_join_matches_index_join() {
        let (_cat, da, db, _ia, ib) = setup();
        let left = text_nodes(&da);
        let right = text_nodes(&db);
        let mut c1 = Cost::new();
        let hash = hash_value_join(&da, &left, &db, &right, &mut c1);
        let mut c2 = Cost::new();
        let idx = index_value_join(&da, &left, &ib, NodeKind::Text, None, None, &mut c2);
        let mut hash_sorted = hash.clone();
        hash_sorted.sort_unstable();
        let mut idx_pairs: Vec<(Pre, Pre)> = idx
            .pairs
            .iter()
            .map(|&(r, s)| (left[r as usize], s))
            .collect();
        idx_pairs.sort_unstable();
        assert_eq!(hash_sorted, idx_pairs);
    }

    #[test]
    fn merge_join_matches_hash_join() {
        let (_cat, da, db, _, _) = setup();
        let left = text_nodes(&da);
        let right = text_nodes(&db);
        let mut c = Cost::new();
        let mut hash = hash_value_join(&da, &left, &db, &right, &mut c);
        hash.sort_unstable();
        let ls = sorted_by_value(&da, &left);
        let rs = sorted_by_value(&db, &right);
        let mut merge = merge_value_join(&ls, &rs, &mut c);
        merge.sort_unstable();
        assert_eq!(hash, merge);
    }

    #[test]
    fn cutoff_on_index_join() {
        let (_cat, da, _db, _ia, ib) = setup();
        let left = text_nodes(&da);
        let mut cost = Cost::new();
        let out = index_value_join(&da, &left, &ib, NodeKind::Text, None, Some(1), &mut cost);
        assert!(out.truncated);
        assert_eq!(out.pairs.len(), 1);
        assert!(out.estimate() >= 1.0);
    }

    #[test]
    fn attribute_value_join() {
        let cat = Arc::new(Catalog::new());
        let a = cat
            .load_str("a.xml", r#"<r><e k="1"/><e k="2"/></r>"#)
            .unwrap();
        let b = cat
            .load_str("b.xml", r#"<r><f id="2"/><f id="3"/></r>"#)
            .unwrap();
        let da = cat.doc(a);
        let db = cat.doc(b);
        let ib = ValueIndex::build(&db);
        let attrs: Vec<Pre> = (0..da.node_count() as Pre)
            .filter(|&p| da.kind(p) == NodeKind::Attribute)
            .collect();
        let mut cost = Cost::new();
        let out = index_value_join(&da, &attrs, &ib, NodeKind::Attribute, None, None, &mut cost);
        assert_eq!(out.pairs.len(), 1);
        assert_eq!(da.value_str(attrs[out.pairs[0].0 as usize]), "2");
    }
}
