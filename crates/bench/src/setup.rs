//! Shared corpus setup for the experiment harnesses.

use rox_core::RoxEngine;
use rox_datagen::{generate_dblp, generate_xmark, DblpConfig, DblpCorpus, XmarkConfig};
use rox_xmldb::Catalog;
use std::sync::Arc;

/// A generated DBLP corpus with its catalog and a long-lived serving
/// engine over it.
pub struct DblpSetup {
    /// Catalog holding all 23 venue documents.
    pub catalog: Arc<Catalog>,
    /// The corpus descriptors.
    pub corpus: DblpCorpus,
    /// The configuration used.
    pub config: DblpConfig,
    /// The shared query-serving engine: every harness query runs in an
    /// `engine.session(..)`, so document indexes and base lists are built
    /// once per corpus instead of once per measured combination.
    pub engine: RoxEngine,
}

/// Generate the 23-venue DBLP corpus at the given replication scale and
/// size factor.
pub fn dblp_catalog(scale: usize, size_factor: f64, seed: u64) -> DblpSetup {
    let config = DblpConfig {
        scale,
        size_factor,
        seed,
        ..DblpConfig::default()
    };
    let catalog = Arc::new(Catalog::new());
    let corpus = generate_dblp(&catalog, &config);
    let engine = RoxEngine::new(Arc::clone(&catalog));
    DblpSetup {
        catalog,
        corpus,
        config,
        engine,
    }
}

/// Generate an XMark catalog under "xmark.xml".
pub fn xmark_catalog(cfg: &XmarkConfig) -> Arc<Catalog> {
    let catalog = Arc::new(Catalog::new());
    generate_xmark(&catalog, "xmark.xml", cfg);
    catalog
}

/// ROX's effective join order, extracted from an executed edge sequence:
/// the inter-component equi-join merges in execution order, in terms of
/// star-member indices.
pub fn extract_join_order(
    graph: &rox_joingraph::JoinGraph,
    star: &rox_core::StarQuery,
    executed: &[rox_joingraph::EdgeId],
) -> rox_core::JoinOrder {
    use rox_joingraph::EdgeKind;
    let member_of =
        |v: rox_joingraph::VertexId| star.members.iter().position(|m| m.value_vertex == v);
    let mut parent: Vec<usize> = (0..star.members.len()).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let r = find(parent, parent[x]);
            parent[x] = r;
        }
        parent[x]
    }
    let mut merges = Vec::new();
    for &e in executed {
        let edge = graph.edge(e);
        if !matches!(edge.kind, EdgeKind::EquiJoin { .. }) {
            continue;
        }
        let (Some(a), Some(b)) = (member_of(edge.v1), member_of(edge.v2)) else {
            continue;
        };
        let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
        if ra != rb {
            merges.push((a, b));
            parent[ra] = rb;
        }
    }
    let name = format!(
        "rox:{}",
        merges
            .iter()
            .map(|(a, b)| format!("({}-{})", a + 1, b + 1))
            .collect::<Vec<_>>()
            .join("-")
    );
    rox_core::JoinOrder { name, merges }
}

/// Semantic identity of a join order: the sequence of unordered
/// {component, component} merges in terms of member sets. Two merge lists
/// produce the same signature iff they join the same groups in the same
/// sequence (regardless of which member represents a component).
pub fn order_signature(merges: &[(usize, usize)]) -> Vec<(Vec<usize>, Vec<usize>)> {
    use std::collections::BTreeSet;
    let mut comps: Vec<BTreeSet<usize>> = Vec::new();
    let find = |comps: &Vec<BTreeSet<usize>>, m: usize| comps.iter().position(|c| c.contains(&m));
    let mut sig = Vec::new();
    for &(a, b) in merges {
        let ca = find(&comps, a);
        let cb = find(&comps, b);
        let set_a: BTreeSet<usize> = match ca {
            Some(i) => comps[i].clone(),
            None => [a].into_iter().collect(),
        };
        let set_b: BTreeSet<usize> = match cb {
            Some(i) => comps[i].clone(),
            None => [b].into_iter().collect(),
        };
        let (mut va, mut vb): (Vec<usize>, Vec<usize>) = (
            set_a.iter().copied().collect(),
            set_b.iter().copied().collect(),
        );
        if va > vb {
            std::mem::swap(&mut va, &mut vb);
        }
        sig.push((va, vb));
        // Merge.
        let mut merged: BTreeSet<usize> = set_a;
        merged.extend(set_b);
        comps.retain(|c| !c.contains(&a) && !c.contains(&b));
        comps.push(merged);
    }
    sig
}

#[cfg(test)]
mod tests {
    use super::*;
    use rox_core::{analyze_star, run_rox, RoxOptions};
    use rox_datagen::{dblp_query, venue_index};

    #[test]
    fn order_signature_identifies_equal_orders() {
        // Linear (0-1)-2-3 written with different representatives.
        let a = order_signature(&[(0, 1), (0, 2), (0, 3)]);
        let b = order_signature(&[(1, 0), (2, 1), (3, 2)]);
        assert_eq!(a, b);
        // Bushy differs from linear.
        let c = order_signature(&[(0, 1), (2, 3), (0, 2)]);
        assert_ne!(a, c);
        // Attachment order matters for linear plans.
        let d = order_signature(&[(0, 1), (0, 3), (0, 2)]);
        assert_ne!(a, d);
    }

    #[test]
    fn dblp_setup_loads_all_venues() {
        let s = dblp_catalog(1, 0.02, 7);
        assert_eq!(s.catalog.len(), 23);
    }

    #[test]
    fn extract_join_order_from_rox_run() {
        let s = dblp_catalog(1, 0.05, 7);
        let combo = [
            venue_index("VLDB"),
            venue_index("ICDE"),
            venue_index("ICIP"),
            venue_index("ADBIS"),
        ];
        let g = rox_joingraph::compile_query(&dblp_query(&combo)).unwrap();
        let star = analyze_star(&g).unwrap();
        let report = run_rox(Arc::clone(&s.catalog), &g, RoxOptions::default()).unwrap();
        let order = extract_join_order(&g, &star, &report.executed_order);
        assert_eq!(order.merges.len(), 3, "three merges for four documents");
    }
}
