//! Join-core microbenchmarks: dense (CSR + bitset) layouts against the
//! general-purpose structures they replaced (the `bench_joins` binary,
//! which emits the machine-readable `BENCH_joins.json`).
//!
//! Three measured units, all over one generated XMark document:
//!
//! 1. **Probe throughput** — the hash-value-join probe kernel with the
//!    build side held fixed: `HashMap<Symbol, Vec<Pre>>` (SipHash per
//!    probe, the pre-PR-3 layout, reimplemented here as the *before*
//!    side) vs the CSR [`SymbolTable`] (two array reads, the production
//!    path). Outputs are asserted pair-for-pair identical before any
//!    timing is reported.
//! 2. **Sampling-loop kernel** — repeated cut-off index nested-loop
//!    rounds over an unchanged inner table, the shape of Algorithm 1's
//!    estimate → chain → execute loop: per-hit `binary_search` filtering
//!    with no reuse (*before*) vs one cached [`PreSet`] probed by every
//!    round (the production path through the evaluation state's scratch
//!    arena).
//! 3. **End-to-end** — a full `run_rox` over the paper's Q1 on the same
//!    document, reporting the sampling and execution wall time the dense
//!    layouts serve (informational; there is no in-binary "before" for a
//!    whole optimizer run).

use crate::xmark_catalog;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rox_core::{run_rox_with_env, RoxEngine, RoxOptions};
use rox_datagen::{xmark_query, XmarkConfig};
use rox_index::{sample_sorted, PreSet, SymbolTable, ValueIndex};
use rox_xmldb::{Document, NodeKind, Pre, Symbol};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Configuration of the join microbenchmarks.
#[derive(Debug, Clone)]
pub struct JoinsBenchConfig {
    /// XMark document shape.
    pub xmark: XmarkConfig,
    /// Probe repetitions per timed measurement (throughput denominator).
    pub probe_rounds: usize,
    /// Sampled rounds of the sampling-loop kernel.
    pub sampling_rounds: usize,
    /// Cut-off `l` (and sample size) per sampled round.
    pub tau: usize,
    /// Timed repetitions per measurement (the minimum is reported).
    pub repeats: usize,
}

impl Default for JoinsBenchConfig {
    fn default() -> Self {
        JoinsBenchConfig {
            xmark: XmarkConfig {
                persons: 3000,
                items: 2500,
                auctions: 2500,
                ..XmarkConfig::default()
            },
            probe_rounds: 20,
            sampling_rounds: 200,
            tau: 256,
            repeats: 3,
        }
    }
}

impl JoinsBenchConfig {
    /// A seconds-scale configuration for CI smoke runs.
    pub fn smoke() -> Self {
        JoinsBenchConfig {
            xmark: XmarkConfig {
                persons: 300,
                items: 250,
                auctions: 250,
                ..XmarkConfig::default()
            },
            probe_rounds: 5,
            sampling_rounds: 50,
            tau: 128,
            repeats: 2,
        }
    }
}

/// A before/after pair of one measured unit.
#[derive(Debug, Clone)]
pub struct BeforeAfter {
    /// Wall time of the pre-PR-3 structure (hash map / binary search).
    pub before: Duration,
    /// Wall time of the dense structure (CSR table / bitset).
    pub after: Duration,
    /// `before / after`.
    pub speedup: f64,
    /// Work items per measurement (probes or rounds — the unit's doc says
    /// which).
    pub work_items: usize,
}

fn before_after(before: Duration, after: Duration, work_items: usize) -> BeforeAfter {
    BeforeAfter {
        before,
        after,
        speedup: before.as_secs_f64() / after.as_secs_f64().max(f64::EPSILON),
        work_items,
    }
}

/// Everything the `bench_joins` binary reports.
#[derive(Debug, Clone)]
pub struct JoinsBenchResult {
    /// Text nodes of the generated document (the probe universe).
    pub text_nodes: usize,
    /// Distinct symbols in the document's interner.
    pub symbols: usize,
    /// Hash-map vs CSR probe kernel; `work_items` = probes per repeat.
    pub probe: BeforeAfter,
    /// Binary-search vs cached-bitset sampling-loop kernel; `work_items` =
    /// sampled rounds per repeat.
    pub sampling_loop: BeforeAfter,
    /// Full `run_rox` wall time on Q1 (dense layouts in production).
    pub end_to_end_total: Duration,
    /// Sampling share of the end-to-end run.
    pub end_to_end_sampling: Duration,
    /// Rows in the end-to-end query output (sanity anchor).
    pub end_to_end_rows: usize,
}

fn best_of(repeats: usize, mut f: impl FnMut() -> Duration) -> Duration {
    (0..repeats.max(1))
        .map(|_| f())
        .min()
        .expect("at least one repeat")
}

fn text_nodes(doc: &Document) -> Vec<Pre> {
    (0..doc.node_count() as Pre)
        .filter(|&p| doc.kind(p) == NodeKind::Text)
        .collect()
}

/// The pre-PR-3 probe kernel: one SipHash lookup per probe tuple.
fn probe_hash(
    table: &HashMap<Symbol, Vec<Pre>>,
    doc: &Document,
    probe: &[Pre],
    out: &mut Vec<(Pre, Pre)>,
) {
    for &p in probe {
        if let Some(matches) = table.get(&doc.value(p)) {
            for &m in matches {
                out.push((m, p));
            }
        }
    }
}

/// The production probe kernel: two array reads per probe tuple.
fn probe_csr(table: &SymbolTable, doc: &Document, probe: &[Pre], out: &mut Vec<(Pre, Pre)>) {
    for &p in probe {
        for &m in table.get(doc.value(p)) {
            out.push((m, p));
        }
    }
}

/// The pre-PR-3 sampled round: index probe + per-hit `binary_search`
/// against the sorted inner table, cut off at `limit`.
fn sampled_round_bsearch(
    doc: &Document,
    index: &ValueIndex,
    sample: &[Pre],
    inner: &[Pre],
    limit: usize,
    out: &mut Vec<(u32, Pre)>,
) {
    'outer: for (row, &c) in sample.iter().enumerate() {
        for &s in index.text_eq(doc.value(c)) {
            if inner.binary_search(&s).is_err() {
                continue;
            }
            out.push((row as u32, s));
            if out.len() >= limit {
                break 'outer;
            }
        }
    }
}

/// The production sampled round: the same loop over a prebuilt [`PreSet`]
/// (what the evaluation state's scratch arena hands every round).
fn sampled_round_bitset(
    doc: &Document,
    index: &ValueIndex,
    sample: &[Pre],
    inner_set: &PreSet,
    limit: usize,
    out: &mut Vec<(u32, Pre)>,
) {
    'outer: for (row, &c) in sample.iter().enumerate() {
        for &s in index.text_eq(doc.value(c)) {
            if !inner_set.contains(s) {
                continue;
            }
            out.push((row as u32, s));
            if out.len() >= limit {
                break 'outer;
            }
        }
    }
}

/// Run the microbenchmarks and the end-to-end anchor.
pub fn run(cfg: &JoinsBenchConfig) -> JoinsBenchResult {
    let catalog = xmark_catalog(&cfg.xmark);
    let doc_id = catalog.resolve("xmark.xml").expect("generated document");
    let doc = catalog.doc(doc_id);
    let texts = text_nodes(&doc);
    let index = ValueIndex::build(&doc);

    // ---- 1. Probe throughput: build once per layout, probe repeatedly.
    // Build side: the *first* node of every distinct value symbol, so each
    // probe yields at most one match and the measurement isolates the
    // lookup itself (SipHash vs two array reads) rather than pair
    // emission, which is layout-independent. Probe side: all text nodes.
    let mut seen = PreSet::new(doc.symbol_count());
    let mut build: Vec<Pre> = Vec::new();
    for &p in &texts {
        let sym = doc.value(p);
        if !seen.contains(sym.0) {
            seen.insert(sym.0);
            build.push(p);
        }
    }
    let probe: &[Pre] = &texts;
    let mut hash_table: HashMap<Symbol, Vec<Pre>> = HashMap::with_capacity(build.len());
    for &p in &build {
        hash_table.entry(doc.value(p)).or_default().push(p);
    }
    let symbols: Vec<Symbol> = build.iter().map(|&p| doc.value(p)).collect();
    let csr_table = SymbolTable::from_pairs(&symbols, &build);
    // Equivalence before timing: identical pairs in identical order.
    let mut expected = Vec::new();
    probe_hash(&hash_table, &doc, probe, &mut expected);
    let mut got = Vec::new();
    probe_csr(&csr_table, &doc, probe, &mut got);
    assert_eq!(got, expected, "CSR probe diverged from hash probe");
    let hash_wall = best_of(cfg.repeats, || {
        let t = Instant::now();
        for _ in 0..cfg.probe_rounds {
            let mut out = Vec::with_capacity(expected.len());
            probe_hash(&hash_table, &doc, probe, &mut out);
            std::hint::black_box(&out);
        }
        t.elapsed()
    });
    let csr_wall = best_of(cfg.repeats, || {
        let t = Instant::now();
        for _ in 0..cfg.probe_rounds {
            let mut out = Vec::with_capacity(expected.len());
            probe_csr(&csr_table, &doc, probe, &mut out);
            std::hint::black_box(&out);
        }
        t.elapsed()
    });
    let probe_result = before_after(hash_wall, csr_wall, probe.len() * cfg.probe_rounds);

    // ---- 2. Sampling-loop kernel: repeated cut-off rounds, fixed inner.
    // Inner `T(v′)`: every third text node (sorted, distinct); per round a
    // fresh seeded sample of the outer side, exactly like re-weighting an
    // edge whose endpoint tables did not change.
    let inner: Vec<Pre> = texts.iter().copied().step_by(3).collect();
    let inner_set = PreSet::from_nodes(doc.node_count(), &inner);
    let samples: Vec<Vec<Pre>> = (0..cfg.sampling_rounds)
        .map(|round| {
            let mut rng = StdRng::seed_from_u64(round as u64);
            sample_sorted(&mut rng, &texts, cfg.tau)
        })
        .collect();
    for sample in &samples {
        let mut a = Vec::new();
        sampled_round_bsearch(&doc, &index, sample, &inner, cfg.tau, &mut a);
        let mut b = Vec::new();
        sampled_round_bitset(&doc, &index, sample, &inner_set, cfg.tau, &mut b);
        assert_eq!(a, b, "bitset round diverged from binary-search round");
    }
    let bsearch_wall = best_of(cfg.repeats, || {
        let t = Instant::now();
        for sample in &samples {
            let mut out = Vec::with_capacity(cfg.tau);
            sampled_round_bsearch(&doc, &index, sample, &inner, cfg.tau, &mut out);
            std::hint::black_box(&out);
        }
        t.elapsed()
    });
    let bitset_wall = best_of(cfg.repeats, || {
        let t = Instant::now();
        for sample in &samples {
            let mut out = Vec::with_capacity(cfg.tau);
            sampled_round_bitset(&doc, &index, sample, &inner_set, cfg.tau, &mut out);
            std::hint::black_box(&out);
        }
        t.elapsed()
    });
    let sampling_result = before_after(bsearch_wall, bitset_wall, cfg.sampling_rounds);

    // ---- 3. End-to-end anchor: Q1 through the production dense paths.
    let graph = rox_joingraph::compile_query(&xmark_query("<", 145.0)).unwrap();
    let engine = RoxEngine::new(std::sync::Arc::clone(&catalog));
    let env = engine.session(&graph).unwrap();
    let report = run_rox_with_env(&env, &graph, RoxOptions::default()).unwrap();

    JoinsBenchResult {
        text_nodes: texts.len(),
        symbols: doc.symbol_count(),
        probe: probe_result,
        sampling_loop: sampling_result,
        end_to_end_total: report.total_wall,
        end_to_end_sampling: report.sample_wall,
        end_to_end_rows: report.output.len(),
    }
}

/// Render the result as the `BENCH_joins.json` document (hand-rolled —
/// the workspace is dependency-free by policy).
pub fn to_json(cfg: &JoinsBenchConfig, r: &JoinsBenchResult) -> String {
    fn pair(b: &BeforeAfter) -> String {
        format!(
            "{{\"before_us\": {:.1}, \"after_us\": {:.1}, \"speedup\": {:.2}, \"work_items\": {}}}",
            b.before.as_secs_f64() * 1e6,
            b.after.as_secs_f64() * 1e6,
            b.speedup,
            b.work_items
        )
    }
    format!(
        "{{\n  \"machine\": {},\n  \"config\": {{\"persons\": {}, \"items\": {}, \"auctions\": {}, \"probe_rounds\": {}, \"sampling_rounds\": {}, \"tau\": {}, \"repeats\": {}}},\n  \"document\": {{\"text_nodes\": {}, \"symbols\": {}}},\n  \"probe_microbench\": {},\n  \"sampling_loop\": {},\n  \"end_to_end\": {{\"total_ms\": {:.2}, \"sampling_ms\": {:.2}, \"output_rows\": {}}}\n}}\n",
        crate::machine_json(),
        cfg.xmark.persons,
        cfg.xmark.items,
        cfg.xmark.auctions,
        cfg.probe_rounds,
        cfg.sampling_rounds,
        cfg.tau,
        cfg.repeats,
        r.text_nodes,
        r.symbols,
        pair(&r.probe),
        pair(&r.sampling_loop),
        r.end_to_end_total.as_secs_f64() * 1e3,
        r.end_to_end_sampling.as_secs_f64() * 1e3,
        r.end_to_end_rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_is_consistent() {
        let cfg = JoinsBenchConfig {
            xmark: XmarkConfig::tiny(),
            probe_rounds: 1,
            sampling_rounds: 3,
            tau: 16,
            repeats: 1,
        };
        let r = run(&cfg);
        assert!(r.text_nodes > 0);
        assert!(r.symbols > 0);
        // Equivalence is asserted inside run(); here we only sanity-check
        // the serialized shape.
        let json = to_json(&cfg, &r);
        assert!(json.contains("\"probe_microbench\""));
        assert!(json.contains("\"sampling_loop\""));
        assert!(json.contains("\"end_to_end\""));
    }
}
