//! Deterministic work accounting and the physical-operator cost model.
//!
//! Every physical operator charges the tuples it touches to a [`Cost`]
//! counter following the cost column of Table 1 in the paper. The ROX
//! optimizer keeps two counters — execution work and sampling work — which
//! is how the experiments separate "full run" from "pure plan" time
//! (Figs. 6–8).
//!
//! This module also hosts [`choose_op`], the Table-1-style cost function
//! that maps an edge (kind + current input cardinalities + execution mode)
//! to the physical operator the kernel in [`crate::edgeop`] runs. Keeping
//! the choice in one auditable function is what guarantees sampling and
//! full execution can never disagree on operator selection.

use crate::edgeop::{EdgeClass, EdgeOpChoice, EdgeOpKind, ExecMode};

/// Crossover factor of the index nested-loop vs. hash value join (the
/// Table 1 cost comparison): with `|small|` outer probes against the inner
/// value index, the nested loop wins while
/// `|small| * NL_VS_HASH_FACTOR < |large|` — i.e. while the per-probe
/// index-lookup overhead is amortized by skipping the `|small| + |large|`
/// hash build/probe scan. The factor is deliberately conservative: the
/// hash join is only abandoned when the outer side is nearly an order of
/// magnitude smaller.
pub const NL_VS_HASH_FACTOR: usize = 8;

/// Is the index nested-loop value join cheaper than the hash join for a
/// `small`-sized outer against a `large`-sized inner? (Table 1 comparison;
/// see [`NL_VS_HASH_FACTOR`].)
#[inline]
pub fn nl_cheaper(small: usize, large: usize) -> bool {
    small * NL_VS_HASH_FACTOR < large
}

/// The explicit per-edge operator choice (the cost function of Table 1,
/// lifted out of the evaluation state so every phase — sampling,
/// chain-sampling, full execution, replay — consults the same rule).
///
/// * **Sampled mode** keeps the caller-fixed outer side (the sampled
///   endpoint) and always picks the zero-investment variant of the edge's
///   operator — a staircase step or the index nested-loop value join —
///   because only zero-investment operators admit cut-off execution
///   (§2.3).
/// * **Full mode** executes steps from the smaller side (the direction in
///   the graph is representational only, §2.1) and picks index-NL over
///   hash for value joins when one side is much smaller
///   ([`nl_cheaper`]).
pub fn choose_op(class: EdgeClass, n1: usize, n2: usize, mode: ExecMode) -> EdgeOpChoice {
    match mode {
        ExecMode::Sampled { outer_is_v1, .. } => EdgeOpChoice {
            kind: match class {
                EdgeClass::Step(_) => EdgeOpKind::StepJoin,
                EdgeClass::ValueJoin => EdgeOpKind::IndexNLValueJoin,
            },
            outer_is_v1,
        },
        ExecMode::Full => {
            let outer_is_v1 = n1 <= n2;
            let kind = match class {
                EdgeClass::Step(_) => EdgeOpKind::StepJoin,
                EdgeClass::ValueJoin => {
                    let (small, large) = if outer_is_v1 { (n1, n2) } else { (n2, n1) };
                    if nl_cheaper(small, large) {
                        EdgeOpKind::IndexNLValueJoin
                    } else {
                        EdgeOpKind::HashValueJoin
                    }
                }
            };
            EdgeOpChoice { kind, outer_is_v1 }
        }
    }
}

/// Physical kernel variants of the staircase join (see
/// [`crate::staircase`]). All three produce bit-identical pairs, order,
/// truncation, and cost charges; they differ only in how they *find*
/// matches, so picking between them is purely a wall-clock decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepKernel {
    /// The classic probe loop: walk the axis per context node and test
    /// each produced node against the sorted candidate list (binary
    /// search, range-pruned). Zero-investment; the only kernel sampled
    /// (cut-off) execution uses.
    Probe,
    /// One forward merge over the candidate list with galloping
    /// (exponential search) per context node: only candidates inside the
    /// context's subtree range are touched. Child/Attribute axes only.
    /// Zero-investment.
    Merge,
    /// The probe-loop walk with candidate membership answered by a
    /// [`PreSet`](rox_index::PreSet) bitset (one shift + mask instead of
    /// a binary search). Pays an `O(|S|)` set build unless the caller
    /// supplies a cached set, so full execution only.
    Bitset,
}

/// Merge-kernel engagement bound for Child/Attribute steps: the merge
/// kernel gallops to each context's subtree range and touches only the
/// candidates inside it, beating the per-child binary searches whenever
/// the candidate list is not much larger than the context. Engaged while
/// `|S| <= |C| * STEP_MERGE_FACTOR`.
pub const STEP_MERGE_FACTOR: usize = 1;

/// Bitset-kernel engagement bound: building (or resetting) the candidate
/// membership bitset costs `O(|S|)`, amortized by the `|C| * fanout`
/// membership probes that each drop from a binary search to one shift and
/// mask. Engaged while `|S| <= |C| * STEP_BITSET_FACTOR` (with at least
/// one expected probe per 8 candidate-set bits, the build pays for
/// itself on every real document shape we measured).
pub const STEP_BITSET_FACTOR: usize = 8;

/// Pick the staircase kernel for one `step_join` call (the Table-1-style
/// selection rule of the vectorized execution layer; see
/// [`crate::staircase`] for the kernel semantics):
///
/// | condition | kernel |
/// |---|---|
/// | sampled (cut-off) execution | [`StepKernel::Probe`] — zero-investment, and the cut-off's incremental probe charging is native to the walk |
/// | Descendant/Following/Preceding axes | [`StepKernel::Probe`] — these already scan a candidate range; there is no binary search to beat |
/// | Child/Attribute, `\|S\| <= \|C\|·`[`STEP_MERGE_FACTOR`] | [`StepKernel::Merge`] |
/// | any probing axis, `\|S\| <= \|C\|·`[`STEP_BITSET_FACTOR`] | [`StepKernel::Bitset`] |
/// | otherwise | [`StepKernel::Probe`] — context too small to amortize anything |
pub fn choose_step_kernel(
    axis: crate::axis::Axis,
    ctx_len: usize,
    cands_len: usize,
    sampled: bool,
) -> StepKernel {
    use crate::axis::Axis;
    if sampled || ctx_len == 0 || cands_len == 0 {
        return StepKernel::Probe;
    }
    match axis {
        // Range-scan axes: the probe loop is already a merge.
        Axis::Descendant | Axis::DescendantOrSelf | Axis::Following | Axis::Preceding => {
            StepKernel::Probe
        }
        Axis::Child | Axis::Attribute if cands_len <= ctx_len * STEP_MERGE_FACTOR => {
            StepKernel::Merge
        }
        _ if cands_len <= ctx_len * STEP_BITSET_FACTOR => StepKernel::Bitset,
        _ => StepKernel::Probe,
    }
}

/// Drift thresholds of the guarded plan replay (`rox-core`'s guard
/// module). A cached plan's recorded per-edge cardinalities are compared
/// against what the replay observes; the plan is demoted to a fresh
/// run-time optimization of the remaining edges when any check breaches.
///
/// | constant | value | role |
/// |---|---|---|
/// | [`DRIFT_RATIO`] | 4.0 | breach when observed/expected (or its inverse) exceeds this |
/// | [`DRIFT_ABS_FLOOR`] | 8.0 | both sides are floored here first — tiny absolute cardinalities never breach |
/// | [`REVALIDATE_SPOT_CHECKS`] | 2 | sampled pre-execution probes on the first K plan edges |
/// | [`REVALIDATE_SPOT_TAU`] | 32 | probe sample size per spot check (decoupled from the run's τ) |
/// | [`revalidation_budget`] | 64·τ | hard cap on the work those probes may charge |
///
/// The ratio is symmetric (growth and shrinkage both count: a plan tuned
/// for a big intermediate is as stale when the intermediate collapses) and
/// deliberately loose — the sampled side of a check carries sampling
/// noise, and a demotion costs a full re-optimization, so the guard only
/// fires on order-of-magnitude-class drift. The absolute floor keeps
/// 1-vs-5-row noise from ever demoting: below [`DRIFT_ABS_FLOOR`] rows,
/// any order is as good as any other.
pub const DRIFT_RATIO: f64 = 4.0;

/// Absolute floor applied to both sides of a drift comparison; see
/// [`DRIFT_RATIO`].
pub const DRIFT_ABS_FLOOR: f64 = 8.0;

/// Number of leading plan edges spot-checked by sampled probes before a
/// guarded replay starts executing; see [`DRIFT_RATIO`].
pub const REVALIDATE_SPOT_CHECKS: usize = 2;

/// Sample size of one spot-check probe. Deliberately small and *decoupled
/// from the run's τ*: the probe only needs to distinguish
/// order-of-magnitude-class drift (the [`DRIFT_RATIO`] bar), not rank
/// candidate operators, so a replay's guard cost stays flat as τ grows.
/// Bit-reproducibility is unaffected — the recorded expectation is
/// computed by the *same* probe procedure at seed time.
pub const REVALIDATE_SPOT_TAU: usize = 32;

/// Per-check work allowance factor: each spot check is a cut-off sampled
/// probe whose charge is `O(τ)`-class; 32·τ units of slack per check
/// absorb the fan-out-heavy outliers.
pub const REVALIDATE_BUDGET_PER_CHECK: usize = 32;

/// Hard cap on the sampling work ([`Cost::total`]) a guarded replay may
/// charge for its pre-execution spot checks:
/// [`REVALIDATE_SPOT_CHECKS`]` × `[`REVALIDATE_BUDGET_PER_CHECK`]` × τ`.
/// Checks stop (plan is trusted as-is) once the budget is spent.
pub fn revalidation_budget(tau: usize) -> u64 {
    (REVALIDATE_SPOT_CHECKS * REVALIDATE_BUDGET_PER_CHECK * tau.max(1)) as u64
}

/// Symmetric drift ratio between an observed and an expected cardinality,
/// with both sides floored at [`DRIFT_ABS_FLOOR`]. Always ≥ 1.
pub fn drift_ratio(observed: f64, expected: f64) -> f64 {
    let o = observed.max(DRIFT_ABS_FLOOR);
    let e = expected.max(DRIFT_ABS_FLOOR);
    if o >= e {
        o / e
    } else {
        e / o
    }
}

/// Does `observed` vs `expected` breach the [`DRIFT_RATIO`] threshold?
pub fn drift_breached(observed: f64, expected: f64) -> bool {
    drift_ratio(observed, expected) > DRIFT_RATIO
}

/// Accumulated operator work, in tuples touched.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Cost {
    /// Tuples read from operator inputs.
    pub tuples_in: u64,
    /// Tuples produced into operator outputs.
    pub tuples_out: u64,
    /// Index probes (binary searches / hash lookups).
    pub probes: u64,
}

impl Cost {
    /// A zeroed counter.
    pub fn new() -> Self {
        Cost::default()
    }

    /// Charge `n` input tuples.
    #[inline]
    pub fn charge_in(&mut self, n: usize) {
        self.tuples_in += n as u64;
    }

    /// Charge `n` output tuples.
    #[inline]
    pub fn charge_out(&mut self, n: usize) {
        self.tuples_out += n as u64;
    }

    /// Charge `n` index probes.
    #[inline]
    pub fn charge_probe(&mut self, n: usize) {
        self.probes += n as u64;
    }

    /// Total work units (the scalar the harnesses report alongside wall
    /// time).
    #[inline]
    pub fn total(&self) -> u64 {
        self.tuples_in + self.tuples_out + self.probes
    }

    /// Merge another counter into this one.
    pub fn add(&mut self, other: Cost) {
        self.tuples_in += other.tuples_in;
        self.tuples_out += other.tuples_out;
        self.probes += other.probes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let mut c = Cost::new();
        c.charge_in(10);
        c.charge_out(3);
        c.charge_probe(2);
        assert_eq!(c.total(), 15);
    }

    #[test]
    fn nl_vs_hash_crossover_is_pinned() {
        use crate::axis::Axis;
        // With a 10-node outer the crossover sits exactly at 80 inner
        // nodes: 10 * NL_VS_HASH_FACTOR = 80 is NOT strictly smaller than
        // 80 (hash), but is strictly smaller than 81 (index-NL).
        assert!(!nl_cheaper(10, 10 * NL_VS_HASH_FACTOR));
        assert!(nl_cheaper(10, 10 * NL_VS_HASH_FACTOR + 1));
        let at = choose_op(
            EdgeClass::ValueJoin,
            10,
            10 * NL_VS_HASH_FACTOR,
            ExecMode::Full,
        );
        assert_eq!(at.kind, EdgeOpKind::HashValueJoin);
        let above = choose_op(
            EdgeClass::ValueJoin,
            10,
            10 * NL_VS_HASH_FACTOR + 1,
            ExecMode::Full,
        );
        assert_eq!(above.kind, EdgeOpKind::IndexNLValueJoin);
        assert!(above.outer_is_v1);
        // Symmetric: the small side may be v2.
        let flipped = choose_op(
            EdgeClass::ValueJoin,
            10 * NL_VS_HASH_FACTOR + 1,
            10,
            ExecMode::Full,
        );
        assert_eq!(flipped.kind, EdgeOpKind::IndexNLValueJoin);
        assert!(!flipped.outer_is_v1);
        // Steps always use the staircase join, from the smaller side.
        let step = choose_op(EdgeClass::Step(Axis::Child), 5, 3, ExecMode::Full);
        assert_eq!(step.kind, EdgeOpKind::StepJoin);
        assert!(!step.outer_is_v1);
    }

    #[test]
    fn sampled_mode_keeps_forced_direction_and_zero_investment_ops() {
        use crate::axis::Axis;
        for outer_is_v1 in [true, false] {
            let mode = ExecMode::Sampled {
                limit: 7,
                outer_is_v1,
            };
            let s = choose_op(EdgeClass::Step(Axis::Descendant), 1000, 1, mode);
            assert_eq!(s.kind, EdgeOpKind::StepJoin);
            assert_eq!(s.outer_is_v1, outer_is_v1);
            // Even when hash would win at full scale, sampling stays on
            // the zero-investment index nested loop.
            let v = choose_op(EdgeClass::ValueJoin, 1000, 1000, mode);
            assert_eq!(v.kind, EdgeOpKind::IndexNLValueJoin);
            assert_eq!(v.outer_is_v1, outer_is_v1);
        }
    }

    #[test]
    fn drift_ratio_is_symmetric_and_floored() {
        // Symmetric: growth and shrinkage drift equally.
        assert_eq!(drift_ratio(100.0, 25.0), drift_ratio(25.0, 100.0));
        assert!(drift_breached(100.0, 20.0));
        assert!(drift_breached(20.0, 100.0));
        // At exactly the threshold nothing breaches (strict inequality).
        assert!(!drift_breached(100.0, 25.0));
        // The absolute floor absorbs tiny-cardinality noise: 1 row vs 6
        // rows is a 6x ratio but both sit under the floor.
        assert!(!drift_breached(1.0, 6.0));
        assert_eq!(drift_ratio(0.0, 0.0), 1.0);
        // Budget scales with tau and never hits zero.
        assert_eq!(
            revalidation_budget(100),
            (REVALIDATE_SPOT_CHECKS * REVALIDATE_BUDGET_PER_CHECK * 100) as u64
        );
        assert!(revalidation_budget(0) > 0);
    }

    #[test]
    fn add_merges() {
        let mut a = Cost {
            tuples_in: 1,
            tuples_out: 2,
            probes: 3,
        };
        a.add(Cost {
            tuples_in: 10,
            tuples_out: 20,
            probes: 30,
        });
        assert_eq!(
            a,
            Cost {
                tuples_in: 11,
                tuples_out: 22,
                probes: 33
            }
        );
    }
}
