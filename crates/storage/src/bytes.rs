//! Little-endian byte codec for snapshot segments.
//!
//! A *segment* is a logical byte stream stored across a contiguous run of
//! pages (each segment starts on a fresh page; its last page may be
//! partially filled). [`ByteWriter`] builds the stream in memory at save
//! time; [`SegmentReader`] replays it at open time by faulting the
//! underlying pages through the buffer pool one at a time — so decoding a
//! document pins at most one page, whatever the segment size.
//!
//! All integers are little-endian; `f64` travels as its raw bit pattern
//! (`to_bits`/`from_bits`), which keeps NaN payloads and signed zeros
//! bit-identical across a save/open roundtrip.

use crate::error::{Result, StorageError};
use crate::file::FileManager;
use crate::pool::{BufferPool, PageRef};

/// An in-memory little-endian byte stream builder.
#[derive(Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty stream.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its raw bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(u32::try_from(s.len()).expect("string too long for snapshot"));
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Append a length-prefixed `u32` slice.
    pub fn put_u32_slice(&mut self, vs: &[u32]) {
        self.put_u32(u32::try_from(vs.len()).expect("slice too long for snapshot"));
        for &v in vs {
            self.put_u32(v);
        }
    }

    /// The finished stream.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// A sequential reader over one segment, faulting pages through the pool.
pub struct SegmentReader<'a> {
    pool: &'a BufferPool,
    file: &'a FileManager,
    first_page: u32,
    len: u64,
    pos: u64,
    current: Option<(u32, PageRef<'a>)>,
}

impl<'a> SegmentReader<'a> {
    /// A reader over the `len` bytes starting at `first_page`.
    pub fn new(pool: &'a BufferPool, file: &'a FileManager, first_page: u32, len: u64) -> Self {
        SegmentReader {
            pool,
            file,
            first_page,
            len,
            pos: 0,
            current: None,
        }
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> u64 {
        self.len - self.pos
    }

    /// Fill `out` from the stream, faulting pages as needed.
    pub fn read_exact(&mut self, out: &mut [u8]) -> Result<()> {
        let payload = self.file.payload_per_page() as u64;
        let mut written = 0;
        while written < out.len() {
            if self.pos >= self.len {
                return Err(StorageError::Format(format!(
                    "segment truncated: wanted {} more bytes at offset {}",
                    out.len() - written,
                    self.pos
                )));
            }
            let page_id = self.first_page + (self.pos / payload) as u32;
            let in_page = (self.pos % payload) as usize;
            if self.current.as_ref().map(|(id, _)| *id) != Some(page_id) {
                // Unpin the previous page first: with a single-frame pool
                // the old pin would otherwise block its own replacement.
                self.current = None;
                let page = self.pool.fetch(self.file, page_id)?;
                self.current = Some((page_id, page));
            }
            let data: &[u8] = self.current.as_ref().map(|(_, p)| &**p).unwrap();
            if in_page >= data.len() {
                return Err(StorageError::Corrupt {
                    page: page_id,
                    reason: format!(
                        "payload of {} bytes shorter than segment offset {in_page}",
                        data.len()
                    ),
                });
            }
            let take = (data.len() - in_page)
                .min(out.len() - written)
                .min((self.len - self.pos) as usize);
            out[written..written + take].copy_from_slice(&data[in_page..in_page + take]);
            written += take;
            self.pos += take as u64;
        }
        Ok(())
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        let mut b = [0u8; 1];
        self.read_exact(&mut b)?;
        Ok(b[0])
    }

    /// Read a `u16`.
    pub fn get_u16(&mut self) -> Result<u16> {
        let mut b = [0u8; 2];
        self.read_exact(&mut b)?;
        Ok(u16::from_le_bytes(b))
    }

    /// Read a `u32`.
    pub fn get_u32(&mut self) -> Result<u32> {
        let mut b = [0u8; 4];
        self.read_exact(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Read a `u64`.
    pub fn get_u64(&mut self) -> Result<u64> {
        let mut b = [0u8; 8];
        self.read_exact(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Read an `f64` from its raw bit pattern.
    pub fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String> {
        let len = self.get_u32()? as u64;
        if len > self.remaining() {
            return Err(StorageError::Format(format!(
                "string of {len} bytes exceeds remaining segment"
            )));
        }
        let mut bytes = vec![0u8; len as usize];
        self.read_exact(&mut bytes)?;
        String::from_utf8(bytes)
            .map_err(|e| StorageError::Format(format!("invalid UTF-8 in snapshot string: {e}")))
    }

    /// Read a run of `n` `u8`s in one bulk copy.
    pub fn get_u8_run(&mut self, n: usize) -> Result<Vec<u8>> {
        if n as u64 > self.remaining() {
            return Err(StorageError::Format(format!(
                "u8 run of {n} entries exceeds remaining segment"
            )));
        }
        let mut bytes = vec![0u8; n];
        self.read_exact(&mut bytes)?;
        Ok(bytes)
    }

    /// Read a run of `n` `u16`s in one bulk copy.
    pub fn get_u16_run(&mut self, n: usize) -> Result<Vec<u16>> {
        if n as u64 * 2 > self.remaining() {
            return Err(StorageError::Format(format!(
                "u16 run of {n} entries exceeds remaining segment"
            )));
        }
        let mut bytes = vec![0u8; n * 2];
        self.read_exact(&mut bytes)?;
        Ok(bytes
            .chunks_exact(2)
            .map(|c| u16::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Read a run of `n` `u32`s in one bulk copy (no length prefix —
    /// the caller knows the count).
    pub fn get_u32_run(&mut self, n: usize) -> Result<Vec<u32>> {
        if n as u64 * 4 > self.remaining() {
            return Err(StorageError::Format(format!(
                "u32 run of {n} entries exceeds remaining segment"
            )));
        }
        let mut bytes = vec![0u8; n * 4];
        self.read_exact(&mut bytes)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Read a length-prefixed `u32` vector.
    pub fn get_u32_vec(&mut self) -> Result<Vec<u32>> {
        let len = self.get_u32()? as u64;
        if len * 4 > self.remaining() {
            return Err(StorageError::Format(format!(
                "u32 run of {len} entries exceeds remaining segment"
            )));
        }
        let mut bytes = vec![0u8; len as usize * 4];
        self.read_exact(&mut bytes)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::{encode_page, PAGE_HEADER};
    use std::io::Write;

    /// Write `stream` as a page file with tiny pages so multi-page reads
    /// are exercised, returning the segment length.
    fn stream_file(
        name: &str,
        stream: &[u8],
        page_size: usize,
    ) -> (std::path::PathBuf, FileManager, u64) {
        let mut path = std::env::temp_dir();
        path.push(format!("rox-storage-bytes-{}-{name}", std::process::id()));
        let payload = page_size - PAGE_HEADER;
        let mut f = std::fs::File::create(&path).unwrap();
        let mut pages = 0u32;
        for chunk in stream.chunks(payload) {
            f.write_all(&encode_page(pages, chunk, page_size)).unwrap();
            pages += 1;
        }
        if stream.is_empty() {
            f.write_all(&encode_page(0, &[], page_size)).unwrap();
            pages = 1;
        }
        drop(f);
        let fm = FileManager::new(std::fs::File::open(&path).unwrap(), page_size, pages);
        (path, fm, stream.len() as u64)
    }

    #[test]
    fn values_roundtrip_across_page_boundaries() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u16(0xBEEF);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_f64(-0.0);
        w.put_f64(f64::NAN);
        w.put_str("staircase");
        w.put_u32_slice(&[1, 2, 3, u32::MAX]);
        let stream = w.into_bytes();
        // 24-byte pages = 8-byte payloads: every value spans pages.
        let (path, fm, len) = stream_file("values", &stream, 24);
        let pool = BufferPool::new(2);
        let mut r = SegmentReader::new(&pool, &fm, 0, len);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u16().unwrap(), 0xBEEF);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.get_f64().unwrap().is_nan());
        assert_eq!(r.get_str().unwrap(), "staircase");
        assert_eq!(r.get_u32_vec().unwrap(), vec![1, 2, 3, u32::MAX]);
        assert_eq!(r.remaining(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_segment_errors_cleanly() {
        let mut w = ByteWriter::new();
        w.put_u32(42);
        let stream = w.into_bytes();
        let (path, fm, _) = stream_file("truncated", &stream, 64);
        let pool = BufferPool::new(2);
        // Claim the segment is longer than it is: the reader must fail on
        // the short page, not fabricate bytes.
        let mut r = SegmentReader::new(&pool, &fm, 0, 100);
        assert_eq!(r.get_u32().unwrap(), 42);
        assert!(r.get_u32().is_err());
        // And a reader that runs off the declared length errors too.
        let mut r2 = SegmentReader::new(&pool, &fm, 0, 4);
        assert_eq!(r2.get_u32().unwrap(), 42);
        assert!(r2.get_u8().is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn absurd_length_prefixes_are_rejected() {
        let mut w = ByteWriter::new();
        w.put_u32(u32::MAX); // a length prefix pointing far past the segment
        let stream = w.into_bytes();
        let (path, fm, len) = stream_file("absurd", &stream, 64);
        let pool = BufferPool::new(2);
        let mut r = SegmentReader::new(&pool, &fm, 0, len);
        assert!(r.get_str().is_err());
        let mut r2 = SegmentReader::new(&pool, &fm, 0, len);
        assert!(r2.get_u32_vec().is_err());
        std::fs::remove_file(&path).ok();
    }
}
