//! The scratch pool: recycled buffers for the full-execution spine.
//!
//! Every full edge execution used to allocate the same shapes over and
//! over: a pair buffer for the staircase/value-join output, a `(v1, v2)`
//! node-pair buffer for orientation, one column vector per relation
//! attribute, a distinct-nodes vector per refreshed `T(v)`, and a
//! [`PreSet`] universe per bitset kernel. [`ScratchPool`] keeps a
//! free-list per shape so a long-lived engine leases and returns them
//! instead: once a query shape has been served, a repeat of it (the warm
//! plan-replay path) draws **every** pooled buffer from the free-lists and
//! allocates nothing new — the property the engine proptest pins via the
//! miss counter of [`ScratchPool::stats`].
//!
//! Design rules:
//!
//! * **Manual lease/return.** Buffers are plain `Vec`s (and `PreSet`s)
//!   handed out by value; callers return them when done. No guard types —
//!   the lease frequently crosses function boundaries (kernel → state →
//!   relation), where a drop guard would fight the borrow checker for no
//!   gain. A buffer that is *not* returned is simply dropped; the pool
//!   stays correct, it just re-allocates on the next lease.
//! * **Returned buffers are cleared** on the way in, so a lease is always
//!   an empty buffer with whatever capacity its history earned it.
//! * **Bounded.** Each free-list is capped in count
//!   ([`MAX_POOLED_PER_SHAPE`]) *and* per-buffer capacity
//!   ([`MAX_POOLED_BUF_CAPACITY`] elements / bitset words): returns
//!   beyond either bound are dropped, so neither pathological query
//!   volume nor one huge query can pin a long-lived engine's idle
//!   footprint.
//! * **Thread-safe, never blocking.** Free-lists sit behind mutexes
//!   acquired with `try_lock`: a contended lease simply allocates (and
//!   counts as a miss), a contended return drops the buffer. Leases
//!   happen per edge execution (or per morsel), not per tuple, so
//!   contention is rare — and when it does happen, worker threads pay an
//!   allocation instead of serializing on a lock.
//!
//! Reuse never changes results: a leased buffer is observationally a fresh
//! empty one, and cost counters are charged by the operators, never by the
//! pool.

use rox_index::PreSet;
use rox_xmldb::Pre;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Cap on the number of buffers each free-list retains; returns past the
/// cap are dropped (bounding a long-lived engine's idle footprint).
pub const MAX_POOLED_PER_SHAPE: usize = 64;

/// Cap on the *capacity* (elements for `Vec`s, 64-bit words for
/// [`PreSet`]s) a returned buffer may retain: clearing a `Vec` keeps its
/// allocation, so without this bound one huge query would pin
/// maximum-size buffers in the pool for the engine's lifetime. 1 Mi
/// elements ≈ 4 MiB for the `u32`-element shapes.
pub const MAX_POOLED_BUF_CAPACITY: usize = 1 << 20;

/// Cumulative lease counters of one pool (monotone; never reset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Total leases served (hits + misses).
    pub leases: u64,
    /// Leases that had to allocate because the free-list was empty.
    pub misses: u64,
}

impl PoolStats {
    /// Leases served from the free-lists.
    pub fn hits(&self) -> u64 {
        self.leases - self.misses
    }
}

/// A shape-keyed free-list of scratch buffers shared by one engine (or one
/// standalone environment). See the module docs for the lease contract.
#[derive(Debug, Default)]
pub struct ScratchPool {
    /// `Vec<Pre>`: base-list copies, distinct `T(v)` refreshes, relation
    /// columns (a column is a `Vec<Pre>` since the columnar relation
    /// layout), CSR row-index scratch.
    pres: Mutex<Vec<Vec<Pre>>>,
    /// `(row, node)` pair buffers — the staircase / value-join output.
    pairs: Mutex<Vec<Vec<(u32, Pre)>>>,
    /// `(v1 node, v2 node)` pair buffers — oriented full-join output.
    node_pairs: Mutex<Vec<Vec<(Pre, Pre)>>>,
    /// Row-keep flags for selections.
    flags: Mutex<Vec<Vec<bool>>>,
    /// Bitset universes for the bitset step kernel and value-join filters.
    sets: Mutex<Vec<PreSet>>,
    leases: AtomicU64,
    misses: AtomicU64,
}

impl ScratchPool {
    /// An empty pool.
    pub fn new() -> Self {
        ScratchPool::default()
    }

    fn count(&self, missed: bool) {
        self.leases.fetch_add(1, Ordering::Relaxed);
        if missed {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn lease_from<T>(&self, list: &Mutex<Vec<T>>, new: impl FnOnce() -> T) -> T {
        // Contended lease: allocate instead of blocking (counted as a
        // miss — it is one).
        let got = list.try_lock().ok().and_then(|mut list| list.pop());
        self.count(got.is_none());
        got.unwrap_or_else(new)
    }

    /// `capacity` is the buffer's retained allocation in its own units;
    /// oversized buffers are dropped (see [`MAX_POOLED_BUF_CAPACITY`]).
    fn return_to<T>(&self, list: &Mutex<Vec<T>>, value: T, capacity: usize) {
        if capacity > MAX_POOLED_BUF_CAPACITY {
            return;
        }
        // Contended return: drop the buffer instead of blocking.
        if let Ok(mut list) = list.try_lock() {
            if list.len() < MAX_POOLED_PER_SHAPE {
                list.push(value);
            }
        }
    }

    /// Lease an empty `Vec<Pre>` (node lists, relation columns).
    pub fn lease_pres(&self) -> Vec<Pre> {
        self.lease_from(&self.pres, Vec::new)
    }

    /// Return a `Vec<Pre>`; it is cleared on the way in.
    pub fn give_pres(&self, mut buf: Vec<Pre>) {
        buf.clear();
        let cap = buf.capacity();
        self.return_to(&self.pres, buf, cap);
    }

    /// Lease an empty `(row, node)` pair buffer.
    pub fn lease_pairs(&self) -> Vec<(u32, Pre)> {
        self.lease_from(&self.pairs, Vec::new)
    }

    /// Return a `(row, node)` pair buffer.
    pub fn give_pairs(&self, mut buf: Vec<(u32, Pre)>) {
        buf.clear();
        let cap = buf.capacity();
        self.return_to(&self.pairs, buf, cap);
    }

    /// Lease an empty `(v1, v2)` node-pair buffer.
    pub fn lease_node_pairs(&self) -> Vec<(Pre, Pre)> {
        self.lease_from(&self.node_pairs, Vec::new)
    }

    /// Return a `(v1, v2)` node-pair buffer.
    pub fn give_node_pairs(&self, mut buf: Vec<(Pre, Pre)>) {
        buf.clear();
        let cap = buf.capacity();
        self.return_to(&self.node_pairs, buf, cap);
    }

    /// Lease an empty row-flag buffer.
    pub fn lease_flags(&self) -> Vec<bool> {
        self.lease_from(&self.flags, Vec::new)
    }

    /// Return a row-flag buffer.
    pub fn give_flags(&self, mut buf: Vec<bool>) {
        buf.clear();
        let cap = buf.capacity();
        self.return_to(&self.flags, buf, cap);
    }

    /// Lease a [`PreSet`] reset to `universe` with `nodes` inserted —
    /// observationally `PreSet::from_nodes(universe, nodes)` over a
    /// recycled word buffer.
    pub fn lease_set(&self, universe: usize, nodes: &[Pre]) -> PreSet {
        let mut set = self.lease_from(&self.sets, PreSet::default);
        set.reset_from_nodes(universe, nodes);
        set
    }

    /// Return a [`PreSet`] universe.
    pub fn give_set(&self, set: PreSet) {
        let cap = set.word_capacity();
        self.return_to(&self.sets, set, cap);
    }

    /// Cumulative lease counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            leases: self.leases.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_recycles_capacity_and_counts() {
        let pool = ScratchPool::new();
        let mut buf = pool.lease_pres();
        assert_eq!(
            pool.stats(),
            PoolStats {
                leases: 1,
                misses: 1
            }
        );
        buf.extend_from_slice(&[1, 2, 3]);
        let cap = buf.capacity();
        pool.give_pres(buf);
        let again = pool.lease_pres();
        assert!(again.is_empty());
        assert_eq!(again.capacity(), cap, "capacity must survive the pool");
        let stats = pool.stats();
        assert_eq!(stats.leases, 2);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits(), 1);
    }

    #[test]
    fn set_lease_matches_fresh_build() {
        let pool = ScratchPool::new();
        let nodes: Vec<Pre> = vec![1, 64, 127];
        let set = pool.lease_set(128, &nodes);
        for p in 0..130u32 {
            assert_eq!(set.contains(p), nodes.contains(&p), "node {p}");
        }
        pool.give_set(set);
        // Reuse with a different (smaller) universe: out-of-universe
        // probes must answer false again.
        let set = pool.lease_set(2, &[0]);
        assert!(set.contains(0));
        assert!(!set.contains(64), "stale bit survived the reset");
        assert_eq!(pool.stats().misses, 1, "second set lease must reuse");
    }

    #[test]
    fn free_lists_are_bounded() {
        let pool = ScratchPool::new();
        for _ in 0..(MAX_POOLED_PER_SHAPE + 10) {
            pool.give_flags(vec![true; 8]);
        }
        let mut served = 0;
        loop {
            pool.lease_flags();
            served += 1;
            if pool.stats().misses > 1 {
                break;
            }
        }
        // MAX_POOLED_PER_SHAPE pooled buffers, then allocation.
        assert_eq!(served, MAX_POOLED_PER_SHAPE + 2);
    }
}
