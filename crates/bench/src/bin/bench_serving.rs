//! Open-loop serving benchmark binary: Zipf-skewed Poisson traffic fired
//! at one engine through the bounded admission queue, reporting
//! p50/p99/p999 latency, achieved QPS, queue depth, and rejection rate.
//! Writes the machine-readable `BENCH_serving.json` consumed by CI.
//!
//! ```text
//! cargo run --release -p rox-bench --bin bench_serving -- \
//!     [--smoke] [--out BENCH_serving.json] [--persons 3000] [--items 2500] \
//!     [--auctions 2500] [--queries 6] [--tau 100] [--zipf 1.1] \
//!     [--workers N] [--seed 42] [--steady-qps 100] [--overload-qps 900]
//! ```

use rox_bench::args::Args;
use rox_bench::serving::{self, ServingBenchConfig, ServingScenario};

fn main() {
    let args = Args::from_env();
    let smoke = args.has("smoke");
    let mut cfg = if smoke {
        ServingBenchConfig::smoke()
    } else {
        ServingBenchConfig::default()
    };
    cfg.xmark.persons = args.get("persons", cfg.xmark.persons);
    cfg.xmark.items = args.get("items", cfg.xmark.items);
    cfg.xmark.auctions = args.get("auctions", cfg.xmark.auctions);
    cfg.queries = args.get("queries", cfg.queries);
    cfg.tau = args.get("tau", cfg.tau);
    cfg.zipf_s = args.get("zipf", cfg.zipf_s);
    cfg.workers = args.get("workers", cfg.workers);
    cfg.seed = args.get("seed", cfg.seed);

    let mut steady = ServingScenario::steady(smoke);
    steady.arrival_qps = args.get("steady-qps", steady.arrival_qps);
    let mut overload = ServingScenario::overload(smoke);
    overload.arrival_qps = args.get("overload-qps", overload.arrival_qps);
    let out_path = args.get("out", "BENCH_serving.json".to_string());

    println!(
        "open-loop serving bench — XMark persons={} items={} auctions={}, {} shapes, zipf s={}, {} pool workers",
        cfg.xmark.persons, cfg.xmark.items, cfg.xmark.auctions, cfg.queries, cfg.zipf_s, cfg.workers
    );
    let r = serving::run(&cfg, &[steady, overload]);
    print!("{}", serving::render(&r));

    let json = serving::to_json(&cfg, &r);
    std::fs::write(&out_path, &json).expect("write BENCH_serving.json");
    println!("\nwrote {out_path}");
}
