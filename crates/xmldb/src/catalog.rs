//! The document catalog: maps `fn:doc(url)` URIs to loaded documents.
//!
//! In XQuery the documents a query touches may only become known at
//! run-time (`fn:doc` takes a run-time parameter) — one of the paper's
//! arguments for run-time optimization (§1). The catalog is the run-time
//! component that resolves those URIs. All documents registered in one
//! catalog share a single string [`Interner`], so cross-document value
//! joins can compare interned symbols instead of strings.

use crate::doc::{Document, DocumentBuilder};
use crate::interner::Interner;
use crate::parser::{ParseError, XmlEvent, XmlParser};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A dense document identifier assigned by the catalog at load time.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DocId(pub u32);

impl DocId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for DocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "doc#{}", self.0)
    }
}

/// A thread-safe collection of loaded documents sharing one interner.
pub struct Catalog {
    interner: Arc<Interner>,
    inner: RwLock<CatalogInner>,
}

#[derive(Default)]
struct CatalogInner {
    /// `None` marks a slot reserved by [`Catalog::reserve`] whose document
    /// has not been made resident yet (snapshot-backed catalogs fault
    /// documents in on first touch via [`Catalog::fill`]).
    docs: Vec<Option<Arc<Document>>>,
    by_uri: HashMap<String, DocId>,
}

impl Default for Catalog {
    fn default() -> Self {
        Self::new()
    }
}

impl Catalog {
    /// Create an empty catalog.
    pub fn new() -> Self {
        Self::with_interner(Arc::new(Interner::new()))
    }

    /// Create an empty catalog around an existing interner — the snapshot
    /// open path restores the symbol heap first and hands it here, so the
    /// symbols referenced by lazily decoded documents resolve identically.
    pub fn with_interner(interner: Arc<Interner>) -> Self {
        Catalog {
            interner,
            inner: RwLock::new(CatalogInner::default()),
        }
    }

    /// The interner shared by all documents of this catalog.
    pub fn interner(&self) -> &Arc<Interner> {
        &self.interner
    }

    /// Parse `input` and register it under `uri`.
    ///
    /// Re-loading an existing URI replaces the document but keeps its id.
    pub fn load_str(&self, uri: &str, input: &str) -> Result<DocId, ParseError> {
        let doc = self.parse_with_shared_interner(uri, input)?;
        Ok(self.insert(uri, doc))
    }

    /// Register an already-built document under `uri`.
    pub fn insert(&self, uri: &str, doc: Arc<Document>) -> DocId {
        let mut inner = self.inner.write();
        if let Some(&id) = inner.by_uri.get(uri) {
            inner.docs[id.index()] = Some(doc.with_id(id));
            return id;
        }
        let id = DocId(u32::try_from(inner.docs.len()).expect("catalog overflow"));
        inner.docs.push(Some(doc.with_id(id)));
        inner.by_uri.insert(uri.to_string(), id);
        id
    }

    /// Reserve an id for `uri` without making a document resident — the
    /// snapshot open path registers every stored URI up front (so
    /// `fn:doc` resolution works immediately) and faults content in later
    /// through [`Catalog::fill`]. Reserving an already registered URI
    /// returns its existing id and leaves any resident document alone.
    pub fn reserve(&self, uri: &str) -> DocId {
        let mut inner = self.inner.write();
        if let Some(&id) = inner.by_uri.get(uri) {
            return id;
        }
        let id = DocId(u32::try_from(inner.docs.len()).expect("catalog overflow"));
        inner.docs.push(None);
        inner.by_uri.insert(uri.to_string(), id);
        id
    }

    /// The resident document at `id`, or `None` for a reserved slot whose
    /// content has not been faulted in (or an id this catalog never
    /// issued).
    pub fn get(&self, id: DocId) -> Option<Arc<Document>> {
        self.inner.read().docs.get(id.index())?.clone()
    }

    /// Make a document resident in a reserved slot. Under a first-touch
    /// race the first fill wins and every caller gets the winner — the
    /// same memoization contract the index store uses.
    ///
    /// # Panics
    /// Panics on an id not issued by this catalog.
    pub fn fill(&self, id: DocId, doc: Arc<Document>) -> Arc<Document> {
        let mut inner = self.inner.write();
        let slot = &mut inner.docs[id.index()];
        match slot {
            Some(resident) => Arc::clone(resident),
            None => {
                let doc = doc.with_id(id);
                *slot = Some(Arc::clone(&doc));
                doc
            }
        }
    }

    /// Drop the resident document at `id`, returning whether one was
    /// resident. The reservation itself (id and URI) stays — a
    /// snapshot-backed store faults the content back in on the next touch.
    /// A no-op (returning `false`) for ids this catalog never issued.
    pub fn evict(&self, id: DocId) -> bool {
        let mut inner = self.inner.write();
        match inner.docs.get_mut(id.index()) {
            Some(slot) => slot.take().is_some(),
            None => false,
        }
    }

    /// Builder bound to this catalog's interner; [`Catalog::insert`] the result.
    pub fn builder(&self, uri: &str) -> DocumentBuilder {
        DocumentBuilder::with_interner(uri, Arc::clone(&self.interner))
    }

    /// Resolve a URI to its document id (`fn:doc` semantics).
    pub fn resolve(&self, uri: &str) -> Option<DocId> {
        self.inner.read().by_uri.get(uri).copied()
    }

    /// Fetch a document by id.
    ///
    /// # Panics
    /// Panics on an id not issued by this catalog, or on a reserved slot
    /// whose document is not resident (snapshot-backed access goes through
    /// the index store, which faults pages in instead of calling this).
    pub fn doc(&self, id: DocId) -> Arc<Document> {
        self.inner.read().docs[id.index()]
            .clone()
            .unwrap_or_else(|| panic!("document {id:?} is not resident"))
    }

    /// Fetch a document by URI (`None` for unknown URIs and non-resident
    /// reserved slots).
    pub fn doc_by_uri(&self, uri: &str) -> Option<Arc<Document>> {
        let inner = self.inner.read();
        inner
            .by_uri
            .get(uri)
            .and_then(|id| inner.docs[id.index()].clone())
    }

    /// Number of loaded documents.
    pub fn len(&self) -> usize {
        self.inner.read().docs.len()
    }

    /// True when no documents are loaded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All loaded document ids, in load order.
    pub fn doc_ids(&self) -> Vec<DocId> {
        (0..self.len() as u32).map(DocId).collect()
    }

    fn parse_with_shared_interner(
        &self,
        uri: &str,
        input: &str,
    ) -> Result<Arc<Document>, ParseError> {
        let mut parser = XmlParser::new(input);
        let mut builder = self.builder(uri);
        let mut pending: Option<String> = None;
        let flush = |builder: &mut DocumentBuilder, pending: &mut Option<String>| {
            if let Some(t) = pending.take() {
                if !t.trim().is_empty() {
                    builder.text(&t);
                }
            }
        };
        while let Some(ev) = parser.next_event()? {
            match ev {
                XmlEvent::Text(t) => match &mut pending {
                    Some(acc) => acc.push_str(&t),
                    None => pending = Some(t),
                },
                XmlEvent::StartElement {
                    name,
                    attributes,
                    self_closing,
                } => {
                    flush(&mut builder, &mut pending);
                    builder.start_element(&name);
                    for (n, v) in &attributes {
                        builder.attribute(n, v);
                    }
                    if self_closing {
                        builder.end_element();
                    }
                }
                XmlEvent::EndElement { .. } => {
                    flush(&mut builder, &mut pending);
                    builder.end_element();
                }
                XmlEvent::Comment(c) => {
                    flush(&mut builder, &mut pending);
                    builder.comment(&c);
                }
                XmlEvent::ProcessingInstruction { target, data } => {
                    flush(&mut builder, &mut pending);
                    builder.processing_instruction(&target, &data);
                }
            }
        }
        Ok(Arc::new(builder.finish(DocId(0))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_and_resolve() {
        let cat = Catalog::new();
        let id = cat.load_str("a.xml", "<a><b/></a>").unwrap();
        assert_eq!(cat.resolve("a.xml"), Some(id));
        assert_eq!(cat.doc(id).uri(), "a.xml");
        assert_eq!(cat.doc(id).id(), id);
    }

    #[test]
    fn documents_share_the_interner() {
        let cat = Catalog::new();
        let a = cat.load_str("a.xml", "<x>shared</x>").unwrap();
        let b = cat.load_str("b.xml", "<y>shared</y>").unwrap();
        let da = cat.doc(a);
        let db = cat.doc(b);
        // The text value "shared" got the same symbol in both documents.
        assert_eq!(da.value(2), db.value(2));
    }

    #[test]
    fn reload_keeps_id() {
        let cat = Catalog::new();
        let id = cat.load_str("a.xml", "<a/>").unwrap();
        let id2 = cat.load_str("a.xml", "<a><b/></a>").unwrap();
        assert_eq!(id, id2);
        assert_eq!(cat.doc(id).node_count(), 3);
        assert_eq!(cat.len(), 1);
    }

    #[test]
    fn unknown_uri_resolves_to_none() {
        let cat = Catalog::new();
        assert_eq!(cat.resolve("missing.xml"), None);
        assert!(cat.doc_by_uri("missing.xml").is_none());
    }

    #[test]
    fn multiple_documents_get_distinct_ids() {
        let cat = Catalog::new();
        let a = cat.load_str("a.xml", "<a/>").unwrap();
        let b = cat.load_str("b.xml", "<b/>").unwrap();
        assert_ne!(a, b);
        assert_eq!(cat.doc_ids(), vec![a, b]);
    }

    #[test]
    fn reserve_and_fill_fault_documents_in() {
        let cat = Catalog::new();
        let id = cat.reserve("lazy.xml");
        assert_eq!(cat.resolve("lazy.xml"), Some(id));
        assert!(cat.get(id).is_none());
        assert!(cat.doc_by_uri("lazy.xml").is_none());
        assert_eq!(cat.len(), 1);
        // Reserving again is idempotent.
        assert_eq!(cat.reserve("lazy.xml"), id);
        let mut b = cat.builder("lazy.xml");
        b.start_element("a");
        b.end_element();
        let filled = cat.fill(id, Arc::new(b.finish(DocId(0))));
        assert_eq!(filled.id(), id);
        assert!(Arc::ptr_eq(&cat.doc(id), &filled));
        // First fill wins: a second fill returns the resident document.
        let mut b2 = cat.builder("lazy.xml");
        b2.start_element("b");
        b2.end_element();
        let loser = cat.fill(id, Arc::new(b2.finish(DocId(0))));
        assert!(Arc::ptr_eq(&loser, &filled));
    }

    #[test]
    fn evict_drops_residency_but_keeps_the_reservation() {
        let cat = Catalog::new();
        let id = cat.load_str("a.xml", "<a/>").unwrap();
        assert!(cat.evict(id));
        assert!(!cat.evict(id)); // already gone
        assert_eq!(cat.resolve("a.xml"), Some(id));
        assert!(cat.get(id).is_none());
        // Refilling works like any reserved slot.
        let mut b = cat.builder("a.xml");
        b.start_element("a");
        b.end_element();
        cat.fill(id, Arc::new(b.finish(DocId(0))));
        assert!(cat.get(id).is_some());
        // Unknown ids are a no-op.
        assert!(!cat.evict(DocId(99)));
    }

    #[test]
    #[should_panic(expected = "not resident")]
    fn doc_panics_on_unfilled_reservation() {
        let cat = Catalog::new();
        let id = cat.reserve("lazy.xml");
        let _ = cat.doc(id);
    }

    #[test]
    fn with_interner_shares_symbols() {
        let i = Arc::new(crate::interner::Interner::new());
        let pre = i.intern("shared");
        let cat = Catalog::with_interner(Arc::clone(&i));
        let id = cat.load_str("a.xml", "<x>shared</x>").unwrap();
        assert_eq!(cat.doc(id).value(2), pre);
    }

    #[test]
    fn builder_insert_roundtrip() {
        let cat = Catalog::new();
        let mut b = cat.builder("gen.xml");
        b.start_element("root");
        b.leaf("author", "Codd");
        b.end_element();
        let id = cat.insert("gen.xml", Arc::new(b.finish(DocId(0))));
        let d = cat.doc(id);
        d.check_invariants().unwrap();
        assert_eq!(d.string_value(0), "Codd");
    }
}
