//! Figure 7 benchmark: the same ROX query at growing document scales —
//! wall time should grow roughly linearly while the plan stays optimal.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rox_core::{run_rox_with_env, RoxEnv, RoxOptions};
use rox_datagen::{dblp_query, venue_index};
use std::hint::black_box;
use std::sync::Arc;

fn bench_scaling(c: &mut Criterion) {
    let combo = [
        venue_index("VLDB"),
        venue_index("ICDE"),
        venue_index("ICIP"),
        venue_index("ADBIS"),
    ];
    let graph = rox_joingraph::compile_query(&dblp_query(&combo)).unwrap();
    let mut group = c.benchmark_group("fig7_scaling");
    for scale in [1usize, 4, 10] {
        let setup = rox_bench::dblp_catalog(scale, 0.05, 17);
        let env = RoxEnv::new(Arc::clone(&setup.catalog), &graph).unwrap();
        group.throughput(Throughput::Elements(scale as u64));
        group.bench_with_input(BenchmarkId::from_parameter(scale), &scale, |b, _| {
            b.iter(|| black_box(run_rox_with_env(&env, &graph, RoxOptions::default()).unwrap()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_scaling
}
criterion_main!(benches);
