//! Lifecycle tests for the always-on worker pool: shutdown joins workers,
//! panics are contained to the failing task, and nested fan-out from
//! inside a pool worker can never deadlock.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rox_par::{par_map, WorkerPool};

/// Dropping the pool joins every worker thread: jobs submitted before the
/// drop either ran or were discarded, and nothing runs afterwards.
#[test]
fn shutdown_on_drop_joins_all_workers() {
    let ran = Arc::new(AtomicUsize::new(0));
    let pool = WorkerPool::new(3);
    for _ in 0..32 {
        let ran = Arc::clone(&ran);
        pool.execute(move || {
            ran.fetch_add(1, Ordering::SeqCst);
        });
    }
    drop(pool); // blocks until all three workers have exited
    let after_drop = ran.load(Ordering::SeqCst);
    assert!(after_drop <= 32);
    // No worker thread survives the drop, so the count can never move again.
    std::thread::sleep(Duration::from_millis(50));
    assert_eq!(ran.load(Ordering::SeqCst), after_drop);
}

/// A panicking par_map task resumes its panic on the caller — after every
/// other task has still run — and the pool keeps serving afterwards.
#[test]
fn panicking_task_fails_only_its_job() {
    let pool = Arc::new(WorkerPool::new(2));
    let completed = Arc::new(AtomicUsize::new(0));
    let c = Arc::clone(&completed);
    let p = Arc::clone(&pool);
    let result = std::panic::catch_unwind(move || {
        p.par_map(4, 64, |i| {
            if i == 17 {
                panic!("task 17 exploded");
            }
            c.fetch_add(1, Ordering::SeqCst);
            i
        })
    });
    assert!(result.is_err(), "the panic must reach the par_map caller");
    // Panic containment: the other 63 tasks all ran to completion.
    assert_eq!(completed.load(Ordering::SeqCst), 63);
    // The pool itself survived: both batch and job paths still work.
    assert_eq!(
        pool.par_map(4, 8, |i| i * 2),
        vec![0, 2, 4, 6, 8, 10, 12, 14]
    );
    let (tx, rx) = std::sync::mpsc::channel();
    pool.execute(move || tx.send(42usize).unwrap());
    assert_eq!(rx.recv_timeout(Duration::from_secs(10)).unwrap(), 42);
}

/// A panicking `execute` job is caught in the worker loop; the worker
/// survives and keeps draining its deque.
#[test]
fn panicking_job_does_not_kill_the_worker() {
    let pool = WorkerPool::new(1);
    pool.execute(|| panic!("serving job exploded"));
    let (tx, rx) = std::sync::mpsc::channel();
    pool.execute(move || tx.send(7usize).unwrap());
    assert_eq!(rx.recv_timeout(Duration::from_secs(10)).unwrap(), 7);
}

/// Nested fan-out: par_map tasks that themselves call par_map on the same
/// pool. The caller of each batch drives its own cursor, so even a pool
/// with a single worker (every helper busy) can never deadlock.
#[test]
fn nested_fan_out_never_deadlocks() {
    for workers in [1, 2, 4] {
        let pool = WorkerPool::new(workers);
        let start = Instant::now();
        let outer = pool.par_map(4, 8, |i| {
            let inner = pool.par_map(4, 8, |j| i * 10 + j);
            inner.iter().sum::<usize>()
        });
        let expect: Vec<usize> = (0..8).map(|i| (0..8).map(|j| i * 10 + j).sum()).collect();
        assert_eq!(outer, expect);
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "nested fan-out stalled with {workers} workers"
        );
    }
}

/// Nested fan-out through the free function (shared pool) — the exact
/// shape the engine produces: run_many → optimizer sampling → partitioned
/// join, all on one pool.
#[test]
fn nested_fan_out_on_the_shared_pool() {
    let outer = par_map(4, 6, |i| par_map(4, 6, |j| i + j).iter().sum::<usize>());
    let expect: Vec<usize> = (0..6).map(|i| (0..6).map(|j| i + j).sum()).collect();
    assert_eq!(outer, expect);
}

/// Determinism contract under contention: many concurrent par_map batches
/// on one pool all return bit-identical results to the sequential map.
#[test]
fn concurrent_batches_stay_deterministic() {
    let pool = Arc::new(WorkerPool::new(3));
    let failures = Arc::new(Mutex::new(Vec::new()));
    std::thread::scope(|scope| {
        for batch in 0..8usize {
            let pool = Arc::clone(&pool);
            let failures = Arc::clone(&failures);
            scope.spawn(move || {
                for round in 0..20usize {
                    let got = pool.par_map(3, 97, |i| i * batch + round);
                    let expect: Vec<usize> = (0..97).map(|i| i * batch + round).collect();
                    if got != expect {
                        failures.lock().unwrap().push((batch, round));
                    }
                }
            });
        }
    });
    assert!(failures.lock().unwrap().is_empty());
}

/// Workers actually participate in batches (the pool is not secretly
/// running everything on the caller).
#[test]
fn workers_help_drain_batches() {
    let pool = WorkerPool::new(2);
    let caller = std::thread::current().id();
    let helped = AtomicUsize::new(0);
    // Tasks sleep briefly so parked workers have time to wake and join.
    pool.par_map(4, 64, |_| {
        if std::thread::current().id() != caller {
            helped.fetch_add(1, Ordering::SeqCst);
        }
        std::thread::sleep(Duration::from_micros(200));
    });
    assert!(
        helped.load(Ordering::SeqCst) > 0,
        "no pool worker ever claimed a task"
    );
}
