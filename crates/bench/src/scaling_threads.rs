//! Thread-scaling measurement of the parallel candidate-sampling phase
//! (the `fig_scaling_threads` reproduction binary and the
//! `parallel_sampling` Criterion bench).
//!
//! The measured unit is exactly the embarrassingly parallel step of
//! Algorithm 1: weighing **every** candidate edge of the Join Graph by an
//! independent cut-off sampled operator run over the shared evaluation
//! state (`rox_core::estimate_cards`). Setup — document generation,
//! indexing, sample seeding — happens once outside the timed region; the
//! same warmed state is weighed at every thread count, and the resulting
//! weights are checked identical across thread counts before any timing is
//! reported.
//!
//! Note: wall-clock speedup is bounded by the machine. On a single-core
//! container every configuration degenerates to ~1.0×; on an n-core
//! machine the fan-out approaches min(n, candidate count)× for large τ.

use crate::xmark_catalog;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rox_core::{estimate_cards, EvalState, Parallelism, RoxEngine, RoxEnv, RoxOptions};
use rox_datagen::{xmark_query, XmarkConfig};
use rox_joingraph::JoinGraph;
use rox_ops::Cost;
use std::time::{Duration, Instant};

/// Configuration of the thread-scaling experiment.
#[derive(Debug, Clone)]
pub struct ThreadScalingConfig {
    /// XMark document shape.
    pub xmark: XmarkConfig,
    /// Sample size τ for the weighted runs (large values make each
    /// per-edge sampled run coarse enough to amortize fan-out overhead).
    pub tau: usize,
    /// Thread counts to measure (1 is always measured as the baseline).
    pub threads: Vec<usize>,
    /// Timed repetitions per configuration (the minimum is reported).
    pub repeats: usize,
}

impl Default for ThreadScalingConfig {
    fn default() -> Self {
        ThreadScalingConfig {
            xmark: XmarkConfig {
                persons: 3000,
                items: 2500,
                auctions: 2500,
                ..XmarkConfig::default()
            },
            tau: 4096,
            threads: vec![2, 4, 8],
            repeats: 3,
        }
    }
}

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct ThreadPoint {
    /// Worker threads used.
    pub threads: usize,
    /// Best-of-`repeats` wall time of the sampling phase.
    pub wall: Duration,
    /// Speedup over the sequential baseline.
    pub speedup: f64,
}

/// Result of the experiment.
#[derive(Debug, Clone)]
pub struct ThreadScalingResult {
    /// Number of candidate edges weighed per round.
    pub candidate_edges: usize,
    /// Sequential baseline wall time.
    pub sequential: Duration,
    /// Per-thread-count measurements.
    pub points: Vec<ThreadPoint>,
    /// Hardware parallelism of the machine the numbers were taken on.
    pub machine_threads: usize,
    /// Full `run_rox` wall time, sequential.
    pub full_run_sequential: Duration,
    /// Full `run_rox` wall time at the highest measured thread count.
    pub full_run_parallel: Duration,
}

/// A prepared sampling-phase workload: everything up to (but excluding)
/// the candidate weighting, reusable across thread counts.
pub struct SamplingWorkload<'a> {
    state: EvalState<'a>,
    /// The candidate (unexecuted) edges.
    pub edges: Vec<u32>,
    tau: usize,
}

impl<'a> SamplingWorkload<'a> {
    /// Seed per-vertex samples and collect the candidate edge set.
    pub fn prepare(env: &'a RoxEnv, graph: &'a JoinGraph, tau: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut state = EvalState::new(env, graph);
        for e in graph.edges() {
            if e.redundant {
                state.mark_executed(e.id);
            }
        }
        for v in graph.vertices() {
            state.seed_sample(v.id, &mut rng, tau);
        }
        let edges = state.unexecuted_edges();
        SamplingWorkload { state, edges, tau }
    }

    /// Weigh every candidate edge with the given worker budget — the timed
    /// unit of the experiment.
    pub fn weigh(&self, par: Parallelism) -> (Vec<Option<f64>>, Cost) {
        let mut cost = Cost::new();
        let ws = estimate_cards(&self.state, &self.edges, self.tau, par, &mut cost);
        (ws, cost)
    }
}

fn best_of(repeats: usize, mut f: impl FnMut() -> Duration) -> Duration {
    (0..repeats.max(1))
        .map(|_| f())
        .min()
        .expect("at least one repeat")
}

/// Run the thread-scaling experiment.
pub fn run(cfg: &ThreadScalingConfig) -> ThreadScalingResult {
    let catalog = xmark_catalog(&cfg.xmark);
    let graph = rox_joingraph::compile_query(&xmark_query("<", 145.0)).unwrap();
    let engine = RoxEngine::new(std::sync::Arc::clone(&catalog));
    let env = engine.session(&graph).unwrap();
    let workload = SamplingWorkload::prepare(&env, &graph, cfg.tau, 42);

    let (baseline_weights, baseline_cost) = workload.weigh(Parallelism::Sequential);
    let sequential = best_of(cfg.repeats, || {
        let t = Instant::now();
        std::hint::black_box(workload.weigh(Parallelism::Sequential));
        t.elapsed()
    });

    let mut points = Vec::new();
    for &n in &cfg.threads {
        let par = Parallelism::Threads(n);
        // Equivalence first: identical weights and cost counters, or the
        // timing is meaningless.
        let (w, c) = workload.weigh(par);
        assert_eq!(w, baseline_weights, "weights diverged at {n} threads");
        assert_eq!(c, baseline_cost, "cost counters diverged at {n} threads");
        let wall = best_of(cfg.repeats, || {
            let t = Instant::now();
            std::hint::black_box(workload.weigh(par));
            t.elapsed()
        });
        points.push(ThreadPoint {
            threads: n,
            wall,
            speedup: sequential.as_secs_f64() / wall.as_secs_f64().max(f64::EPSILON),
        });
    }

    // End-to-end sanity: a full ROX run at the largest thread count,
    // reusing the same warmed environment for both measurements so
    // neither side pays index or base-list construction inside the timed
    // region (RoxOptions::parallelism overrides the env knob either way).
    let max_threads = cfg.threads.iter().copied().max().unwrap_or(1);
    let t = Instant::now();
    let seq_report = rox_core::run_rox_with_env(
        &env,
        &graph,
        RoxOptions {
            tau: cfg.tau.min(512),
            ..Default::default()
        },
    )
    .unwrap();
    let full_run_sequential = t.elapsed();
    let t = Instant::now();
    let par_report = rox_core::run_rox_with_env(
        &env,
        &graph,
        RoxOptions {
            tau: cfg.tau.min(512),
            parallelism: Parallelism::Threads(max_threads),
            ..Default::default()
        },
    )
    .unwrap();
    let full_run_parallel = t.elapsed();
    assert_eq!(seq_report.output, par_report.output);
    assert_eq!(seq_report.executed_order, par_report.executed_order);

    ThreadScalingResult {
        candidate_edges: workload.edges.len(),
        sequential,
        points,
        machine_threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        full_run_sequential,
        full_run_parallel,
    }
}

/// Render the result as an aligned text table.
pub fn render(result: &ThreadScalingResult) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    writeln!(
        out,
        "parallel candidate sampling — {} candidate edges, machine parallelism {}",
        result.candidate_edges, result.machine_threads
    )
    .unwrap();
    writeln!(out, "{:>8}  {:>12}  {:>8}", "threads", "wall", "speedup").unwrap();
    writeln!(out, "{:>8}  {:>12.3?}  {:>8.2}x", 1, result.sequential, 1.0).unwrap();
    for p in &result.points {
        writeln!(
            out,
            "{:>8}  {:>12.3?}  {:>8.2}x",
            p.threads, p.wall, p.speedup
        )
        .unwrap();
    }
    writeln!(
        out,
        "full run_rox: sequential {:.3?}, {} threads {:.3?}",
        result.full_run_sequential,
        result.points.last().map(|p| p.threads).unwrap_or(1),
        result.full_run_parallel
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_run_reports_consistent_weights() {
        // Tiny configuration: correctness of the harness, not performance.
        let cfg = ThreadScalingConfig {
            xmark: XmarkConfig {
                persons: 60,
                items: 50,
                auctions: 50,
                ..Default::default()
            },
            tau: 32,
            threads: vec![2, 4],
            repeats: 1,
        };
        let r = run(&cfg);
        assert!(r.candidate_edges > 0);
        assert_eq!(r.points.len(), 2);
        assert!(r.sequential > Duration::ZERO);
        let table = render(&r);
        assert!(table.contains("speedup"));
    }
}
