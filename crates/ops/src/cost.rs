//! Deterministic work accounting.
//!
//! Every physical operator charges the tuples it touches to a [`Cost`]
//! counter following the cost column of Table 1 in the paper. The ROX
//! optimizer keeps two counters — execution work and sampling work — which
//! is how the experiments separate "full run" from "pure plan" time
//! (Figs. 6–8).

/// Accumulated operator work, in tuples touched.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Cost {
    /// Tuples read from operator inputs.
    pub tuples_in: u64,
    /// Tuples produced into operator outputs.
    pub tuples_out: u64,
    /// Index probes (binary searches / hash lookups).
    pub probes: u64,
}

impl Cost {
    /// A zeroed counter.
    pub fn new() -> Self {
        Cost::default()
    }

    /// Charge `n` input tuples.
    #[inline]
    pub fn charge_in(&mut self, n: usize) {
        self.tuples_in += n as u64;
    }

    /// Charge `n` output tuples.
    #[inline]
    pub fn charge_out(&mut self, n: usize) {
        self.tuples_out += n as u64;
    }

    /// Charge `n` index probes.
    #[inline]
    pub fn charge_probe(&mut self, n: usize) {
        self.probes += n as u64;
    }

    /// Total work units (the scalar the harnesses report alongside wall
    /// time).
    #[inline]
    pub fn total(&self) -> u64 {
        self.tuples_in + self.tuples_out + self.probes
    }

    /// Merge another counter into this one.
    pub fn add(&mut self, other: Cost) {
        self.tuples_in += other.tuples_in;
        self.tuples_out += other.tuples_out;
        self.probes += other.probes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let mut c = Cost::new();
        c.charge_in(10);
        c.charge_out(3);
        c.charge_probe(2);
        assert_eq!(c.total(), 15);
    }

    #[test]
    fn add_merges() {
        let mut a = Cost {
            tuples_in: 1,
            tuples_out: 2,
            probes: 3,
        };
        a.add(Cost {
            tuples_in: 10,
            tuples_out: 20,
            probes: 30,
        });
        assert_eq!(
            a,
            Cost {
                tuples_in: 11,
                tuples_out: 22,
                probes: 33
            }
        );
    }
}
