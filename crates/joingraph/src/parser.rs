//! Recursive-descent parser for the XQuery subset.

use crate::ast::*;
use crate::lexer::{tokenize, LexError, Token, TokenKind};
use rox_xmldb::{CmpOp, Constant};
use std::fmt;

/// A syntax error with byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntaxError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the query text.
    pub offset: usize,
}

impl fmt::Display for SyntaxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "syntax error at offset {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for SyntaxError {}

impl From<LexError> for SyntaxError {
    fn from(e: LexError) -> Self {
        SyntaxError {
            message: e.message,
            offset: e.offset,
        }
    }
}

/// Parse a query text into its AST.
pub fn parse_query(input: &str) -> Result<Query, SyntaxError> {
    let tokens = tokenize(input)?;
    Parser { tokens, pos: 0 }.query()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, SyntaxError> {
        Err(SyntaxError {
            message: message.into(),
            offset: self.offset(),
        })
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), SyntaxError> {
        if self.peek() == kind {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {kind}, found {}", self.peek()))
        }
    }

    fn query(&mut self) -> Result<Query, SyntaxError> {
        let mut lets = Vec::new();
        while *self.peek() == TokenKind::Let {
            self.bump();
            let var = self.var_name()?;
            self.expect(&TokenKind::Assign)?;
            let doc_uri = self.doc_call()?;
            lets.push(LetBinding { var, doc_uri });
        }
        self.expect(&TokenKind::For)?;
        let mut fors = vec![self.for_binding()?];
        while *self.peek() == TokenKind::Comma {
            self.bump();
            fors.push(self.for_binding()?);
        }
        let mut conditions = Vec::new();
        if *self.peek() == TokenKind::Where {
            self.bump();
            conditions.push(self.condition()?);
            while *self.peek() == TokenKind::And {
                self.bump();
                conditions.push(self.condition()?);
            }
        }
        self.expect(&TokenKind::Return)?;
        let return_var = self.var_name()?;
        if *self.peek() != TokenKind::Eof {
            return self.err(format!("unexpected trailing {}", self.peek()));
        }
        // Semantic checks: variables resolve, return var is a for var.
        let mut known: Vec<&str> = lets.iter().map(|l| l.var.as_str()).collect();
        for f in &fors {
            if let Source::Var(v) = &f.source {
                if !known.contains(&v.as_str()) {
                    return self.err(format!("unbound variable ${v}"));
                }
            }
            known.push(f.var.as_str());
        }
        if !fors.iter().any(|f| f.var == return_var) {
            return self.err(format!(
                "return variable ${return_var} is not a for variable"
            ));
        }
        for c in &conditions {
            let vars: Vec<&str> = match c {
                Condition::Join(a, _, b) => vec![&a.var, &b.var],
                Condition::Select(a, _, _) => vec![&a.var],
            };
            for v in vars {
                if !fors.iter().any(|f| f.var == *v) {
                    return self.err(format!("where clause references non-for variable ${v}"));
                }
            }
        }
        Ok(Query {
            lets,
            fors,
            conditions,
            return_var,
        })
    }

    fn var_name(&mut self) -> Result<String, SyntaxError> {
        match self.bump() {
            TokenKind::Var(v) => Ok(v),
            other => self.err(format!("expected a $variable, found {other}")),
        }
    }

    fn doc_call(&mut self) -> Result<String, SyntaxError> {
        self.expect(&TokenKind::Doc)?;
        self.expect(&TokenKind::LParen)?;
        let uri = match self.bump() {
            TokenKind::Str(s) => s,
            other => return self.err(format!("expected a string URI, found {other}")),
        };
        self.expect(&TokenKind::RParen)?;
        Ok(uri)
    }

    fn for_binding(&mut self) -> Result<ForBinding, SyntaxError> {
        let var = self.var_name()?;
        self.expect(&TokenKind::In)?;
        let source = match self.peek() {
            TokenKind::Doc => Source::Doc(self.doc_call()?),
            TokenKind::Var(_) => Source::Var(self.var_name()?),
            other => return self.err(format!("expected doc(...) or $var, found {other}")),
        };
        let steps = self.steps()?;
        if steps.is_empty() {
            return self.err("for binding needs at least one path step");
        }
        Ok(ForBinding { var, source, steps })
    }

    /// Zero or more `/step` / `//step` steps with predicates.
    fn steps(&mut self) -> Result<Vec<Step>, SyntaxError> {
        let mut steps = Vec::new();
        loop {
            let axis = match self.peek() {
                TokenKind::Slash => StepAxis::Child,
                TokenKind::DoubleSlash => StepAxis::Descendant,
                _ => break,
            };
            self.bump();
            let test = self.node_test()?;
            let mut predicates = Vec::new();
            while *self.peek() == TokenKind::LBracket {
                self.bump();
                predicates.push(self.predicate()?);
                self.expect(&TokenKind::RBracket)?;
            }
            steps.push(Step {
                axis,
                test,
                predicates,
            });
        }
        Ok(steps)
    }

    fn node_test(&mut self) -> Result<StepTest, SyntaxError> {
        match self.bump() {
            TokenKind::At => match self.bump() {
                TokenKind::Name(n) => Ok(StepTest::Attribute(n)),
                other => self.err(format!("expected attribute name, found {other}")),
            },
            TokenKind::Name(n) if n == "text" && *self.peek() == TokenKind::LParen => {
                self.bump();
                self.expect(&TokenKind::RParen)?;
                Ok(StepTest::Text)
            }
            TokenKind::Name(n) => Ok(StepTest::Element(n)),
            other => self.err(format!("expected a node test, found {other}")),
        }
    }

    /// A bracketed predicate: `./path`, `.//path`, `path`, optionally
    /// followed by a comparison with a literal.
    fn predicate(&mut self) -> Result<Predicate, SyntaxError> {
        let steps = self.relative_path()?;
        if steps.is_empty() {
            return self.err("empty predicate path");
        }
        if let Some(op) = self.try_cmp_op() {
            let rhs = self.literal()?;
            Ok(Predicate::Compare(steps, op, rhs))
        } else {
            Ok(Predicate::Exists(steps))
        }
    }

    /// `./a/b`, `.//a`, or a bare `a/b` (implicit child step first).
    fn relative_path(&mut self) -> Result<Vec<Step>, SyntaxError> {
        let mut steps = Vec::new();
        if *self.peek() == TokenKind::Dot {
            self.bump();
            steps = self.steps()?;
        } else {
            // Bare name: implicit leading child axis.
            let test = self.node_test()?;
            let mut predicates = Vec::new();
            while *self.peek() == TokenKind::LBracket {
                self.bump();
                predicates.push(self.predicate()?);
                self.expect(&TokenKind::RBracket)?;
            }
            steps.push(Step {
                axis: StepAxis::Child,
                test,
                predicates,
            });
            steps.extend(self.steps()?);
        }
        Ok(steps)
    }

    fn try_cmp_op(&mut self) -> Option<CmpOp> {
        let op = match self.peek() {
            TokenKind::Eq => CmpOp::Eq,
            TokenKind::Ne => CmpOp::Ne,
            TokenKind::Lt => CmpOp::Lt,
            TokenKind::Le => CmpOp::Le,
            TokenKind::Gt => CmpOp::Gt,
            TokenKind::Ge => CmpOp::Ge,
            _ => return None,
        };
        self.bump();
        Some(op)
    }

    fn literal(&mut self) -> Result<Constant, SyntaxError> {
        match self.bump() {
            TokenKind::Num(n) => Ok(Constant::Num(n)),
            TokenKind::Str(s) => Ok(Constant::Str(s)),
            other => self.err(format!("expected a literal, found {other}")),
        }
    }

    fn condition(&mut self) -> Result<Condition, SyntaxError> {
        let lhs = self.var_path()?;
        let op = match self.try_cmp_op() {
            Some(op) => op,
            None => return self.err("expected a comparison operator"),
        };
        match self.peek() {
            TokenKind::Var(_) => {
                let rhs = self.var_path()?;
                Ok(Condition::Join(lhs, op, rhs))
            }
            _ => {
                let rhs = self.literal()?;
                Ok(Condition::Select(lhs, op, rhs))
            }
        }
    }

    fn var_path(&mut self) -> Result<VarPath, SyntaxError> {
        let var = self.var_name()?;
        let steps = self.steps()?;
        Ok(VarPath { var, steps })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const Q_FIG1: &str = r#"
        let $r := doc("auction.xml")
        for $a in $r//open_auction[./reserve]/bidder//personref,
            $b in $r//person[.//education]
        where $a/@person = $b/@id
        return $a
    "#;

    #[test]
    fn parses_fig1_query() {
        let q = parse_query(Q_FIG1).unwrap();
        assert_eq!(q.lets.len(), 1);
        assert_eq!(q.fors.len(), 2);
        assert_eq!(q.conditions.len(), 1);
        assert_eq!(q.return_var, "a");
        let f = &q.fors[0];
        assert_eq!(f.steps.len(), 3);
        assert_eq!(f.steps[0].axis, StepAxis::Descendant);
        assert_eq!(f.steps[0].test, StepTest::Element("open_auction".into()));
        assert_eq!(f.steps[0].predicates.len(), 1);
        match &q.conditions[0] {
            Condition::Join(a, CmpOp::Eq, b) => {
                assert_eq!(a.var, "a");
                assert_eq!(a.steps[0].test, StepTest::Attribute("person".into()));
                assert_eq!(b.var, "b");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_xmark_q1() {
        let q = parse_query(
            r#"
            let $d := doc("xmark.xml")
            for $o in $d//open_auction[.//current/text() < 145],
                $p in $d//person[.//province],
                $i in $d//item[./quantity = 1]
            where $o//bidder//personref/@person = $p/@id and
                  $o//itemref/@item = $i/@id
            return $o
        "#,
        )
        .unwrap();
        assert_eq!(q.fors.len(), 3);
        assert_eq!(q.conditions.len(), 2);
        // The current < 145 predicate.
        match &q.fors[0].steps[0].predicates[0] {
            Predicate::Compare(steps, CmpOp::Lt, Constant::Num(n)) => {
                assert_eq!(*n, 145.0);
                assert_eq!(steps.last().unwrap().test, StepTest::Text);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_dblp_template() {
        let q = parse_query(
            r#"
            for $a1 in doc("DOC1.xml")//author,
                $a2 in doc("DOC2.xml")//author
            where $a1/text() = $a2/text()
            return $a1
        "#,
        )
        .unwrap();
        assert_eq!(q.fors.len(), 2);
        assert!(matches!(q.fors[0].source, Source::Doc(_)));
        assert_eq!(q.doc_uris(), vec!["DOC1.xml", "DOC2.xml"]);
    }

    #[test]
    fn bare_predicate_name_is_child_step() {
        let q = parse_query(r#"for $i in doc("d.xml")//item[quantity = 1] return $i"#).unwrap();
        match &q.fors[0].steps[0].predicates[0] {
            Predicate::Compare(steps, _, _) => {
                assert_eq!(steps[0].axis, StepAxis::Child);
                assert_eq!(steps[0].test, StepTest::Element("quantity".into()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_unbound_variable() {
        let e = parse_query("for $a in $zz//x return $a").unwrap_err();
        assert!(e.message.contains("unbound"), "{e}");
    }

    #[test]
    fn rejects_bad_return_var() {
        let e = parse_query(r#"for $a in doc("d")//x return $q"#).unwrap_err();
        assert!(e.message.contains("not a for variable"), "{e}");
    }

    #[test]
    fn rejects_where_on_unknown_var() {
        let e = parse_query(r#"for $a in doc("d")//x where $b/text() = 1 return $a"#).unwrap_err();
        assert!(e.message.contains("non-for variable"), "{e}");
    }

    #[test]
    fn select_condition_with_literal() {
        let q = parse_query(r#"for $a in doc("d")//item where $a/price/text() < 10 return $a"#)
            .unwrap();
        assert!(matches!(
            q.conditions[0],
            Condition::Select(_, CmpOp::Lt, _)
        ));
    }

    #[test]
    fn nested_predicates() {
        let q = parse_query(r#"for $a in doc("d")//a[./b[./c]] return $a"#).unwrap();
        match &q.fors[0].steps[0].predicates[0] {
            Predicate::Exists(steps) => {
                assert_eq!(steps.len(), 1);
                assert_eq!(steps[0].predicates.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn error_offsets_point_into_input() {
        let src = r#"for $a in doc("d")//x return"#;
        let e = parse_query(src).unwrap_err();
        assert!(e.offset <= src.len());
    }
}
