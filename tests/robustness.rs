//! Robustness and edge-case tests across the whole stack.

use rox_core::{run_rox, RoxOptions};
use rox_xmldb::Catalog;
use std::sync::Arc;

fn rox(query: &str, docs: &[(&str, &str)]) -> rox_core::RoxReport {
    let catalog = Arc::new(Catalog::new());
    for (uri, xml) in docs {
        catalog.load_str(uri, xml).unwrap();
    }
    let graph = rox_joingraph::compile_query(query).unwrap();
    run_rox(
        catalog,
        &graph,
        RoxOptions {
            tau: 4,
            ..Default::default()
        },
    )
    .unwrap()
}

#[test]
fn missing_document_is_reported() {
    let catalog = Arc::new(Catalog::new());
    let graph = rox_joingraph::compile_query(r#"for $a in doc("nope.xml")//a return $a"#).unwrap();
    let err = rox_core::run_rox(catalog, &graph, RoxOptions::default()).unwrap_err();
    assert!(err.message.contains("nope.xml"));
}

#[test]
fn single_vertex_query_without_joins() {
    let r = rox(
        r#"for $a in doc("d.xml")//a return $a"#,
        &[("d.xml", "<r><a/><a/><a/></r>")],
    );
    assert_eq!(r.output.len(), 3);
    // Only the redundant root step exists; nothing is "executed".
    assert!(r.executed_order.is_empty());
}

#[test]
fn deeply_nested_recursive_structure() {
    let mut xml = String::new();
    for _ in 0..60 {
        xml.push_str("<a>");
    }
    xml.push_str("<b/>");
    for _ in 0..60 {
        xml.push_str("</a>");
    }
    let r = rox(
        r#"for $a in doc("d.xml")//a, $b in $a//b return $b"#,
        &[("d.xml", &xml)],
    );
    // Every a (60 of them) has the single b as a descendant.
    assert_eq!(r.output.len(), 60);
}

#[test]
fn tiny_sample_sizes_still_correct() {
    let catalog = Arc::new(Catalog::new());
    let mut xml = String::from("<s>");
    for i in 0..50 {
        xml.push_str(&format!("<p id=\"x{}\"/><q ref=\"x{}\"/>", i, (i * 7) % 50));
    }
    xml.push_str("</s>");
    catalog.load_str("d.xml", &xml).unwrap();
    let graph = rox_joingraph::compile_query(
        r#"for $p in doc("d.xml")//p, $q in doc("d.xml")//q
           where $p/@id = $q/@ref return $p"#,
    )
    .unwrap();
    for tau in [1usize, 2, 3, 1000] {
        let r = rox_core::run_rox(
            Arc::clone(&catalog),
            &graph,
            RoxOptions {
                tau,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(r.output.len(), 50, "tau = {tau}");
    }
}

#[test]
fn disconnected_join_graph_is_a_product() {
    let r = rox(
        r#"for $a in doc("x.xml")//a, $b in doc("y.xml")//b return $a"#,
        &[
            ("x.xml", "<r><a/><a/></r>"),
            ("y.xml", "<r><b/><b/><b/></r>"),
        ],
    );
    assert_eq!(r.joined.len(), 6);
    assert_eq!(r.output.len(), 6);
}

#[test]
fn no_matches_on_one_side_short_circuits_result() {
    let r = rox(
        r#"for $x in doc("x.xml")//name, $y in doc("y.xml")//name
           where $x/text() = $y/text() return $x"#,
        &[("x.xml", "<p><name>only</name></p>"), ("y.xml", "<p/>")],
    );
    assert!(r.output.is_empty());
}

#[test]
fn duplicate_values_multiply_correctly() {
    let r = rox(
        r#"for $x in doc("x.xml")//t, $y in doc("y.xml")//t
           where $x/text() = $y/text() return $x"#,
        &[
            ("x.xml", "<r><t>v</t><t>v</t><t>v</t></r>"),
            ("y.xml", "<r><t>v</t><t>v</t></r>"),
        ],
    );
    // 3 × 2 pairs.
    assert_eq!(r.output.len(), 6);
}

#[test]
fn unicode_content_survives_the_pipeline() {
    let r = rox(
        r#"for $a in doc("d.xml")//author[./text() = "Łukasz"] return $a"#,
        &[(
            "d.xml",
            "<s><author>Łukasz</author><author>René</author><author>何</author></s>",
        )],
    );
    assert_eq!(r.output.len(), 1);
}

#[test]
fn numeric_predicate_ignores_non_numeric_values() {
    let r = rox(
        r#"for $p in doc("d.xml")//v[./text() < 5] return $p"#,
        &[("d.xml", "<s><v>3</v><v>seven</v><v>4.9</v><v></v></s>")],
    );
    assert_eq!(r.output.len(), 2);
}

#[test]
fn wide_fanout_document() {
    let mut xml = String::from("<r>");
    for _ in 0..5000 {
        xml.push_str("<c/>");
    }
    xml.push_str("</r>");
    let r = rox(r#"for $c in doc("d.xml")//c return $c"#, &[("d.xml", &xml)]);
    assert_eq!(r.output.len(), 5000);
}

#[test]
fn self_join_of_one_document() {
    let r = rox(
        r#"for $x in doc("d.xml")//t, $y in doc("d.xml")//t
           where $x/text() = $y/text() return $x"#,
        &[("d.xml", "<r><t>a</t><t>b</t><t>a</t></r>")],
    );
    // Pairs with equal value: (a1,a1),(a1,a3),(a3,a1),(a3,a3),(b,b) = 5.
    assert_eq!(r.joined.len(), 5);
}
