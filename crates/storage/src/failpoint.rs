//! Deterministic fault injection for the durability stack.
//!
//! The torture harness needs to crash the storage layer at *chosen*
//! byte offsets, in ways real disks fail, and then prove recovery. This
//! module interposes on the [`crate::wal::WalIo`] seam:
//!
//! * [`FaultPlan`] — one seeded fault: a byte budget (how many bytes
//!   may be written before the fault fires) and a [`FaultMode`].
//! * [`FailpointIo`] / [`FailpointFile`] — a [`WalIo`] that writes
//!   through to real files until the armed plan's budget is crossed,
//!   then fails the way the plan says. After the fault the state is
//!   **dead**: every subsequent operation errors, modelling the process
//!   being gone. What actually reached the real file *is* the simulated
//!   post-crash disk image.
//!
//! The three modes map to the classic failure taxonomy:
//!
//! * [`FaultMode::ShortWrite`] — the crash lands mid-`write`: a prefix
//!   of the frame reaches the disk, the rest never does.
//! * [`FaultMode::TornWrite`] — the sector the write straddled is
//!   garbage: a prefix plus corrupted bytes reach the disk.
//! * [`FaultMode::SyncLie`] — the device acknowledges writes it never
//!   persisted: the tail of the write is silently dropped, operations
//!   keep "succeeding" for a few more ops, then the crash. From the lie
//!   onward [`FailpointState::honest`] is false — acknowledgements made
//!   in that window carry no durability promise, exactly like a disk
//!   with a volatile cache and a lying flush.
//!
//! Everything is deterministic per seed, so a failing schedule replays
//! exactly.

use crate::wal::{WalFile, WalIo};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;
use std::sync::{Arc, Mutex};

/// How an armed fault fires once the byte budget is crossed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Write a prefix of the crossing write, then die with an error.
    ShortWrite,
    /// Write a prefix plus a run of corrupted bytes, then die.
    TornWrite,
    /// Silently drop the tail of the crossing write but report success,
    /// keep lying for `lie_ops` more operations, then die.
    SyncLie {
        /// Operations that still "succeed" after the first lie.
        lie_ops: u32,
    },
}

/// One deterministic fault: fire `mode` once `budget` bytes have been
/// written through the armed I/O layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Bytes that write through before the fault fires.
    pub budget: u64,
    /// How the fault fires.
    pub mode: FaultMode,
}

impl FaultPlan {
    /// Derive a plan from a seed: the budget lands uniformly in
    /// `[0, window)` and the mode cycles through all three kinds, so a
    /// contiguous seed range covers the whole taxonomy.
    pub fn from_seed(seed: u64, window: u64) -> FaultPlan {
        // SplitMix64: cheap, well-distributed, dependency-free.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let budget = z % window.max(1);
        let mode = match seed % 3 {
            0 => FaultMode::ShortWrite,
            1 => FaultMode::TornWrite,
            _ => FaultMode::SyncLie {
                lie_ops: (z >> 33) as u32 % 4,
            },
        };
        FaultPlan { budget, mode }
    }
}

struct Inner {
    plan: Option<FaultPlan>,
    written: u64,
    dead: bool,
    honest: bool,
    lie_ops_left: Option<u32>,
}

/// Shared fault state across every file the [`FailpointIo`] opens: the
/// byte budget spans the whole workload, not one file, so the crash
/// point can land in a WAL append, a snapshot image write, or a rename
/// window alike.
pub struct FailpointState {
    inner: Mutex<Inner>,
}

impl FailpointState {
    fn killed() -> std::io::Error {
        std::io::Error::other("failpoint: process killed")
    }

    /// Arm `plan`; bytes written from now on count against its budget.
    pub fn arm(&self, plan: FaultPlan) {
        let mut st = self.inner.lock().expect("failpoint lock");
        st.plan = Some(plan);
        st.written = 0;
    }

    /// Bytes written through since the last [`FailpointState::arm`].
    pub fn written(&self) -> u64 {
        self.inner.lock().expect("failpoint lock").written
    }

    /// Has the fault fired yet?
    pub fn dead(&self) -> bool {
        self.inner.lock().expect("failpoint lock").dead
    }

    /// `true` while every acknowledged operation really reached the
    /// file — from the first [`FaultMode::SyncLie`] lie onward this is
    /// `false`, and acknowledgements carry no durability promise.
    pub fn honest(&self) -> bool {
        self.inner.lock().expect("failpoint lock").honest
    }

    /// Gate one non-write operation (sync, rename, dir sync): dead
    /// state errors, an active lie "succeeds" and burns one lie op.
    fn gate_op(&self) -> std::io::Result<bool> {
        let mut st = self.inner.lock().expect("failpoint lock");
        if st.dead {
            return Err(Self::killed());
        }
        if let Some(left) = &mut st.lie_ops_left {
            if *left == 0 {
                st.dead = true;
                return Err(Self::killed());
            }
            *left -= 1;
            return Ok(false); // lying: report success, do nothing
        }
        Ok(true)
    }

    /// Gate one write of `bytes`: what really reaches the file and what
    /// the caller is told.
    fn gate_write(&self, bytes: &[u8]) -> WriteOutcome {
        let mut st = self.inner.lock().expect("failpoint lock");
        if st.dead {
            return WriteOutcome::Dead;
        }
        if let Some(left) = &mut st.lie_ops_left {
            if *left == 0 {
                st.dead = true;
                return WriteOutcome::Dead;
            }
            *left -= 1;
            return WriteOutcome::Lie; // drop the write, report success
        }
        let Some(plan) = st.plan else {
            st.written += bytes.len() as u64;
            return WriteOutcome::Through(bytes.to_vec());
        };
        if st.written + bytes.len() as u64 <= plan.budget {
            st.written += bytes.len() as u64;
            return WriteOutcome::Through(bytes.to_vec());
        }
        // The budget is crossed inside this write: fire.
        let keep = (plan.budget - st.written) as usize;
        match plan.mode {
            FaultMode::ShortWrite => {
                st.dead = true;
                WriteOutcome::Die(bytes[..keep].to_vec())
            }
            FaultMode::TornWrite => {
                st.dead = true;
                let torn_end = (keep + 32).min(bytes.len());
                let mut torn = bytes[..torn_end].to_vec();
                for b in &mut torn[keep..] {
                    *b ^= 0xA5;
                }
                WriteOutcome::Die(torn)
            }
            FaultMode::SyncLie { lie_ops } => {
                st.honest = false;
                st.lie_ops_left = Some(lie_ops);
                // The prefix reaches the disk; the tail is silently
                // dropped and the write reports success.
                WriteOutcome::Through(bytes[..keep].to_vec())
            }
        }
    }
}

/// What one gated write does: the bytes that really land vs the result
/// the caller sees.
enum WriteOutcome {
    /// Write these bytes, report success.
    Through(Vec<u8>),
    /// Write nothing, report success (the lie).
    Lie,
    /// Write these bytes (the dying prefix), then report the kill.
    Die(Vec<u8>),
    /// Already dead: write nothing, report the kill.
    Dead,
}

/// A [`WalFile`] that routes every operation through the shared
/// [`FailpointState`] before touching the real file.
pub struct FailpointFile {
    file: File,
    state: Arc<FailpointState>,
}

impl WalFile for FailpointFile {
    fn append(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        match self.state.gate_write(bytes) {
            WriteOutcome::Through(real) => self.file.write_all(&real),
            WriteOutcome::Lie => Ok(()),
            WriteOutcome::Die(prefix) => {
                // The dying write still lands its surviving prefix.
                let _ = self.file.write_all(&prefix);
                Err(FailpointState::killed())
            }
            WriteOutcome::Dead => Err(FailpointState::killed()),
        }
    }

    fn sync(&mut self) -> std::io::Result<()> {
        // No real fsync: the simulated crash is in-process, so the OS
        // buffer *is* the disk — skipping the hardware flush keeps
        // hundreds of seeded schedules fast without weakening the model.
        self.state.gate_op().map(|_| ())
    }
}

/// A [`WalIo`] over real files with the shared failpoint interposed.
pub struct FailpointIo {
    state: Arc<FailpointState>,
}

impl FailpointIo {
    /// A fresh, unarmed failpoint I/O layer: writes pass through (and
    /// are counted) until [`FailpointState::arm`] is called.
    pub fn new() -> FailpointIo {
        FailpointIo {
            state: Arc::new(FailpointState {
                inner: Mutex::new(Inner {
                    plan: None,
                    written: 0,
                    dead: false,
                    honest: true,
                    lie_ops_left: None,
                }),
            }),
        }
    }

    /// The shared fault state, for arming and for durability queries.
    pub fn state(&self) -> Arc<FailpointState> {
        Arc::clone(&self.state)
    }
}

impl Default for FailpointIo {
    fn default() -> Self {
        Self::new()
    }
}

impl WalIo for FailpointIo {
    fn create(&self, path: &Path) -> std::io::Result<Box<dyn WalFile>> {
        if self.state.inner.lock().expect("failpoint lock").dead {
            return Err(FailpointState::killed());
        }
        Ok(Box::new(FailpointFile {
            file: File::create(path)?,
            state: Arc::clone(&self.state),
        }))
    }

    fn open_append(&self, path: &Path, len: u64) -> std::io::Result<Box<dyn WalFile>> {
        let lying = {
            let st = self.state.inner.lock().expect("failpoint lock");
            if st.dead {
                return Err(FailpointState::killed());
            }
            st.lie_ops_left.is_some()
        };
        let mut file = OpenOptions::new().write(true).read(true).open(path)?;
        // The truncation is a real on-disk effect, so during a lie it
        // must not happen: a lying device that skipped a rename would
        // otherwise let this chop the *old* generation — destroying
        // honestly-acknowledged records, which no real crash can do (the
        // process would be appending to the new inode; the old file on
        // disk stays intact). A file opened mid-lie never writes real
        // bytes anyway: every append is dropped or dead.
        if !lying {
            file.set_len(len)?;
            use std::io::{Seek, SeekFrom};
            file.seek(SeekFrom::Start(len))?;
        }
        Ok(Box::new(FailpointFile {
            file,
            state: Arc::clone(&self.state),
        }))
    }

    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()> {
        if self.state.gate_op()? {
            std::fs::rename(from, to)
        } else {
            Ok(()) // the lie: the rename never happens
        }
    }

    fn sync_dir(&self, _dir: &Path) -> std::io::Result<()> {
        self.state.gate_op().map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("rox-failpoint-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn plans_are_deterministic_and_cover_all_modes() {
        let a = FaultPlan::from_seed(17, 1000);
        let b = FaultPlan::from_seed(17, 1000);
        assert_eq!(a, b);
        assert!(a.budget < 1000);
        let modes: std::collections::HashSet<u8> = (0..30)
            .map(|s| match FaultPlan::from_seed(s, 1000).mode {
                FaultMode::ShortWrite => 0,
                FaultMode::TornWrite => 1,
                FaultMode::SyncLie { .. } => 2,
            })
            .collect();
        assert_eq!(modes.len(), 3, "seed range must cover every mode");
    }

    #[test]
    fn short_write_lands_the_prefix_then_dies() {
        let path = temp("short");
        let io = FailpointIo::new();
        let state = io.state();
        let mut f = io.create(&path).unwrap();
        f.append(b"0123456789").unwrap();
        state.arm(FaultPlan {
            budget: 4,
            mode: FaultMode::ShortWrite,
        });
        let err = f.append(b"abcdefgh").unwrap_err();
        assert!(err.to_string().contains("killed"), "{err}");
        assert!(state.dead());
        assert!(state.honest(), "a loud crash is not a lie");
        assert!(f.append(b"after death").is_err());
        drop(f);
        assert_eq!(std::fs::read(&path).unwrap(), b"0123456789abcd");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_write_garbles_past_the_prefix() {
        let path = temp("torn");
        let io = FailpointIo::new();
        let state = io.state();
        let mut f = io.create(&path).unwrap();
        state.arm(FaultPlan {
            budget: 3,
            mode: FaultMode::TornWrite,
        });
        assert!(f.append(b"abcdefgh").is_err());
        drop(f);
        let on_disk = std::fs::read(&path).unwrap();
        assert_eq!(&on_disk[..3], b"abc");
        assert!(on_disk.len() > 3, "torn bytes must follow the prefix");
        assert_ne!(&on_disk[3..], &b"defgh"[..on_disk.len() - 3]);
        assert!(state.dead());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sync_lie_acks_dropped_bytes_then_dies() {
        let path = temp("lie");
        let io = FailpointIo::new();
        let state = io.state();
        let mut f = io.create(&path).unwrap();
        state.arm(FaultPlan {
            budget: 2,
            mode: FaultMode::SyncLie { lie_ops: 2 },
        });
        // The crossing write "succeeds" but only the prefix lands.
        f.append(b"abcdef").unwrap();
        assert!(!state.honest(), "acks after the lie carry no promise");
        // Two more ops keep lying, then the crash.
        f.sync().unwrap();
        f.append(b"ghost").unwrap();
        assert!(f.sync().is_err());
        assert!(state.dead());
        drop(f);
        assert_eq!(std::fs::read(&path).unwrap(), b"ab");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unarmed_io_counts_bytes_and_passes_through() {
        let path = temp("unarmed");
        let io = FailpointIo::new();
        let state = io.state();
        let mut f = io.create(&path).unwrap();
        f.append(b"hello").unwrap();
        f.sync().unwrap();
        assert_eq!(state.written(), 5);
        assert!(state.honest());
        assert!(!state.dead());
        drop(f);
        assert_eq!(std::fs::read(&path).unwrap(), b"hello");
        std::fs::remove_file(&path).ok();
    }
}
