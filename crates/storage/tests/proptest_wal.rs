//! Property tests for the WAL crash-prefix contract: for an arbitrary
//! record sequence, *any* crash point — truncation at any byte offset,
//! or any single-bit corruption — recovers to exactly the longest
//! intact prefix. The epoch table is the max-merge of that prefix, the
//! water mark is its last LSN, the torn tail is truncated, and no flip
//! ever forges a record the writer never logged or silently alters one
//! it did.

use proptest::prelude::*;
use rox_index::IndexedStore;
use rox_storage::wal::{encode_frame, scan_wal_bytes, wal_header_bytes, WalRecord, WAL_HEADER};
use rox_storage::{recover, StdWalIo};
use rox_xmldb::Catalog;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A fresh directory per proptest case (cases run concurrently).
fn case_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("rox-prop-wal-{}-{tag}-{n}", std::process::id()))
}

const URIS: [&str; 3] = ["d.xml", "e.xml", "f.xml"];

/// Epoch-carrying records only: their replay needs no document bytes,
/// so every generated sequence is replayable over any snapshot — the
/// property stays about framing and the epoch merge, not content.
fn record_strategy() -> impl Strategy<Value = WalRecord> {
    prop_oneof![
        (0..3usize, 1..50u64).prop_map(|(u, e)| WalRecord::EpochBump {
            uri: URIS[u].to_string(),
            epoch: e,
        }),
        (0..3usize, 1..50u64).prop_map(|(u, e)| WalRecord::Checkpoint {
            epochs: vec![(URIS[u].to_string(), e)],
        }),
    ]
}

/// The WAL image for `records` at LSNs `1..=n`, plus each frame's end
/// offset (the valid crash points).
fn wal_image(records: &[WalRecord]) -> (Vec<u8>, Vec<usize>) {
    let mut bytes = wal_header_bytes().to_vec();
    let mut ends = Vec::new();
    for (i, r) in records.iter().enumerate() {
        bytes.extend_from_slice(&encode_frame(i as u64 + 1, r));
        ends.push(bytes.len());
    }
    (bytes, ends)
}

/// Max-merge the epoch tables of `records`, the recovery rule.
fn merged_epochs(records: &[WalRecord]) -> Vec<(String, u64)> {
    let mut table: HashMap<String, u64> = HashMap::new();
    let mut bump = |uri: &str, epoch: u64| {
        let slot = table.entry(uri.to_string()).or_insert(0);
        *slot = (*slot).max(epoch);
    };
    for r in records {
        match r {
            WalRecord::Checkpoint { epochs } => {
                for (u, e) in epochs {
                    bump(u, *e);
                }
            }
            WalRecord::EpochBump { uri, epoch } => bump(uri, *epoch),
            _ => unreachable!("strategy emits only epoch records"),
        }
    }
    let mut table: Vec<(String, u64)> = table.into_iter().collect();
    table.sort();
    table
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Crash-point completeness at the recovery level: truncate the log
    /// at *any* byte and `recover` either rejects a torn header or
    /// returns exactly the longest intact prefix — consistent epochs,
    /// the prefix's LSN as the water mark, the tail truncated — and the
    /// recovered log accepts new appends right after the prefix.
    #[test]
    fn any_crash_point_truncation_recovers_the_intact_prefix(
        records in prop::collection::vec(record_strategy(), 0..10),
        cut_sel in 0..100_000u32,
    ) {
        let dir = case_dir("cut");
        std::fs::create_dir_all(&dir).unwrap();
        let catalog = Arc::new(Catalog::new());
        catalog
            .load_str("d.xml", "<site><auction><bidder/></auction></site>")
            .unwrap();
        let store = IndexedStore::new(Arc::clone(&catalog));
        rox_storage::Snapshot::save(&dir.join("snapshot.rox"), &store).unwrap();

        let (bytes, ends) = wal_image(&records);
        let cut = cut_sel as usize % (bytes.len() + 1);
        std::fs::write(dir.join("wal.rox"), &bytes[..cut]).unwrap();

        let result = recover(&dir, None, &StdWalIo);
        if cut < WAL_HEADER {
            prop_assert!(result.is_err(), "a torn header is not a WAL");
            std::fs::remove_dir_all(&dir).ok();
            return Ok(());
        }
        let state = result.unwrap();
        let intact = ends.iter().filter(|&&e| e <= cut).count();
        let valid_end = if intact == 0 { WAL_HEADER } else { ends[intact - 1] };
        prop_assert_eq!(state.report.snapshot_docs, 1);
        prop_assert_eq!(state.report.wal_records, intact);
        prop_assert_eq!(state.report.last_lsn, intact as u64);
        prop_assert_eq!(state.report.torn_tail_bytes, (cut - valid_end) as u64);
        prop_assert_eq!(
            state.report.replayed,
            records[..intact]
                .iter()
                .filter(|r| matches!(r, WalRecord::EpochBump { .. }))
                .count()
        );
        prop_assert_eq!(&state.epochs, &merged_epochs(&records[..intact]));

        // The torn tail is gone from disk and the log extends cleanly.
        let bump = WalRecord::EpochBump { uri: "d.xml".to_string(), epoch: 99 };
        let lsn = state.wal.append(&bump).unwrap();
        prop_assert_eq!(lsn, intact as u64 + 1);
        state.wal.commit(lsn).unwrap();
        drop(state);
        let rescan = rox_storage::wal::scan_wal(&dir.join("wal.rox")).unwrap();
        prop_assert_eq!(rescan.records.len(), intact + 1);
        prop_assert_eq!(rescan.torn_tail_bytes(), 0);
        prop_assert_eq!(rescan.records.last().unwrap(), &(lsn, bump));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Corruption containment at the scan level: flip any single bit
    /// anywhere in the image and the scan either rejects the header
    /// (flip in magic/version), ignores it (flip in the reserved
    /// header bytes), or stops exactly at the flipped frame — every
    /// record before it survives bit-identical, and the flip never
    /// forges a record past it.
    #[test]
    fn single_bit_corruption_never_forges_or_alters_records(
        records in prop::collection::vec(record_strategy(), 1..10),
        flip_sel in 0..100_000u32,
        flip_bit in 0..8u32,
    ) {
        let (mut bytes, ends) = wal_image(&records);
        let flip = flip_sel as usize % bytes.len();
        bytes[flip] ^= 1 << flip_bit;

        match scan_wal_bytes(&bytes) {
            Err(_) => prop_assert!(
                flip < 12,
                "only magic/version corruption may reject the log (flip at {flip})"
            ),
            Ok(scan) => {
                // The reserved header bytes are opaque; past the header,
                // the flip lands in exactly one frame and kills it plus
                // everything after (the scan never resynchronizes).
                let survivors = if flip < WAL_HEADER {
                    prop_assert!((12..WAL_HEADER).contains(&flip));
                    records.len()
                } else {
                    ends.iter().filter(|&&e| e <= flip).count()
                };
                prop_assert_eq!(scan.records.len(), survivors);
                for (i, (lsn, record)) in scan.records.iter().enumerate() {
                    prop_assert_eq!(*lsn, i as u64 + 1);
                    prop_assert_eq!(record, &records[i]);
                }
                let valid_end = if survivors == 0 { WAL_HEADER } else { ends[survivors - 1] };
                prop_assert_eq!(scan.valid_len, valid_end as u64);
            }
        }
    }
}
