//! Explicit plans: a plan is a total order over the (non-redundant) Join
//! Graph edges. Replaying a plan executes exactly those edges in that
//! order with **no sampling** — the "pure plan (excl. sampling)" runs of
//! Figs. 6–8, and the executor behind the enumeration tool of §4.2.
//!
//! Replay routes every edge through the same edge-operator kernel
//! (`rox_ops::edgeop`) as the sampled run it replays, so the per-edge
//! operator choices recorded in [`PlanRun::edge_log`] (`EdgeExec::op`)
//! reproduce the original run's exactly — the property the
//! kernel-equivalence proptest pins.

use crate::env::{EnvError, RoxEnv};
use crate::state::{EdgeExec, EvalState};
use rox_joingraph::{EdgeId, JoinGraph};
use rox_ops::{Cost, Relation, Tail};
use rox_xmldb::Catalog;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Result of one plan replay.
#[derive(Debug)]
pub struct PlanRun {
    /// Fully joined relation.
    pub joined: Relation,
    /// Output after the tail.
    pub output: Relation,
    /// Per-edge result sizes in execution order.
    pub edge_log: Vec<EdgeExec>,
    /// Total work.
    pub cost: Cost,
    /// Wall-clock of the replay.
    pub wall: Duration,
    /// Sum of intermediate (equi-join) result sizes — Fig. 5's metric.
    pub cumulative_join_rows: u64,
    /// Sum of all intermediate result sizes (steps included).
    pub cumulative_rows: u64,
}

/// A plan validation / execution error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanError {
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "plan error: {}", self.message)
    }
}

impl std::error::Error for PlanError {}

impl From<EnvError> for PlanError {
    fn from(e: EnvError) -> Self {
        PlanError { message: e.message }
    }
}

/// Check that `order` covers every non-redundant edge exactly once.
pub fn validate_plan(graph: &JoinGraph, order: &[EdgeId]) -> Result<(), PlanError> {
    let mut seen = vec![false; graph.edge_count()];
    for &e in order {
        if e as usize >= graph.edge_count() {
            return Err(PlanError {
                message: format!("edge {e} does not exist"),
            });
        }
        if seen[e as usize] {
            return Err(PlanError {
                message: format!("edge {e} appears twice"),
            });
        }
        seen[e as usize] = true;
    }
    for edge in graph.edges() {
        if !edge.redundant && !seen[edge.id as usize] {
            return Err(PlanError {
                message: format!("edge {} missing from plan", edge.id),
            });
        }
    }
    Ok(())
}

/// Replay a plan (no sampling). Redundant edges are skipped; `order` must
/// cover all other edges (checked).
pub fn run_plan(
    catalog: Arc<Catalog>,
    graph: &JoinGraph,
    order: &[EdgeId],
) -> Result<PlanRun, PlanError> {
    let env = RoxEnv::new(catalog, graph)?;
    run_plan_with_env(&env, graph, order)
}

/// As [`run_plan`] with a worker-thread budget: full edge executions use
/// the partitioned staircase/hash joins of `rox-ops`, producing the same
/// relations, edge log, and cost counters as the sequential replay.
pub fn run_plan_parallel(
    catalog: Arc<Catalog>,
    graph: &JoinGraph,
    order: &[EdgeId],
    parallelism: rox_par::Parallelism,
) -> Result<PlanRun, PlanError> {
    let env = RoxEnv::with_parallelism(catalog, graph, parallelism)?;
    run_plan_with_env(&env, graph, order)
}

/// As [`run_plan`] with a reusable environment (the environment's default
/// worker budget applies; see [`run_plan_with_env_parallel`] for a per-run
/// override).
pub fn run_plan_with_env(
    env: &RoxEnv,
    graph: &JoinGraph,
    order: &[EdgeId],
) -> Result<PlanRun, PlanError> {
    run_plan_with_env_parallel(env, graph, order, env.parallelism())
}

/// As [`run_plan_with_env`] with an explicit per-run worker-thread budget
/// for full edge executions — the replay analogue of
/// [`RoxOptions::parallelism`](crate::RoxOptions::parallelism), so shared
/// (engine-owned) environments never need `&mut` to change thread counts.
/// Results, edge log, and cost counters are identical at any setting.
pub fn run_plan_with_env_parallel(
    env: &RoxEnv,
    graph: &JoinGraph,
    order: &[EdgeId],
    parallelism: rox_par::Parallelism,
) -> Result<PlanRun, PlanError> {
    validate_plan(graph, order)?;
    let started = Instant::now();
    let mut state = EvalState::new(env, graph);
    state.set_parallelism(parallelism);
    for e in graph.edges() {
        if e.redundant {
            state.mark_executed(e.id);
        }
    }
    for &e in order {
        if graph.edge(e).redundant {
            continue;
        }
        state.execute_edge(e, None);
    }
    let joined = state.finalize();
    state.recycle_scratch();
    let tail = Tail {
        dedup_vars: graph.tail.dedup.clone(),
        sort_vars: graph.tail.sort.clone(),
        output_vars: vec![graph.tail.output],
    };
    let mut cost = state.exec_cost;
    let output = tail.apply(&joined, &mut cost);
    Ok(PlanRun {
        cumulative_join_rows: state.cumulative_intermediate(true),
        cumulative_rows: state.cumulative_intermediate(false),
        edge_log: state.edge_log,
        joined,
        output,
        cost,
        wall: started.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::{run_rox, RoxOptions};
    use rox_joingraph::compile_query;

    fn setup(src: &str, docs: &[(&str, &str)]) -> (Arc<Catalog>, JoinGraph) {
        let cat = Arc::new(Catalog::new());
        for (uri, xml) in docs {
            cat.load_str(uri, xml).unwrap();
        }
        (cat, compile_query(src).unwrap())
    }

    #[test]
    fn replay_of_rox_order_matches_rox_result() {
        let (cat, g) = setup(
            r#"for $x in doc("x.xml")//a, $y in doc("y.xml")//b
               where $x/text() = $y/text() return $x"#,
            &[
                ("x.xml", "<r><a>k1</a><a>k2</a><a>k2</a></r>"),
                ("y.xml", "<r><b>k2</b><b>k1</b></r>"),
            ],
        );
        let rox = run_rox(Arc::clone(&cat), &g, RoxOptions::default()).unwrap();
        let replay = run_plan(cat, &g, &rox.executed_order).unwrap();
        assert_eq!(replay.output, rox.output);
        // Replay logs the same intermediate sizes.
        assert_eq!(replay.edge_log, rox.edge_log);
    }

    #[test]
    fn any_edge_order_gives_same_output() {
        let (cat, g) = setup(
            r#"for $a in doc("d.xml")//auction, $b in $a/bidder, $r in $b/ref
               return $r"#,
            &[(
                "d.xml",
                "<site><auction><bidder><ref/></bidder></auction><auction><bidder><ref/><ref/></bidder></auction></site>",
            )],
        );
        let non_redundant: Vec<EdgeId> = g
            .edges()
            .iter()
            .filter(|e| !e.redundant)
            .map(|e| e.id)
            .collect();
        let forward = run_plan(Arc::clone(&cat), &g, &non_redundant).unwrap();
        let mut rev = non_redundant.clone();
        rev.reverse();
        let backward = run_plan(cat, &g, &rev).unwrap();
        assert_eq!(forward.output, backward.output);
        assert_eq!(forward.output.len(), 3);
    }

    #[test]
    fn missing_edge_is_rejected() {
        let (cat, g) = setup(
            r#"for $a in doc("d.xml")//auction, $b in $a/bidder return $b"#,
            &[("d.xml", "<site><auction><bidder/></auction></site>")],
        );
        let e = run_plan(cat, &g, &[]).unwrap_err();
        assert!(e.message.contains("missing"), "{e}");
    }

    #[test]
    fn duplicate_edge_is_rejected() {
        let (cat, g) = setup(
            r#"for $a in doc("d.xml")//auction, $b in $a/bidder return $b"#,
            &[("d.xml", "<site><auction><bidder/></auction></site>")],
        );
        let step = g.edges().iter().find(|e| !e.redundant).unwrap().id;
        let e = run_plan(cat, &g, &[step, step]).unwrap_err();
        assert!(e.message.contains("twice"), "{e}");
    }
}
