//! Figure 8: impact of the sample size τ on the relative sampling
//! overhead `100·(R−r)/r`, where `R` is the full ROX run (including
//! sampling) and `r` the pure plan replay.
//!
//! Expected shape (paper): overhead grows with τ; τ=25→100 is marginal
//! while τ=400 is clearly more expensive — supporting the default τ=100.

use crate::setup::dblp_catalog;
use rand::prelude::*;
use rand::rngs::StdRng;
use rox_core::{run_plan_with_env, run_rox_with_env, RoxEnv, RoxOptions};
use rox_datagen::{dblp_query, grouped_combinations};
use rox_joingraph::{EdgeId, JoinGraph};
use std::time::Instant;

/// Replay an executed order, returning `(work, wall seconds)`.
pub fn replay(env: &RoxEnv, graph: &JoinGraph, order: &[EdgeId]) -> (u64, f64) {
    let t = Instant::now();
    let run = run_plan_with_env(env, graph, order).expect("replay of executed order");
    (
        run.cost.total(),
        t.elapsed().as_secs_f64().max(run.wall.as_secs_f64()),
    )
}

/// Configuration.
#[derive(Debug, Clone)]
pub struct Fig8Config {
    /// Sample sizes to compare (paper: 25, 100, 400).
    pub taus: Vec<usize>,
    /// Replication scale.
    pub scale: usize,
    /// Size factor.
    pub size_factor: f64,
    /// Combinations per group.
    pub per_group: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for Fig8Config {
    fn default() -> Self {
        Fig8Config {
            taus: vec![25, 100, 400],
            scale: 1,
            size_factor: 0.05,
            per_group: 6,
            seed: 21,
        }
    }
}

/// Average overhead per (group, τ).
#[derive(Debug, Clone)]
pub struct OverheadRow {
    /// Group label ("2:2", "3:1", "4:0", "all").
    pub group: String,
    /// Sample size.
    pub tau: usize,
    /// Average work overhead in percent (sampling work / execution work).
    pub overhead_work_pct: f64,
    /// Average wall-clock overhead in percent ((R − r)/r).
    pub overhead_wall_pct: f64,
    /// Average absolute sampling work (tuples touched while sampling).
    pub sample_work: f64,
}

/// Output.
#[derive(Debug)]
pub struct Fig8Output {
    /// One row per (group, τ) plus the "all" aggregate per τ.
    pub rows: Vec<OverheadRow>,
}

/// Run the experiment.
pub fn run(cfg: &Fig8Config) -> Fig8Output {
    let setup = dblp_catalog(cfg.scale, cfg.size_factor, cfg.seed);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // (group, τ, work overhead, wall overhead, sampling work) samples.
    let mut samples: Vec<(&'static str, usize, f64, f64, f64)> = Vec::new();
    for group in ["2:2", "3:1", "4:0"] {
        let mut combos: Vec<[usize; 4]> = grouped_combinations()
            .into_iter()
            .filter(|(_, g)| *g == group)
            .map(|(c, _)| c)
            .collect();
        if cfg.per_group > 0 && combos.len() > cfg.per_group {
            combos.shuffle(&mut rng);
            combos.truncate(cfg.per_group);
        }
        for combo in combos {
            let graph = rox_joingraph::compile_query(&dblp_query(&combo)).unwrap();
            let env = setup.engine.session(&graph).unwrap();
            for &tau in &cfg.taus {
                let t = Instant::now();
                let report = run_rox_with_env(
                    &env,
                    &graph,
                    RoxOptions {
                        tau,
                        seed: cfg.seed,
                        ..Default::default()
                    },
                )
                .unwrap();
                let full_wall = t.elapsed().as_secs_f64();
                let (_, pure_wall) = replay(&env, &graph, &report.executed_order);
                let work_pct = report.sampling_overhead_pct();
                let wall_pct = if pure_wall > 0.0 {
                    100.0 * (full_wall - pure_wall).max(0.0) / pure_wall
                } else {
                    0.0
                };
                samples.push((
                    group,
                    tau,
                    work_pct,
                    wall_pct,
                    report.sample_cost.total() as f64,
                ));
            }
        }
    }
    let mut rows = Vec::new();
    for group in ["2:2", "3:1", "4:0", "all"] {
        for &tau in &cfg.taus {
            let sel: Vec<&(&str, usize, f64, f64, f64)> = samples
                .iter()
                .filter(|(g, t, ..)| *t == tau && (group == "all" || *g == group))
                .collect();
            if sel.is_empty() {
                continue;
            }
            let n = sel.len() as f64;
            rows.push(OverheadRow {
                group: group.to_string(),
                tau,
                overhead_work_pct: sel.iter().map(|s| s.2).sum::<f64>() / n,
                overhead_wall_pct: sel.iter().map(|s| s.3).sum::<f64>() / n,
                sample_work: sel.iter().map(|s| s.4).sum::<f64>() / n,
            });
        }
    }
    Fig8Output { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_work_grows_with_tau() {
        // At tiny document sizes the *relative* overhead is dominated by
        // plan-quality differences (τ=400 covers whole tables and picks
        // perfect plans), so the CI-sized assertion is on absolute
        // sampling work; the percentage shape of Fig. 8 emerges at the
        // harness's full scale.
        let out = run(&Fig8Config {
            taus: vec![25, 400],
            per_group: 2,
            size_factor: 0.05,
            ..Default::default()
        });
        let all = |tau: usize| {
            out.rows
                .iter()
                .find(|r| r.group == "all" && r.tau == tau)
                .map(|r| r.sample_work)
                .unwrap()
        };
        assert!(
            all(400) > all(25),
            "τ=400 sampling work {} must exceed τ=25 work {}",
            all(400),
            all(25)
        );
    }
}
