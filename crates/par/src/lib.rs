#![warn(missing_docs)]

//! # rox-par — morsel-driven parallel execution primitives
//!
//! The parallel substrate behind ROX's candidate-sampling fan-out, the
//! partitioned physical operators, and the engine's inter-query serving
//! path. Built on `std` only (the build environment vendors no crates.io
//! dependencies), it provides:
//!
//! * [`Parallelism`] — the knob threaded through `RoxOptions`/`RoxEnv`;
//! * [`WorkerPool`] — an always-on, work-stealing pool: per-worker
//!   injector deques for `'static` serving jobs, a shared board of
//!   in-flight `par_map` batches idle workers help drain, parked idle
//!   workers, graceful shutdown on drop, and per-task panic containment;
//! * [`par_map`] — order-preserving parallel map over a task list (routed
//!   through the process-shared pool), the workhorse for "sample every
//!   candidate operator concurrently";
//! * [`chunk_ranges`] — deterministic contiguous partitioning used by the
//!   partitioned staircase/hash joins to split context inputs into morsels
//!   that can be merged back in document order.
//!
//! **Determinism contract:** `par_map` returns results in task order, and
//! every helper partitions deterministically, so any caller that combines
//! per-task results in index order is bit-identical to its sequential
//! equivalent. The test-suite and `crates/rox`'s equivalence proptest lean
//! on this.
//!
//! Workers are spawned **once** and parked while idle; dispatching a
//! fan-out onto the pool costs roughly a condvar wake (single-digit
//! microseconds) instead of the tens of microseconds a fresh
//! `std::thread::scope` spawn used to cost per call. Callers still gate
//! parallel execution on a minimum task volume so tiny inputs stay on the
//! calling thread (see [`Parallelism::effective_threads`] and the `MIN_*`
//! thresholds in `rox-ops`), but the pooled dispatch cost lowers those
//! thresholds by roughly an order of magnitude.

mod pool;

pub use pool::WorkerPool;

use std::num::NonZeroUsize;

/// Degree of intra-query parallelism.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Parallelism {
    /// Everything on the calling thread (the paper's original setting).
    #[default]
    Sequential,
    /// A fixed worker count. `Threads(0)` and `Threads(1)` are equivalent
    /// to [`Parallelism::Sequential`].
    Threads(usize),
    /// Use [`std::thread::available_parallelism`].
    Auto,
}

impl Parallelism {
    /// The number of worker threads this setting resolves to on the current
    /// machine (always at least 1).
    pub fn threads(self) -> usize {
        match self {
            Parallelism::Sequential => 1,
            Parallelism::Threads(n) => n.max(1),
            Parallelism::Auto => std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1),
        }
    }

    /// Worker count for a workload of `tasks` units: stays at 1 (no
    /// fan-out) until `tasks` reaches `2 * min_tasks_per_thread`, then
    /// caps the pool at `tasks / min_tasks_per_thread` workers so each
    /// thread gets at least `min_tasks_per_thread` units and the spawn
    /// overhead is amortized.
    pub fn effective_threads(self, tasks: usize, min_tasks_per_thread: usize) -> usize {
        let t = self.threads();
        if t <= 1 || tasks < 2 * min_tasks_per_thread.max(1) {
            return 1;
        }
        t.min(tasks / min_tasks_per_thread.max(1)).max(1)
    }

    /// True when this setting can ever use more than one thread.
    pub fn is_parallel(self) -> bool {
        self.threads() > 1
    }
}

/// Parse a `Parallelism` from a CLI-style string: `seq`, `auto`, or a
/// thread count.
impl std::str::FromStr for Parallelism {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "seq" | "sequential" | "1" => Ok(Parallelism::Sequential),
            "auto" => Ok(Parallelism::Auto),
            n => n
                .parse::<usize>()
                .map(Parallelism::Threads)
                .map_err(|_| format!("invalid parallelism '{s}' (want seq|auto|<n>)")),
        }
    }
}

/// Deterministic contiguous partition of `0..len` into at most `parts`
/// near-equal ranges (empty ranges are never produced).
pub fn chunk_ranges(len: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, len);
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let size = base + usize::from(i < extra);
        out.push(start..start + size);
        start += size;
    }
    debug_assert_eq!(start, len);
    out
}

/// Order-preserving parallel map: applies `f` to `0..tasks` task indices
/// with a concurrency budget of `threads` and returns the results in task
/// order, exactly as the sequential `(0..tasks).map(f).collect()` would.
///
/// Runs on the process-shared [`WorkerPool`]: the calling thread drives an
/// atomic task cursor (morsel-driven scheduling) and parked pool workers
/// wake to help, so stragglers never idle the pool and no threads are
/// spawned per call. Result placement is by task index, so scheduling
/// order can never leak into the output. Safe to call from inside a pool
/// worker (nested fan-out): the caller always drains its own batch.
pub fn par_map<T, F>(threads: usize, tasks: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Send + Sync,
{
    WorkerPool::shared().par_map(threads, tasks, f)
}

/// [`par_map`] over the items of a slice, preserving input order.
pub fn par_map_slice<'a, I, T, F>(threads: usize, items: &'a [I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&'a I) -> T + Send + Sync,
{
    par_map(threads, items.len(), |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_cover_exactly() {
        for len in [0usize, 1, 2, 7, 64, 1000] {
            for parts in [1usize, 2, 3, 8, 2000] {
                let ranges = chunk_ranges(len, parts);
                let total: usize = ranges.iter().map(|r| r.len()).sum();
                assert_eq!(total, len);
                assert!(ranges.iter().all(|r| !r.is_empty()));
                let mut expect = 0;
                for r in &ranges {
                    assert_eq!(r.start, expect);
                    expect = r.end;
                }
            }
        }
    }

    #[test]
    fn par_map_matches_sequential_map() {
        let expect: Vec<usize> = (0..257).map(|i| i * i).collect();
        for threads in [1, 2, 4, 8] {
            assert_eq!(par_map(threads, 257, |i| i * i), expect);
        }
    }

    #[test]
    fn par_map_runs_on_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids = Mutex::new(HashSet::new());
        par_map(4, 64, |_| {
            ids.lock().unwrap().insert(std::thread::current().id());
            std::thread::yield_now();
        });
        // With 64 tasks and 4 workers at least two should participate; this
        // is scheduling-dependent but overwhelmingly reliable.
        assert!(ids.lock().unwrap().len() >= 2);
    }

    #[test]
    fn effective_threads_scales_down() {
        let p = Parallelism::Threads(8);
        assert_eq!(p.effective_threads(1, 4), 1);
        assert_eq!(p.effective_threads(7, 4), 1);
        assert_eq!(p.effective_threads(8, 4), 2);
        assert_eq!(p.effective_threads(1000, 4), 8);
        assert_eq!(Parallelism::Sequential.effective_threads(1000, 1), 1);
    }

    #[test]
    fn parallelism_parses() {
        assert_eq!(
            "seq".parse::<Parallelism>().unwrap(),
            Parallelism::Sequential
        );
        assert_eq!("auto".parse::<Parallelism>().unwrap(), Parallelism::Auto);
        assert_eq!("4".parse::<Parallelism>().unwrap(), Parallelism::Threads(4));
        assert!("bogus".parse::<Parallelism>().is_err());
    }

    #[test]
    fn par_map_slice_borrows() {
        let items = vec!["a".to_string(), "bb".to_string(), "ccc".to_string()];
        let lens = par_map_slice(2, &items, |s| s.len());
        assert_eq!(lens, vec![1, 2, 3]);
    }
}
