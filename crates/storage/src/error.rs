//! Error type of the storage layer.
//!
//! Every failure mode is explicit: I/O errors bubble up from the file
//! manager, corruption is *detected* (checksummed pages) and reported with
//! the offending page, and format violations (truncated segments, invalid
//! tags) are surfaced instead of decoding garbage.

use std::fmt;

/// Errors produced by the page file, buffer pool and snapshot codec.
#[derive(Debug)]
pub enum StorageError {
    /// An operating-system I/O failure.
    Io(std::io::Error),
    /// A page failed validation: bad magic, mismatched id, impossible
    /// payload length or checksum mismatch. The snapshot refuses to decode
    /// rather than propagate silent corruption.
    Corrupt {
        /// The page that failed validation.
        page: u32,
        /// What exactly failed.
        reason: String,
    },
    /// A structurally invalid snapshot: truncated segment, unknown version,
    /// invalid enum tag, inconsistent directory.
    Format(String),
    /// Every buffer-pool frame is pinned; the fetch cannot make progress.
    PoolExhausted,
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage I/O error: {e}"),
            StorageError::Corrupt { page, reason } => {
                write!(f, "page {page} is corrupt: {reason}")
            }
            StorageError::Format(reason) => write!(f, "invalid snapshot: {reason}"),
            StorageError::PoolExhausted => {
                write!(f, "buffer pool exhausted: every frame is pinned")
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Shorthand result type for storage operations.
pub type Result<T> = std::result::Result<T, StorageError>;
