//! Guarded-replay benchmarks: what plan revalidation costs and what
//! demotion buys (the `bench_revalidation` binary, which emits the
//! machine-readable `BENCH_revalidation.json` consumed by CI).
//!
//! Two measured regimes, both over the paper's Q1 on an XMark document:
//!
//! 1. **No drift** — a warm engine serving the same query. The guarded
//!    replay (`ReuseValidated`: budget-capped spot checks + free observed
//!    checks) is compared against the *pure* plan replay of the same
//!    cached order (`run_plan_with_env`, the pre-guard baseline). The
//!    overhead percentage is the price of self-defence.
//! 2. **Drift** — the document is regenerated with `inflate`× the
//!    auctions and `inflate`× the bidders per auction, then reindexed
//!    through the incremental path (plans survive). Three latencies:
//!    the **guarded** run (detects the drift, demotes, re-optimizes
//!    mid-query), the **stale** blind replay of the now-wrong plan
//!    (what PR-5 would have served), and a **fresh** full optimization
//!    (the quality ceiling). The demoted output is asserted equal to the
//!    fresh optimizer's before any timing is reported.

use crate::xmark_catalog;
use rox_core::{
    run_plan_with_env, run_rox_with_env, PlanReuse, RoxEngine, RoxEnv, RoxOptions, RunMode,
};
use rox_datagen::{generate_xmark, xmark_query, XmarkConfig};
use rox_joingraph::JoinGraph;
use rox_ops::revalidation_budget;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of the revalidation benchmarks.
#[derive(Debug, Clone)]
pub struct RevalidationBenchConfig {
    /// Seed XMark document shape.
    pub xmark: XmarkConfig,
    /// Drift severity: the drifted document has `inflate`× the auctions
    /// and `price_per_bidder / inflate` (≈ `inflate`× bidders each).
    pub inflate: usize,
    /// Sample size τ.
    pub tau: usize,
    /// Timed repetitions per measurement (the minimum is reported).
    pub repeats: usize,
}

impl Default for RevalidationBenchConfig {
    fn default() -> Self {
        RevalidationBenchConfig {
            xmark: XmarkConfig {
                persons: 3000,
                items: 2500,
                auctions: 2500,
                ..XmarkConfig::default()
            },
            inflate: 4,
            tau: 100,
            repeats: 3,
        }
    }
}

impl RevalidationBenchConfig {
    /// A seconds-scale configuration for CI smoke runs.
    pub fn smoke() -> Self {
        RevalidationBenchConfig {
            xmark: XmarkConfig {
                persons: 300,
                items: 250,
                auctions: 250,
                ..XmarkConfig::default()
            },
            inflate: 4,
            tau: 64,
            repeats: 2,
        }
    }

    /// The drifted document shape.
    pub fn drifted(&self) -> XmarkConfig {
        XmarkConfig {
            auctions: self.xmark.auctions * self.inflate.max(1),
            price_per_bidder: self.xmark.price_per_bidder / self.inflate.max(1) as f64,
            ..self.xmark.clone()
        }
    }
}

/// Everything the `bench_revalidation` binary reports.
#[derive(Debug, Clone)]
pub struct RevalidationBenchResult {
    /// Pure plan replay of the cached order (pre-guard baseline).
    pub pure_replay: Duration,
    /// Guarded replay on unchanged data (spot checks + observed checks).
    pub guarded_replay: Duration,
    /// `(guarded - pure) / pure`, in percent.
    pub no_drift_overhead_pct: f64,
    /// Spot checks the revalidated replay performed.
    pub spot_checks: usize,
    /// Sampling charged by the revalidated replay.
    pub spot_check_cost: u64,
    /// The guard's sampling budget at this τ.
    pub budget: u64,
    /// Guarded run on drifted data: detect, demote, re-optimize.
    pub drifted_guarded: Duration,
    /// Blind stale-plan replay on the drifted data (no guard).
    pub stale_replay: Duration,
    /// Fresh full optimization on the drifted data (warm environment).
    pub fresh_optimize: Duration,
    /// Executed-prefix length at the demotion breach.
    pub demoted_at_edge: usize,
    /// Output rows on the seed document (sanity anchor).
    pub anchor_rows: usize,
    /// Output rows on the drifted document.
    pub drifted_rows: usize,
}

fn best_of(repeats: usize, mut f: impl FnMut() -> Duration) -> Duration {
    (0..repeats.max(1))
        .map(|_| f())
        .min()
        .expect("at least one repeat")
}

/// Run the revalidation benchmarks.
pub fn run(cfg: &RevalidationBenchConfig) -> RevalidationBenchResult {
    let graph: JoinGraph = rox_joingraph::compile_query(&xmark_query("<", 145.0)).unwrap();
    let reuse = RoxOptions {
        tau: cfg.tau,
        plan_reuse: PlanReuse::ReuseValidated,
        ..Default::default()
    };

    // ---- 1. No drift: guarded replay vs the pure (pre-guard) replay. ----
    let catalog = xmark_catalog(&cfg.xmark);
    let engine = RoxEngine::new(Arc::clone(&catalog));
    let cold = engine.run(&graph, reuse).unwrap();
    let anchor_rows = cold.output.len();
    let plan = engine.cached_plan(&graph).expect("seeded plan");

    let env = RoxEnv::new(Arc::clone(&catalog), &graph).unwrap();
    run_plan_with_env(&env, &graph, &plan.order).unwrap(); // warm the env
    let pure_replay = best_of(cfg.repeats, || {
        let t = Instant::now();
        let r = run_plan_with_env(&env, &graph, &plan.order).unwrap();
        let wall = t.elapsed();
        assert_eq!(r.output, cold.output, "pure replay output diverged");
        wall
    });

    let mut spot_checks = 0;
    let mut spot_check_cost = 0;
    let guarded_replay = best_of(cfg.repeats, || {
        let t = Instant::now();
        let r = engine.run(&graph, reuse).unwrap();
        let wall = t.elapsed();
        assert_eq!(r.mode, RunMode::Revalidated, "no-drift replay demoted");
        assert_eq!(r.output, cold.output, "guarded replay output diverged");
        spot_checks = r.spot_checks.len();
        spot_check_cost = r.sample_cost.total();
        wall
    });
    let no_drift_overhead_pct = 100.0 * (guarded_replay.as_secs_f64() - pure_replay.as_secs_f64())
        / pure_replay.as_secs_f64().max(f64::EPSILON);

    // ---- 2. Drift: guarded demotion vs blind stale replay vs fresh. ----
    let drifted_cfg = cfg.drifted();
    // Reference environment over the drifted data, warmed once.
    let drifted_catalog = xmark_catalog(&drifted_cfg);
    let drifted_env = RoxEnv::new(Arc::clone(&drifted_catalog), &graph).unwrap();
    let fresh_reference = run_rox_with_env(&drifted_env, &graph, reuse).unwrap();
    let drifted_rows = fresh_reference.output.len();

    let mut demoted_at_edge = 0;
    let drifted_guarded = best_of(cfg.repeats, || {
        // Each repeat needs its own seed→drift cycle: a demotion re-seeds
        // the plan cache, so the drift is only "news" once per engine.
        let cat = Arc::new(rox_xmldb::Catalog::new());
        generate_xmark(&cat, "xmark.xml", &cfg.xmark);
        let e = RoxEngine::new(Arc::clone(&cat));
        e.run(&graph, reuse).unwrap();
        generate_xmark(&cat, "xmark.xml", &drifted_cfg);
        e.reindex_document("xmark.xml");
        let t = Instant::now();
        let r = e.run(&graph, reuse).unwrap();
        let wall = t.elapsed();
        let RunMode::Demoted { at_edge } = r.mode else {
            panic!("drifted replay must demote, got {:?}", r.mode);
        };
        demoted_at_edge = at_edge;
        assert_eq!(
            r.output, fresh_reference.output,
            "demoted output diverged from fresh optimization"
        );
        wall
    });

    run_plan_with_env(&drifted_env, &graph, &plan.order).unwrap(); // warm
    let stale_replay = best_of(cfg.repeats, || {
        let t = Instant::now();
        let r = run_plan_with_env(&drifted_env, &graph, &plan.order).unwrap();
        let wall = t.elapsed();
        assert_eq!(r.output, fresh_reference.output, "stale replay output");
        wall
    });
    let fresh_optimize = best_of(cfg.repeats, || {
        let t = Instant::now();
        let r = run_rox_with_env(&drifted_env, &graph, reuse).unwrap();
        let wall = t.elapsed();
        assert_eq!(r.output, fresh_reference.output, "fresh output diverged");
        wall
    });

    RevalidationBenchResult {
        pure_replay,
        guarded_replay,
        no_drift_overhead_pct,
        spot_checks,
        spot_check_cost,
        budget: revalidation_budget(cfg.tau),
        drifted_guarded,
        stale_replay,
        fresh_optimize,
        demoted_at_edge,
        anchor_rows,
        drifted_rows,
    }
}

/// Render the result as the `BENCH_revalidation.json` document
/// (hand-rolled — the workspace is dependency-free by policy).
pub fn to_json(cfg: &RevalidationBenchConfig, r: &RevalidationBenchResult) -> String {
    format!(
        "{{\n  \"machine\": {},\n  \"config\": {{\"persons\": {}, \"items\": {}, \"auctions\": {}, \"inflate\": {}, \"tau\": {}, \"repeats\": {}}},\n  \"no_drift\": {{\"pure_replay_ms\": {:.3}, \"guarded_replay_ms\": {:.3}, \"overhead_pct\": {:.1}, \"spot_checks\": {}, \"spot_check_cost\": {}, \"budget\": {}}},\n  \"drifted\": {{\"guarded_demote_ms\": {:.3}, \"stale_replay_ms\": {:.3}, \"fresh_optimize_ms\": {:.3}, \"demoted_at_edge\": {}}},\n  \"anchor_rows\": {},\n  \"drifted_rows\": {}\n}}\n",
        crate::machine_json(),
        cfg.xmark.persons,
        cfg.xmark.items,
        cfg.xmark.auctions,
        cfg.inflate,
        cfg.tau,
        cfg.repeats,
        r.pure_replay.as_secs_f64() * 1e3,
        r.guarded_replay.as_secs_f64() * 1e3,
        r.no_drift_overhead_pct,
        r.spot_checks,
        r.spot_check_cost,
        r.budget,
        r.drifted_guarded.as_secs_f64() * 1e3,
        r.stale_replay.as_secs_f64() * 1e3,
        r.fresh_optimize.as_secs_f64() * 1e3,
        r.demoted_at_edge,
        r.anchor_rows,
        r.drifted_rows,
    )
}

/// Render a human-readable summary table.
pub fn render(r: &RevalidationBenchResult) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    writeln!(
        out,
        "no drift   pure-replay {:>10.3?}  guarded {:>10.3?}  overhead {:+.1}%",
        r.pure_replay, r.guarded_replay, r.no_drift_overhead_pct
    )
    .unwrap();
    writeln!(
        out,
        "           {} spot checks charged {} (budget {})",
        r.spot_checks, r.spot_check_cost, r.budget
    )
    .unwrap();
    writeln!(
        out,
        "drifted    guarded-demote {:>10.3?}  stale-replay {:>10.3?}  fresh {:>10.3?} (breach after {} edges)",
        r.drifted_guarded, r.stale_replay, r.fresh_optimize, r.demoted_at_edge
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_is_consistent() {
        let cfg = RevalidationBenchConfig {
            xmark: XmarkConfig::tiny(),
            inflate: 4,
            tau: 16,
            repeats: 1,
        };
        let r = run(&cfg);
        assert!(r.spot_checks > 0, "revalidation performed no checks");
        assert!(
            r.spot_check_cost <= 2 * r.budget,
            "spot checks blew the budget"
        );
        let json = to_json(&cfg, &r);
        assert!(json.contains("\"no_drift\""));
        assert!(json.contains("\"drifted\""));
        let table = render(&r);
        assert!(table.contains("guarded-demote"));
    }
}
