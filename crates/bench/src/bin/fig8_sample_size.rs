//! Reproduces **Figure 8**: average sampling overhead per group for
//! sample sizes τ ∈ {25, 100, 400}.
//!
//! ```text
//! cargo run --release -p rox-bench --bin fig8_sample_size -- \
//!     [--scale 1] [--size-factor 0.05] [--per-group 6] [--seed 21]
//! ```

use rox_bench::args::Args;
use rox_bench::fig8::{self, Fig8Config};

fn main() {
    let args = Args::from_env();
    let taus: Vec<usize> = args
        .get("taus", "25,100,400".to_string())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    let cfg = Fig8Config {
        taus,
        scale: args.get("scale", 1),
        size_factor: args.get("size-factor", 0.05),
        per_group: args.get("per-group", 6),
        seed: args.get("seed", 21),
    };
    println!(
        "Figure 8 reproduction — τ ∈ {:?}, scale ×{}, size factor {}\n",
        cfg.taus, cfg.scale, cfg.size_factor
    );
    let out = fig8::run(&cfg);
    println!(
        "{:<6} {:>5} {:>16} {:>16} {:>14}",
        "group", "τ", "work overhead %", "wall overhead %", "sample work"
    );
    for r in &out.rows {
        println!(
            "{:<6} {:>5} {:>16.1} {:>16.1} {:>14.0}",
            r.group, r.tau, r.overhead_work_pct, r.overhead_wall_pct, r.sample_work
        );
    }
    println!(
        "\nExpected shape (paper): overhead grows with τ; 25→100 is marginal,\n\
         400 is clearly costlier — supporting the default τ = 100."
    );
}
