//! Shared, disk-cached workload fixtures for heavyweight test binaries.
//!
//! Cargo compiles every integration-test file into its own binary, and
//! each used to regenerate its XMark corpus from scratch — the single
//! most expensive part of the heavyweight suites. With the storage layer
//! in place, the first binary to need a given configuration generates it
//! once and [`Snapshot::save`]s it to a shared path; every later binary
//! (and every later run) [`Snapshot::open`]s the file and faults the
//! prebuilt documents in instead of regenerating.
//!
//! Concurrency-safe by construction: writers save to a process-unique
//! temp file and `rename` it into place (atomic on POSIX), so parallel
//! test binaries racing on a cold cache each produce a valid file and one
//! wins. A corrupt or torn file fails [`Snapshot::open`]'s checksums and
//! is silently regenerated.

use crate::xmark::{generate_xmark, XmarkConfig};
use rox_index::IndexedStore;
use rox_storage::{Snapshot, SNAPSHOT_VERSION};
use rox_xmldb::Catalog;
use std::path::PathBuf;
use std::sync::Arc;

/// FNV-1a over the configuration string — a stable fixture-file key.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Where fixtures live: `CARGO_TARGET_TMPDIR` when the harness exports
/// it, the system temp directory otherwise.
fn fixture_dir() -> PathBuf {
    std::env::var_os("CARGO_TARGET_TMPDIR")
        .map(PathBuf::from)
        .unwrap_or_else(std::env::temp_dir)
}

fn fixture_path(uri: &str, cfg: &XmarkConfig) -> PathBuf {
    // Every generator knob (and the snapshot format version) is part of
    // the key, so a config or format change can never reuse a stale file.
    let key = format!(
        "v{SNAPSHOT_VERSION}|{uri}|{}|{}|{}|{}|{}|{}|{}|{}|{}",
        cfg.persons,
        cfg.items,
        cfg.auctions,
        cfg.province_fraction.to_bits(),
        cfg.quantity_one_fraction.to_bits(),
        cfg.reserve_fraction.to_bits(),
        cfg.price_max.to_bits(),
        cfg.price_per_bidder.to_bits(),
        cfg.seed,
    );
    fixture_dir().join(format!(
        "rox-fixture-xmark-{:016x}.snap",
        fnv1a(key.as_bytes())
    ))
}

/// A catalog holding the XMark document `uri` generated under `cfg`,
/// loaded from the shared fixture snapshot when one exists and generated
/// (then saved for the next binary) otherwise. The returned catalog is
/// fully resident — safe to hand to any engine or `run_rox` call with no
/// backing source attached.
pub fn shared_xmark_catalog(uri: &str, cfg: &XmarkConfig) -> Arc<Catalog> {
    let path = fixture_path(uri, cfg);
    if let Ok((catalog, source)) = Snapshot::open(&path, None) {
        if catalog.resolve(uri).is_some() {
            // Materialize everything: later users expect plain resident
            // documents, not a fault-on-touch catalog.
            let store = IndexedStore::with_source(Arc::clone(&catalog), source);
            for id in catalog.doc_ids() {
                let _ = store.doc(id);
            }
            return catalog;
        }
    }
    let catalog = Arc::new(Catalog::new());
    generate_xmark(&catalog, uri, cfg);
    // Best-effort cache fill: a failed save only costs the next binary a
    // regeneration. Temp-then-rename keeps racing writers atomic.
    let tmp = path.with_extension(format!("tmp-{}", std::process::id()));
    let store = IndexedStore::new(Arc::clone(&catalog));
    if Snapshot::save(&tmp, &store).is_ok() {
        if std::fs::rename(&tmp, &path).is_err() {
            std::fs::remove_file(&tmp).ok();
        }
    } else {
        std::fs::remove_file(&tmp).ok();
    }
    catalog
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A config no other test uses, so this test owns its fixture file.
    fn private_cfg() -> XmarkConfig {
        XmarkConfig {
            persons: 13,
            items: 11,
            auctions: 9,
            seed: 0xF1C7,
            ..XmarkConfig::default()
        }
    }

    #[test]
    fn fixture_roundtrip_matches_fresh_generation() {
        let cfg = private_cfg();
        let path = fixture_path("fix.xml", &cfg);
        std::fs::remove_file(&path).ok();
        // Cold: generates and saves.
        let first = shared_xmark_catalog("fix.xml", &cfg);
        assert!(path.exists(), "fixture not saved to {}", path.display());
        // Warm: loads from the snapshot.
        let second = shared_xmark_catalog("fix.xml", &cfg);
        let (a, b) = (
            first.doc_by_uri("fix.xml").unwrap(),
            second.doc_by_uri("fix.xml").unwrap(),
        );
        assert_eq!(a.node_count(), b.node_count());
        let (ca, cb) = (a.columns(), b.columns());
        assert_eq!(ca.size, cb.size);
        assert_eq!(ca.kind, cb.kind);
        assert_eq!(ca.name, cb.name);
        assert_eq!(ca.value, cb.value);
        b.check_invariants().unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_fixture_regenerates() {
        let cfg = XmarkConfig {
            seed: 0xBAD,
            ..private_cfg()
        };
        let path = fixture_path("fix.xml", &cfg);
        std::fs::write(&path, b"not a snapshot at all").unwrap();
        let catalog = shared_xmark_catalog("fix.xml", &cfg);
        assert!(catalog.resolve("fix.xml").is_some());
        catalog
            .doc_by_uri("fix.xml")
            .unwrap()
            .check_invariants()
            .unwrap();
        std::fs::remove_file(&path).ok();
    }
}
