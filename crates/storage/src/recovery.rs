//! Crash recovery: a durable directory is a snapshot plus a WAL tail,
//! and recovery turns any crash-consistent state of the two back into
//! the engine that wrote them.
//!
//! ## Directory layout
//!
//! | file               | contents                                    |
//! |--------------------|---------------------------------------------|
//! | `snapshot.rox`     | the newest complete snapshot (page file)    |
//! | `wal.rox`          | the log extending it (see [`crate::wal`])   |
//! | `*.tmp`            | checkpoint scratch; deleted on recovery     |
//!
//! ## The checkpoint state machine
//!
//! [`write_checkpoint`] rotates both files with a tmp-write → verify →
//! rename → dir-fsync dance, in this order:
//!
//! 1. encode the snapshot image, write it to `snapshot.rox.tmp`, sync;
//! 2. read the tmp back and compare byte-for-byte — a device that lied
//!    about the sync is caught *before* the rename makes it current;
//! 3. rename over `snapshot.rox`, fsync the directory;
//! 4. write `wal.rox.tmp` holding only the header and a
//!    [`WalRecord::Checkpoint`] stamped `cp_lsn`, sync, verify, rename
//!    over `wal.rox`, fsync the directory (this is the truncation: the
//!    old log generation's records are all baked into the snapshot).
//!
//! A crash anywhere in the dance leaves one of three states, all
//! recoverable: old snapshot with the old log (nothing happened), new
//! snapshot with the old log (replay is idempotent — every old record's
//! content is already in the snapshot and re-applying it converges to
//! the same state), or new snapshot with the new log (the checkpoint
//! completed).
//!
//! ## LSN ↔ epoch rule
//!
//! LSNs never reset — a rotated log starts at the previous generation's
//! `last_lsn + 1` — so "how recovered am I" is one number. Document
//! epochs ride *in* the records: the checkpoint record carries the full
//! epoch table, every bump/invalidate carries the new epoch, and replay
//! max-merges them, so a recovered engine's epoch table equals the
//! uncrashed engine's at the last durable LSN.

use crate::error::{Result, StorageError};
use crate::file::retry_transient;
use crate::snapshot::{decode_document, SaveReport, Snapshot, SnapshotSource};
use crate::wal::{
    encode_frame, scan_wal_bytes, wal_header_bytes, Lsn, Wal, WalFile, WalIo, WalRecord, WalScan,
};
use rox_index::DocSource;
use rox_xmldb::Catalog;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// The snapshot file inside a durable directory.
pub const SNAPSHOT_FILE: &str = "snapshot.rox";

/// The write-ahead log inside a durable directory.
pub const WAL_FILE: &str = "wal.rox";

fn tmp_of(path: &Path) -> PathBuf {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    PathBuf::from(tmp)
}

/// Write `bytes` to `path`'s tmp sibling, sync, read it back to verify
/// every byte was accepted (catching short or silently dropped writes,
/// including the torture harness's simulated device, before the rename
/// can make a hollow file current), then rename into place and fsync
/// the directory. The read-back is served from the OS page cache, so
/// it cannot prove the bytes reached stable media — power-failure
/// durability rests on the sync + rename + dir-fsync ordering, not on
/// this check.
fn publish(dir: &Path, path: &Path, bytes: &[u8], io: &dyn WalIo) -> Result<()> {
    let tmp = tmp_of(path);
    {
        let mut file = io.create(&tmp)?;
        file.append(bytes)?;
        file.sync()?;
    }
    let on_disk = retry_transient(|| std::fs::read(&tmp))?;
    if on_disk != bytes {
        return Err(StorageError::Format(format!(
            "checkpoint verify failed: {} bytes read back, {} written — a write was dropped or truncated",
            on_disk.len(),
            bytes.len()
        )));
    }
    io.rename(&tmp, path)?;
    io.sync_dir(dir)?;
    Ok(())
}

/// What [`write_checkpoint`] produced: the fresh log generation, open
/// for appending, plus the snapshot's save report.
pub struct CheckpointOutcome {
    /// The rotated log, positioned after its checkpoint record.
    pub wal_file: Box<dyn WalFile>,
    /// Bytes in the rotated log (header + checkpoint record).
    pub wal_bytes: u64,
    /// What the snapshot write covered.
    pub report: SaveReport,
}

/// Run the checkpoint state machine (see the module docs): persist a
/// new snapshot of `store`, then rotate the log to a fresh generation
/// whose only record is a [`WalRecord::Checkpoint`] at `cp_lsn`
/// carrying `epochs`. The caller must guarantee no record with an LSN
/// ≥ `cp_lsn` was ever appended.
pub fn write_checkpoint(
    dir: &Path,
    store: &rox_index::IndexedStore,
    epochs: Vec<(String, u64)>,
    cp_lsn: Lsn,
    io: &dyn WalIo,
    page_size: usize,
) -> Result<CheckpointOutcome> {
    let (image, mut report) = Snapshot::encode_image(store, page_size);
    publish(dir, &dir.join(SNAPSHOT_FILE), &image, io)?;
    report.fsyncs = 2;

    let mut wal_bytes = wal_header_bytes().to_vec();
    wal_bytes.extend_from_slice(&encode_frame(cp_lsn, &WalRecord::Checkpoint { epochs }));
    let wal_path = dir.join(WAL_FILE);
    publish(dir, &wal_path, &wal_bytes, io)?;
    let wal_file = io.open_append(&wal_path, wal_bytes.len() as u64)?;
    Ok(CheckpointOutcome {
        wal_file,
        wal_bytes: wal_bytes.len() as u64,
        report,
    })
}

/// What one recovery did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Documents restored from the snapshot.
    pub snapshot_docs: usize,
    /// Valid records found in the log (checkpoint included).
    pub wal_records: usize,
    /// Mutation records replayed on top of the snapshot.
    pub replayed: usize,
    /// The last durable LSN — the recovered engine's water mark.
    pub last_lsn: Lsn,
    /// Torn-tail bytes the scan discarded and recovery truncated.
    pub torn_tail_bytes: u64,
}

/// A recovered durable directory, ready to back an engine.
pub struct RecoveredState {
    /// The catalog: snapshot URIs reserved, replayed documents resident.
    pub catalog: Arc<Catalog>,
    /// The snapshot source, with every replayed document marked stale.
    pub source: Arc<SnapshotSource>,
    /// The recovered epoch table.
    pub epochs: Vec<(String, u64)>,
    /// The log, truncated past the torn tail and open for appending.
    pub wal: Wal,
    /// What recovery found and did.
    pub report: RecoveryReport,
}

/// Recover the durable directory at `dir`: delete checkpoint scratch,
/// open the newest valid snapshot, scan the log, replay every valid
/// record on top of the snapshot, truncate the torn tail, and hand back
/// a state provably equal to the writer's at its last durable LSN.
///
/// `frames` bounds the snapshot's buffer pool as in [`Snapshot::open`].
pub fn recover(dir: &Path, frames: Option<usize>, io: &dyn WalIo) -> Result<RecoveredState> {
    // Checkpoint scratch is dead weight from a crashed rotation.
    std::fs::remove_file(tmp_of(&dir.join(SNAPSHOT_FILE))).ok();
    std::fs::remove_file(tmp_of(&dir.join(WAL_FILE))).ok();

    let (catalog, source) = Snapshot::open(&dir.join(SNAPSHOT_FILE), frames)?;
    let snapshot_docs = catalog.len();

    let wal_path = dir.join(WAL_FILE);
    let wal_existed = wal_path.exists();
    let scan: WalScan = if wal_existed {
        let bytes = retry_transient(|| std::fs::read(&wal_path))?;
        scan_wal_bytes(&bytes)?
    } else {
        // No log was ever published: nothing past the snapshot was
        // acknowledged, so an empty generation is faithful.
        WalScan {
            records: Vec::new(),
            valid_len: 0,
            file_len: 0,
        }
    };

    let mut epochs: HashMap<String, u64> = HashMap::new();
    let bump = |epochs: &mut HashMap<String, u64>, uri: &str, epoch: u64| {
        let slot = epochs.entry(uri.to_string()).or_insert(0);
        *slot = (*slot).max(epoch);
    };
    let mut replayed = 0usize;
    for (_lsn, record) in &scan.records {
        match record {
            WalRecord::Checkpoint { epochs: table } => {
                for (uri, epoch) in table {
                    bump(&mut epochs, uri, *epoch);
                }
            }
            WalRecord::EpochBump { uri, epoch } => {
                bump(&mut epochs, uri, *epoch);
                if let Some(id) = catalog.resolve(uri) {
                    source.mark_stale(id);
                }
                replayed += 1;
            }
            WalRecord::DocInvalidate { uri, epoch, put } => {
                bump(&mut epochs, uri, *epoch);
                apply_put(&catalog, &source, uri, put)?;
                replayed += 1;
            }
            WalRecord::DocReindex { uri, put } => {
                apply_put(&catalog, &source, uri, put)?;
                replayed += 1;
            }
        }
    }

    let torn_tail_bytes = scan.torn_tail_bytes();
    let (wal, last_lsn) = if wal_existed {
        // Truncating to the valid prefix removes the torn tail so the
        // next append extends a clean log.
        let file = io.open_append(&wal_path, scan.valid_len)?;
        let last_lsn = scan.last_lsn();
        (
            Wal::open(file, last_lsn, scan.records.len() as u64, scan.valid_len),
            last_lsn,
        )
    } else {
        let mut bytes = wal_header_bytes().to_vec();
        bytes.extend_from_slice(&encode_frame(
            1,
            &WalRecord::Checkpoint { epochs: Vec::new() },
        ));
        let mut file = io.create(&wal_path)?;
        file.append(&bytes)?;
        file.sync()?;
        io.sync_dir(dir)?;
        (Wal::open(file, 1, 1, bytes.len() as u64), 1)
    };

    let mut epochs: Vec<(String, u64)> = epochs.into_iter().collect();
    epochs.sort();
    Ok(RecoveredState {
        catalog,
        source,
        epochs,
        wal,
        report: RecoveryReport {
            snapshot_docs,
            wal_records: scan.records.len(),
            replayed,
            last_lsn,
            torn_tail_bytes,
        },
    })
}

/// Replay one document-carrying record: re-intern its symbol delta (in
/// id order, so every symbol lands at its original id), decode the
/// column stream, install the document resident in the catalog, and
/// mark the snapshot's stored segments for it stale.
fn apply_put(
    catalog: &Arc<Catalog>,
    source: &Arc<SnapshotSource>,
    uri: &str,
    put: &crate::wal::DocPut,
) -> Result<()> {
    let interner = catalog.interner();
    for (i, s) in put.new_symbols.iter().enumerate() {
        let sym = interner.intern(s);
        // Replay over a newer snapshot may find the symbol already
        // present — that is fine; what must never happen is a *different*
        // id, which would silently rebind every column referencing it.
        let expected = put.symbol_base as usize + i;
        if sym.0 as usize > expected {
            return Err(StorageError::Format(format!(
                "WAL symbol {s:?} interned at {} but logged at ≤ {expected} — log and snapshot disagree",
                sym.0
            )));
        }
    }
    let id = catalog.resolve(uri).unwrap_or_else(|| catalog.reserve(uri));
    let mut r = crate::bytes::SliceReader::new(&put.doc_bytes);
    let doc = decode_document(&mut r, id, uri, interner)?;
    catalog.insert(uri, Arc::new(doc));
    source.mark_stale(id);
    Ok(())
}
