//! Kernel-equivalence property tests: [`execute_edge_op`] must be
//! **bit-identical** — pairs, order, truncation bookkeeping, and cost
//! counters — to the pre-refactor per-call-site dispatch it replaced. The
//! `seed_*` functions below reimplement that original dispatch logic
//! (smaller-side direction choice, the `|small| * 8 < |large|` index-NL
//! heuristic, forced-direction cut-off sampling) verbatim on top of the
//! raw operators, and every case checks the kernel against it under both
//! `Parallelism::Sequential` and `Parallelism::Threads(2)`.

use proptest::prelude::*;
use rox_index::ValueIndex;
use rox_ops::{
    execute_edge_op, hash_value_join_partitioned, index_value_join, step_join,
    step_join_partitioned, Axis, Cost, EdgeClass, EdgeOpCtx, EdgeOpKind, ExecMode, Parallelism,
};
use rox_xmldb::{Catalog, Document, NodeKind, Pre};
use std::sync::Arc;

// ---------------------------------------------------------------------
// Pre-refactor reference dispatch (the logic formerly inlined in
// rox-core's state.rs and estimate.rs).
// ---------------------------------------------------------------------

/// Seed full-mode step execution: from the smaller side, inverse axis when
/// executing from `v2`, pairs oriented `(v1, v2)`.
fn seed_full_step(
    doc: &Document,
    axis: Axis,
    t1: &[Pre],
    t2: &[Pre],
    par: Parallelism,
    cost: &mut Cost,
) -> Vec<(Pre, Pre)> {
    let (from_t, to_t, ax, from_is_v1) = if t1.len() <= t2.len() {
        (t1, t2, axis, true)
    } else {
        (t2, t1, axis.inverse(), false)
    };
    let out = step_join_partitioned(doc, ax, from_t, to_t, par, cost);
    out.pairs
        .into_iter()
        .map(|(row, s)| {
            let c = from_t[row as usize];
            if from_is_v1 {
                (c, s)
            } else {
                (s, c)
            }
        })
        .collect()
}

/// Seed full-mode value-join execution: smaller side outer, index-NL when
/// `|small| * 8 < |large|`, hash otherwise, pairs oriented `(v1, v2)`.
#[allow(clippy::too_many_arguments)]
fn seed_full_value_join(
    d1: &Document,
    t1: &[Pre],
    i1: &ValueIndex,
    d2: &Document,
    t2: &[Pre],
    i2: &ValueIndex,
    par: Parallelism,
    cost: &mut Cost,
) -> (Vec<(Pre, Pre)>, EdgeOpKind) {
    let (small, large, small_is_v1) = if t1.len() <= t2.len() {
        (t1, t2, true)
    } else {
        (t2, t1, false)
    };
    if small.len() * 8 < large.len() {
        let (outer_doc, inner_idx) = if small_is_v1 { (d1, i2) } else { (d2, i1) };
        let out = index_value_join(
            outer_doc,
            small,
            inner_idx,
            NodeKind::Text,
            Some(large),
            None,
            cost,
        );
        let pairs = out
            .pairs
            .into_iter()
            .map(|(row, s)| {
                let c = small[row as usize];
                if small_is_v1 {
                    (c, s)
                } else {
                    (s, c)
                }
            })
            .collect();
        (pairs, EdgeOpKind::IndexNLValueJoin)
    } else {
        let pairs = hash_value_join_partitioned(d1, t1, d2, t2, par, cost);
        (pairs, EdgeOpKind::HashValueJoin)
    }
}

// ---------------------------------------------------------------------
// Input generators.
// ---------------------------------------------------------------------

/// An always-well-formed random tree: sections with nested items.
fn nested_doc(blocks: &[(u8, u8)]) -> String {
    let mut s = String::from("<site>");
    for &(n, m) in blocks {
        s.push_str("<a>");
        for _ in 0..n % 4 {
            s.push_str("<b>");
            for _ in 0..m % 3 {
                s.push_str("<c/>");
            }
            s.push_str("</b>");
        }
        s.push_str("</a>");
    }
    s.push_str("</site>");
    s
}

fn value_doc(vals: &[u8]) -> String {
    let mut s = String::from("<r>");
    for &v in vals {
        s.push_str(&format!("<t>k{}</t>", v % 12));
    }
    s.push_str("</r>");
    s
}

fn subset(nodes: &[Pre], mask: u64) -> Vec<Pre> {
    nodes
        .iter()
        .copied()
        .enumerate()
        .filter(|(i, _)| (mask >> (i % 64)) & 1 == 1 || *i >= 64)
        .map(|(_, p)| p)
        .collect()
}

fn elements(doc: &Document) -> Vec<Pre> {
    (0..doc.node_count() as Pre)
        .filter(|&p| doc.kind(p) == NodeKind::Element)
        .collect()
}

fn texts(doc: &Document) -> Vec<Pre> {
    (0..doc.node_count() as Pre)
        .filter(|&p| doc.kind(p) == NodeKind::Text)
        .collect()
}

const AXES: [Axis; 8] = [
    Axis::Child,
    Axis::Descendant,
    Axis::DescendantOrSelf,
    Axis::Parent,
    Axis::Ancestor,
    Axis::Following,
    Axis::Preceding,
    Axis::SelfAxis,
];

fn step_ctx<'a>(
    mode: ExecMode,
    axis: Axis,
    doc: &'a Document,
    t1: &'a [Pre],
    t2: &'a [Pre],
    par: Parallelism,
) -> EdgeOpCtx<'a> {
    EdgeOpCtx {
        class: EdgeClass::Step(axis),
        mode,
        doc1: doc,
        doc2: doc,
        input1: t1,
        input2: t2,
        index1: None,
        index2: None,
        kind1: NodeKind::Element,
        kind2: NodeKind::Element,
        par,
        workers: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Full-mode step edges: kernel == seed dispatch, pairs and costs,
    /// under Sequential and Threads(2).
    #[test]
    fn full_step_matches_seed_dispatch(
        blocks in prop::collection::vec((0u8..4, 0u8..3), 1..25),
        axis_i in 0usize..AXES.len(),
        m1 in any::<u64>(),
        m2 in any::<u64>(),
    ) {
        let axis = AXES[axis_i];
        let cat = Arc::new(Catalog::new());
        let id = cat.load_str("d.xml", &nested_doc(&blocks)).unwrap();
        let doc = cat.doc(id);
        let all = elements(&doc);
        let t1 = subset(&all, m1);
        let t2 = subset(&all, m2);
        for par in [Parallelism::Sequential, Parallelism::Threads(2)] {
            let mut seed_cost = Cost::new();
            let expected = seed_full_step(&doc, axis, &t1, &t2, par, &mut seed_cost);
            let mut kernel_cost = Cost::new();
            let out = execute_edge_op(
                step_ctx(ExecMode::Full, axis, &doc, &t1, &t2, par),
                &mut kernel_cost,
            );
            prop_assert_eq!(out.choice.kind, EdgeOpKind::StepJoin);
            prop_assert_eq!(out.choice.outer_is_v1, t1.len() <= t2.len());
            prop_assert_eq!(out.result.into_full(), expected);
            prop_assert_eq!(kernel_cost, seed_cost);
        }
    }

    /// Sampled-mode step edges with a forced outer side and cut-off:
    /// kernel == direct step_join call of the seed.
    #[test]
    fn sampled_step_matches_seed_dispatch(
        blocks in prop::collection::vec((0u8..4, 0u8..3), 1..25),
        axis_i in 0usize..AXES.len(),
        m1 in any::<u64>(),
        m2 in any::<u64>(),
        limit in 1usize..30,
        outer_is_v1 in any::<bool>(),
    ) {
        let axis = AXES[axis_i];
        let cat = Arc::new(Catalog::new());
        let id = cat.load_str("d.xml", &nested_doc(&blocks)).unwrap();
        let doc = cat.doc(id);
        let all = elements(&doc);
        let t1 = subset(&all, m1);
        let t2 = subset(&all, m2);
        // Seed logic: outer = the caller-fixed endpoint, inverse axis when
        // executing from v2.
        let (outer, inner, ax) = if outer_is_v1 {
            (&t1, &t2, axis)
        } else {
            (&t2, &t1, axis.inverse())
        };
        let mut seed_cost = Cost::new();
        let expected = step_join(&doc, ax, outer, inner, Some(limit), &mut seed_cost);
        let mut kernel_cost = Cost::new();
        let out = execute_edge_op(
            step_ctx(
                ExecMode::Sampled { limit, outer_is_v1 },
                axis,
                &doc,
                &t1,
                &t2,
                Parallelism::Sequential,
            ),
            &mut kernel_cost,
        );
        let got = out.result.into_sampled();
        prop_assert_eq!(got.pairs, expected.pairs);
        prop_assert_eq!(got.truncated, expected.truncated);
        prop_assert_eq!(got.reduction_factor(), expected.reduction_factor());
        prop_assert_eq!(kernel_cost, seed_cost);
    }

    /// Full-mode value joins: kernel == seed dispatch (including the
    /// documented NL-vs-hash crossover), under both parallelism settings.
    #[test]
    fn full_value_join_matches_seed_dispatch(
        l in prop::collection::vec(any::<u8>(), 0..40),
        r in prop::collection::vec(any::<u8>(), 0..40),
        m1 in any::<u64>(),
        m2 in any::<u64>(),
    ) {
        let cat = Arc::new(Catalog::new());
        let a = cat.load_str("a.xml", &value_doc(&l)).unwrap();
        let b = cat.load_str("b.xml", &value_doc(&r)).unwrap();
        let (da, db) = (cat.doc(a), cat.doc(b));
        let (ia, ib) = (ValueIndex::build(&da), ValueIndex::build(&db));
        let t1 = subset(&texts(&da), m1);
        let t2 = subset(&texts(&db), m2);
        for par in [Parallelism::Sequential, Parallelism::Threads(2)] {
            let mut seed_cost = Cost::new();
            let (expected, expected_kind) =
                seed_full_value_join(&da, &t1, &ia, &db, &t2, &ib, par, &mut seed_cost);
            let mut kernel_cost = Cost::new();
            let out = execute_edge_op(
                EdgeOpCtx {
                    class: EdgeClass::ValueJoin,
                    mode: ExecMode::Full,
                    doc1: &da,
                    doc2: &db,
                    input1: &t1,
                    input2: &t2,
                    index1: Some(&ia),
                    index2: Some(&ib),
                    kind1: NodeKind::Text,
                    kind2: NodeKind::Text,
                    par,
                    workers: None,
                },
                &mut kernel_cost,
            );
            prop_assert_eq!(out.choice.kind, expected_kind);
            prop_assert_eq!(out.result.into_full(), expected);
            prop_assert_eq!(kernel_cost, seed_cost);
        }
    }

    /// Sampled-mode value joins: kernel == the seed's forced-direction
    /// index nested loop with filter and cut-off.
    #[test]
    fn sampled_value_join_matches_seed_dispatch(
        l in prop::collection::vec(any::<u8>(), 0..40),
        r in prop::collection::vec(any::<u8>(), 0..40),
        m1 in any::<u64>(),
        m2 in any::<u64>(),
        limit in 1usize..20,
        outer_is_v1 in any::<bool>(),
    ) {
        let cat = Arc::new(Catalog::new());
        let a = cat.load_str("a.xml", &value_doc(&l)).unwrap();
        let b = cat.load_str("b.xml", &value_doc(&r)).unwrap();
        let (da, db) = (cat.doc(a), cat.doc(b));
        let (ia, ib) = (ValueIndex::build(&da), ValueIndex::build(&db));
        let t1 = subset(&texts(&da), m1);
        let t2 = subset(&texts(&db), m2);
        let (outer_doc, outer, inner, inner_idx) = if outer_is_v1 {
            (&da, &t1, &t2, &ib)
        } else {
            (&db, &t2, &t1, &ia)
        };
        let mut seed_cost = Cost::new();
        let expected = index_value_join(
            outer_doc,
            outer,
            inner_idx,
            NodeKind::Text,
            Some(inner),
            Some(limit),
            &mut seed_cost,
        );
        let mut kernel_cost = Cost::new();
        let out = execute_edge_op(
            EdgeOpCtx {
                class: EdgeClass::ValueJoin,
                mode: ExecMode::Sampled { limit, outer_is_v1 },
                doc1: &da,
                doc2: &db,
                input1: &t1,
                input2: &t2,
                index1: Some(&ia),
                index2: Some(&ib),
                kind1: NodeKind::Text,
                kind2: NodeKind::Text,
                par: Parallelism::Sequential,
                workers: None,
            },
            &mut kernel_cost,
        );
        prop_assert_eq!(out.choice.kind, EdgeOpKind::IndexNLValueJoin);
        let got = out.result.into_sampled();
        prop_assert_eq!(got.pairs, expected.pairs);
        prop_assert_eq!(got.truncated, expected.truncated);
        prop_assert_eq!(kernel_cost, seed_cost);
    }
}
