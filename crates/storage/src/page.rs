//! The on-disk page format.
//!
//! A snapshot file is an array of fixed-size pages. Every page carries a
//! 16-byte little-endian header followed by its payload (zero-padded to
//! the page size):
//!
//! | offset | size | field                                   |
//! |--------|------|-----------------------------------------|
//! | 0      | 4    | magic `"RXPG"` (`0x47505852` LE)        |
//! | 4      | 4    | page id (must match the fetch position) |
//! | 8      | 4    | payload length in bytes                 |
//! | 12     | 4    | CRC-32C (Castagnoli) of the payload     |
//!
//! The checksum makes corruption a *detected* error ([`StorageError::Corrupt`])
//! instead of undefined decoding: a flipped bit anywhere in the payload, a
//! page written at the wrong offset, or a torn short write all fail
//! validation before any snapshot bytes are interpreted.

use crate::error::{Result, StorageError};

/// Bytes of the fixed page header preceding every payload.
pub const PAGE_HEADER: usize = 16;

/// Default page size used by [`crate::Snapshot::save`]; any power-of-two
/// size ≥ 64 works, the file records the size it was written with.
///
/// The classic 4 KiB. Larger pages used to pay for themselves by cutting
/// syscalls on sequential segment faults, but scan readahead now batches
/// contiguous pages into one positioned read anyway
/// ([`crate::BufferPool::prefetch`]), while each segment still wastes
/// half a page of padding on average — which, with packed columns, can
/// dominate a small corpus. Smaller pages also give the buffer pool
/// finer eviction granularity under tight frame budgets.
pub const DEFAULT_PAGE_SIZE: usize = 4096;

/// Smallest accepted page size (header + a useful payload).
pub const MIN_PAGE_SIZE: usize = 64;

/// Page magic: `"RXPG"` in little-endian byte order.
pub const PAGE_MAGIC: u32 = u32::from_le_bytes(*b"RXPG");

const fn build_crc_tables() -> [[u32; 256]; 16] {
    let mut tables = [[0u32; 256]; 16];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0x82F6_3B78 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    // tables[t][b] = CRC of byte b followed by t zero bytes, so sixteen
    // lookups fold sixteen input bytes per iteration below.
    let mut t = 1;
    while t < 16 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = tables[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            i += 1;
        }
        t += 1;
    }
    tables
}

static CRC_TABLES: [[u32; 256]; 16] = build_crc_tables();

/// CRC-32C (Castagnoli polynomial, the iSCSI/ext4/RocksDB variant) of
/// `bytes`.
///
/// Every page fetch checksums its whole payload, so this sits on the
/// cold-start critical path. On x86-64 with SSE 4.2 the dedicated `crc32`
/// instruction folds eight bytes per cycle; elsewhere a slicing-by-16
/// table walk processes sixteen bytes per loop iteration. Both compute
/// the same function, so files are portable across the two paths.
pub fn crc32c(bytes: &[u8]) -> u32 {
    #[cfg(target_arch = "x86_64")]
    {
        use std::sync::atomic::{AtomicU8, Ordering};
        static HAS_SSE42: AtomicU8 = AtomicU8::new(0); // 0 unknown, 1 yes, 2 no
        let state = HAS_SSE42.load(Ordering::Relaxed);
        let has = match state {
            0 => {
                let has = std::arch::is_x86_feature_detected!("sse4.2");
                HAS_SSE42.store(if has { 1 } else { 2 }, Ordering::Relaxed);
                has
            }
            1 => true,
            _ => false,
        };
        if has {
            // SAFETY: SSE 4.2 availability was just verified.
            return unsafe { crc32c_sse42(bytes) };
        }
    }
    crc32c_sw(bytes)
}

/// Hardware CRC-32C: eight bytes per `crc32q`, then a byte-wise tail.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.2")]
unsafe fn crc32c_sse42(bytes: &[u8]) -> u32 {
    use std::arch::x86_64::{_mm_crc32_u64, _mm_crc32_u8};
    let mut c = !0u64;
    let mut chunks = bytes.chunks_exact(8);
    for ch in &mut chunks {
        c = _mm_crc32_u64(c, u64::from_le_bytes(ch.try_into().unwrap()));
    }
    let mut c = c as u32;
    for &b in chunks.remainder() {
        c = _mm_crc32_u8(c, b);
    }
    !c
}

/// Software CRC-32C, slicing-by-16.
fn crc32c_sw(bytes: &[u8]) -> u32 {
    let t = &CRC_TABLES;
    let mut c = 0xFFFF_FFFFu32;
    let mut chunks = bytes.chunks_exact(16);
    for ch in &mut chunks {
        let w0 = u32::from_le_bytes(ch[0..4].try_into().unwrap()) ^ c;
        let w1 = u32::from_le_bytes(ch[4..8].try_into().unwrap());
        let w2 = u32::from_le_bytes(ch[8..12].try_into().unwrap());
        let w3 = u32::from_le_bytes(ch[12..16].try_into().unwrap());
        c = t[15][(w0 & 0xFF) as usize]
            ^ t[14][((w0 >> 8) & 0xFF) as usize]
            ^ t[13][((w0 >> 16) & 0xFF) as usize]
            ^ t[12][(w0 >> 24) as usize]
            ^ t[11][(w1 & 0xFF) as usize]
            ^ t[10][((w1 >> 8) & 0xFF) as usize]
            ^ t[9][((w1 >> 16) & 0xFF) as usize]
            ^ t[8][(w1 >> 24) as usize]
            ^ t[7][(w2 & 0xFF) as usize]
            ^ t[6][((w2 >> 8) & 0xFF) as usize]
            ^ t[5][((w2 >> 16) & 0xFF) as usize]
            ^ t[4][(w2 >> 24) as usize]
            ^ t[3][(w3 & 0xFF) as usize]
            ^ t[2][((w3 >> 8) & 0xFF) as usize]
            ^ t[1][((w3 >> 16) & 0xFF) as usize]
            ^ t[0][(w3 >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = t[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Frame `payload` into a full on-disk page for `page_id`, zero-padded to
/// `page_size`.
///
/// # Panics
/// Panics when the payload does not fit the page — callers split segments
/// into page-sized chunks first.
pub fn encode_page(page_id: u32, payload: &[u8], page_size: usize) -> Vec<u8> {
    assert!(
        payload.len() <= page_size - PAGE_HEADER,
        "payload of {} bytes exceeds page capacity {}",
        payload.len(),
        page_size - PAGE_HEADER
    );
    let mut page = Vec::with_capacity(page_size);
    page.extend_from_slice(&PAGE_MAGIC.to_le_bytes());
    page.extend_from_slice(&page_id.to_le_bytes());
    page.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    page.extend_from_slice(&crc32c(payload).to_le_bytes());
    page.extend_from_slice(payload);
    page.resize(page_size, 0);
    page
}

/// Validate the raw bytes of page `expected_id` and return its payload.
///
/// Checks, in order: page length, magic, stored page id against the fetch
/// position, payload length bound, and the payload CRC. Any mismatch is a
/// [`StorageError::Corrupt`] naming the page.
pub fn decode_page(expected_id: u32, raw: &[u8]) -> Result<&[u8]> {
    let corrupt = |reason: String| StorageError::Corrupt {
        page: expected_id,
        reason,
    };
    if raw.len() < PAGE_HEADER {
        return Err(corrupt(format!("short page: {} bytes", raw.len())));
    }
    let word = |at: usize| u32::from_le_bytes(raw[at..at + 4].try_into().unwrap());
    if word(0) != PAGE_MAGIC {
        return Err(corrupt(format!("bad magic {:#010x}", word(0))));
    }
    if word(4) != expected_id {
        return Err(corrupt(format!(
            "stored id {} at position {expected_id}",
            word(4)
        )));
    }
    let len = word(8) as usize;
    if len > raw.len() - PAGE_HEADER {
        return Err(corrupt(format!("payload length {len} exceeds page")));
    }
    let payload = &raw[PAGE_HEADER..PAGE_HEADER + len];
    let actual = crc32c(payload);
    if actual != word(12) {
        return Err(corrupt(format!(
            "checksum mismatch: stored {:#010x}, computed {actual:#010x}",
            word(12)
        )));
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32c_matches_known_vectors() {
        // Standard CRC-32C (Castagnoli) check values.
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
    }

    #[test]
    fn hardware_and_software_paths_agree() {
        // Lengths straddling every chunking boundary of both paths.
        let data: Vec<u8> = (0..4099u32).map(|i| (i * 31 % 251) as u8).collect();
        for len in [0, 1, 7, 8, 9, 15, 16, 17, 255, 4096, 4099] {
            assert_eq!(crc32c(&data[..len]), crc32c_sw(&data[..len]), "len {len}");
        }
    }

    #[test]
    fn page_roundtrip() {
        let page = encode_page(7, b"hello pages", 128);
        assert_eq!(page.len(), 128);
        assert_eq!(decode_page(7, &page).unwrap(), b"hello pages");
    }

    #[test]
    fn bitflip_is_detected() {
        let mut page = encode_page(3, b"payload bytes", 128);
        page[PAGE_HEADER + 4] ^= 0x01;
        let err = decode_page(3, &page).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt { page: 3, .. }));
        assert!(err.to_string().contains("checksum"));
    }

    #[test]
    fn wrong_position_is_detected() {
        let page = encode_page(3, b"x", 128);
        assert!(matches!(
            decode_page(4, &page),
            Err(StorageError::Corrupt { page: 4, .. })
        ));
    }

    #[test]
    fn truncated_page_is_detected() {
        let page = encode_page(0, b"abc", 128);
        assert!(decode_page(0, &page[..8]).is_err());
        // Header claims more payload than the buffer holds.
        let mut short = page.clone();
        short.truncate(PAGE_HEADER + 1);
        assert!(decode_page(0, &short).is_err());
    }
}
