//! End-to-end pipeline tests: XQuery text → Join Graph → ROX run-time
//! optimization → result, checked against hand-computed answers.

use rox_core::{run_rox, RoxOptions};
use rox_xmldb::{serialize_subtree_string, Catalog};
use std::sync::Arc;

fn run(
    query: &str,
    docs: &[(&str, &str)],
) -> (rox_core::RoxReport, rox_joingraph::JoinGraph, Arc<Catalog>) {
    let catalog = Arc::new(Catalog::new());
    for (uri, xml) in docs {
        catalog.load_str(uri, xml).unwrap();
    }
    let graph = rox_joingraph::compile_query(query).expect("query compiles");
    let report = run_rox(Arc::clone(&catalog), &graph, RoxOptions::default()).expect("rox runs");
    (report, graph, catalog)
}

#[test]
fn simple_descendant_query() {
    let (r, _, _) = run(
        r#"for $b in doc("d.xml")//b return $b"#,
        &[("d.xml", "<a><b/><c><b/></c><b/></a>")],
    );
    assert_eq!(r.output.len(), 3);
}

#[test]
fn predicate_filters_results() {
    let (r, _, _) = run(
        r#"for $i in doc("d.xml")//item[./quantity = 1] return $i"#,
        &[(
            "d.xml",
            "<s><item><quantity>1</quantity></item><item><quantity>2</quantity></item><item><quantity>1</quantity></item></s>",
        )],
    );
    assert_eq!(r.output.len(), 2);
}

#[test]
fn range_predicate_on_text() {
    let (r, _, _) = run(
        r#"for $p in doc("d.xml")//price[./text() < 10] return $p"#,
        &[(
            "d.xml",
            "<s><price>5</price><price>15</price><price>9.5</price></s>",
        )],
    );
    assert_eq!(r.output.len(), 2);
}

#[test]
fn attribute_join_across_branches() {
    // The Fig. 1 query shape on a miniature auction document.
    let (r, graph, catalog) = run(
        r#"
        let $r := doc("auction.xml")
        for $a in $r//open_auction[./reserve]/bidder//personref,
            $b in $r//person[.//education]
        where $a/@person = $b/@id
        return $a
        "#,
        &[(
            "auction.xml",
            r#"<site>
              <open_auction><reserve>1</reserve>
                <bidder><personref person="p1"/></bidder>
                <bidder><personref person="p2"/></bidder>
              </open_auction>
              <open_auction>
                <bidder><personref person="p1"/></bidder>
              </open_auction>
              <person id="p1"><profile><education>MSc</education></profile></person>
              <person id="p2"/>
            </site>"#,
        )],
    );
    // Only personrefs under the reserved auction qualify, and only p1 has
    // an education: 1 result.
    assert_eq!(r.output.len(), 1);
    let node = r.output.col(graph.tail.output)[0];
    let doc = catalog.doc(r.output.doc_of(graph.tail.output));
    assert_eq!(
        serialize_subtree_string(&doc, node),
        r#"<personref person="p1"/>"#
    );
}

#[test]
fn multiplicity_follows_for_nesting() {
    // for $a in //a, $b in //b: every (a, b) pair => |a| × |b| rows of $a.
    let (r, _, _) = run(
        r#"for $a in doc("d.xml")//a, $b in doc("d.xml")//b return $a"#,
        &[("d.xml", "<s><a/><a/><b/><b/><b/></s>")],
    );
    assert_eq!(r.output.len(), 6);
}

#[test]
fn output_is_in_document_order_of_for_variables() {
    let (r, graph, _) = run(
        r#"for $b in doc("d.xml")//b return $b"#,
        &[("d.xml", "<a><b/><c><b/></c><b/></a>")],
    );
    let col = r.output.col(graph.tail.output);
    let mut sorted = col.to_vec();
    sorted.sort();
    assert_eq!(col, &sorted[..]);
}

#[test]
fn cross_document_equi_join_e2e() {
    let (r, _, _) = run(
        r#"for $x in doc("x.xml")//name, $y in doc("y.xml")//name
           where $x/text() = $y/text() return $x"#,
        &[
            (
                "x.xml",
                "<p><name>ann</name><name>bob</name><name>ann</name></p>",
            ),
            ("y.xml", "<p><name>ann</name><name>zed</name></p>"),
        ],
    );
    // x has "ann" twice, y once: two (x,y) pairs.
    assert_eq!(r.output.len(), 2);
}

#[test]
fn chained_variables_share_structure() {
    let (r, _, _) = run(
        r#"for $a in doc("d.xml")//auction, $b in $a/bidder, $c in $b/ref return $c"#,
        &[(
            "d.xml",
            "<s><auction><bidder><ref/><ref/></bidder></auction><auction><bidder><ref/></bidder></auction></s>",
        )],
    );
    assert_eq!(r.output.len(), 3);
}

#[test]
fn empty_document_yields_empty_result() {
    let (r, _, _) = run(
        r#"for $b in doc("d.xml")//b return $b"#,
        &[("d.xml", "<a/>")],
    );
    assert!(r.output.is_empty());
    assert!(r.joined.is_empty());
}

#[test]
fn where_select_condition() {
    let (r, _, _) = run(
        r#"for $i in doc("d.xml")//item where $i/price/text() > 100 return $i"#,
        &[(
            "d.xml",
            "<s><item><price>50</price></item><item><price>150</price></item><item><price>200</price></item></s>",
        )],
    );
    assert_eq!(r.output.len(), 2);
}

#[test]
fn string_equality_predicate_via_value_index() {
    let (r, _, _) = run(
        r#"for $a in doc("d.xml")//author[./text() = "Codd"] return $a"#,
        &[(
            "d.xml",
            "<s><author>Codd</author><author>Date</author><author>Codd</author></s>",
        )],
    );
    assert_eq!(r.output.len(), 2);
}
